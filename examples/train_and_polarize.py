#!/usr/bin/env python
"""Fig. 4 walkthrough: watch the split-and-conquer algorithm reshape a graph.

Steps through GCoD's three algorithm stages on CiteSeer, printing the
adjacency density plot, accuracy, polarization loss, and workload balance
after each stage — the "visualization" experiment of the paper, live.
"""

from repro import GCoDConfig, load_dataset
from repro.algorithm import GCoDTrainer, polarization_loss
from repro.utils import density_plot


def show(title: str, graph, layout=None) -> None:
    print(f"\n=== {title} ===")
    kwargs = {}
    if layout is not None:
        kwargs = {
            "class_bounds": layout.class_bounds(),
            "group_bounds": layout.group_bounds(),
        }
    print(density_plot(graph.adj, size=36, **kwargs))
    print(f"nnz={graph.adj.nnz}  polarization={polarization_loss(graph.adj):.4f}")
    if layout is not None:
        print(f"dense fraction={layout.dense_fraction(graph.adj):.1%}  "
              f"balance={layout.balance_within_classes(graph.adj):.3f}")


def main() -> None:
    graph = load_dataset("citeseer", scale=0.2, seed=0)
    show("original graph (random node order)", graph)

    config = GCoDConfig(
        pretrain_epochs=60, retrain_epochs=40,
        admm_iterations=3, admm_inner_steps=8,
        num_classes=2, num_groups=2, num_subgraphs=8,
    )
    result = GCoDTrainer("gcn", config).run(graph)

    show("Step 1: partitioned + reordered", result.partitioned_graph,
         result.layout)
    print(f"pretrain accuracy: {result.accuracy_pretrain:.3f} "
          f"(early-bird at epoch {result.early_bird_epoch})")

    show("Step 2: sparsified + polarized", result.tuned_graph, result.layout)
    print(f"kept {result.admm.kept_edge_fraction:.1%} of edges; "
          f"accuracy {result.accuracy_after_tuning:.3f}")

    show("Step 3: structurally pruned patches", result.final_graph,
         result.layout)
    print(f"pruned {result.structural.pruned_patches} of "
          f"{result.structural.total_patches} patches "
          f"(patch size {result.structural.patch_size}); "
          f"final accuracy {result.accuracy_final:.3f}")

    cost = result.cost_breakdown
    print(f"\ntraining cost: {cost['relative_cost']:.2f}x standard "
          f"(steps: {cost['step1_fraction']:.0%} / "
          f"{cost['step2_fraction']:.0%} / {cost['step3_fraction']:.0%})")


if __name__ == "__main__":
    main()
