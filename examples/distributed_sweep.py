#!/usr/bin/env python
"""Multi-worker sweeps over one shared artifact store, in library form.

Stands up the stdlib HTTP store server (`repro store serve`) in-process,
points two real worker processes at its URL, and lets the work ledger
split an 8-point grid between them: each point is claimed through an
atomic put-if-absent entry, evaluated exactly once across the fleet, and
persisted where every worker can see it. Afterwards the script verifies
the three contracts the distributed tier promises:

* **exactly-once** — the workers' evaluation counters sum to exactly the
  grid size (zero duplicates, zero holes);
* **byte-identical aggregation** — each worker's final report equals a
  single-host serial run of the same grid, byte for byte;
* **shared warm state** — a rerun against the populated store evaluates
  nothing.

Equivalent CLI session (workers may be on different machines):

    python -m repro store serve --root ./shared-store &
    python -m repro --store-url http://127.0.0.1:8750 sweep \
        --grid "dataset=cora;C=1,2;S=4,8;bits=32,8" \
        --stats-out worker-a.json --quiet &
    python -m repro --store-url http://127.0.0.1:8750 sweep \
        --grid "dataset=cora;C=1,2;S=4,8;bits=32,8" \
        --stats-out worker-b.json --quiet &
    wait
"""

import tempfile
import threading

from repro.evaluation import EvalContext
from repro.runtime.runner import pool_context
from repro.runtime.server import make_store_server
from repro.runtime.store import ArtifactStore
from repro.sweep import SweepSpec, run_sweep, sweep_report_text

# 2 x 2 x 2 = 8 design points, four unique training runs (the precision
# axis is analytic, so both `bits` variants share a pipeline).
SPEC = SweepSpec(
    name="distributed-demo",
    title="Distributed sweep demo",
    axes={
        "C": (1, 2),
        "S": (4, 8),
        "bits": (32, 8),
    },
)


def make_ctx(locator: str) -> EvalContext:
    return EvalContext(profile="fast", store=ArtifactStore(locator))


def worker(url: str, name: str, queue) -> None:
    """One sweep worker: same command, same grid, shared store."""
    # An http(s) locator flips the engine into work-ledger mode on its
    # own — no extra flags; `--ledger` exists only to force it for a
    # shared-filesystem --cache-dir.
    report = run_sweep(make_ctx(url), SPEC)
    queue.put({
        "name": name,
        "worker": report.worker,
        "points_evaluated": report.points_evaluated,
        "gcod_runs": report.gcod_runs,
        "ledger": report.ledger_stats,
        "text": sweep_report_text(SPEC, report.results),
    })


def main() -> int:
    # ------------------------------------------------------------------
    # the single-host reference: one serial sweep, local store
    # ------------------------------------------------------------------
    with tempfile.TemporaryDirectory(prefix="dsweep-ref-") as ref_root:
        ref = run_sweep(make_ctx(ref_root), SPEC)
        ref_text = sweep_report_text(SPEC, ref.results)
    print(f"serial reference: {ref.points_evaluated} points evaluated, "
          f"{ref.gcod_runs} training runs")

    # ------------------------------------------------------------------
    # serve a fresh store, point two worker processes at it
    # ------------------------------------------------------------------
    with tempfile.TemporaryDirectory(prefix="dsweep-shared-") as root:
        server = make_store_server(root, port=0)  # port=0: pick a free one
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        print(f"serving shared store at {server.url}")
        try:
            mp = pool_context()
            queue = mp.Queue()
            procs = [
                mp.Process(target=worker, args=(server.url, name, queue))
                for name in ("worker-a", "worker-b")
            ]
            for p in procs:
                p.start()
            results = [queue.get() for _ in procs]
            for p in procs:
                p.join()
        finally:
            server.shutdown()
            server.server_close()

        # --------------------------------------------------------------
        # the contracts
        # --------------------------------------------------------------
        for r in sorted(results, key=lambda r: r["name"]):
            print(f"  {r['name']} ({r['worker']}): "
                  f"{r['points_evaluated']} points, "
                  f"{r['gcod_runs']} trainings, "
                  f"ledger {r['ledger']}")
        total = sum(r["points_evaluated"] for r in results)
        assert total == len(ref.results), (
            f"{total} evaluations for a {len(ref.results)}-point grid"
        )
        print(f"exactly-once: {total} evaluations == {len(ref.results)} "
              f"grid points (zero duplicates)")
        assert all(r["text"] == ref_text for r in results)
        print("both workers aggregated the full grid, byte-identical "
              "to the serial reference")

        # the populated store is warm for the whole fleet
        warm = run_sweep(make_ctx(root), SPEC)
        assert warm.points_evaluated == 0
        assert sweep_report_text(SPEC, warm.results) == ref_text
        print("warm rerun on the shared root: 0 points evaluated, "
              "same bytes")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
