#!/usr/bin/env python
"""The `repro serve` inference service, driven end to end.

Starts a batched inference server in-process (the CLI equivalent is
shown below), then walks the three answer paths a client sees:

* **cold** — the first query for a (dataset, arch) trains the GCoD
  pipeline through the micro-batch window and persists it;
* **batched cold** — six identical queries pipelined on one connection
  land in one batch window and are served by a *single* training
  dispatch (watch `gcod_runs` in the stats);
* **warm** — every repeat answers straight from the artifact store,
  sub-millisecond, zero training.

Equivalent CLI session:

    python -m repro --cache-dir ./serve-store serve --port 8731 \
        --dataset-scale "cora=0.1,citeseer=0.1" \
        --max-batch 8 --max-wait-ms 25
    # then, from any process:
    #   from repro.serve import ServeClient
    #   ServeClient("127.0.0.1", 8731).query("cora")
"""

import shutil
import tempfile

from repro.evaluation.context import EvalContext
from repro.runtime.store import ArtifactStore
from repro.serve import ServeClient, ServeSettings, start_in_thread


def main() -> None:
    store_root = tempfile.mkdtemp(prefix="serve-example-")
    ctx = EvalContext(profile="fast", store=ArtifactStore(store_root))
    ctx.dataset_scales = {"cora": 0.1, "citeseer": 0.1}

    server = start_in_thread(ctx, ServeSettings(
        port=0, max_batch=8, max_wait_ms=25.0))
    print(f"server listening on {server.host}:{server.port}")
    try:
        with ServeClient(server.host, server.port) as client:
            # --- cold: the first query trains and persists ------------
            first = client.query("cora")
            print(f"cold  : cora/gcn source={first.source} "
                  f"batch={first.batch_id} size={first.batch_size} "
                  f"accuracy={first.result.get('accuracy_final')}")

            # --- batched cold: 6 pipelined queries, 1 dispatch --------
            burst = client.query_many([("citeseer", "gcn")] * 6)
            sizes = {r.batch_size for r in burst}
            print(f"batch : 6 pipelined citeseer queries -> "
                  f"batch sizes {sorted(sizes)}, "
                  f"sources {sorted({r.source for r in burst})}")

            # --- warm: repeats answer from the store ------------------
            warm = client.query("cora")
            print(f"warm  : cora/gcn source={warm.source} "
                  f"(identical payload: {warm.result == first.result})")

            stats = client.stats()
            print(f"stats : requests={stats['requests']} "
                  f"warm_hits={stats['warm_hits']} "
                  f"batches={stats['batches']} "
                  f"gcod_runs={stats['gcod_runs']}")
            assert stats["gcod_runs"] == 2, "expected exactly two trainings"
    finally:
        server.stop()
        shutil.rmtree(store_root, ignore_errors=True)
    print("done: two training runs served all queries; restart against "
          "the same store and everything is warm")


if __name__ == "__main__":
    main()
