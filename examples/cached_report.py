#!/usr/bin/env python
"""Warm-cache reruns: the artifact store in library form.

Runs a subset of the evaluation report twice against the same on-disk
artifact store. The first (cold) pass trains the de-duplicated GCoD
dependencies and persists everything; the second (warm) pass — a fresh
context, as if it were a new process — performs **zero** training runs and
renders from cache. The run counter in ``repro.runtime.counters`` proves
it, and the wall-clock ratio shows why sweeps and CI build on the store.

Equivalent CLI session:

    python -m repro --cache-dir ./artifact-cache report \
        --experiments fig04,reordering --jobs 2 -o report.md   # cold
    python -m repro --cache-dir ./artifact-cache report \
        --experiments fig04,reordering -o report.md            # warm
    python -m repro --cache-dir ./artifact-cache cache stats
"""

import time

from repro.evaluation import EvalContext
from repro.evaluation.report import generate_report
from repro.runtime import counters
from repro.runtime.store import ArtifactStore

CACHE_DIR = "./artifact-cache"
EXPERIMENTS = ["fig04", "reordering"]
# Shrink the fast-profile scales further so the cold pass stays snappy;
# the scales are part of every cache key, so both passes must agree.
SCALES = {"cora": 0.1, "citeseer": 0.08, "pubmed": 0.02}


def fresh_context() -> EvalContext:
    ctx = EvalContext(profile="fast", store=ArtifactStore(CACHE_DIR))
    ctx.dataset_scales = dict(SCALES)
    return ctx


def timed_report(label: str) -> str:
    counters.reset_counters()
    start = time.perf_counter()
    text = generate_report(fresh_context(), names=EXPERIMENTS, jobs=2)
    wall = time.perf_counter() - start
    print(f"{label}: {wall:.2f}s, {counters.gcod_run_count()} GCoD "
          f"training run(s) in this process")
    return text


def main() -> None:
    store = ArtifactStore(CACHE_DIR)
    print(f"artifact store: {store.root}")

    cold = timed_report("cold pass")
    warm = timed_report("warm pass")
    assert warm == cold, "warm rerun must be byte-identical"
    print("warm output is byte-identical to the cold output")

    stats = store.stats()
    for kind in sorted(k for k in stats if k != "total"):
        row = stats[kind]
        print(f"  {kind:<12} {int(row['entries']):>3} entries, "
              f"{row['bytes'] / 1e6:.2f} MB")
    print("rerun this script: the cold pass is now warm too")


if __name__ == "__main__":
    main()
