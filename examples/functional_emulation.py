#!/usr/bin/env python
"""Behavioral emulation: execute a GCN exactly as the two-pronged accelerator.

Trains a GCN with GCoD, then *executes* inference the way the hardware
schedules it — denser chunks over diagonal blocks, the sparser branch
walking the off-diagonal CSC with query-based weight forwarding — and
verifies the result is numerically identical to the mathematical reference
while reporting the measured (not assumed) hardware-relevant quantities:
forwarding rate, chunk balance, skipped columns. Finishes with the
event-driven cycle simulation of the same aggregation.
"""

import numpy as np

from repro import GCoDConfig, load_dataset, run_gcod
from repro.hardware import extract_workload
from repro.hardware.event_sim import simulate_aggregation
from repro.hardware.functional import execute_gcn, reference_gcn


def main() -> None:
    graph = load_dataset("cora", scale=0.25, seed=0)
    config = GCoDConfig(pretrain_epochs=50, retrain_epochs=30,
                        admm_iterations=2, admm_inner_steps=8)
    result = run_gcod(graph, "gcn", config)
    trained = result.final_graph

    # Export the trained model's weights into plain matrices.
    weights = [layer.weight.data for layer in result.model.layers]

    logits, traces = execute_gcn(trained, result.layout, weights)
    reference = reference_gcn(trained, weights)
    max_err = float(np.abs(logits - reference).max())
    print(f"two-pronged execution vs reference: max |err| = {max_err:.2e}")
    assert max_err < 1e-8

    preds = logits.argmax(axis=1)
    acc = (preds[trained.test_mask] == trained.labels[trained.test_mask]).mean()
    print(f"test accuracy through the emulated accelerator: {acc:.3f}")

    for i, trace in enumerate(traces):
        print(f"\nlayer {i}:")
        print(f"  denser-branch MACs per chunk: {trace.dense_macs_per_chunk}")
        print(f"  chunk balance (mean/max):     {trace.chunk_balance():.3f}")
        print(f"  sparser-branch MACs:          {trace.sparse_macs}")
        print(f"  columns skipped (structural): {trace.columns_skipped}"
              f" / {trace.columns_processed + trace.columns_skipped}")
        print(f"  weight-forwarding rate:       {trace.forward_rate:.2f}"
              f"  (paper: ~0.63)")

    # Cycle-approximate event simulation of the aggregation phase.
    wl = extract_workload(trained, result.layout, "gcn")
    sub_workloads = result.layout.subgraph_workloads(trained.adj)
    sub_classes = [s.class_id for s in result.layout.spans]
    report = simulate_aggregation(
        wl, agg_dim=16, layout_tiles=(sub_workloads, sub_classes)
    )
    print(f"\nevent-driven aggregation: {report.cycles:.0f} cycles, "
          f"chunk finish skew {report.finish_skew:.2f} "
          f"(1.0 = all chunks finish together), "
          f"{report.events_processed} events")


if __name__ == "__main__":
    main()
