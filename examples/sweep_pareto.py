#!/usr/bin/env python
"""Design-space sweeps and Pareto extraction: the sweep engine in library form.

Defines a small grid over the GCoD design space — two architectural knobs
(C, S) crossed with the two platform precisions — runs it cold against an
on-disk artifact store, reruns it warm (zero training runs, proven by the
process-wide counter), extracts the classic speedup/accuracy Pareto
frontier, and then re-cuts the same stored results along the
paper's *multi-objective* axes: the 3-D (speedup, energy, DRAM-traffic)
frontier, plotted as an ASCII trade-off chart.

Equivalent CLI session:

    python -m repro --cache-dir ./artifact-cache sweep \
        --grid "dataset=cora;C=1,2;S=4,8;bits=32,8" --jobs 2   # cold
    python -m repro --cache-dir ./artifact-cache sweep \
        --grid "dataset=cora;C=1,2;S=4,8;bits=32,8" \
        --objectives speedup,energy,dram                       # warm, 3-D
    python -m repro --cache-dir ./artifact-cache sweep \
        --grid "dataset=cora;C=1,2;S=4,8;bits=32,8" --resume   # finish an
                                                               # interrupted run
"""

import time

from repro.evaluation import EvalContext
from repro.runtime import counters
from repro.runtime.store import ArtifactStore
from repro.sweep import (
    SweepSpec,
    long_form_result,
    pareto_frontier,
    run_sweep,
)

CACHE_DIR = "./artifact-cache"

# 2 x 2 x 2 = 8 design points, but only four unique training runs: the
# precision axis is analytic, so both `bits` variants share a pipeline.
SPEC = SweepSpec(
    name="example",
    title="C x S x precision on Cora",
    axes={
        "dataset": ("cora",),
        "C": (1, 2),
        "S": (4, 8),
        "bits": (32, 8),
    },
)

# Shrink the fast-profile scale further so the cold pass stays snappy;
# the scale is part of every cache key, so both passes must agree.
SCALES = {"cora": 0.1}


def fresh_context() -> EvalContext:
    ctx = EvalContext(profile="fast", store=ArtifactStore(CACHE_DIR))
    ctx.dataset_scales = dict(SCALES)
    return ctx


def timed_sweep(label: str):
    counters.reset_counters()
    start = time.perf_counter()
    report = run_sweep(fresh_context(), SPEC, jobs=2)
    wall = time.perf_counter() - start
    print(f"{label}: {wall:.2f}s — {len(report.results)} points, "
          f"{len(report.cache_hits)} cached, "
          f"{counters.gcod_run_count()} training run(s) in this process")
    return report


def main() -> None:
    print(f"artifact store: {ArtifactStore(CACHE_DIR).root}")
    print(SPEC.describe())

    cold = timed_sweep("cold pass")
    warm = timed_sweep("warm pass")
    assert [r.axes for r in warm.results] == [r.axes for r in cold.results]
    assert warm.points_evaluated == 0, "warm rerun must be all cache hits"

    print()
    print(long_form_result(SPEC, warm.results).render())

    print()
    print("Pareto frontier (maximize speedup vs AWB-GCN and accuracy):")
    for point in pareto_frontier(warm.results):
        coords = ", ".join(f"{k}={v}" for k, v in point.axes)
        print(f"  {coords}: {point.speedup_vs_awb:.2f}x at "
              f"{point.accuracy * 100:.1f}% accuracy")

    print()
    print("3-objective frontier (max speedup, min energy, min DRAM):")
    frontier3 = pareto_frontier(warm.results, "speedup,energy,dram")
    # ASCII trade-off plot: one bar per frontier point, sorted along the
    # speedup axis; the annotations carry the two minimized objectives.
    max_speedup = max(p.speedup_vs_awb for p in frontier3)
    for point in frontier3:
        coords = ", ".join(f"{k}={v}" for k, v in point.axes)
        bar = "#" * max(1, round(point.speedup_vs_awb / max_speedup * 40))
        print(f"  {coords:<34} |{bar:<40}| "
              f"{point.speedup_vs_awb:.2f}x  "
              f"{point.gcod_energy_j * 1e3:.3g} mJ  "
              f"{point.gcod_dram_bytes / 2**20:.3g} MB DRAM")
    dominated = len(warm.results) - len(frontier3)
    print(f"  ({dominated} of {len(warm.results)} designs are dominated "
          "on all three objectives)")
    print("rerun this script: the cold pass is now warm too")


if __name__ == "__main__":
    main()
