#!/usr/bin/env python
"""Design-space sweep: the Sec. VI-C ablation over C (classes) and S (subgraphs).

For every (C, S) combination, run the GCoD algorithm, map the result onto
the accelerator, and report speedup over AWB-GCN, bandwidth reduction vs
HyGCN, accuracy, and the measured workload balance — showing the paper's
robustness claim (benefits hold across the whole design space).
"""

from dataclasses import replace

from repro import GCoDConfig, extract_workload, load_dataset, run_gcod
from repro.hardware.accelerators import AWBGCN, GCoDAccelerator, HyGCN
from repro.utils import format_table


def main() -> None:
    graph = load_dataset("cora", scale=0.25, seed=0)
    base_config = GCoDConfig(pretrain_epochs=30, retrain_epochs=20,
                             admm_iterations=2, admm_inner_steps=6)
    wl_base = extract_workload(graph, None, "gcn", paper_scale=True)
    awb = AWBGCN().run(wl_base)
    hygcn = HyGCN().run(wl_base)
    gcod_accel = GCoDAccelerator()

    rows = []
    for c in (1, 2, 3, 4):
        for s in (8, 12, 16, 20):
            config = replace(base_config, num_classes=c,
                             num_subgraphs=max(s, c))
            result = run_gcod(graph, "gcn", config)
            wl = extract_workload(result.final_graph, result.layout, "gcn",
                                  paper_scale=True)
            report = gcod_accel.run(wl)
            rows.append(
                (
                    c,
                    s,
                    f"{awb.latency_s / report.latency_s:.2f}x",
                    f"{(1 - report.required_bandwidth_gbps / hygcn.required_bandwidth_gbps) * 100:.0f}%",
                    f"{result.accuracy_final * 100:.1f}%",
                    f"{result.layout.balance_within_classes(result.final_graph.adj):.3f}",
                )
            )
            print(f"C={c} S={s}: {rows[-1][2]} over AWB-GCN")

    print("\n" + format_table(
        ("C", "S", "speedup vs AWB", "BW reduction vs HyGCN", "accuracy",
         "balance"),
        rows,
        title="Design-space ablation (paper: 1.8-2.8x, 26-53% BW reduction)",
    ))


if __name__ == "__main__":
    main()
