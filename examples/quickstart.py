#!/usr/bin/env python
"""Quickstart: the full GCoD co-design loop on Cora in under a minute.

1. Generate the (synthetic) Cora dataset.
2. Run the three-step GCoD training algorithm on a 2-layer GCN.
3. Map the trained graph onto the GCoD accelerator and compare against
   AWB-GCN, HyGCN, and PyG-CPU.
"""

from repro import GCoDConfig, extract_workload, load_dataset, run_gcod
from repro.hardware.accelerators import AWBGCN, GCoDAccelerator, HyGCN, pyg_cpu
from repro.utils import bar_chart, density_plot


def main() -> None:
    # Scale 0.25 keeps this snappy; use scale=1.0 for full-size Cora.
    graph = load_dataset("cora", scale=0.25, seed=0)
    print(f"loaded {graph.name}: {graph.num_nodes} nodes, "
          f"{graph.num_edges} edges, sparsity {graph.sparsity():.4%}")

    config = GCoDConfig(
        pretrain_epochs=60,
        retrain_epochs=40,
        admm_iterations=3,
        admm_inner_steps=8,
    )
    result = run_gcod(graph, "gcn", config)
    print("\n" + result.summary())
    print(f"early-bird ticket drawn at epoch {result.early_bird_epoch}")

    print("\nadjacency after GCoD (dense diagonal blocks + light remainder):")
    print(density_plot(result.final_graph.adj, size=32,
                       class_bounds=result.layout.class_bounds(),
                       group_bounds=result.layout.group_bounds()))

    # Hardware comparison at paper scale (Tab. III node/edge counts).
    wl_gcod = extract_workload(result.final_graph, result.layout, "gcn",
                               paper_scale=True)
    wl_base = extract_workload(graph, None, "gcn", paper_scale=True)
    cpu = pyg_cpu().run(wl_base)
    reports = {
        "pyg-cpu": cpu,
        "hygcn": HyGCN().run(wl_base),
        "awb-gcn": AWBGCN().run(wl_base),
        "gcod": GCoDAccelerator().run(wl_gcod),
        "gcod-8bit": GCoDAccelerator(bits=8).run(wl_gcod),
    }
    print("\n" + bar_chart(
        list(reports),
        [cpu.latency_s / r.latency_s for r in reports.values()],
        title="speedup over PyG-CPU (log scale)",
    ))


if __name__ == "__main__":
    main()
