#!/usr/bin/env python
"""Accelerator deep-dive: compile a GCoD design and inspect where time goes.

Runs the Fig. 8 software-hardware pipeline (parse -> allocate -> emit
templates), then simulates the compiled design and all baselines on Pubmed,
printing the per-phase latency, off-chip traffic, bandwidth requirement, and
the Fig. 12-style energy breakdown.
"""

from repro import GCoDConfig, compile_accelerator, extract_workload, load_dataset, run_gcod
from repro.hardware.accelerators import all_platforms
from repro.utils import format_table


def main() -> None:
    graph = load_dataset("pubmed", scale=0.08, seed=0)
    config = GCoDConfig(pretrain_epochs=40, retrain_epochs=25,
                        admm_iterations=2, admm_inner_steps=6)
    result = run_gcod(graph, "gcn", config)

    # --- hardware compilation (Fig. 8) ---------------------------------
    compiled = compile_accelerator(result.final_graph, "gcn",
                                   layout=result.layout)
    print("compiled hardware template:")
    print(compiled.template)
    print("chunk allocation (complexity-proportional):")
    rows = [
        (c.chunk_id, c.pes, f"{c.buffer_bytes // 1024}KB",
         f"{c.bandwidth_gbps:.0f}GB/s", f"{c.workload_macs:.2e}")
        for c in compiled.allocation.all_allocations()
    ]
    print(format_table(("chunk", "PEs", "buffer", "bandwidth", "MACs"), rows))

    # --- platform comparison at paper scale -----------------------------
    wl_gcod = extract_workload(result.final_graph, result.layout, "gcn",
                               paper_scale=True)
    wl_base = extract_workload(graph, None, "gcn", paper_scale=True)
    plats = all_platforms()
    cpu = plats["pyg-cpu"].run(wl_base)
    rows = []
    for name, platform in plats.items():
        wl = wl_gcod if name.startswith("gcod") else wl_base
        rep = platform.run(wl)
        rows.append(
            (
                name,
                f"{rep.latency_s * 1e6:.1f}us",
                f"{cpu.latency_s / rep.latency_s:.0f}x",
                f"{rep.combination.seconds * 1e6:.1f}us",
                f"{rep.aggregation.seconds * 1e6:.1f}us",
                f"{rep.offchip_bytes / 1e6:.2f}MB",
                f"{rep.required_bandwidth_gbps:.0f}GB/s",
                f"{rep.energy.total_j * 1e6:.1f}uJ",
            )
        )
    print("\n" + format_table(
        ("platform", "latency", "vs cpu", "comb", "agg", "off-chip",
         "req BW", "energy"),
        rows,
        title="Pubmed / GCN at paper scale",
    ))

    # --- energy breakdown (Fig. 12 style) --------------------------------
    gcod = plats["gcod"].run(wl_gcod)
    fr_comb = gcod.combination.energy.fractions()
    fr_total = gcod.energy.fractions()
    print("\nGCoD energy: "
          f"compute {fr_total['compute']:.0%}, "
          f"on-chip {fr_total['onchip']:.0%}, "
          f"off-chip {fr_total['offchip']:.0%} "
          f"(combination share {gcod.combination.energy.total_j / gcod.energy.total_j:.0%})")


if __name__ == "__main__":
    main()
