#!/usr/bin/env python
"""Workload DAGs in library form: multi-tenant and pipelined evaluation.

Parses the shorthand grammar, round-trips the JSON form, runs a shared
GCN+GAT workload and a pipelined layer split through the staged
extract -> map -> cost pipeline, and shows a custom stage plugging into
the registry. Training runs at a small scale; the structural facts
(PE splits, contention merge) are scale-independent.
"""

import json

from repro.evaluation import EvalContext
from repro.hardware.pipeline import (
    NodeEvaluation,
    PipelineSettings,
    Stage,
    evaluate_workload,
    parse_workload,
    register_stage,
    stage_names,
    workload_from_json,
)
from repro.utils import format_table


def show(report) -> None:
    pes = dict(report.node_pes)
    rows = [
        (name, pes[name], f"{rep.latency_s * 1e6:.1f}us",
         f"{rep.energy.total_j * 1e3:.3f}mJ",
         f"{rep.offchip_bytes / 1e6:.2f}MB")
        for name, rep in report.node_reports
    ]
    rows.append(("merged", sum(pes.values()),
                 f"{report.latency_s * 1e6:.1f}us",
                 f"{report.energy.total_j * 1e3:.3f}mJ",
                 f"{report.offchip_bytes / 1e6:.2f}MB"))
    print(format_table(("node", "PEs", "latency", "energy", "off-chip"),
                       rows, title=report.workload))


def main() -> None:
    context = EvalContext(profile="fast")
    context.dataset_scales = {"cora": 0.2, "citeseer": 0.2}

    # --- two tenants sharing one accelerator ---------------------------
    shared = parse_workload("cora/gcn+citeseer/gat", name="shared-pair")
    print("levels:", [[n.name for n in lvl] for lvl in shared.levels()])
    show(evaluate_workload(shared, context))

    # --- a pipelined layer split (sequential phases, skewed share) -----
    split = parse_workload("cora/gcn/0@0.75 > cora/gcn/1")
    show(evaluate_workload(split, context,
                           PipelineSettings(bits=8, hw_scale=2.0)))

    # --- the JSON form round-trips (and expresses sparse DAGs) ---------
    payload = shared.to_jsonable()
    assert workload_from_json(payload) == shared
    print("\nJSON form:\n" + json.dumps(payload, indent=2))

    # --- a custom stage in the registry --------------------------------
    class TraceStage(Stage):
        name = "trace"

        def run(self, state: NodeEvaluation, settings, context) -> None:
            wl = state.workload
            print(f"  trace: {state.node.name} -> {len(wl.layers)} "
                  f"layer(s) on {state.pes.num_pes} PEs")

    try:
        register_stage(TraceStage())
    except ValueError:
        pass  # already registered on a re-run in the same process
    print("\nstages:", ", ".join(stage_names()))
    evaluate_workload(
        shared, context,
        PipelineSettings(stages=("extract", "trace", "map", "cost")),
    )


if __name__ == "__main__":
    main()
