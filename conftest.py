"""Root pytest config: the --timings option and its summary.

The option is registered here (an initial conftest for every invocation, so
``pytest tests/sparse --timings`` works too); benchmark-specific collection
behavior lives in ``benchmarks/conftest.py``.
"""

_TIMINGS = []


def pytest_addoption(parser):
    parser.addoption(
        "--timings",
        action="store_true",
        default=False,
        help="print a per-test wall-clock summary after the run "
             "(kernel-speed regressions show up here per PR)",
    )


def pytest_runtest_logreport(report):
    if report.when == "call":
        _TIMINGS.append((report.duration, report.nodeid))


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not config.getoption("--timings"):
        return
    tr = terminalreporter
    tr.section("timings (slowest first)")
    total = sum(d for d, _ in _TIMINGS)
    for duration, nodeid in sorted(_TIMINGS, reverse=True)[:25]:
        tr.write_line(f"{duration:9.2f}s  {nodeid}")
    tr.write_line(f"{total:9.2f}s  TOTAL ({len(_TIMINGS)} tests)")
