"""Benchmark: fast SpMM kernel backends vs the reference loops (fig10 workload).

Acceptance gate for the kernel-backend subsystem: on the Fig. 10 large-graph
workloads (NELL / Reddit adjacencies at the fast-profile scale, feature
widths as trained), dispatching ``spmm`` through the ``vectorized`` and
``tiled`` backends must be at least 5x faster than the ``reference`` loop
kernels while producing the same numbers to 1e-10.
"""

import time

import numpy as np
import pytest
from conftest import show

from repro.evaluation.context import ExperimentResult
from repro.graphs.normalize import symmetric_normalize
from repro.sparse import from_scipy, spmm
from repro.sparse.kernels.compiled import numba_available, unavailable_reason

MIN_SPEEDUP = 5.0


def _best_of(fn, repeats):
    times = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    return min(times)


#: Aggregation feature width: GCN/GIN/SAGE aggregate hidden activations
#: (16 at the fast profile), not raw input features — that is the dense
#: operand every fig10 training SpMM actually sees.
HIDDEN_WIDTH = 16


def test_fast_spmm_backends_speedup_on_fig10_workload(ctx):
    rng = np.random.default_rng(0)
    rows = []
    for dataset, fmt in (("nell", "csr"), ("reddit", "csr"),
                         ("nell", "csc"), ("reddit", "csc")):
        graph = ctx.graph(dataset)
        a_hat = from_scipy(symmetric_normalize(graph.adj), fmt)
        b = rng.normal(size=(graph.num_nodes, HIDDEN_WIDTH))
        ref_out = spmm(a_hat, b, backend="reference")
        t_ref = _best_of(lambda: spmm(a_hat, b, backend="reference"), 3)
        for backend in ("vectorized", "tiled"):
            out = spmm(a_hat, b, backend=backend)
            np.testing.assert_allclose(out, ref_out, atol=1e-10)
            t_fast = _best_of(lambda: spmm(a_hat, b, backend=backend), 10)
            speedup = t_ref / max(t_fast, 1e-9)
            rows.append(
                (dataset, fmt, backend, graph.adj.nnz,
                 round(t_ref * 1e3, 2), round(t_fast * 1e3, 3),
                 round(speedup, 1))
            )

    show(ExperimentResult(
        name="SpMM kernel backends: reference loops vs vectorized/tiled",
        headers=("dataset", "format", "backend", "nnz", "reference (ms)",
                 "fast (ms)", "speedup"),
        rows=rows,
    ))
    for row in rows:
        assert row[-1] >= MIN_SPEEDUP, (
            f"{row[2]} SpMM only {row[-1]}x faster than reference "
            f"on {row[0]}/{row[1]} (need >= {MIN_SPEEDUP}x)"
        )


@pytest.mark.skipif(not numba_available(),
                    reason=f"numba unavailable: {unavailable_reason()}")
def test_compiled_spmm_speedup_on_fig10_workload(ctx):
    """The JIT tier's acceptance gate: >= 5x over ``vectorized`` raw SpMM
    on the fig10 workloads, at identical numbers (<= 1e-10)."""
    rng = np.random.default_rng(0)
    rows = []
    for dataset, fmt in (("nell", "csr"), ("reddit", "csr"),
                         ("nell", "csc"), ("reddit", "csc")):
        graph = ctx.graph(dataset)
        a_hat = from_scipy(symmetric_normalize(graph.adj), fmt)
        b = rng.normal(size=(graph.num_nodes, HIDDEN_WIDTH))
        vec_out = spmm(a_hat, b, backend="vectorized")
        # Compute once before timing so the first-call JIT compile (and
        # any on-disk cache miss) stays outside the measured region.
        out = spmm(a_hat, b, backend="compiled")
        np.testing.assert_allclose(out, vec_out, atol=1e-10)
        t_vec = _best_of(lambda: spmm(a_hat, b, backend="vectorized"), 10)
        t_jit = _best_of(lambda: spmm(a_hat, b, backend="compiled"), 10)
        speedup = t_vec / max(t_jit, 1e-9)
        rows.append((dataset, fmt, graph.adj.nnz,
                     round(t_vec * 1e3, 3), round(t_jit * 1e3, 3),
                     round(speedup, 1)))

    show(ExperimentResult(
        name="SpMM kernel backends: vectorized vs compiled (numba)",
        headers=("dataset", "format", "nnz", "vectorized (ms)",
                 "compiled (ms)", "speedup"),
        rows=rows,
    ))
    for row in rows:
        assert row[-1] >= MIN_SPEEDUP, (
            f"compiled SpMM only {row[-1]}x faster than vectorized "
            f"on {row[0]}/{row[1]} (need >= {MIN_SPEEDUP}x)"
        )
