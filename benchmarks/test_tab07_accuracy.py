"""Benchmark: regenerate Tab. VII (accuracy vs compression baselines)."""

from conftest import show

from repro.evaluation.experiments import tab07_accuracy


def test_tab07(benchmark, ctx):
    result = benchmark.pedantic(
        lambda: tab07_accuracy.run(
            ctx, models=("gcn",), datasets=("cora", "citeseer")
        ),
        rounds=1,
        iterations=1,
    )
    show(result)
    cols = result.as_dict()
    for i in range(len(cols["model"])):
        # GCoD stays within noise of vanilla (paper: matches or improves).
        assert cols["gcod"][i] >= cols["vanilla"][i] - 5.0
