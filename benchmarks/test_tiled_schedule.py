"""Benchmark: the measured tile schedule vs the even-split approximation.

The tiled kernel backend records exactly which diagonal block / CSC column
run carried how many non-zeros. Feeding that measured profile to the
event-driven simulator replaces ``tiles_from_workload``'s near-even split
with the blocks the kernel actually executed; this benchmark compares the
two schedules on GCoD-trained citation graphs and gates the accounting:
profile tile totals must equal the adjacency's nnz exactly, and the
simulated cycle counts must agree within a small factor (the even split is
an idealization of the same work).
"""

import numpy as np
from conftest import show

from repro.evaluation.context import ExperimentResult
from repro.graphs.normalize import symmetric_normalize
from repro.hardware import extract_workload
from repro.hardware.event_sim import simulate_aggregation
from repro.sparse.kernels import layout_tile_profile

AGG_DIM = 16


def test_tiled_profile_schedule(ctx):
    rows = []
    for dataset in ("cora", "citeseer"):
        result = ctx.gcod(dataset, "gcn")
        graph = result.final_graph
        layout = result.layout
        a_hat = symmetric_normalize(graph.adj)
        profile = layout_tile_profile(a_hat, layout, width=AGG_DIM)
        assert profile.total_nnz == a_hat.nnz
        assert profile.total_macs == a_hat.nnz * AGG_DIM

        wl = extract_workload(graph, layout, "gcn")
        even = simulate_aggregation(wl, AGG_DIM)
        measured = simulate_aggregation(wl, AGG_DIM, tile_profile=profile)
        rows.append(
            (
                dataset,
                len(profile.tiles),
                round(profile.chunk_balance(), 2),
                int(even.cycles),
                int(measured.cycles),
                round(measured.finish_skew, 2),
            )
        )

    show(ExperimentResult(
        name="Event sim: even-split tiles vs measured tile profile",
        headers=("dataset", "tiles", "profile balance", "even-split cycles",
                 "measured cycles", "measured skew"),
        rows=rows,
    ))
    for row in rows:
        # The even split idealizes the same nnz totals: both schedules must
        # land in the same cycle regime.
        ratio = row[4] / max(row[3], 1)
        assert 0.2 < ratio < 5.0, row
        assert row[5] < 3.0
