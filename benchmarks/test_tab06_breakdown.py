"""Benchmark: regenerate Tab. VI (speedup breakdown)."""

from conftest import show

from repro.evaluation.experiments import tab06_breakdown


def test_tab06(benchmark, ctx):
    result = benchmark.pedantic(
        lambda: tab06_breakdown.run(ctx), rounds=1, iterations=1
    )
    show(result)
    cols = result.as_dict()
    for dataset in result.headers[1:]:
        awb, accel, with_sp, with_quant = cols[dataset]
        assert accel > awb  # two-pronged architecture beats AWB-GCN
        assert with_quant > with_sp  # quantization compounds
