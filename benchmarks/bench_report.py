#!/usr/bin/env python
"""Benchmark cold vs warm ``repro report`` and write ``BENCH_report.json``.

Runs the selected experiments twice against a throwaway artifact store:

* **cold** — empty store; GCoD dependencies train (optionally in a process
  pool via ``--jobs``), everything persists;
* **warm** — a fresh context against the now-populated store; zero
  training runs, results load from disk.

The JSON written to ``--out`` records both wall times, the speedup ratio,
per-experiment render timings for each pass, and the training-run
counters — so CI can chart the perf trajectory PR over PR. With
``--min-speedup`` the script exits non-zero if the warm pass isn't at
least that many times faster (the acceptance gate is 5x).

Usage::

    PYTHONPATH=src python benchmarks/bench_report.py --out BENCH_report.json
    PYTHONPATH=src python benchmarks/bench_report.py --full --jobs 4
"""

from __future__ import annotations

import argparse
import json
import platform
import shutil
import sys
import tempfile
import time

from repro.evaluation import EvalContext
from repro.evaluation.report import report_results
from repro.runtime import CODE_SCHEMA_VERSION, counters
from repro.runtime.store import ArtifactStore

#: Default subset: covers trained experiments (fig04 needs three GCoD
#: runs, reordering shares one) plus static tables, without the
#: multi-model sweeps — keeps a CI runner under a minute.
DEFAULT_EXPERIMENTS = ["tab03", "tab04", "tab05", "fig04", "reordering"]

#: Reduced scales for CI; the scales are part of every cache key, so the
#: cold and warm passes must (and do) share them.
BENCH_SCALES = {"cora": 0.1, "citeseer": 0.08, "pubmed": 0.02}


def run_pass(store_root: str, names, jobs: int, scales):
    ctx = EvalContext(profile="fast", store=ArtifactStore(store_root))
    ctx.dataset_scales = dict(scales)
    counters.reset_counters()
    start = time.perf_counter()
    run = report_results(ctx, names=names, jobs=jobs)
    wall = time.perf_counter() - start
    return {
        "wall_s": round(wall, 4),
        "gcod_runs_in_parent": counters.gcod_run_count(),
        "cache_hits": sorted(run.cache_hits),
        "timings_s": {k: round(v, 4) for k, v in run.timings.items()},
        "unique_gcod_deps": run.deps_total,
        "gcod_tasks_executed": run.tasks_executed,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--out", default="BENCH_report.json")
    parser.add_argument("--jobs", "-j", type=int, default=2,
                        help="pool width for the cold pass")
    parser.add_argument("--experiments", default=",".join(DEFAULT_EXPERIMENTS),
                        help="comma-separated experiment names")
    parser.add_argument("--full", action="store_true",
                        help="benchmark the complete report at the standard "
                             "fast-profile scales (minutes, not seconds)")
    parser.add_argument("--min-speedup", type=float, default=None,
                        help="exit non-zero if warm is not at least this "
                             "many times faster than cold")
    args = parser.parse_args(argv)

    names = None if args.full else [
        n.strip() for n in args.experiments.split(",") if n.strip()
    ]
    scales = {} if args.full else BENCH_SCALES

    store_root = tempfile.mkdtemp(prefix="bench-report-store-")
    try:
        cold = run_pass(store_root, names, args.jobs, scales)
        warm = run_pass(store_root, names, jobs=1, scales=scales)
    finally:
        shutil.rmtree(store_root, ignore_errors=True)

    speedup = cold["wall_s"] / max(warm["wall_s"], 1e-9)
    payload = {
        "benchmark": "cold vs warm `repro report`",
        "schema": CODE_SCHEMA_VERSION,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "experiments": names or "all",
        "jobs_cold": args.jobs,
        "cold": cold,
        "warm": warm,
        "warm_speedup": round(speedup, 2),
    }
    with open(args.out, "w") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")

    print(f"cold: {cold['wall_s']:.2f}s "
          f"({cold['gcod_tasks_executed']} GCoD runs)  "
          f"warm: {warm['wall_s']:.2f}s "
          f"({warm['gcod_runs_in_parent']} GCoD runs)  "
          f"speedup: {speedup:.1f}x  -> {args.out}")

    if warm["gcod_runs_in_parent"] != 0:
        print("FAIL: warm pass performed training runs", file=sys.stderr)
        return 1
    if args.min_speedup is not None and speedup < args.min_speedup:
        print(f"FAIL: warm speedup {speedup:.1f}x < "
              f"required {args.min_speedup}x", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
