"""Benchmark: regenerate Fig. 9 (citation-graph speedups, 4 models)."""

from conftest import show

from repro.evaluation.experiments import fig09_citation_speedups


def test_fig09(benchmark, ctx):
    result = benchmark.pedantic(
        lambda: fig09_citation_speedups.run(ctx), rounds=1, iterations=1
    )
    show(result)
    cols = result.as_dict()
    # Shape checks across every (model, dataset) cell:
    for i in range(len(cols["model"])):
        assert cols["gcod"][i] > cols["awb-gcn"][i]  # GCoD beats AWB-GCN
        assert cols["gcod"][i] > cols["hygcn"][i]  # ... and HyGCN
        assert cols["gcod-8bit"][i] > cols["gcod"][i]  # 8-bit beats 32-bit
        assert cols["gcod"][i] > 100.0  # orders of magnitude over CPU
