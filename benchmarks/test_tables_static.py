"""Benchmark: regenerate the descriptive tables (Tabs. I-V)."""

from conftest import show

from repro.evaluation.experiments import tab03_datasets, tab04_models, tab05_systems


def test_tab03(benchmark, ctx):
    result = benchmark.pedantic(
        lambda: tab03_datasets.run(ctx), rounds=1, iterations=1
    )
    show(result)
    assert len(result.rows) == 6


def test_tab04(benchmark):
    result = benchmark.pedantic(tab04_models.run, rounds=1, iterations=1)
    show(result)


def test_tab05(benchmark):
    result = benchmark.pedantic(tab05_systems.run, rounds=1, iterations=1)
    show(result)
