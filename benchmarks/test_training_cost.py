"""Benchmark: regenerate the Sec. IV-B2 training-cost accounting."""

from conftest import show

from repro.evaluation.experiments import training_cost


def test_training_cost(benchmark, ctx):
    result = benchmark.pedantic(
        lambda: training_cost.run(ctx), rounds=1, iterations=1
    )
    show(result)
    cols = result.as_dict()
    # Early-bird must fire well before the epoch budget.
    for eb, pre in zip(cols["EB epoch"], cols["pretrain epochs"]):
        assert eb != "-" and int(eb) <= int(pre)
