"""Benchmark: regenerate Fig. 12 (energy breakdown)."""

from conftest import show

from repro.evaluation.experiments import fig12_energy


def test_fig12(benchmark, ctx):
    result = benchmark.pedantic(
        lambda: fig12_energy.run(ctx), rounds=1, iterations=1
    )
    show(result)
    comb_wins = 0
    for row in result.rows:
        if sum(row[2:5]) > sum(row[5:8]):
            comb_wins += 1
    # The paper's observation: after GCoD, combination (not the former
    # aggregation bottleneck) consumes most of the energy — true for the
    # bulk of (model, dataset) cells (edge-heavy Reddit can flip it).
    assert comb_wins >= len(result.rows) * 0.6
