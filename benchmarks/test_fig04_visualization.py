"""Benchmark: regenerate Fig. 4 (adjacency polarization)."""

from conftest import show

from repro.evaluation.experiments import fig04_visualization


def test_fig04(benchmark, ctx):
    result = benchmark.pedantic(
        lambda: fig04_visualization.run(ctx), rounds=1, iterations=1
    )
    show(result)
    cols = result.as_dict()
    # GCoD reduces latency vs HyGCN on every citation dataset (Fig. 4
    # reports 7.8x / 9.2x / 3.2x).
    for value in cols["latency vs HyGCN"]:
        assert float(value.rstrip("x")) > 1.0
