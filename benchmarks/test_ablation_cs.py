"""Benchmark: regenerate the Sec. VI-C hyper-parameter ablation (C x S)."""

from conftest import show

from repro.evaluation.experiments import ablation_cs


def test_ablation(benchmark, ctx):
    result = benchmark.pedantic(
        lambda: ablation_cs.run(
            ctx, class_counts=(1, 2, 3, 4), subgraph_counts=(8, 12, 16, 20)
        ),
        rounds=1,
        iterations=1,
    )
    show(result)
    cols = result.as_dict()
    # GCoD beats AWB-GCN at every point of the sweep (paper: 1.8x-2.8x).
    assert min(cols["speedup vs awb"]) > 1.0
