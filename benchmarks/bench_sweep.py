#!/usr/bin/env python
"""Benchmark ``repro sweep``: cold vs warm, and parallel point evaluation.

Two phases, each against a throwaway artifact store, both written to
``BENCH_sweep.json`` so CI can chart the trajectory PR over PR:

* **cold vs warm** — a 24-point grid runs twice: cold (the de-duplicated
  training runs execute, optionally across a process pool via ``--jobs``,
  every design point's metrics persist) and warm (a fresh context against
  the populated store; zero training runs, zero point evaluations,
  everything loads from disk). ``--min-speedup`` gates the warm/cold
  ratio; the bench also hard-fails if the warm pass trained anything,
  evaluated any point, or emitted different bytes than the cold pass.

* **parallel point evaluation** — a wider 128-point grid (4 unique
  training configs; the platform axes fan out analytically) is trained
  once, then its *point evaluations* are re-timed from the warmed
  pipelines with ``jobs=1`` and ``jobs=--point-jobs``. The two must be
  byte-identical; ``--min-point-speedup`` gates the parallel ratio.
  The speedup gate only *enforces* when the machine has at least
  ``--point-jobs`` CPUs (a single-core box cannot demonstrate
  parallelism; the numbers are still recorded).

* **constrained frontier** — the cold pass's 24 points re-aggregated
  under a power budget (``power<=5`` with objectives that include
  ``power``): the feasible-subset frontier must be byte-identical to
  post-hoc filtering of the unconstrained frontier (with every
  constraint an upper bound on a minimized objective, any dominator of
  a feasible point is itself feasible — the bench hard-fails if the two
  ever diverge), and the budget must actually split the grid (some
  points feasible, some not).

* **shared store** — the 24-point grid again, but the sweep results are
  cleared and re-evaluated by *two worker processes* sharing one
  artifact store over HTTP (``repro store serve`` in-process): the work
  ledger splits the points between them. The bench hard-fails on any
  duplicate evaluation (the workers' counters must sum to exactly the
  grid size) or on either worker's aggregation differing from the serial
  bytes.

Usage::

    PYTHONPATH=src python benchmarks/bench_sweep.py --out BENCH_sweep.json
    PYTHONPATH=src python benchmarks/bench_sweep.py --jobs 4 \
        --min-speedup 5 --min-point-speedup 2
"""

from __future__ import annotations

import argparse
import json
import platform
import shutil
import sys
import tempfile
import time

from repro.evaluation import EvalContext
from repro.runtime import CODE_SCHEMA_VERSION, counters
from repro.runtime.keys import KIND_SWEEP
from repro.runtime.store import ArtifactStore
from repro.sweep import (
    SweepSpec,
    describe_constraints,
    is_feasible,
    pareto_frontier,
    parse_constraints,
    run_sweep,
    sweep_report_text,
)
from repro.utils import effective_cpu_count

#: 2 x 2 x 2 x 3 = 24 points, 4 unique training runs — the same shape as
#: the acceptance grid in tests/sweep/test_engine.py, at CI-fast scale.
BENCH_SPEC = SweepSpec(
    name="bench",
    title="benchmark grid",
    axes={
        "C": (1, 2),
        "S": (2, 3),
        "bits": (32, 8),
        "hw_scale": (0.5, 1.0, 2.0),
    },
)

#: Reduced scale for CI; part of every cache key, so both passes share it.
BENCH_SCALES = {"cora": 0.1}

#: The point-evaluation grid: still 4 unique training configs, but 128
#: analytic points over a full-scale graph — enough per-point work (and
#: enough points per worker chunk to amortize the per-worker artifact
#: loads) for a process pool to demonstrably win.
POINT_SPEC = SweepSpec(
    name="bench-points",
    title="point-evaluation grid",
    axes={
        "C": (1, 2),
        "S": (2, 3),
        "bits": (32, 8),
        "hw_scale": (0.25, 0.375, 0.5, 0.625, 0.75, 1.0, 1.25, 1.5,
                     1.75, 2.0, 2.5, 3.0, 3.5, 4.0, 6.0, 8.0),
    },
)

POINT_SCALES = {"cora": 1.0}

#: The constrained-frontier phase: a power budget aligned with the
#: objective set (``power`` is both bounded and minimized), so
#: subset-pareto and post-hoc filtering must coincide byte-for-byte.
CONSTRAINED_OBJECTIVES = "speedup,energy,power"
CONSTRAIN = "power<=5"


def fresh_ctx(store_root: str, scales) -> EvalContext:
    ctx = EvalContext(profile="fast", store=ArtifactStore(store_root))
    ctx.dataset_scales = dict(scales)
    return ctx


def run_pass(store_root: str, spec, scales, jobs: int):
    counters.reset_counters()
    start = time.perf_counter()
    report = run_sweep(fresh_ctx(store_root, scales), spec, jobs=jobs)
    wall = time.perf_counter() - start
    return {
        "wall_s": round(wall, 4),
        "gcod_runs_in_parent": counters.gcod_run_count(),
        "points": len(report.results),
        "points_evaluated": report.points_evaluated,
        "cache_hits": len(report.cache_hits),
        "unique_gcod_deps": report.deps_total,
        "gcod_tasks_executed": report.tasks_executed,
    }, sweep_report_text(spec, report.results), report


def bench_cold_warm(jobs: int):
    store_root = tempfile.mkdtemp(prefix="bench-sweep-store-")
    try:
        cold, cold_text, cold_report = run_pass(store_root, BENCH_SPEC,
                                                BENCH_SCALES, jobs)
        warm, warm_text, _ = run_pass(store_root, BENCH_SPEC, BENCH_SCALES,
                                      jobs=1)
    finally:
        shutil.rmtree(store_root, ignore_errors=True)
    return cold, warm, cold_text == warm_text, cold_report.results


def bench_constrained(results):
    """Feasible-subset frontier vs post-hoc filtering, byte for byte."""
    cons = parse_constraints(CONSTRAIN)
    start = time.perf_counter()
    subset = pareto_frontier(results, CONSTRAINED_OBJECTIVES, cons)
    wall = time.perf_counter() - start
    posthoc = [
        r for r in pareto_frontier(results, CONSTRAINED_OBJECTIVES)
        if is_feasible(r, cons)
    ]
    # byte-level parity of the two frontiers, point order included
    subset_bytes = json.dumps([r.to_summary_dict() for r in subset],
                              sort_keys=True)
    posthoc_bytes = json.dumps([r.to_summary_dict() for r in posthoc],
                               sort_keys=True)
    feasible = sum(1 for r in results if is_feasible(r, cons))
    return {
        "objectives": CONSTRAINED_OBJECTIVES,
        "constraints": describe_constraints(cons),
        "grid_points": len(results),
        "feasible_points": feasible,
        "frontier_points": len(subset),
        "posthoc_frontier_points": len(posthoc),
        "wall_s": round(wall, 4),
        "bytes_identical": subset_bytes == posthoc_bytes,
    }


def bench_point_eval(jobs: int, point_jobs: int):
    """Time the analytic point evaluations alone, serial vs pooled."""
    store_root = tempfile.mkdtemp(prefix="bench-sweep-points-")
    try:
        # Train the 4 unique pipelines (and evaluate once) — not timed.
        _, setup_text, _ = run_pass(store_root, POINT_SPEC, POINT_SCALES,
                                    jobs)
        store = ArtifactStore(store_root)
        store.clear(kind=KIND_SWEEP)
        serial, serial_text, _ = run_pass(store_root, POINT_SPEC,
                                          POINT_SCALES, jobs=1)
        store.clear(kind=KIND_SWEEP)
        parallel, parallel_text, _ = run_pass(store_root, POINT_SPEC,
                                              POINT_SCALES, jobs=point_jobs)
    finally:
        shutil.rmtree(store_root, ignore_errors=True)
    speedup = serial["wall_s"] / max(parallel["wall_s"], 1e-9)
    return {
        "grid": {name: list(values) for name, values in POINT_SPEC.axes},
        "scales": POINT_SCALES,
        "jobs_parallel": point_jobs,
        "serial": serial,
        "parallel": parallel,
        "parallel_speedup": round(speedup, 2),
        "bytes_identical": (serial_text == parallel_text
                            and serial_text == setup_text),
    }


def _shared_store_worker(url: str, scales, barrier, queue) -> None:
    counters.reset_counters()
    start = time.perf_counter()
    ctx = EvalContext(profile="fast", store=ArtifactStore(url))
    ctx.dataset_scales = dict(scales)
    barrier.wait()
    report = run_sweep(ctx, BENCH_SPEC)  # http locator -> ledger auto-on
    queue.put({
        "worker": report.worker,
        "wall_s": round(time.perf_counter() - start, 4),
        "points_evaluated": report.points_evaluated,
        "sweep_point_runs": counters.sweep_point_run_count(),
        "gcod_runs": report.gcod_runs,
        "ledger": report.ledger_stats,
        "text": sweep_report_text(BENCH_SPEC, report.results),
    })


def bench_shared_store():
    """Two workers drain one grid through a served store's work ledger."""
    from repro.runtime.runner import pool_context
    from repro.runtime.server import make_store_server

    store_root = tempfile.mkdtemp(prefix="bench-sweep-shared-")
    try:
        # Train the unique pipelines once, locally — not timed — then
        # clear the point results so the workers have a full grid to
        # split.
        _, serial_text, _ = run_pass(store_root, BENCH_SPEC, BENCH_SCALES,
                                     jobs=1)
        ArtifactStore(store_root).clear(kind=KIND_SWEEP)

        import threading

        server = make_store_server(store_root, port=0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        mp = pool_context()
        barrier = mp.Barrier(2)
        queue = mp.Queue()
        start = time.perf_counter()
        procs = [
            mp.Process(target=_shared_store_worker,
                       args=(server.url, BENCH_SCALES, barrier, queue))
            for _ in range(2)
        ]
        try:
            for p in procs:
                p.start()
            workers = [queue.get(timeout=600) for _ in procs]
            for p in procs:
                p.join(timeout=600)
            wall = time.perf_counter() - start
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=5)
    finally:
        shutil.rmtree(store_root, ignore_errors=True)

    grid_points = BENCH_SPEC.num_points
    total_runs = sum(w["sweep_point_runs"] for w in workers)
    return {
        "grid_points": grid_points,
        "workers": [
            {k: w[k] for k in ("worker", "wall_s", "points_evaluated",
                               "sweep_point_runs", "gcod_runs", "ledger")}
            for w in workers
        ],
        "wall_s": round(wall, 4),
        "total_point_runs": total_runs,
        "duplicate_evaluations": total_runs - grid_points,
        "bytes_identical": all(w["text"] == serial_text for w in workers),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--out", default="BENCH_sweep.json")
    parser.add_argument("--jobs", "-j", type=int, default=2,
                        help="pool width for the cold pass")
    parser.add_argument("--point-jobs", type=int, default=4,
                        help="pool width for the parallel point-eval pass")
    parser.add_argument("--min-speedup", type=float, default=None,
                        help="exit non-zero if warm is not at least this "
                             "many times faster than cold")
    parser.add_argument("--min-point-speedup", type=float, default=None,
                        help="exit non-zero if parallel point evaluation "
                             "is not at least this many times faster than "
                             "serial (enforced only with >= --point-jobs "
                             "CPUs)")
    args = parser.parse_args(argv)

    cold, warm, cold_warm_identical, cold_results = \
        bench_cold_warm(args.jobs)
    constrained = bench_constrained(cold_results)
    point_eval = bench_point_eval(args.jobs, args.point_jobs)
    shared = bench_shared_store()

    cpus = effective_cpu_count()
    point_gate_enforced = cpus >= args.point_jobs
    speedup = cold["wall_s"] / max(warm["wall_s"], 1e-9)
    payload = {
        "benchmark": "cold vs warm `repro sweep` + parallel point eval",
        "schema": CODE_SCHEMA_VERSION,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "cpus": cpus,
        "grid": {name: list(values) for name, values in BENCH_SPEC.axes},
        "jobs_cold": args.jobs,
        "cold": cold,
        "warm": warm,
        "warm_speedup": round(speedup, 2),
        "bytes_identical": cold_warm_identical,
        "constrained": constrained,
        "point_eval": dict(point_eval,
                           gate_enforced=point_gate_enforced),
        "shared_store": shared,
    }
    with open(args.out, "w") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")

    print(f"cold: {cold['wall_s']:.2f}s "
          f"({cold['gcod_tasks_executed']} training runs, "
          f"{cold['points_evaluated']} points)  "
          f"warm: {warm['wall_s']:.2f}s "
          f"({warm['points_evaluated']} points evaluated)  "
          f"speedup: {speedup:.1f}x")
    print(f"point eval ({point_eval['serial']['points']} points): "
          f"jobs=1 {point_eval['serial']['wall_s']:.2f}s  "
          f"jobs={args.point_jobs} "
          f"{point_eval['parallel']['wall_s']:.2f}s  "
          f"speedup: {point_eval['parallel_speedup']:.1f}x "
          f"({cpus} CPUs)")
    print(f"constrained ({constrained['constraints']}): "
          f"{constrained['feasible_points']}/"
          f"{constrained['grid_points']} feasible, "
          f"{constrained['frontier_points']} on the frontier, "
          f"post-hoc parity: {constrained['bytes_identical']}")
    split = "+".join(str(w["sweep_point_runs"]) for w in shared["workers"])
    print(f"shared store ({shared['grid_points']} points, 2 workers over "
          f"HTTP): {shared['wall_s']:.2f}s, split {split}, "
          f"{shared['duplicate_evaluations']} duplicates  -> {args.out}")

    if not constrained["bytes_identical"]:
        print("FAIL: constrained frontier differs from post-hoc filtering "
              "of the unconstrained frontier", file=sys.stderr)
        return 1
    if not 0 < constrained["feasible_points"] < constrained["grid_points"]:
        print(f"FAIL: the {constrained['constraints']} budget did not "
              f"split the grid ({constrained['feasible_points']} of "
              f"{constrained['grid_points']} feasible)", file=sys.stderr)
        return 1
    if warm["gcod_runs_in_parent"] != 0 or warm["points_evaluated"] != 0:
        print("FAIL: warm pass did real work", file=sys.stderr)
        return 1
    if not cold_warm_identical:
        print("FAIL: warm output differs from cold output", file=sys.stderr)
        return 1
    if not point_eval["bytes_identical"]:
        print("FAIL: parallel point evaluation output differs from serial",
              file=sys.stderr)
        return 1
    if shared["duplicate_evaluations"] != 0:
        print(f"FAIL: shared-store workers evaluated "
              f"{shared['total_point_runs']} points for a "
              f"{shared['grid_points']}-point grid", file=sys.stderr)
        return 1
    if not shared["bytes_identical"]:
        print("FAIL: shared-store worker output differs from serial",
              file=sys.stderr)
        return 1
    if args.min_speedup is not None and speedup < args.min_speedup:
        print(f"FAIL: warm speedup {speedup:.1f}x < "
              f"required {args.min_speedup}x", file=sys.stderr)
        return 1
    if args.min_point_speedup is not None:
        if not point_gate_enforced:
            print(f"note: {cpus} CPU(s) < --point-jobs={args.point_jobs}; "
                  f"recording point-eval speedup "
                  f"{point_eval['parallel_speedup']:.1f}x without "
                  "enforcing the gate", file=sys.stderr)
        elif point_eval["parallel_speedup"] < args.min_point_speedup:
            print(f"FAIL: point-eval speedup "
                  f"{point_eval['parallel_speedup']:.1f}x < "
                  f"required {args.min_point_speedup}x", file=sys.stderr)
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
