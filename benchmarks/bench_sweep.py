#!/usr/bin/env python
"""Benchmark cold vs warm ``repro sweep`` and write ``BENCH_sweep.json``.

Runs a 24-point grid (four unique training configs; the platform axes
fan out analytically) twice against a throwaway artifact store:

* **cold** — empty store; the de-duplicated training runs execute
  (optionally across a process pool via ``--jobs``), every design point's
  metrics persist;
* **warm** — a fresh context against the populated store; zero training
  runs, zero point evaluations, everything loads from disk.

The JSON written to ``--out`` records both wall times, the speedup ratio,
and the run counters, so CI can chart the trajectory PR over PR. With
``--min-speedup`` the script exits non-zero if the warm pass isn't at
least that many times faster. It also hard-fails if the warm pass trained
anything, evaluated any point, or emitted different bytes than the cold
serial pass — the sweep acceptance gate.

Usage::

    PYTHONPATH=src python benchmarks/bench_sweep.py --out BENCH_sweep.json
    PYTHONPATH=src python benchmarks/bench_sweep.py --jobs 4 --min-speedup 5
"""

from __future__ import annotations

import argparse
import json
import platform
import shutil
import sys
import tempfile
import time

from repro.evaluation import EvalContext
from repro.runtime import CODE_SCHEMA_VERSION, counters
from repro.runtime.store import ArtifactStore
from repro.sweep import SweepSpec, run_sweep, sweep_report_text

#: 2 x 2 x 2 x 3 = 24 points, 4 unique training runs — the same shape as
#: the acceptance grid in tests/sweep/test_engine.py, at CI-fast scale.
BENCH_SPEC = SweepSpec(
    name="bench",
    title="benchmark grid",
    axes={
        "C": (1, 2),
        "S": (2, 3),
        "bits": (32, 8),
        "hw_scale": (0.5, 1.0, 2.0),
    },
)

#: Reduced scale for CI; part of every cache key, so both passes share it.
BENCH_SCALES = {"cora": 0.1}


def run_pass(store_root: str, jobs: int):
    ctx = EvalContext(profile="fast", store=ArtifactStore(store_root))
    ctx.dataset_scales = dict(BENCH_SCALES)
    counters.reset_counters()
    start = time.perf_counter()
    report = run_sweep(ctx, BENCH_SPEC, jobs=jobs)
    wall = time.perf_counter() - start
    return {
        "wall_s": round(wall, 4),
        "gcod_runs_in_parent": counters.gcod_run_count(),
        "points": len(report.results),
        "points_evaluated": report.points_evaluated,
        "cache_hits": len(report.cache_hits),
        "unique_gcod_deps": report.deps_total,
        "gcod_tasks_executed": report.tasks_executed,
    }, sweep_report_text(BENCH_SPEC, report.results)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--out", default="BENCH_sweep.json")
    parser.add_argument("--jobs", "-j", type=int, default=2,
                        help="pool width for the cold pass")
    parser.add_argument("--min-speedup", type=float, default=None,
                        help="exit non-zero if warm is not at least this "
                             "many times faster than cold")
    args = parser.parse_args(argv)

    store_root = tempfile.mkdtemp(prefix="bench-sweep-store-")
    try:
        cold, cold_text = run_pass(store_root, args.jobs)
        warm, warm_text = run_pass(store_root, jobs=1)
    finally:
        shutil.rmtree(store_root, ignore_errors=True)

    speedup = cold["wall_s"] / max(warm["wall_s"], 1e-9)
    payload = {
        "benchmark": "cold vs warm `repro sweep`",
        "schema": CODE_SCHEMA_VERSION,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "grid": {name: list(values) for name, values in BENCH_SPEC.axes},
        "jobs_cold": args.jobs,
        "cold": cold,
        "warm": warm,
        "warm_speedup": round(speedup, 2),
        "bytes_identical": warm_text == cold_text,
    }
    with open(args.out, "w") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")

    print(f"cold: {cold['wall_s']:.2f}s "
          f"({cold['gcod_tasks_executed']} training runs, "
          f"{cold['points_evaluated']} points)  "
          f"warm: {warm['wall_s']:.2f}s "
          f"({warm['points_evaluated']} points evaluated)  "
          f"speedup: {speedup:.1f}x  -> {args.out}")

    if warm["gcod_runs_in_parent"] != 0 or warm["points_evaluated"] != 0:
        print("FAIL: warm pass did real work", file=sys.stderr)
        return 1
    if not payload["bytes_identical"]:
        print("FAIL: warm output differs from cold output", file=sys.stderr)
        return 1
    if args.min_speedup is not None and speedup < args.min_speedup:
        print(f"FAIL: warm speedup {speedup:.1f}x < "
              f"required {args.min_speedup}x", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
