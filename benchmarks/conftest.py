"""Shared benchmark context: one set of trained graphs reused everywhere.

Benchmarks run the evaluation harness at the ``fast`` profile (scaled-down
graphs, reduced epoch budgets). Each benchmark prints the regenerated
table/figure so ``pytest benchmarks/ --benchmark-only -s`` reproduces the
paper's evaluation section end to end.
"""

import pytest

from repro.evaluation import EvalContext


def pytest_collection_modifyitems(config, items):
    """Every benchmark is slow: `-m 'not slow'` keeps the fast smoke suite."""
    here = str(config.rootpath / "benchmarks")
    slow = pytest.mark.slow
    for item in items:
        if str(item.path).startswith(here):
            item.add_marker(slow)


@pytest.fixture(scope="session")
def ctx():
    return EvalContext(profile="fast")


def show(result):
    """Print a rendered experiment under the benchmark output."""
    print()
    print(result.render())
