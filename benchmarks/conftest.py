"""Shared benchmark context: one set of trained graphs reused everywhere.

Benchmarks run the evaluation harness at the ``fast`` profile (scaled-down
graphs, reduced epoch budgets). Each benchmark prints the regenerated
table/figure so ``pytest benchmarks/ --benchmark-only -s`` reproduces the
paper's evaluation section end to end.
"""

import pytest

from repro.evaluation import EvalContext


@pytest.fixture(scope="session")
def ctx():
    return EvalContext(profile="fast")


def show(result):
    """Print a rendered experiment under the benchmark output."""
    print()
    print(result.render())
