"""Benchmark: regenerate Fig. 10 (large-graph speedups incl. ResGCN)."""

from conftest import show

from repro.evaluation.experiments import fig10_large_speedups


def test_fig10(benchmark, ctx):
    result = benchmark.pedantic(
        lambda: fig10_large_speedups.run(ctx), rounds=1, iterations=1
    )
    show(result)
    cols = result.as_dict()
    for i in range(len(cols["model"])):
        assert cols["gcod"][i] > cols["awb-gcn"][i]
        assert cols["gcod-8bit"][i] > cols["gcod"][i]
