"""Benchmark: design-choice ablations (forwarding / branches / steps)."""

from conftest import show

from repro.evaluation.experiments import ablation_design


def test_ablation_design(benchmark, ctx):
    result = benchmark.pedantic(
        lambda: ablation_design.run(ctx), rounds=1, iterations=1
    )
    show(result)
    cols = result.as_dict()
    for i, variant in enumerate(cols["variant"]):
        # No ablated variant should be faster than the full design, and
        # removing forwarding may only add off-chip traffic.
        assert cols["latency vs full"][i] >= 0.99, (variant, i)
        if variant == "w/o weight forwarding":
            assert cols["offchip vs full"][i] >= 1.0
