#!/usr/bin/env python
"""Benchmark ``repro serve``: cold batching + sustained warm throughput.

Drives a real ``python -m repro serve`` subprocess (own artifact store,
fast-profile scales) through four phases and writes ``BENCH_serve.json``
so CI can chart the trajectory PR over PR:

* **cold** — the first query per (dataset, arch) trains through the
  micro-batch path; per-query wall times recorded.
* **batching** — a pipelined burst of identical cold queries on one
  connection; the server must answer every one from a *single* training
  dispatch (the stats op's ``gcod_runs`` delta is asserted to be exactly
  1, and every response must carry the same batch id).
* **warm closed-loop** — several client threads hammer the now-cached
  queries for a fixed number of requests each; queries/sec, p50/p99
  latency, and the warm-hit ratio come out of this phase. The warm-hit
  ratio must be exactly 1.0 (zero training on repeated queries) — that
  gate is hard-coded, not a flag.
* **kernel tier** — raw SpMM, ``compiled`` vs ``vectorized``, timed
  in-process on the fig10 aggregation shape. When numba is unavailable
  the speedup is recorded as ``null`` with the probe's reason string —
  the bench still passes (the service itself degrades identically).

Gates: warm-hit ratio == 1.0 (always); ``--max-p99-ratio R`` fails the
run if warm p99 exceeds ``R``x warm p50 (CI passes 10); the batching
phase hard-fails on more than one training run.

Usage::

    PYTHONPATH=src python benchmarks/bench_serve.py --out BENCH_serve.json
    PYTHONPATH=src python benchmarks/bench_serve.py --max-p99-ratio 10
"""

from __future__ import annotations

import argparse
import json
import platform
import shutil
import subprocess
import sys
import tempfile
import threading
import time

import numpy as np

from repro.runtime import CODE_SCHEMA_VERSION
from repro.serve import ServeClient
from repro.serve.schema import SOURCE_COLD, SOURCE_WARM
from repro.utils import effective_cpu_count

#: Fast, deterministic scales — every phase keys into the same series.
SCALES = "cora=0.1,citeseer=0.1"
COLD_SPECS = (("cora", "gcn"),)
#: The batching phase needs a key nothing has trained yet.
BATCH_SPEC = ("citeseer", "gcn")
BATCH_BURST = 6
WARM_SPEC = ("cora", "gcn")


def start_server(store_root: str, max_batch: int, max_wait_ms: float):
    """Spawn ``repro serve`` and parse the readiness line for the port."""
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "--cache-dir", store_root,
         "serve", "--port", "0", "--max-batch", str(max_batch),
         "--max-wait-ms", str(max_wait_ms),
         "--dataset-scale", SCALES],
        stdout=subprocess.PIPE, stderr=subprocess.DEVNULL, text=True,
    )
    assert proc.stdout is not None
    deadline = time.monotonic() + 60
    while time.monotonic() < deadline:
        line = proc.stdout.readline()
        if not line:
            raise RuntimeError(
                f"server exited before listening (rc={proc.poll()})"
            )
        if "listening on" in line:
            addr = line.split("listening on", 1)[1].split()[0]
            host, _, port = addr.partition(":")
            return proc, host, int(port)
    proc.kill()
    raise RuntimeError("server never printed its listening line")


def percentile(samples, q: float) -> float:
    return float(np.percentile(np.asarray(samples), q))


def bench_cold(client: ServeClient):
    rows = []
    for dataset, arch in COLD_SPECS:
        start = time.perf_counter()
        response = client.query(dataset, arch)
        wall = time.perf_counter() - start
        assert response.source == SOURCE_COLD, (
            f"{dataset}/{arch} answered {response.source}; expected a "
            f"cold store"
        )
        rows.append({"dataset": dataset, "arch": arch,
                     "wall_s": round(wall, 4),
                     "batch_size": response.batch_size})
    return rows


def bench_batching(client: ServeClient):
    """A pipelined burst of identical cold queries = one training run."""
    before = client.stats()["gcod_runs"]
    start = time.perf_counter()
    responses = client.query_many([BATCH_SPEC] * BATCH_BURST)
    wall = time.perf_counter() - start
    after = client.stats()["gcod_runs"]
    batch_ids = sorted({r.batch_id for r in responses})
    sources = [r.source for r in responses]
    return {
        "burst": BATCH_BURST,
        "wall_s": round(wall, 4),
        "gcod_runs": after - before,
        "batch_ids": batch_ids,
        "batch_sizes": sorted({r.batch_size for r in responses}),
        "sources": sorted(set(sources)),
    }


def bench_warm(host: str, port: int, clients: int, requests_each: int):
    """Closed-loop warm load: every thread owns one connection."""
    latencies_by_thread = [[] for _ in range(clients)]
    sources_ok = [True] * clients

    def worker(idx: int) -> None:
        with ServeClient(host, port) as client:
            client.query(*WARM_SPEC)  # connection warm-up, not timed
            for _ in range(requests_each):
                start = time.perf_counter()
                response = client.query(*WARM_SPEC)
                latencies_by_thread[idx].append(
                    time.perf_counter() - start)
                if response.source != SOURCE_WARM:
                    sources_ok[idx] = False

    threads = [threading.Thread(target=worker, args=(i,))
               for i in range(clients)]
    start = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    wall = time.perf_counter() - start
    latencies = [s for per in latencies_by_thread for s in per]
    total = len(latencies)
    p50 = percentile(latencies, 50)
    p99 = percentile(latencies, 99)
    return {
        "clients": clients,
        "requests": total,
        "wall_s": round(wall, 4),
        "qps": round(total / max(wall, 1e-9), 1),
        "p50_ms": round(p50 * 1e3, 3),
        "p99_ms": round(p99 * 1e3, 3),
        "p99_over_p50": round(p99 / max(p50, 1e-9), 2),
        "all_warm": all(sources_ok),
    }


def bench_kernel_tier():
    """Raw SpMM, compiled vs vectorized, on the fig10 aggregation shape."""
    from repro.evaluation.context import EvalContext
    from repro.graphs.normalize import symmetric_normalize
    from repro.sparse import from_scipy, spmm
    from repro.sparse.kernels.compiled import (
        numba_available,
        unavailable_reason,
    )

    out = {"numba_available": numba_available()}
    if not numba_available():
        out["speedup"] = None
        out["reason"] = unavailable_reason()
        return out
    ctx = EvalContext(profile="fast", store=None)
    rng = np.random.default_rng(0)
    graph = ctx.graph("nell")
    a_hat = from_scipy(symmetric_normalize(graph.adj), "csr")
    b = rng.normal(size=(graph.num_nodes, 16))
    baseline = spmm(a_hat, b, backend="vectorized")
    np.testing.assert_allclose(  # compile outside the timed region
        spmm(a_hat, b, backend="compiled"), baseline, atol=1e-10)

    def best_of(backend: str, repeats: int = 10) -> float:
        times = []
        for _ in range(repeats):
            start = time.perf_counter()
            spmm(a_hat, b, backend=backend)
            times.append(time.perf_counter() - start)
        return min(times)

    t_vec = best_of("vectorized")
    t_jit = best_of("compiled")
    out["vectorized_ms"] = round(t_vec * 1e3, 3)
    out["compiled_ms"] = round(t_jit * 1e3, 3)
    out["speedup"] = round(t_vec / max(t_jit, 1e-9), 2)
    return out


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default="BENCH_serve.json")
    parser.add_argument("--clients", type=int, default=None,
                        help="warm-phase client threads (default: "
                             "min(4, effective CPUs + 1))")
    parser.add_argument("--requests", type=int, default=50,
                        help="warm requests per client (default: 50)")
    parser.add_argument("--max-p99-ratio", type=float, default=None,
                        help="fail if warm p99 > RATIO x p50 "
                             "(default: record only)")
    args = parser.parse_args(argv)

    cpus = effective_cpu_count()
    clients = args.clients or min(4, cpus + 1)

    store_root = tempfile.mkdtemp(prefix="bench-serve-store-")
    proc = None
    try:
        proc, host, port = start_server(store_root, max_batch=8,
                                        max_wait_ms=25.0)
        with ServeClient(host, port) as client:
            assert client.ping()
            cold = bench_cold(client)
            batching = bench_batching(client)
            warm = bench_warm(host, port, clients, args.requests)
            stats = client.stats()
    finally:
        if proc is not None:
            proc.terminate()
            proc.wait(timeout=10)
        shutil.rmtree(store_root, ignore_errors=True)

    kernel = bench_kernel_tier()

    # The warm phase re-queries one already-trained key: every response
    # must be warm and the server must not have trained anything beyond
    # the cold + batching dispatches.
    expected_runs = len(COLD_SPECS) + batching["gcod_runs"]
    warm_hit_ratio = 1.0 if (warm["all_warm"]
                             and stats["gcod_runs"] == expected_runs) \
        else stats["warm_hits"] / max(stats["requests"], 1)

    payload = {
        "benchmark": "batched `repro serve` inference service",
        "schema": CODE_SCHEMA_VERSION,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "cpus": cpus,
        "scales": SCALES,
        "cold": cold,
        "batching": batching,
        "warm": warm,
        "warm_hit_ratio": warm_hit_ratio,
        "server_stats": stats,
        "kernel_tier": kernel,
    }
    with open(args.out, "w") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")

    cold_bits = ", ".join(
        f"{r['dataset']}/{r['arch']} {r['wall_s']:.2f}s" for r in cold
    )
    print(f"cold: {cold_bits}")
    print(f"batching: {batching['burst']} pipelined queries -> "
          f"{batching['gcod_runs']} training run(s), "
          f"batch sizes {batching['batch_sizes']}")
    print(f"warm: {warm['requests']} requests, {warm['clients']} clients: "
          f"{warm['qps']} q/s, p50 {warm['p50_ms']}ms, "
          f"p99 {warm['p99_ms']}ms (ratio {warm['p99_over_p50']}x)")
    if kernel["speedup"] is None:
        print(f"kernel tier: compiled unavailable ({kernel['reason']})")
    else:
        print(f"kernel tier: compiled {kernel['speedup']}x over "
              f"vectorized raw SpMM")
    print(f"-> {args.out}")

    failed = False
    if warm_hit_ratio != 1.0:
        print(f"FAIL: warm-hit ratio {warm_hit_ratio} != 1.0 "
              f"(server trained on repeated queries)", file=sys.stderr)
        failed = True
    if batching["gcod_runs"] != 1:
        print(f"FAIL: pipelined burst cost {batching['gcod_runs']} "
              f"training runs; the micro-batch window must coalesce "
              f"them into 1", file=sys.stderr)
        failed = True
    if args.max_p99_ratio is not None \
            and warm["p99_over_p50"] > args.max_p99_ratio:
        print(f"FAIL: warm p99 is {warm['p99_over_p50']}x p50 "
              f"(gate: {args.max_p99_ratio}x)", file=sys.stderr)
        failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
