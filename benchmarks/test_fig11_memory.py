"""Benchmark: regenerate Fig. 11 (bandwidth requirement + off-chip accesses)."""

import numpy as np
from conftest import show

from repro.evaluation.experiments import fig11_memory


def test_fig11(benchmark, ctx):
    result = benchmark.pedantic(
        lambda: fig11_memory.run(ctx), rounds=1, iterations=1
    )
    show(result)
    cols = result.as_dict()
    # GCoD needs less bandwidth than HyGCN on average (paper: ~48%); on
    # Reddit the resource-aware pipeline's feature streams can approach
    # HyGCN's requirement, which the paper itself notes (Sec. VI-D).
    assert np.mean(cols["gcod BW"]) < np.mean(cols["hygcn BW"])
    assert np.mean(cols["gcod8 BW"]) < np.mean(cols["gcod BW"])
    # HyGCN makes more off-chip accesses than GCoD everywhere (Fig. 11b).
    assert np.all(np.asarray(cols["hygcn acc/gcod"]) > 1.0)
