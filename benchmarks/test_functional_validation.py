"""Benchmark: behavioral validation of the two-pronged architecture.

Not a paper table, but the reproduction's integrity check: executing
inference on the emulated two-pronged schedule must match the mathematical
reference exactly, with the paper's hardware-relevant rates measured live.
"""

import numpy as np
from conftest import show

from repro.evaluation.context import ExperimentResult
from repro.hardware.event_sim import simulate_aggregation
from repro.hardware.functional import execute_gcn, reference_gcn
from repro.hardware import extract_workload


def test_functional_validation(benchmark, ctx):
    def run():
        rows = []
        for dataset in ("cora", "citeseer"):
            result = ctx.gcod(dataset, "gcn")
            graph = result.final_graph
            weights = [l.weight.data for l in result.model.layers]
            logits, traces = execute_gcn(graph, result.layout, weights)
            err = float(np.abs(logits - reference_gcn(graph, weights)).max())
            wl = extract_workload(graph, result.layout, "gcn")
            sub = result.layout.subgraph_workloads(graph.adj)
            classes = [s.class_id for s in result.layout.spans]
            sim = simulate_aggregation(wl, 16, layout_tiles=(sub, classes))
            rows.append(
                (
                    dataset,
                    f"{err:.1e}",
                    round(traces[0].forward_rate, 2),
                    round(traces[0].chunk_balance(), 2),
                    round(sim.finish_skew, 2),
                    int(sim.cycles),
                )
            )
        return ExperimentResult(
            name="Behavioral validation: emulated schedule vs math",
            headers=("dataset", "max |err|", "forward rate (paper ~0.63)",
                     "chunk balance", "event-sim finish skew", "agg cycles"),
            rows=rows,
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    show(result)
    for row in result.rows:
        assert float(row[1]) < 1e-8  # exact execution
        assert 0.3 < row[2] <= 1.0  # forwarding happens
        assert row[4] < 2.0  # chunks finish close together
