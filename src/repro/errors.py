"""Exception hierarchy for the repro package."""


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class ShapeError(ReproError):
    """An array or matrix had an incompatible shape."""


class ConfigError(ReproError):
    """An invalid configuration was supplied."""


class KernelError(ReproError):
    """An unknown or invalid SpMM kernel backend was requested."""


class PartitionError(ReproError):
    """Graph partitioning failed or was given invalid inputs."""


class CompileError(ReproError):
    """The hardware compiler could not map the model onto the accelerator."""
