"""Exception hierarchy for the repro package."""

from typing import Iterable, Optional


def did_you_mean(
    name: str, choices: Iterable[str], prefix: bool = False
) -> Optional[str]:
    """The best near-miss for ``name`` among ``choices`` (or ``None``).

    The one matching policy behind every usage-error suggestion
    (``--grid`` axes, ``--objectives``, ``--constrain`` metrics, memory
    kinds): a case slip resolves exactly, then — when ``prefix`` is set —
    a unit/suffix slip (``dram_bytes``, ``latency_ms``) resolves to the
    objective it starts with, then difflib catches one-edit-away typos.
    """
    import difflib

    choices = list(choices)
    folded = str(name).casefold()
    by_fold = {str(c).casefold(): c for c in choices}
    close = by_fold.get(folded)
    if close is None and prefix:
        close = next(
            (c for c in choices if folded.startswith(str(c).casefold())),
            None,
        )
    if close is None:
        close = next(
            iter(difflib.get_close_matches(str(name), choices, n=1,
                                           cutoff=0.6)),
            None,
        )
    return close


def invalid_value_error(name: str, value, describe: str) -> "ConfigError":
    """The one message format for a bad scalar setting.

    Mirrors ``AxisDef.coerce``'s wording — names the offending value *and
    its type* plus what the setting wanted — so ``hidden=0`` rejections
    read exactly like a bad ``--grid`` axis value.
    """
    return ConfigError(
        f"{name}: invalid value {value!r} of type "
        f"{type(value).__name__} ({describe})"
    )


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class ShapeError(ReproError):
    """An array or matrix had an incompatible shape."""


class ConfigError(ReproError):
    """An invalid configuration was supplied."""


class KernelError(ReproError):
    """An unknown or invalid SpMM kernel backend was requested."""


class PartitionError(ReproError):
    """Graph partitioning failed or was given invalid inputs."""


class UnknownExperimentError(ReproError, KeyError):
    """An experiment name not present in the runtime registry was requested.

    Subclasses ``KeyError`` so registry lookups keep behaving like mapping
    access for callers that predate the registry.
    """

    def __str__(self):  # KeyError quotes its message; keep it readable
        return ReproError.__str__(self)


class UnknownDatasetError(ReproError, KeyError):
    """A dataset name not present in ``DATASET_SPECS`` was requested."""

    def __str__(self):
        return ReproError.__str__(self)


class UnknownSweepError(ReproError, KeyError):
    """A sweep name not present in the sweep registry was requested."""

    def __str__(self):
        return ReproError.__str__(self)


class CompileError(ReproError):
    """The hardware compiler could not map the model onto the accelerator."""


class ServeProtocolError(ReproError):
    """A malformed `repro serve` wire message (bad JSON, missing fields)."""
