"""Compressed Sparse Row (CSR) matrix container."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ShapeError
from repro.sparse.coo import INDEX_BYTES, VALUE_BYTES, COOMatrix


@dataclass
class CSRMatrix:
    """A sparse matrix in compressed-row form.

    CSR supports the row-wise product order used by the efficiency-aware
    pipeline's combination phase (Fig. 7c): iterate non-zeros of one row of
    ``X``, each multiplying an entire row of ``W``.
    """

    shape: tuple
    indptr: np.ndarray
    indices: np.ndarray
    data: np.ndarray

    def __post_init__(self):
        self.indptr = np.asarray(self.indptr, dtype=np.int64)
        self.indices = np.asarray(self.indices, dtype=np.int64)
        self.data = np.asarray(self.data, dtype=np.float64)
        if self.indptr.shape[0] != self.shape[0] + 1:
            raise ShapeError("indptr length must be shape[0] + 1")
        if self.indices.shape != self.data.shape:
            raise ShapeError("indices and data must have identical length")
        if int(self.indptr[-1]) != self.indices.shape[0]:
            raise ShapeError("indptr[-1] must equal nnz")
        if np.any(np.diff(self.indptr) < 0):
            raise ShapeError("indptr must be non-decreasing")
        if self.nnz and (
            self.indices.min() < 0 or self.indices.max() >= self.shape[1]
        ):
            raise ShapeError("column indices out of bounds")

    @classmethod
    def from_coo(cls, coo: COOMatrix) -> "CSRMatrix":
        """Build from a COO matrix (entries are sorted; duplicates kept)."""
        srt = coo.sorted_by_row()
        counts = np.bincount(srt.row, minlength=coo.shape[0])
        indptr = np.concatenate([[0], np.cumsum(counts)])
        return cls(coo.shape, indptr, srt.col, srt.data)

    @property
    def nnz(self) -> int:
        """Number of stored non-zeros."""
        return int(self.indices.shape[0])

    def row_degrees(self) -> np.ndarray:
        """Non-zeros per row (node out-neighbour counts for adjacency)."""
        return np.diff(self.indptr)

    def storage_bytes(self, value_bytes: int = VALUE_BYTES) -> int:
        """Pointer array + one index + one value per nnz."""
        return (
            (self.shape[0] + 1) * INDEX_BYTES
            + self.nnz * (INDEX_BYTES + value_bytes)
        )

    def to_coo(self) -> COOMatrix:
        """Expand back to coordinate form."""
        rows = np.repeat(np.arange(self.shape[0]), np.diff(self.indptr))
        return COOMatrix(self.shape, rows, self.indices.copy(), self.data.copy())

    def to_dense(self) -> np.ndarray:
        """Materialize as a dense array."""
        return self.to_coo().to_dense()

    def row_slice(self, i: int) -> tuple:
        """Return (column indices, values) of row ``i`` without copying."""
        lo, hi = self.indptr[i], self.indptr[i + 1]
        return self.indices[lo:hi], self.data[lo:hi]
