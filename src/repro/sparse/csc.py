"""Compressed Sparse Column (CSC) matrix container."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ShapeError
from repro.sparse.coo import INDEX_BYTES, VALUE_BYTES, COOMatrix


@dataclass
class CSCMatrix:
    """A sparse matrix in compressed-column form.

    CSC is the sparser branch's input format (Sec. V-B): distributed
    aggregation consumes whole columns of the adjacency matrix per cycle, and
    CSC stores one fewer index per nnz than COO, letting the off-diagonal
    workload stay (mostly) on-chip.
    """

    shape: tuple
    indptr: np.ndarray
    indices: np.ndarray
    data: np.ndarray

    def __post_init__(self):
        self.indptr = np.asarray(self.indptr, dtype=np.int64)
        self.indices = np.asarray(self.indices, dtype=np.int64)
        self.data = np.asarray(self.data, dtype=np.float64)
        if self.indptr.shape[0] != self.shape[1] + 1:
            raise ShapeError("indptr length must be shape[1] + 1")
        if self.indices.shape != self.data.shape:
            raise ShapeError("indices and data must have identical length")
        if int(self.indptr[-1]) != self.indices.shape[0]:
            raise ShapeError("indptr[-1] must equal nnz")
        if np.any(np.diff(self.indptr) < 0):
            raise ShapeError("indptr must be non-decreasing")
        if self.nnz and (
            self.indices.min() < 0 or self.indices.max() >= self.shape[0]
        ):
            raise ShapeError("row indices out of bounds")

    @classmethod
    def from_coo(cls, coo: COOMatrix) -> "CSCMatrix":
        """Build from a COO matrix by sorting entries column-major."""
        order = np.lexsort((coo.row, coo.col))
        counts = np.bincount(coo.col, minlength=coo.shape[1])
        indptr = np.concatenate([[0], np.cumsum(counts)])
        return cls(coo.shape, indptr, coo.row[order], coo.data[order])

    @property
    def nnz(self) -> int:
        """Number of stored non-zeros."""
        return int(self.indices.shape[0])

    def col_degrees(self) -> np.ndarray:
        """Non-zeros per column (node in-neighbour counts for adjacency)."""
        return np.diff(self.indptr)

    def storage_bytes(self, value_bytes: int = VALUE_BYTES) -> int:
        """Pointer array + one index + one value per nnz."""
        return (
            (self.shape[1] + 1) * INDEX_BYTES
            + self.nnz * (INDEX_BYTES + value_bytes)
        )

    def to_coo(self) -> COOMatrix:
        """Expand back to coordinate form."""
        cols = np.repeat(np.arange(self.shape[1]), np.diff(self.indptr))
        return COOMatrix(self.shape, self.indices.copy(), cols, self.data.copy())

    def to_dense(self) -> np.ndarray:
        """Materialize as a dense array."""
        return self.to_coo().to_dense()

    def col_slice(self, j: int) -> tuple:
        """Return (row indices, values) of column ``j`` without copying."""
        lo, hi = self.indptr[j], self.indptr[j + 1]
        return self.indices[lo:hi], self.data[lo:hi]

    def nonempty_columns(self) -> np.ndarray:
        """Columns with at least one non-zero.

        Structural sparsification empties whole patches; fully-empty columns
        are "entirely skipped" by the sparser branch (Sec. V-B).
        """
        return np.nonzero(np.diff(self.indptr) > 0)[0]
