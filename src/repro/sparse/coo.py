"""Coordinate (COO) sparse matrix container."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ShapeError

INDEX_BYTES = 4  # 32-bit indices, matching the accelerator's index buffers
VALUE_BYTES = 4  # 32-bit fixed point values (Tab. V: GCoD uses 32-bit PEs)


@dataclass
class COOMatrix:
    """A sparse matrix stored as (row, col, value) triples.

    COO is the format the denser branch assumes for adjacency/feature inputs
    ("either dense or COO format inputs ... for reduced controlling
    overhead", Sec. V-B).
    """

    shape: tuple
    row: np.ndarray
    col: np.ndarray
    data: np.ndarray = field(default=None)

    def __post_init__(self):
        self.row = np.asarray(self.row, dtype=np.int64)
        self.col = np.asarray(self.col, dtype=np.int64)
        if self.data is None:
            self.data = np.ones(self.row.shape[0], dtype=np.float64)
        self.data = np.asarray(self.data, dtype=np.float64)
        if not (self.row.shape == self.col.shape == self.data.shape):
            raise ShapeError("row, col and data must have identical length")
        if len(self.shape) != 2:
            raise ShapeError(f"COOMatrix shape must be 2-D, got {self.shape}")
        if self.nnz and (
            self.row.min() < 0
            or self.col.min() < 0
            or self.row.max() >= self.shape[0]
            or self.col.max() >= self.shape[1]
        ):
            raise ShapeError("indices out of bounds for shape %s" % (self.shape,))

    @property
    def nnz(self) -> int:
        """Number of stored non-zeros."""
        return int(self.row.shape[0])

    def storage_bytes(self, value_bytes: int = VALUE_BYTES) -> int:
        """Bytes needed to store the matrix: two indices + one value per nnz."""
        return self.nnz * (2 * INDEX_BYTES + value_bytes)

    def to_dense(self) -> np.ndarray:
        """Materialize as a dense array (duplicate entries are summed)."""
        out = np.zeros(self.shape, dtype=np.float64)
        np.add.at(out, (self.row, self.col), self.data)
        return out

    def transpose(self) -> "COOMatrix":
        """Return the transposed matrix (swaps row and col arrays)."""
        return COOMatrix(
            (self.shape[1], self.shape[0]),
            self.col.copy(),
            self.row.copy(),
            self.data.copy(),
        )

    def sorted_by_row(self) -> "COOMatrix":
        """Return a copy with entries ordered by (row, col)."""
        order = np.lexsort((self.col, self.row))
        return COOMatrix(
            self.shape, self.row[order], self.col[order], self.data[order]
        )
