"""Reference SpMM kernels in the two product orders used by GCoD's pipelines.

The GCoD accelerator executes every phase as SpMM, but the *order* in which
partial products are produced decides what must stay on-chip (Fig. 7 and
Tab. II):

* **row-wise product** (``spmm_row_product``): for each non-zero ``A[i, k]``,
  accumulate ``A[i, k] * B[k, :]`` into output row ``i``. Emits completed
  output rows one at a time — the efficiency-aware pipeline's combination
  order, which lets aggregation start on a finished row of ``XW``.
* **column-wise product** (``spmm_column_product``): for each column ``k`` of
  ``A``, scatter ``A[:, k] ⊗ B[k, :]`` into the output. This is distributed
  aggregation; with column-major ``B`` arrival only one output column of
  accumulators is live at a time in the resource-aware pipeline.

Both compute the same product; tests assert bit-identical results against
dense matmul. The hardware model counts their traffic differently.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError
from repro.sparse.csc import CSCMatrix
from repro.sparse.csr import CSRMatrix


def _check_shapes(a_shape: tuple, b: np.ndarray) -> None:
    if b.ndim != 2:
        raise ShapeError("dense operand must be 2-D")
    if a_shape[1] != b.shape[0]:
        raise ShapeError(
            f"cannot multiply {a_shape} by {b.shape}: inner dims differ"
        )


def spmm_row_product(a: CSRMatrix, b: np.ndarray) -> np.ndarray:
    """Row-wise-product SpMM: produce each output row to completion."""
    _check_shapes(a.shape, b)
    out = np.zeros((a.shape[0], b.shape[1]), dtype=np.float64)
    for i in range(a.shape[0]):
        cols, vals = a.row_slice(i)
        if cols.shape[0]:
            out[i] = vals @ b[cols]
    return out


def spmm_column_product(a: CSCMatrix, b: np.ndarray) -> np.ndarray:
    """Column-wise-product (distributed aggregation) SpMM."""
    _check_shapes(a.shape, b)
    out = np.zeros((a.shape[0], b.shape[1]), dtype=np.float64)
    for k in range(a.shape[1]):
        rows, vals = a.col_slice(k)
        if rows.shape[0]:
            # np.add.at accumulates correctly when a column stores the same
            # row index more than once (plain fancy-index += would not).
            np.add.at(out, rows, np.outer(vals, b[k]))
    return out


def spmm(a, b: np.ndarray) -> np.ndarray:
    """Dispatch SpMM on the container type (CSR row-wise, CSC column-wise)."""
    if isinstance(a, CSRMatrix):
        return spmm_row_product(a, b)
    if isinstance(a, CSCMatrix):
        return spmm_column_product(a, b)
    raise TypeError(f"unsupported sparse operand type {type(a).__name__}")
