"""SpMM entry points in the two product orders used by GCoD's pipelines.

The GCoD accelerator executes every phase as SpMM, but the *order* in which
partial products are produced decides what must stay on-chip (Fig. 7 and
Tab. II):

* **row-wise product** (``spmm_row_product``): for each non-zero ``A[i, k]``,
  accumulate ``A[i, k] * B[k, :]`` into output row ``i``. Emits completed
  output rows one at a time — the efficiency-aware pipeline's combination
  order, which lets aggregation start on a finished row of ``XW``.
* **column-wise product** (``spmm_column_product``): for each column ``k`` of
  ``A``, scatter ``A[:, k] ⊗ B[k, :]`` into the output. This is distributed
  aggregation; with column-major ``B`` arrival only one output column of
  accumulators is live at a time in the resource-aware pipeline.

Both compute the same product; tests assert bit-identical results against
dense matmul. The hardware model counts their traffic differently.

``spmm_row_product`` / ``spmm_column_product`` are the loop-exact reference
kernels (ground truth); ``spmm`` and ``spmm_batch`` dispatch through the
pluggable backend registry in :mod:`repro.sparse.kernels`, defaulting to the
``vectorized`` backend.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.sparse.csc import CSCMatrix
from repro.sparse.csr import CSRMatrix
from repro.sparse.kernels import BackendLike, get_backend
from repro.sparse.kernels.reference import (
    spmm_column_product,
    spmm_row_product,
)

__all__ = [
    "spmm",
    "spmm_batch",
    "spmm_column_product",
    "spmm_row_product",
]


def spmm(a, b: np.ndarray, backend: BackendLike = None) -> np.ndarray:
    """Dispatch SpMM on the container type (CSR row-wise, CSC column-wise).

    ``backend`` selects the kernel implementation by name (``"reference"``,
    ``"vectorized"``); ``None`` uses the registry default.
    """
    if not isinstance(a, (CSRMatrix, CSCMatrix)):
        raise TypeError(f"unsupported sparse operand type {type(a).__name__}")
    return get_backend(backend).spmm(a, b)


def spmm_batch(
    mats: Sequence,
    denses: Sequence[np.ndarray],
    backend: BackendLike = None,
) -> List[np.ndarray]:
    """SpMM over a multi-graph workload: one output per (sparse, dense) pair.

    The ``vectorized`` backend runs same-format, same-width batches as a
    single block-diagonal product (no transposes); other backends fall back
    to one dispatch per pair.
    """
    return get_backend(backend).spmm_batch(mats, denses)
