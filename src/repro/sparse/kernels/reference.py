"""The ground-truth kernel backend: explicit loops in the paper's orders.

These kernels iterate exactly the way the accelerator's pipelines do —
one output row to completion (row-wise product) or one adjacency column of
scattered partial sums (column-wise product). They are deliberately slow and
obvious; the ``vectorized`` backend must match them to 1e-12.
"""

from __future__ import annotations

import numpy as np

from repro.sparse.kernels import KernelBackend, check_spmm_shapes


def spmm_row_product(a, b: np.ndarray) -> np.ndarray:
    """Row-wise-product SpMM: produce each output row to completion.

    For each non-zero ``A[i, k]``, accumulate ``A[i, k] * B[k, :]`` into
    output row ``i`` — the efficiency-aware pipeline's combination order,
    which lets aggregation start on a finished row of ``XW`` (Fig. 7c).
    """
    check_spmm_shapes(a.shape, b)
    indptr, indices, data = a.indptr, a.indices, a.data
    out = np.zeros((a.shape[0], b.shape[1]), dtype=np.float64)
    for i in range(a.shape[0]):
        lo, hi = indptr[i], indptr[i + 1]
        if hi > lo:
            out[i] = data[lo:hi] @ b[indices[lo:hi]]
    return out


def spmm_column_product(a, b: np.ndarray) -> np.ndarray:
    """Column-wise-product (distributed aggregation) SpMM.

    For each column ``k`` of ``A``, scatter ``A[:, k] ⊗ B[k, :]`` into the
    output; with column-major ``B`` arrival only one output column of
    accumulators is live at a time in the resource-aware pipeline (Fig. 7d).
    """
    check_spmm_shapes(a.shape, b)
    indptr, indices, data = a.indptr, a.indices, a.data
    out = np.zeros((a.shape[0], b.shape[1]), dtype=np.float64)
    for k in range(a.shape[1]):
        lo, hi = indptr[k], indptr[k + 1]
        if hi > lo:
            # np.add.at accumulates correctly when a column stores the same
            # row index more than once (plain fancy-index += would not).
            np.add.at(out, indices[lo:hi], np.outer(data[lo:hi], b[k]))
    return out


class ReferenceBackend(KernelBackend):
    """Loop kernels + ``np.ufunc.at`` scatter primitives (ground truth)."""

    name = "reference"

    def spmm_row_product(self, a, b: np.ndarray) -> np.ndarray:
        return spmm_row_product(a, b)

    def spmm_column_product(self, a, b: np.ndarray) -> np.ndarray:
        return spmm_column_product(a, b)

    def segment_sum(
        self, values: np.ndarray, segments: np.ndarray, num_segments: int
    ) -> np.ndarray:
        out = np.zeros((num_segments,) + values.shape[1:], dtype=np.float64)
        np.add.at(out, segments, values)
        return out

    def coo_spmm(
        self,
        weights: np.ndarray,
        rows: np.ndarray,
        cols: np.ndarray,
        x: np.ndarray,
        num_rows: int,
    ) -> np.ndarray:
        out = np.zeros((num_rows, x.shape[1]), dtype=np.float64)
        np.add.at(out, rows, weights[:, None] * x[cols])
        return out
