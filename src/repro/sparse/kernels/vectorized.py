"""The fast kernel backend: batched segment reductions, no Python loops.

Every kernel here is a segment reduction in disguise, and every segment
reduction is expressed as either a ``bincount`` (1-D) or a sparse
selection-matrix product (2-D), both of which run in compiled code:

* the product-order SpMM kernels wrap the CSR/CSC arrays in scipy
  containers (a zero-copy view, not a format conversion) and use its
  compiled sparse-times-dense routines;
* ``segment_sum`` over ``(E, F)`` values multiplies by an ``(N, E)``
  one-hot selection matrix built directly in CSC form — no sorting, no
  transposes, duplicate indices accumulate exactly like ``np.add.at``;
* ``coo_spmm`` (edge-weighted aggregation, the graph-tuning hot op)
  assembles the weighted adjacency once per call and runs one compiled
  SpMM instead of an ``np.add.at`` scatter per edge;
* ``spmm_batch`` chains a whole multi-graph workload into one
  block-diagonal product, so one kernel launch covers every graph.

On the evaluation workloads this is 1-2 orders of magnitude faster than
the ``reference`` loops while matching them to float64 round-off; the
parity suite in ``tests/sparse/test_kernels.py`` holds both to 1e-12.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np
import scipy.sparse as sp

from repro.errors import ShapeError
from repro.sparse.kernels import KernelBackend, check_spmm_shapes


def _as_scipy_csr(a) -> sp.csr_matrix:
    if isinstance(a, sp.csr_matrix):
        return a
    return sp.csr_matrix(
        (a.data, a.indices, a.indptr), shape=a.shape, copy=False
    )


def _as_scipy_csc(a) -> sp.csc_matrix:
    if isinstance(a, sp.csc_matrix):
        return a
    return sp.csc_matrix(
        (a.data, a.indices, a.indptr), shape=a.shape, copy=False
    )


class VectorizedBackend(KernelBackend):
    """Batched NumPy/SciPy kernels; bit-compatible with ``reference``."""

    name = "vectorized"

    def spmm_row_product(self, a, b: np.ndarray) -> np.ndarray:
        check_spmm_shapes(a.shape, b)
        return np.asarray(_as_scipy_csr(a) @ b)

    def spmm_column_product(self, a, b: np.ndarray) -> np.ndarray:
        check_spmm_shapes(a.shape, b)
        return np.asarray(_as_scipy_csc(a) @ b)

    def spmm_batch(
        self, mats: Sequence, denses: Sequence[np.ndarray]
    ) -> List[np.ndarray]:
        """Run every (sparse, dense) pair as one block-diagonal product.

        All operands must share a storage format and feature width; the
        block-diagonal trick then needs no transposes — indices are offset,
        arrays concatenated, and a single compiled SpMM produces every
        output, which is sliced back apart. Mixed inputs fall back to the
        per-pair path.
        """
        if len(mats) != len(denses):
            raise ShapeError("spmm_batch needs one dense operand per matrix")
        if not mats:
            return []
        denses = [np.asarray(d, dtype=np.float64) for d in denses]
        for a, b in zip(mats, denses):
            check_spmm_shapes(a.shape, b)
        fmts = {
            "csc" if getattr(a, "format", None) == "csc"
            or type(a).__name__ == "CSCMatrix" else "csr"
            for a in mats
        }
        widths = {b.shape[1] for b in denses}
        if (
            len(fmts) > 1
            or len(widths) > 1
            # Non-compressed operands (e.g. scipy COO) have no indptr to
            # chain; the per-pair path canonicalizes them instead.
            or not all(hasattr(a, "indptr") for a in mats)
        ):
            return super().spmm_batch(mats, denses)
        fmt = fmts.pop()
        # CSR compresses rows (outputs), CSC compresses columns (inputs).
        idx_axis = 1 if fmt == "csr" else 0
        idx_offsets = np.concatenate(
            [[0], np.cumsum([a.shape[idx_axis] for a in mats])]
        )
        nnz_offsets = np.concatenate(
            [[0], np.cumsum([a.indptr[-1] for a in mats])]
        )
        big_indptr = np.concatenate(
            [mats[0].indptr]
            + [a.indptr[1:] + off for a, off in zip(mats[1:], nnz_offsets[1:-1])]
        )
        big_indices = np.concatenate(
            [a.indices + off for a, off in zip(mats, idx_offsets[:-1])]
        )
        big_data = np.concatenate([a.data for a in mats])
        big_b = np.vstack(denses)
        total_rows = sum(a.shape[0] for a in mats)
        total_cols = sum(a.shape[1] for a in mats)
        cls = sp.csr_matrix if fmt == "csr" else sp.csc_matrix
        big = cls(
            (big_data, big_indices, big_indptr), shape=(total_rows, total_cols)
        )
        # Dispatch through self.spmm so subclasses (the JIT `compiled`
        # tier) run the whole batch as one kernel dispatch of their own.
        out = np.asarray(self.spmm(big, big_b))
        row_offsets = np.concatenate(
            [[0], np.cumsum([a.shape[0] for a in mats])]
        )
        return [
            out[lo:hi] for lo, hi in zip(row_offsets[:-1], row_offsets[1:])
        ]

    def segment_sum(
        self, values: np.ndarray, segments: np.ndarray, num_segments: int
    ) -> np.ndarray:
        values = np.asarray(values, dtype=np.float64)
        segments = np.asarray(segments, dtype=np.int64)
        if segments.size and not (
            0 <= segments.min() and segments.max() < num_segments
        ):
            # bincount would silently truncate what np.add.at surfaces.
            raise IndexError(
                f"segment ids must lie in [0, {num_segments}); "
                f"got [{segments.min()}, {segments.max()}]"
            )
        if values.ndim == 1:
            return np.bincount(
                segments, weights=values, minlength=num_segments
            )
        if values.ndim != 2:  # rare rank: keep the exact scatter semantics
            out = np.zeros((num_segments,) + values.shape[1:])
            np.add.at(out, segments, values)
            return out
        if values.shape[1] == 1:  # single column: bincount beats the matmul
            return np.bincount(
                segments, weights=values[:, 0], minlength=num_segments
            )[:, None]
        num_values = values.shape[0]
        select = sp.csc_matrix(
            (
                np.ones(num_values),
                segments,
                np.arange(num_values + 1, dtype=np.int64),
            ),
            shape=(num_segments, num_values),
        )
        return np.asarray(select @ values)

    def segment_max(
        self, values: np.ndarray, segments: np.ndarray, num_segments: int
    ) -> np.ndarray:
        """Per-segment max via one ``maximum.reduceat`` over grouped rows.

        Already-sorted segment ids (the common case: CSR-ordered edge lists)
        skip the argsort. Bit-identical to the ``np.maximum.at`` reference.
        """
        values = np.asarray(values)
        segments = np.asarray(segments, dtype=np.int64)
        out = np.full((num_segments,) + values.shape[1:], -np.inf)
        if segments.size == 0:
            return out
        if values.ndim != 2:
            np.maximum.at(out, segments, values)
            return out
        if np.any(segments[1:] < segments[:-1]):
            order = np.argsort(segments, kind="stable")
            segments = segments[order]
            values = values[order]
        starts = np.flatnonzero(
            np.concatenate(([True], segments[1:] != segments[:-1]))
        )
        out[segments[starts]] = np.maximum.reduceat(values, starts, axis=0)
        return out

    def coo_spmm(
        self,
        weights: np.ndarray,
        rows: np.ndarray,
        cols: np.ndarray,
        x: np.ndarray,
        num_rows: int,
    ) -> np.ndarray:
        weights = np.asarray(weights, dtype=np.float64).reshape(-1)
        if weights.size == 0:
            return np.zeros((num_rows, x.shape[1]), dtype=np.float64)
        adj = sp.coo_matrix(
            (weights, (rows, cols)), shape=(num_rows, x.shape[0])
        ).tocsr()
        return np.asarray(adj @ x)
