"""The chunk-schedule kernel backend: block-granular SpMM with work profiles.

The GCoD accelerator never sees a whole adjacency matrix at once — the
denser branch consumes one diagonal subgraph block per chunk and the
sparser branch sweeps the off-diagonal remainder in CSC column runs
(Sec. V-B). This backend executes SpMM in exactly that granularity:

* every kernel-family call is tiled into fixed-size row blocks / column
  runs, each lowered to one compiled sparse-times-dense product, so the
  backend stays within 1e-12 of ``reference`` while running at
  ``vectorized``-class speed;
* :func:`tiled_spmm` follows a :class:`~repro.partition.layout.BlockLayout`
  instead of fixed-size tiles — one product per chunk's diagonal block plus
  a CSC column-run sweep over the remainder — and returns, next to the
  numeric result, a :class:`TileProfile`: the per-tile work list (``owner``
  chunk, ``nnz``, ``macs``, ``dma_bytes``) that the event simulator and the
  analytic model consume as the single source of truth for tile accounting.

The profile's byte costs mirror the event simulator's DMA units: dense
diagonal blocks stream block-local COO (8 bytes/nnz), the sparser remainder
streams CSC (one fewer index, 6 bytes/nnz).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

import numpy as np
import scipy.sparse as sp

from repro.errors import ShapeError
from repro.sparse.kernels import check_spmm_shapes
from repro.sparse.kernels.vectorized import (
    VectorizedBackend,
    _as_scipy_csc,
    _as_scipy_csr,
)

#: Rows / columns per tile when no layout dictates the block structure —
#: matches the event simulator's ~1024-column sparser-branch runs.
DEFAULT_TILE = 1024

#: Byte cost per nnz of a block-local COO stream (denser branch).
COO_BYTES_PER_NNZ = 8
#: Byte cost per nnz of a CSC column run (sparser branch, one fewer index).
CSC_BYTES_PER_NNZ = COO_BYTES_PER_NNZ - 2


@dataclass(frozen=True)
class TileWork:
    """One scheduled unit of SpMM work and its hardware cost."""

    owner: str  # "chunk<class>" for diagonal blocks, "sparse" for runs
    nnz: int
    macs: int
    dma_bytes: int


@dataclass
class TileProfile:
    """The per-tile work list of one block-granular SpMM execution."""

    tiles: List[TileWork] = field(default_factory=list)

    @property
    def total_nnz(self) -> int:
        """Non-zeros covered by all tiles (== the operand's nnz)."""
        return int(sum(t.nnz for t in self.tiles))

    @property
    def total_macs(self) -> int:
        """MACs across all tiles (== nnz * dense width)."""
        return int(sum(t.macs for t in self.tiles))

    @property
    def total_bytes(self) -> int:
        """DMA bytes across all tiles."""
        return int(sum(t.dma_bytes for t in self.tiles))

    def macs_by_owner(self) -> Dict[str, int]:
        """Total MACs per owning sub-accelerator."""
        out: Dict[str, int] = {}
        for t in self.tiles:
            out[t.owner] = out.get(t.owner, 0) + t.macs
        return out

    def chunk_balance(self) -> float:
        """mean/max MACs across denser chunks (1.0 = perfectly balanced)."""
        loads = np.array(
            [m for o, m in self.macs_by_owner().items() if o != "sparse"],
            dtype=float,
        )
        if loads.size == 0 or loads.max() == 0:
            return 1.0
        return float(loads.mean() / loads.max())


def _csr_row_block(csr: sp.csr_matrix, lo: int, hi: int) -> sp.csr_matrix:
    """Zero-copy view of rows ``[lo, hi)`` of a scipy CSR matrix."""
    p0, p1 = csr.indptr[lo], csr.indptr[hi]
    return sp.csr_matrix(
        (csr.data[p0:p1], csr.indices[p0:p1], csr.indptr[lo : hi + 1] - p0),
        shape=(hi - lo, csr.shape[1]),
        copy=False,
    )


def _csc_col_run(csc: sp.csc_matrix, lo: int, hi: int) -> sp.csc_matrix:
    """Zero-copy view of columns ``[lo, hi)`` of a scipy CSC matrix."""
    p0, p1 = csc.indptr[lo], csc.indptr[hi]
    return sp.csc_matrix(
        (csc.data[p0:p1], csc.indices[p0:p1], csc.indptr[lo : hi + 1] - p0),
        shape=(csc.shape[0], hi - lo),
        copy=False,
    )


def _as_square_scipy(adj) -> sp.csr_matrix:
    """Canonicalize scipy matrices / repro containers to scipy CSR."""
    if sp.issparse(adj):
        return adj.tocsr()
    if type(adj).__name__ == "CSCMatrix":
        return _as_scipy_csc(adj).tocsr()
    if hasattr(adj, "indptr"):
        return _as_scipy_csr(adj)
    return sp.csr_matrix(adj)


def _profile_from_split(
    dense_csr: sp.csr_matrix,
    sparse_csc: sp.csc_matrix,
    layout,
    width: int,
    tile_columns: int,
    bytes_per_nnz: int,
) -> TileProfile:
    """Tile accounting read off an already-split adjacency.

    Per-span nnz is ``indptr[stop] - indptr[start]`` of the dense CSR
    (diagonal-block entries have both endpoints inside the span), per-run
    nnz the same difference on the sparse CSC — so the profile is derived
    from ``layout.split``'s partition, the single source of truth, and tile
    totals exactly equal the operand's nnz.
    """
    profile = TileProfile()
    row_ptr = dense_csr.indptr
    for span in layout.spans:
        nnz = int(row_ptr[span.stop] - row_ptr[span.start])
        profile.tiles.append(
            TileWork(
                owner=f"chunk{span.class_id}",
                nnz=nnz,
                macs=nnz * width,
                dma_bytes=nnz * bytes_per_nnz,
            )
        )
    col_ptr = sparse_csc.indptr
    n = sparse_csc.shape[1]
    for lo in range(0, max(n, 1), tile_columns):
        hi = min(lo + tile_columns, n)
        nnz = int(col_ptr[hi] - col_ptr[lo])
        profile.tiles.append(
            TileWork(
                owner="sparse",
                nnz=nnz,
                macs=nnz * width,
                dma_bytes=nnz * (bytes_per_nnz - 2),
            )
        )
    return profile


def layout_tile_profile(
    adj,
    layout,
    width: int,
    tile_columns: int = DEFAULT_TILE,
    bytes_per_nnz: int = COO_BYTES_PER_NNZ,
) -> TileProfile:
    """The :class:`TileProfile` of executing ``adj @ B`` under ``layout``.

    Pure accounting — no arithmetic. One tile per subgraph span (owner =
    its class's chunk, block-local nnz) plus one tile per
    ``tile_columns``-wide CSC column run of the off-diagonal remainder.
    """
    dense, sparse = layout.split(_as_square_scipy(adj))
    return _profile_from_split(
        dense.tocsr(), sparse.tocsc(), layout, width, tile_columns,
        bytes_per_nnz,
    )


def tiled_spmm(
    adj,
    b: np.ndarray,
    layout,
    tile_columns: int = DEFAULT_TILE,
    bytes_per_nnz: int = COO_BYTES_PER_NNZ,
) -> Tuple[np.ndarray, TileProfile]:
    """Execute ``adj @ b`` in block granularity following ``layout``.

    The accelerator's schedule, as arithmetic: each subgraph span's diagonal
    block is one block-local product into its own output rows (the denser
    branch), then the off-diagonal remainder is swept in CSC column runs
    (the sparser branch's distributed aggregation). Returns the numeric
    result together with the :class:`TileProfile` of the work performed.
    """
    a = _as_square_scipy(adj)
    check_spmm_shapes(a.shape, b)
    n = a.shape[0]
    if a.shape[0] != a.shape[1]:
        raise ShapeError("tiled_spmm needs a square adjacency operand")
    b = np.asarray(b, dtype=np.float64)
    dense, sparse = layout.split(a)
    out = np.zeros((n, b.shape[1]))

    dense_csr = dense.tocsr()
    for span in layout.spans:
        block = _csr_row_block(dense_csr, span.start, span.stop)
        if block.nnz:
            # Diagonal-block entries have both endpoints inside the span, so
            # the row block *is* the chunk's block-local product.
            out[span.start : span.stop] += block @ b

    sparse_csc = sparse.tocsc()
    for lo in range(0, max(n, 1), tile_columns):
        hi = min(lo + tile_columns, n)
        run = _csc_col_run(sparse_csc, lo, hi)
        if run.nnz:
            out += run @ b[lo:hi]

    profile = _profile_from_split(
        dense_csr, sparse_csc, layout, b.shape[1], tile_columns, bytes_per_nnz
    )
    return out, profile


class TiledBackend(VectorizedBackend):
    """Block-granular kernels mirroring the accelerator's chunk schedule.

    The plain :class:`~repro.sparse.kernels.KernelBackend` families run in
    fixed-size tiles (row blocks for the row-wise product, column runs for
    the column-wise product); :meth:`spmm_layout` follows a real
    :class:`~repro.partition.layout.BlockLayout` and also returns the
    :class:`TileProfile`. Segment primitives inherit the batched kernels —
    tiling only changes how the SpMM work is scheduled, never the numbers.
    """

    name = "tiled"

    def __init__(self, tile_size: int = DEFAULT_TILE):
        self.tile_size = tile_size

    def spmm_row_product(self, a, b: np.ndarray) -> np.ndarray:
        check_spmm_shapes(a.shape, b)
        csr = _as_scipy_csr(a)
        b = np.asarray(b, dtype=np.float64)
        out = np.zeros((a.shape[0], b.shape[1]))
        for lo in range(0, a.shape[0], self.tile_size):
            hi = min(lo + self.tile_size, a.shape[0])
            out[lo:hi] = _csr_row_block(csr, lo, hi) @ b
        return out

    def spmm_column_product(self, a, b: np.ndarray) -> np.ndarray:
        check_spmm_shapes(a.shape, b)
        csc = _as_scipy_csc(a)
        b = np.asarray(b, dtype=np.float64)
        out = np.zeros((a.shape[0], b.shape[1]))
        for lo in range(0, a.shape[1], self.tile_size):
            hi = min(lo + self.tile_size, a.shape[1])
            run = _csc_col_run(csc, lo, hi)
            if run.nnz:
                out += run @ b[lo:hi]
        return out

    def spmm_layout(
        self, a, b: np.ndarray, layout
    ) -> Tuple[np.ndarray, TileProfile]:
        """Layout-driven execution: the numeric result plus its profile."""
        return tiled_spmm(a, b, layout, tile_columns=self.tile_size)
