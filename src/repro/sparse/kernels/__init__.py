"""Pluggable SpMM kernel backends.

The GCoD reproduction executes every GCN phase as SpMM, in one of the two
product orders the accelerator distinguishes (Fig. 7): row-wise product
(combination, CSR) and column-wise product (distributed aggregation, CSC).
The *hardware* models count traffic against those loop-order semantics; the
*numerics* are the same product either way, so how fast the arithmetic runs
is an implementation choice. This package makes that choice pluggable:

* ``reference`` — the original per-row / per-column Python loop kernels and
  ``np.ufunc.at`` scatter primitives, kept as ground truth;
* ``vectorized`` — fully batched kernels: product-order SpMM lowers to
  compiled CSR/CSC sparse-times-dense routines, scatter/gather segment
  reductions lower to ``bincount`` / selection-matrix products, and
  ``spmm_batch`` runs a whole list of (sparse, dense) pairs as one
  block-diagonal product without transposing anything;
* ``tiled`` — block-granular kernels mirroring the accelerator's chunk
  schedule: fixed-size row blocks / CSC column runs for the plain kernel
  families, and layout-driven execution (``tiled_spmm``) that follows a
  ``BlockLayout`` and returns a per-tile work profile (owner chunk, nnz,
  MACs, DMA bytes) next to the numbers.

Backends register by name; ``get_backend(None)`` returns the process-wide
default (``vectorized``). Everything downstream — ``GraphOps``, the training
loop, the GCoD pipeline, the functional emulator, the CLI — resolves its
backend through this registry, so ``--kernel-backend reference`` swaps the
arithmetic engine of the whole stack without touching the hardware model's
traffic accounting.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.errors import KernelError, ShapeError


def check_spmm_shapes(a_shape: Tuple[int, ...], b: np.ndarray) -> None:
    """Validate the dense operand of ``A @ B`` against ``A``'s shape."""
    if b.ndim != 2:
        raise ShapeError("dense operand must be 2-D")
    if a_shape[1] != b.shape[0]:
        raise ShapeError(
            f"cannot multiply {a_shape} by {b.shape}: inner dims differ"
        )


class KernelBackend:
    """One implementation of the SpMM + segment-reduce kernel family.

    Sparse operands are anything with ``shape`` / ``indptr`` / ``indices`` /
    ``data`` attributes — both this package's :class:`~repro.sparse.csr.CSRMatrix`
    / :class:`~repro.sparse.csc.CSCMatrix` containers and scipy's
    ``csr_matrix`` / ``csc_matrix`` qualify, so callers never convert.
    """

    name: str = "abstract"

    # -- product-order SpMM kernels ------------------------------------
    def spmm_row_product(self, a, b: np.ndarray) -> np.ndarray:
        """Row-wise-product SpMM of a CSR operand (emit whole output rows)."""
        raise NotImplementedError

    def spmm_column_product(self, a, b: np.ndarray) -> np.ndarray:
        """Column-wise-product SpMM of a CSC operand (distributed aggregation)."""
        raise NotImplementedError

    def spmm(self, a, b: np.ndarray) -> np.ndarray:
        """Dispatch on storage format: CSR -> row order, CSC -> column order."""
        fmt = getattr(a, "format", None)
        if fmt == "csr" or _looks_like(a, "CSRMatrix"):
            return self.spmm_row_product(a, b)
        if fmt == "csc" or _looks_like(a, "CSCMatrix"):
            return self.spmm_column_product(a, b)
        if fmt is not None:  # other scipy formats: canonicalize to CSR
            return self.spmm_row_product(a.tocsr(), b)
        raise TypeError(f"unsupported sparse operand type {type(a).__name__}")

    def spmm_batch(
        self, mats: Sequence, denses: Sequence[np.ndarray]
    ) -> List[np.ndarray]:
        """SpMM over paired (sparse, dense) operands, one output per pair."""
        if len(mats) != len(denses):
            raise ShapeError("spmm_batch needs one dense operand per matrix")
        return [self.spmm(a, b) for a, b in zip(mats, denses)]

    # -- segment primitives (the training-side scatter/gather family) --
    def segment_sum(
        self, values: np.ndarray, segments: np.ndarray, num_segments: int
    ) -> np.ndarray:
        """Sum rows of ``values`` into ``out[segments[e]]`` (1-D or 2-D)."""
        raise NotImplementedError

    def segment_max(
        self, values: np.ndarray, segments: np.ndarray, num_segments: int
    ) -> np.ndarray:
        """Per-segment elementwise max; empty segments stay ``-inf``."""
        out = np.full((num_segments,) + values.shape[1:], -np.inf)
        np.maximum.at(out, segments, values)
        return out

    def coo_spmm(
        self,
        weights: np.ndarray,
        rows: np.ndarray,
        cols: np.ndarray,
        x: np.ndarray,
        num_rows: int,
    ) -> np.ndarray:
        """Edge-weighted aggregation ``out[rows[e]] += weights[e] * x[cols[e]]``."""
        raise NotImplementedError


def _looks_like(a, cls_name: str) -> bool:
    # Avoid importing the containers here (they sit below this package).
    return type(a).__name__ == cls_name


# ----------------------------------------------------------------------
# registry
# ----------------------------------------------------------------------
_REGISTRY: Dict[str, KernelBackend] = {}
_DEFAULT_NAME = "vectorized"

BackendLike = Union[None, str, KernelBackend]


def register_backend(backend: KernelBackend) -> KernelBackend:
    """Add ``backend`` to the registry under ``backend.name``."""
    if not backend.name or backend.name == "abstract":
        raise KernelError("kernel backends must define a concrete name")
    _REGISTRY[backend.name] = backend
    return backend


def available_backends() -> Tuple[str, ...]:
    """Registered backend names, sorted."""
    return tuple(sorted(_REGISTRY))


def get_backend(backend: BackendLike = None) -> KernelBackend:
    """Resolve ``backend`` (name, instance, or None for the default)."""
    if backend is None:
        backend = _DEFAULT_NAME
    if isinstance(backend, KernelBackend):
        return backend
    try:
        return _REGISTRY[backend]
    except KeyError:
        raise KernelError(
            f"unknown kernel backend {backend!r}; "
            f"available: {', '.join(available_backends())}"
        ) from None


def default_backend() -> KernelBackend:
    """The backend used when callers do not name one."""
    return get_backend(None)


def set_default_backend(backend: Union[str, KernelBackend]) -> str:
    """Set the process-wide default backend; returns the previous name."""
    global _DEFAULT_NAME
    previous = _DEFAULT_NAME
    _DEFAULT_NAME = get_backend(backend).name
    return previous


# Populate the registry (imports at the bottom to avoid cycles: the backend
# modules import the helpers defined above).
from repro.sparse.kernels.reference import ReferenceBackend  # noqa: E402
from repro.sparse.kernels.vectorized import VectorizedBackend  # noqa: E402
from repro.sparse.kernels.tiled import (  # noqa: E402
    TiledBackend,
    TileProfile,
    TileWork,
    layout_tile_profile,
    tiled_spmm,
)

register_backend(ReferenceBackend())
register_backend(VectorizedBackend())
register_backend(TiledBackend())

__all__ = [
    "BackendLike",
    "KernelBackend",
    "ReferenceBackend",
    "TileProfile",
    "TileWork",
    "TiledBackend",
    "VectorizedBackend",
    "layout_tile_profile",
    "tiled_spmm",
    "available_backends",
    "check_spmm_shapes",
    "default_backend",
    "get_backend",
    "register_backend",
    "set_default_backend",
]
