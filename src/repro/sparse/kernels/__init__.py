"""Pluggable SpMM kernel backends.

The GCoD reproduction executes every GCN phase as SpMM, in one of the two
product orders the accelerator distinguishes (Fig. 7): row-wise product
(combination, CSR) and column-wise product (distributed aggregation, CSC).
The *hardware* models count traffic against those loop-order semantics; the
*numerics* are the same product either way, so how fast the arithmetic runs
is an implementation choice. This package makes that choice pluggable:

* ``reference`` — the original per-row / per-column Python loop kernels and
  ``np.ufunc.at`` scatter primitives, kept as ground truth;
* ``vectorized`` — fully batched kernels: product-order SpMM lowers to
  compiled CSR/CSC sparse-times-dense routines, scatter/gather segment
  reductions lower to ``bincount`` / selection-matrix products, and
  ``spmm_batch`` runs a whole list of (sparse, dense) pairs as one
  block-diagonal product without transposing anything;
* ``tiled`` — block-granular kernels mirroring the accelerator's chunk
  schedule: fixed-size row blocks / CSC column runs for the plain kernel
  families, and layout-driven execution (``tiled_spmm``) that follows a
  ``BlockLayout`` and returns a per-tile work profile (owner chunk, nnz,
  MACs, DMA bytes) next to the numbers;
* ``compiled`` — numba-JIT product-order SpMM loops (prange over row /
  feature blocks, fastmath off), numerically identical to ``vectorized``.
  The tier is *probed at first resolution* behind an import guard: when
  numba is absent or the probe kernel fails, ``compiled`` resolves to
  ``vectorized`` with a one-line stderr note, so scripts and cache keys
  never depend on the machine having a JIT toolchain.

Backends register by name; ``get_backend(None)`` returns the process-wide
default (``vectorized``). Everything downstream — ``GraphOps``, the training
loop, the GCoD pipeline, the functional emulator, the CLI — resolves its
backend through this registry, so ``--kernel-backend reference`` swaps the
arithmetic engine of the whole stack without touching the hardware model's
traffic accounting. CLI surfaces derive their choices from
:func:`backend_choices`, which also lists lazily-probed names, so
``--kernel-backend compiled`` is always accepted and degrades cleanly.
"""

from __future__ import annotations

import sys
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple, Union

import numpy as np

from repro.errors import KernelError, ShapeError


def check_spmm_shapes(a_shape: Tuple[int, ...], b: np.ndarray) -> None:
    """Validate the dense operand of ``A @ B`` against ``A``'s shape."""
    if b.ndim != 2:
        raise ShapeError("dense operand must be 2-D")
    if a_shape[1] != b.shape[0]:
        raise ShapeError(
            f"cannot multiply {a_shape} by {b.shape}: inner dims differ"
        )


class KernelBackend:
    """One implementation of the SpMM + segment-reduce kernel family.

    Sparse operands are anything with ``shape`` / ``indptr`` / ``indices`` /
    ``data`` attributes — both this package's :class:`~repro.sparse.csr.CSRMatrix`
    / :class:`~repro.sparse.csc.CSCMatrix` containers and scipy's
    ``csr_matrix`` / ``csc_matrix`` qualify, so callers never convert.
    """

    name: str = "abstract"

    # -- product-order SpMM kernels ------------------------------------
    def spmm_row_product(self, a, b: np.ndarray) -> np.ndarray:
        """Row-wise-product SpMM of a CSR operand (emit whole output rows)."""
        raise NotImplementedError

    def spmm_column_product(self, a, b: np.ndarray) -> np.ndarray:
        """Column-wise-product SpMM of a CSC operand (distributed aggregation)."""
        raise NotImplementedError

    def spmm(self, a, b: np.ndarray) -> np.ndarray:
        """Dispatch on storage format: CSR -> row order, CSC -> column order."""
        fmt = getattr(a, "format", None)
        if fmt == "csr" or _looks_like(a, "CSRMatrix"):
            return self.spmm_row_product(a, b)
        if fmt == "csc" or _looks_like(a, "CSCMatrix"):
            return self.spmm_column_product(a, b)
        if fmt is not None:  # other scipy formats: canonicalize to CSR
            return self.spmm_row_product(a.tocsr(), b)
        raise TypeError(f"unsupported sparse operand type {type(a).__name__}")

    def spmm_batch(
        self, mats: Sequence, denses: Sequence[np.ndarray]
    ) -> List[np.ndarray]:
        """SpMM over paired (sparse, dense) operands, one output per pair."""
        if len(mats) != len(denses):
            raise ShapeError("spmm_batch needs one dense operand per matrix")
        return [self.spmm(a, b) for a, b in zip(mats, denses)]

    # -- segment primitives (the training-side scatter/gather family) --
    def segment_sum(
        self, values: np.ndarray, segments: np.ndarray, num_segments: int
    ) -> np.ndarray:
        """Sum rows of ``values`` into ``out[segments[e]]`` (1-D or 2-D)."""
        raise NotImplementedError

    def segment_max(
        self, values: np.ndarray, segments: np.ndarray, num_segments: int
    ) -> np.ndarray:
        """Per-segment elementwise max; empty segments stay ``-inf``."""
        out = np.full((num_segments,) + values.shape[1:], -np.inf)
        np.maximum.at(out, segments, values)
        return out

    def coo_spmm(
        self,
        weights: np.ndarray,
        rows: np.ndarray,
        cols: np.ndarray,
        x: np.ndarray,
        num_rows: int,
    ) -> np.ndarray:
        """Edge-weighted aggregation ``out[rows[e]] += weights[e] * x[cols[e]]``."""
        raise NotImplementedError


def _looks_like(a, cls_name: str) -> bool:
    # Avoid importing the containers here (they sit below this package).
    return type(a).__name__ == cls_name


# ----------------------------------------------------------------------
# registry
# ----------------------------------------------------------------------
_REGISTRY: Dict[str, KernelBackend] = {}
#: Lazily-probed backends: name -> (loader, fallback name). The loader
#: runs at most once per process, on first resolution — never at import,
#: so a CLI invocation that never touches the tier pays nothing.
_LAZY: Dict[str, Tuple[Callable[[], object], str]] = {}
#: Probed-and-unavailable backends: name -> (fallback name, reason).
_FALLBACKS: Dict[str, Tuple[str, str]] = {}
#: Fallbacks already announced on stderr (one line per process, not per
#: resolution — resolution happens inside hot loops).
_FALLBACKS_NOTED: Set[str] = set()
_DEFAULT_NAME = "vectorized"

BackendLike = Union[None, str, KernelBackend]


def register_backend(backend: KernelBackend) -> KernelBackend:
    """Add ``backend`` to the registry under ``backend.name``."""
    if not backend.name or backend.name == "abstract":
        raise KernelError("kernel backends must define a concrete name")
    _REGISTRY[backend.name] = backend
    return backend


def register_lazy_backend(
    name: str, loader: Callable[[], object], fallback: str
) -> None:
    """Register ``name`` to be built by ``loader`` on first resolution.

    ``loader`` returns either a ready :class:`KernelBackend` (which then
    registers normally) or a string reason why the tier is unavailable —
    in which case ``name`` becomes a fallback alias of ``fallback`` for
    the rest of the process, announced once on stderr. A loader that
    raises is treated like a reason (the probe is exactly where a broken
    JIT toolchain should surface, as a degrade instead of a crash).
    """
    _LAZY[name] = (loader, fallback)


def available_backends() -> Tuple[str, ...]:
    """Concretely registered backend names, sorted.

    Lazily-probed tiers appear here only after a successful probe; use
    :func:`backend_choices` for the set of names that can be *requested*.
    """
    return tuple(sorted(_REGISTRY))


def backend_choices() -> Tuple[str, ...]:
    """Every requestable backend name, sorted — registered, lazily
    probed, and probed-but-falling-back alike. CLI ``choices=`` must use
    this (never a literal list): a request for an unavailable tier is
    still valid, it just resolves to the tier's fallback."""
    return tuple(sorted(set(_REGISTRY) | set(_LAZY) | set(_FALLBACKS)))


def _resolve_lazy(name: str) -> Optional[KernelBackend]:
    """Run a pending lazy loader; register or record the fallback."""
    loader, fallback = _LAZY.pop(name)
    try:
        built = loader()
    except Exception as exc:  # repro: lint-ok[except-swallow] — the
        # reason is printed as the fallback note just below.
        built = f"{type(exc).__name__}: {exc}"
    if isinstance(built, KernelBackend):
        return register_backend(built)
    _FALLBACKS[name] = (fallback, str(built))
    return None


def get_backend(backend: BackendLike = None) -> KernelBackend:
    """Resolve ``backend`` (name, instance, or None for the default)."""
    if backend is None:
        backend = _DEFAULT_NAME
    if isinstance(backend, KernelBackend):
        return backend
    if backend in _REGISTRY:
        return _REGISTRY[backend]
    if backend in _LAZY:
        built = _resolve_lazy(backend)
        if built is not None:
            return built
    if backend in _FALLBACKS:
        fallback, reason = _FALLBACKS[backend]
        if backend not in _FALLBACKS_NOTED:
            _FALLBACKS_NOTED.add(backend)
            print(
                f"repro: kernel backend {backend!r} unavailable "
                f"({reason}); falling back to {fallback!r}",
                file=sys.stderr,
            )
        return _REGISTRY[fallback]
    raise KernelError(
        f"unknown kernel backend {backend!r}; "
        f"available: {', '.join(backend_choices())}"
    )


def _rearm_lazy_backend(
    name: str, loader: Callable[[], object], fallback: str
) -> None:
    """Forget any probe outcome for ``name`` and re-register its loader.

    Test seam: lets a test force the fallback path (loader returning a
    reason string) and then restore the real loader, regardless of
    whether the tier is genuinely available on this machine.
    """
    _REGISTRY.pop(name, None)
    _FALLBACKS.pop(name, None)
    _FALLBACKS_NOTED.discard(name)
    _LAZY[name] = (loader, fallback)


def default_backend() -> KernelBackend:
    """The backend used when callers do not name one."""
    return get_backend(None)


def set_default_backend(backend: Union[str, KernelBackend]) -> str:
    """Set the process-wide default backend; returns the previous name."""
    global _DEFAULT_NAME
    previous = _DEFAULT_NAME
    _DEFAULT_NAME = get_backend(backend).name
    return previous


# Populate the registry (imports at the bottom to avoid cycles: the backend
# modules import the helpers defined above).
from repro.sparse.kernels.reference import ReferenceBackend  # noqa: E402
from repro.sparse.kernels.vectorized import VectorizedBackend  # noqa: E402
from repro.sparse.kernels.tiled import (  # noqa: E402
    TiledBackend,
    TileProfile,
    TileWork,
    layout_tile_profile,
    tiled_spmm,
)
from repro.sparse.kernels.compiled import (  # noqa: E402
    CompiledBackend,
    load_compiled_backend,
)

register_backend(ReferenceBackend())
register_backend(VectorizedBackend())
register_backend(TiledBackend())
# The JIT tier registers lazily: its loader imports numba and compiles
# the probe kernels only when someone actually asks for "compiled".
register_lazy_backend("compiled", load_compiled_backend,
                      fallback="vectorized")

__all__ = [
    "BackendLike",
    "CompiledBackend",
    "KernelBackend",
    "ReferenceBackend",
    "TileProfile",
    "TileWork",
    "TiledBackend",
    "VectorizedBackend",
    "layout_tile_profile",
    "tiled_spmm",
    "available_backends",
    "backend_choices",
    "check_spmm_shapes",
    "default_backend",
    "get_backend",
    "load_compiled_backend",
    "register_backend",
    "register_lazy_backend",
    "set_default_backend",
]
