"""The ``compiled`` kernel tier: numba-JIT CSR/CSC segment-reduce SpMM.

The ``vectorized`` backend already runs every kernel in compiled code —
scipy's generic sparse routines — but pays per-call overhead it cannot
shed: container wrapping, format validation, dispatch, and a
single-threaded matvec loop. This backend JIT-compiles the two
product-order SpMM loops themselves (LLVM via numba), parallelized with
``prange`` over fixed-size blocks, and feeds the raw ``indptr`` /
``indices`` / ``data`` arrays straight in.

Parity contract (the reason this tier is allowed to exist):

* ``fastmath`` stays **off** and both kernels accumulate every output
  element in exactly the order scipy's reference loops do — rows outer,
  nonzeros inner for the CSR row product; columns outer, nonzeros inner
  for the CSC column product. Parallelism never reorders an
  accumulation: the row product distributes whole output rows across
  threads, and the column product distributes *feature columns* (each
  thread replays the full column-order scatter for its slice of the
  feature dimension). Results are therefore numerically identical to
  ``vectorized`` — exact for integer/tile accounting, and within
  float64 round-off (<= 1e-10 relative) for float accumulation — so the
  functional emulator's ``ExecutionTrace`` and every content-addressed
  cache key stay valid whichever of the two backends produced them.
* Everything that is not a product-order SpMM (segment reductions,
  ``coo_spmm``, the block-diagonal batch path's bookkeeping) is
  inherited from :class:`~repro.sparse.kernels.vectorized.VectorizedBackend`
  unchanged; the batch path's one compiled product dispatches back
  through :meth:`spmm`, so a whole micro-batch runs through the JIT
  kernel as a single dispatch.

Availability is **probed at first resolution**, never at import: numba
is imported behind a guard inside :func:`_build_kernels`, and a tiny
integer-exact probe problem must compile and reproduce the dense answer
bit-for-bit. If the import or the probe fails,
:func:`load_compiled_backend` reports the reason and the kernel registry
registers ``compiled`` as a *fallback alias* of ``vectorized`` — callers
(CLI ``--kernel-backend compiled``, serve queries, sweep grids) keep
working with identical numerics and identical artifact bytes, with a
one-line stderr note the first time the fallback resolves.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.sparse.kernels import check_spmm_shapes
from repro.sparse.kernels.vectorized import VectorizedBackend

#: Rows per parallel work item of the CSR row-product kernel. Blocks keep
#: the prange trip count small (scheduler overhead) while each item stays
#: large enough to amortize a thread wake-up on the fig10-scale graphs.
ROW_BLOCK = 64

#: Feature columns per parallel work item of the CSC column-product
#: kernel. Each thread replays the whole column-order scatter for its
#: slice of the feature dimension, so no two threads ever touch the same
#: output element and the per-element accumulation order is exactly the
#: serial one.
COL_BLOCK = 4

# Probe state: the jitted (csr, csc) kernel pair once built, or a sticky
# human-readable reason why building them is impossible in this process.
_KERNELS: Optional[Tuple] = None
_UNAVAILABLE: Optional[str] = None


def _build_kernels() -> Optional[Tuple]:
    """JIT-compile and probe the kernel pair; None (with a recorded
    reason) when numba is absent or the probe fails."""
    global _KERNELS, _UNAVAILABLE
    if _KERNELS is not None or _UNAVAILABLE is not None:
        return _KERNELS
    try:
        from numba import njit, prange
    except Exception as exc:  # repro: lint-ok[except-swallow] — the reason
        # is surfaced by the registry's one-line fallback note on stderr.
        _UNAVAILABLE = f"numba not importable ({type(exc).__name__}: {exc})"
        return None

    try:
        @njit(parallel=True, fastmath=False, cache=True)
        def csr_block_spmm(indptr, indices, data, b, out, block):
            n_rows = out.shape[0]
            width = b.shape[1]
            n_blocks = (n_rows + block - 1) // block
            for bi in prange(n_blocks):
                lo = bi * block
                hi = min(lo + block, n_rows)
                for i in range(lo, hi):
                    for jj in range(indptr[i], indptr[i + 1]):
                        v = data[jj]
                        col = indices[jj]
                        for k in range(width):
                            out[i, k] += v * b[col, k]

        @njit(parallel=True, fastmath=False, cache=True)
        def csc_block_spmm(indptr, indices, data, b, out, block):
            n_cols = b.shape[0]
            width = b.shape[1]
            n_blocks = (width + block - 1) // block
            for bi in prange(n_blocks):
                klo = bi * block
                khi = min(klo + block, width)
                for j in range(n_cols):
                    for jj in range(indptr[j], indptr[j + 1]):
                        v = data[jj]
                        row = indices[jj]
                        for k in range(klo, khi):
                            out[row, k] += v * b[j, k]

        # Integer-exact probe: a 2x2 operand against a dense reference.
        # Compiling here (not on the first real workload) turns a broken
        # toolchain into a clean fallback instead of a mid-run crash.
        indptr = np.array([0, 1, 3], dtype=np.int64)
        indices = np.array([1, 0, 1], dtype=np.int64)
        data = np.array([2.0, 3.0, 4.0])
        dense = np.zeros((2, 2))
        dense[0, 1] = 2.0
        dense[1, 0] = 3.0
        dense[1, 1] = 4.0
        b = np.array([[1.0, 10.0], [2.0, 20.0]])
        out = np.zeros((2, 2))
        csr_block_spmm(indptr, indices, data, b, out, ROW_BLOCK)
        if not np.array_equal(out, dense @ b):
            raise AssertionError("CSR probe kernel produced wrong numbers")
        out = np.zeros((2, 2))
        csc_block_spmm(indptr, indices, data, b, out, COL_BLOCK)
        if not np.array_equal(out, dense.T @ b):
            raise AssertionError("CSC probe kernel produced wrong numbers")
    except Exception as exc:  # repro: lint-ok[except-swallow] — ditto: the
        # registry prints the fallback note naming this reason.
        _UNAVAILABLE = (
            f"probe kernel failed to compile/run "
            f"({type(exc).__name__}: {exc})"
        )
        return None
    _KERNELS = (csr_block_spmm, csc_block_spmm)
    return _KERNELS


def numba_available() -> bool:
    """True when the JIT kernels compiled and passed the probe."""
    return _build_kernels() is not None


def unavailable_reason() -> Optional[str]:
    """Why the compiled tier is unavailable in this process (or None)."""
    _build_kernels()
    return _UNAVAILABLE


class CompiledBackend(VectorizedBackend):
    """numba-JIT product-order SpMM; numerically identical to
    ``vectorized``, everything else inherited from it."""

    name = "compiled"

    def __init__(self, kernels: Tuple):
        self._csr_spmm, self._csc_spmm = kernels

    @staticmethod
    def _operands(a, b: np.ndarray):
        check_spmm_shapes(a.shape, b)
        # float64 throughout: the whole numerics stack computes in
        # float64, and a single dtype keeps the JIT specialization count
        # (and first-call compile pauses) at one per index width.
        data = np.ascontiguousarray(np.asarray(a.data, dtype=np.float64))
        dense = np.ascontiguousarray(np.asarray(b, dtype=np.float64))
        indptr = np.ascontiguousarray(np.asarray(a.indptr, dtype=np.int64))
        indices = np.ascontiguousarray(np.asarray(a.indices, dtype=np.int64))
        return indptr, indices, data, dense

    def spmm_row_product(self, a, b: np.ndarray) -> np.ndarray:
        indptr, indices, data, dense = self._operands(a, b)
        out = np.zeros((a.shape[0], dense.shape[1]))
        self._csr_spmm(indptr, indices, data, dense, out, ROW_BLOCK)
        return out

    def spmm_column_product(self, a, b: np.ndarray) -> np.ndarray:
        indptr, indices, data, dense = self._operands(a, b)
        out = np.zeros((a.shape[0], dense.shape[1]))
        self._csc_spmm(indptr, indices, data, dense, out, COL_BLOCK)
        return out


def load_compiled_backend():
    """Lazy-registration loader for the kernel registry.

    Returns a ready :class:`CompiledBackend` when the JIT tier probes
    healthy, else the reason string the registry folds into its
    fallback note.
    """
    kernels = _build_kernels()
    if kernels is None:
        return _UNAVAILABLE or "unavailable"
    return CompiledBackend(kernels)
