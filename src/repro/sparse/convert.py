"""Conversions between this package's sparse containers and scipy.sparse."""

from __future__ import annotations

from typing import Union

import numpy as np
import scipy.sparse as sp

from repro.sparse.coo import COOMatrix
from repro.sparse.csc import CSCMatrix
from repro.sparse.csr import CSRMatrix

AnySparse = Union[COOMatrix, CSRMatrix, CSCMatrix]


def from_scipy(mat: sp.spmatrix, fmt: str = "coo") -> AnySparse:
    """Convert a scipy sparse matrix into one of our containers.

    ``fmt`` is one of ``"coo"``, ``"csr"``, ``"csc"``.
    """
    coo = sp.coo_matrix(mat)
    ours = COOMatrix(
        coo.shape,
        coo.row.astype(np.int64),
        coo.col.astype(np.int64),
        coo.data.astype(np.float64),
    )
    if fmt == "coo":
        return ours
    if fmt == "csr":
        return CSRMatrix.from_coo(ours)
    if fmt == "csc":
        return CSCMatrix.from_coo(ours)
    raise ValueError(f"unknown sparse format {fmt!r}")


def to_scipy(mat: AnySparse) -> sp.coo_matrix:
    """Convert any of our containers into a scipy ``coo_matrix``."""
    coo = mat if isinstance(mat, COOMatrix) else mat.to_coo()
    return sp.coo_matrix((coo.data, (coo.row, coo.col)), shape=coo.shape)
