"""Sparse matrix formats with explicit storage accounting.

The GCoD accelerator reasons about formats, not just values: the denser
branch consumes COO/dense inputs while the sparser branch consumes CSC
because of its smaller storage footprint (Sec. V-B). This package provides
COO / CSR / CSC containers whose byte costs are first-class, plus reference
SpMM kernels in both the row-wise and column-wise product orders used by the
efficiency- and resource-aware pipelines (Fig. 7).
"""

from repro.sparse.coo import COOMatrix
from repro.sparse.csr import CSRMatrix
from repro.sparse.csc import CSCMatrix
from repro.sparse.convert import from_scipy, to_scipy
from repro.sparse.ops import (
    spmm_row_product,
    spmm_column_product,
    spmm,
)

__all__ = [
    "COOMatrix",
    "CSRMatrix",
    "CSCMatrix",
    "from_scipy",
    "to_scipy",
    "spmm_row_product",
    "spmm_column_product",
    "spmm",
]
