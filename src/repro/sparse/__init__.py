"""Sparse matrix formats with explicit storage accounting.

The GCoD accelerator reasons about formats, not just values: the denser
branch consumes COO/dense inputs while the sparser branch consumes CSC
because of its smaller storage footprint (Sec. V-B). This package provides
COO / CSR / CSC containers whose byte costs are first-class, plus SpMM
kernels in both the row-wise and column-wise product orders used by the
efficiency- and resource-aware pipelines (Fig. 7).

Kernel implementations are pluggable: :mod:`repro.sparse.kernels` registers
a loop-exact ``reference`` backend (ground truth), a batched ``vectorized``
backend (the default), and a block-granular ``tiled`` backend that mirrors
the accelerator's chunk schedule and can report per-tile work profiles —
selected per call or process-wide.
"""

from repro.sparse.coo import COOMatrix
from repro.sparse.csr import CSRMatrix
from repro.sparse.csc import CSCMatrix
from repro.sparse.convert import from_scipy, to_scipy
from repro.sparse.kernels import (
    KernelBackend,
    available_backends,
    get_backend,
    set_default_backend,
)
from repro.sparse.ops import (
    spmm_row_product,
    spmm_column_product,
    spmm,
    spmm_batch,
)

__all__ = [
    "COOMatrix",
    "CSRMatrix",
    "CSCMatrix",
    "KernelBackend",
    "available_backends",
    "from_scipy",
    "get_backend",
    "set_default_backend",
    "to_scipy",
    "spmm_row_product",
    "spmm_column_product",
    "spmm",
    "spmm_batch",
]
