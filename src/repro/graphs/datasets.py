"""Synthetic stand-ins for the paper's six datasets (Tab. III).

No network access is available, so each dataset is generated to match the
published statistics: node count, edge count (via average degree), feature
dimension, and class count. A ``scale`` parameter shrinks node counts and
feature dimensions proportionally for fast experimentation; the *paper-scale*
numbers are always recorded in ``Graph.meta["paper_stats"]`` so the hardware
model can also evaluate full-size workloads analytically.

Default scales keep every dataset trainable on a laptop within seconds while
preserving the relative ordering the paper's evaluation depends on
(Cora < CiteSeer < Pubmed < NELL < ArXiv < Reddit; Reddit is ~2 orders of
magnitude denser than the citation graphs).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional

from repro.errors import UnknownDatasetError
from repro.graphs.generators import powerlaw_community_graph
from repro.graphs.graph import Graph
from repro.utils.rng import SeedLike, ensure_rng


@dataclass(frozen=True)
class DatasetSpec:
    """Published statistics of one dataset (Tab. III) plus generator knobs."""

    name: str
    nodes: int
    edges: int
    features: int
    classes: int
    storage_mb: float
    intra_prob: float = 0.8
    default_scale: float = 1.0
    feature_scale_floor: int = 32

    @property
    def avg_degree(self) -> float:
        """Average undirected degree implied by the published counts."""
        return 2.0 * self.edges / self.nodes

    def scaled(self, scale: float) -> Dict[str, int]:
        """Node/feature counts after applying ``scale`` (degree preserved)."""
        nodes = max(int(round(self.nodes * scale)), 10 * self.classes)
        features = max(
            int(round(self.features * min(1.0, scale * 4))),
            self.feature_scale_floor,
        )
        return {"nodes": nodes, "features": features}


#: Published statistics from Tab. III of the paper.
DATASET_SPECS: Dict[str, DatasetSpec] = {
    "cora": DatasetSpec(
        "cora", 2708, 5429, 1433, 7, 15.0, intra_prob=0.81, default_scale=1.0
    ),
    "citeseer": DatasetSpec(
        "citeseer", 3312, 4372, 3703, 6, 47.0, intra_prob=0.74, default_scale=1.0
    ),
    "pubmed": DatasetSpec(
        "pubmed", 19717, 44338, 500, 3, 38.0, intra_prob=0.80, default_scale=0.25
    ),
    "nell": DatasetSpec(
        "nell", 65755, 266144, 5414, 210, 1300.0, intra_prob=0.9,
        default_scale=0.05, feature_scale_floor=64,
    ),
    "ogbn-arxiv": DatasetSpec(
        "ogbn-arxiv", 169343, 1166243, 128, 40, 103.0, intra_prob=0.65,
        default_scale=0.02,
    ),
    "reddit": DatasetSpec(
        "reddit", 232965, 114615892, 602, 41, 1800.0, intra_prob=0.7,
        default_scale=0.01,
    ),
}


def load_dataset(
    name: str, scale: Optional[float] = None, seed: SeedLike = 0
) -> Graph:
    """Generate the named dataset at ``scale`` (defaults per spec).

    The returned graph's ``meta`` carries the spec, the applied scale, and
    the paper-scale statistics.
    """
    key = name.lower()
    if key not in DATASET_SPECS:
        raise UnknownDatasetError(
            f"unknown dataset {name!r}; choose from {sorted(DATASET_SPECS)}"
        )
    spec = DATASET_SPECS[key]
    scale = spec.default_scale if scale is None else scale
    sizes = spec.scaled(scale)
    rng = ensure_rng(seed)
    # Reddit's published average degree (~984 stored nnz/node) is far above
    # what a scaled-down graph can support; cap it at the scaled node count.
    avg_degree = min(spec.avg_degree, max(2.0, sizes["nodes"] * 0.05))
    graph = powerlaw_community_graph(
        num_nodes=sizes["nodes"],
        avg_degree=avg_degree,
        num_features=sizes["features"],
        num_classes=spec.classes,
        intra_prob=spec.intra_prob,
        name=spec.name,
        rng=rng,
    )
    graph.meta.update(
        {
            "spec": spec,
            "scale": scale,
            # Recorded so paper-scale workload extraction can measure edge
            # pruning relative to the untouched generated graph.
            "generated_nnz": int(graph.adj.nnz),
            "paper_stats": {
                "nodes": spec.nodes,
                "edges": spec.edges,
                "features": spec.features,
                "classes": spec.classes,
                "storage_mb": spec.storage_mb,
            },
        }
    )
    return graph


def _loader(name: str) -> Callable[..., Graph]:
    def load(scale: Optional[float] = None, seed: SeedLike = 0) -> Graph:
        return load_dataset(name, scale=scale, seed=seed)

    load.__name__ = name.replace("-", "_")
    load.__doc__ = f"Generate the synthetic {name} dataset (see Tab. III)."
    return load


cora = _loader("cora")
citeseer = _loader("citeseer")
pubmed = _loader("pubmed")
nell = _loader("nell")
ogbn_arxiv = _loader("ogbn-arxiv")
reddit = _loader("reddit")
