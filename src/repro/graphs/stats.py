"""Graph statistics used for reporting and for the hardware workload model."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graphs.graph import Graph


@dataclass(frozen=True)
class GraphStats:
    """Summary statistics of a graph (cf. Tab. III)."""

    name: str
    nodes: int
    edges: int
    features: int
    classes: int
    avg_degree: float
    max_degree: int
    sparsity: float
    storage_mb: float
    degree_gini: float

    def as_row(self) -> tuple:
        """Row for the Tab. III-style dataset summary."""
        return (
            self.name,
            self.nodes,
            self.edges,
            self.features,
            self.classes,
            f"{self.avg_degree:.1f}",
            self.max_degree,
            f"{self.sparsity * 100:.3f}%",
            f"{self.storage_mb:.1f}",
        )


def gini(values: np.ndarray) -> float:
    """Gini coefficient of a non-negative array.

    Used as the scalar "irregularity" measure: power-law degree sequences
    have Gini well above uniform ones, and GCoD's class binning reduces the
    *within-class* Gini, which is what balances chunk workloads.
    """
    v = np.sort(np.asarray(values, dtype=np.float64))
    n = v.shape[0]
    if n == 0 or v.sum() == 0:
        return 0.0
    cum = np.cumsum(v)
    return float((n + 1 - 2 * (cum / cum[-1]).sum()) / n)


def compute_stats(graph: Graph) -> GraphStats:
    """Compute a :class:`GraphStats` summary for ``graph``."""
    degrees = graph.degrees()
    return GraphStats(
        name=graph.name,
        nodes=graph.num_nodes,
        edges=graph.num_edges,
        features=graph.num_features,
        classes=graph.num_classes,
        avg_degree=float(degrees.mean()) if degrees.size else 0.0,
        max_degree=int(degrees.max()) if degrees.size else 0,
        sparsity=graph.sparsity(),
        storage_mb=graph.storage_mb(),
        degree_gini=gini(degrees),
    )
