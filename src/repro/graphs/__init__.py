"""Graph substrate: containers, synthetic datasets, normalization, stats.

The paper evaluates on six public datasets (Tab. III). This environment has
no network access, so ``repro.graphs.datasets`` generates synthetic graphs
matched to each dataset's published statistics (node/edge counts, feature
dimension, class count, power-law degree distribution, community structure),
optionally scaled down for laptop runtimes. Everything downstream — the
GCoD algorithm, the partitioner, and the hardware model — consumes only the
``Graph`` container defined here.
"""

from repro.graphs.graph import Graph
from repro.graphs.generators import powerlaw_community_graph
from repro.graphs.datasets import (
    DATASET_SPECS,
    DatasetSpec,
    load_dataset,
    cora,
    citeseer,
    pubmed,
    nell,
    ogbn_arxiv,
    reddit,
)
from repro.graphs.normalize import symmetric_normalize, add_self_loops, row_normalize
from repro.graphs.stats import GraphStats, compute_stats
from repro.graphs.reorder import permute_graph, identity_permutation, rcm_permutation

__all__ = [
    "Graph",
    "powerlaw_community_graph",
    "DATASET_SPECS",
    "DatasetSpec",
    "load_dataset",
    "cora",
    "citeseer",
    "pubmed",
    "nell",
    "ogbn_arxiv",
    "reddit",
    "symmetric_normalize",
    "add_self_loops",
    "row_normalize",
    "GraphStats",
    "compute_stats",
    "permute_graph",
    "identity_permutation",
    "rcm_permutation",
]
