"""The ``Graph`` container shared by every subsystem in the package."""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Optional

import numpy as np
import scipy.sparse as sp

from repro.errors import ShapeError


@dataclass
class Graph:
    """An attributed graph for semi-supervised node classification.

    Attributes
    ----------
    adj:
        Binary (or weighted, after graph tuning) adjacency matrix in scipy
        CSR form, ``N x N``. Stored *without* self-loops; normalization adds
        them explicitly.
    features:
        Node feature matrix ``X``, ``N x F`` float64.
    labels:
        Integer class labels, length ``N``.
    train_mask / val_mask / test_mask:
        Boolean masks selecting the transductive splits.
    name:
        Dataset name, used for reporting.
    meta:
        Free-form metadata; dataset generators record the *paper-scale*
        statistics here so the hardware model can reason about full-size
        workloads even when the materialized graph is scaled down.
    """

    adj: sp.csr_matrix
    features: np.ndarray
    labels: np.ndarray
    train_mask: np.ndarray
    val_mask: np.ndarray
    test_mask: np.ndarray
    name: str = "graph"
    meta: Dict = field(default_factory=dict)

    def __post_init__(self):
        self.adj = sp.csr_matrix(self.adj)
        self.features = np.asarray(self.features, dtype=np.float64)
        self.labels = np.asarray(self.labels, dtype=np.int64)
        n = self.adj.shape[0]
        if self.adj.shape[0] != self.adj.shape[1]:
            raise ShapeError("adjacency matrix must be square")
        if self.features.shape[0] != n:
            raise ShapeError(
                f"features have {self.features.shape[0]} rows for {n} nodes"
            )
        if self.labels.shape[0] != n:
            raise ShapeError("labels length must equal number of nodes")
        for mask_name in ("train_mask", "val_mask", "test_mask"):
            mask = np.asarray(getattr(self, mask_name), dtype=bool)
            if mask.shape[0] != n:
                raise ShapeError(f"{mask_name} length must equal number of nodes")
            setattr(self, mask_name, mask)

    @property
    def num_nodes(self) -> int:
        """Number of nodes ``N``."""
        return int(self.adj.shape[0])

    @property
    def num_edges(self) -> int:
        """Number of *undirected* edges ``M`` (stored nnz / 2)."""
        return int(self.adj.nnz // 2)

    @property
    def num_features(self) -> int:
        """Feature dimension ``F``."""
        return int(self.features.shape[1])

    @property
    def num_classes(self) -> int:
        """Number of label classes."""
        return int(self.labels.max()) + 1 if self.labels.size else 0

    def degrees(self) -> np.ndarray:
        """In-degree of every node (row sums of the binary adjacency)."""
        binary = self.adj.copy()
        binary.data = np.ones_like(binary.data)
        return np.asarray(binary.sum(axis=1)).ravel().astype(np.int64)

    def density(self) -> float:
        """Fraction of non-zero entries in the adjacency matrix."""
        n = self.num_nodes
        return self.adj.nnz / float(n * n) if n else 0.0

    def sparsity(self) -> float:
        """1 - density; the paper quotes e.g. 99.989% for Pubmed."""
        return 1.0 - self.density()

    def with_adj(self, adj: sp.spmatrix) -> "Graph":
        """Return a copy of this graph with a replaced adjacency matrix."""
        return replace(self, adj=sp.csr_matrix(adj))

    def validate_symmetric(self, tol: float = 1e-9) -> bool:
        """True if the adjacency is numerically symmetric."""
        diff = self.adj - self.adj.T
        return bool(abs(diff).max() <= tol) if diff.nnz else True

    def storage_mb(self) -> float:
        """Approximate dataset storage in MB (features + adjacency triples).

        Mirrors the "Storage" column of Tab. III: dense features dominate
        for the citation graphs while edges dominate for Reddit.
        """
        feat_bytes = self.features.shape[0] * self.features.shape[1] * 4
        edge_bytes = self.adj.nnz * 12
        return (feat_bytes + edge_bytes) / 1e6
