"""Node reordering: apply permutations and baseline reordering schemes.

GCoD's Step-1 layout *is* a node permutation (group, class, subgraph order);
this module provides the permutation plumbing plus the classic
Reverse-Cuthill-McKee reordering as the "prior graph reordering work"
baseline mentioned in Sec. II.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp
from scipy.sparse.csgraph import reverse_cuthill_mckee

from repro.errors import PartitionError
from repro.graphs.graph import Graph


def identity_permutation(n: int) -> np.ndarray:
    """The do-nothing ordering."""
    return np.arange(n, dtype=np.int64)


def check_permutation(perm: np.ndarray, n: int) -> np.ndarray:
    """Validate that ``perm`` is a permutation of ``range(n)``."""
    perm = np.asarray(perm, dtype=np.int64)
    if perm.shape != (n,) or not np.array_equal(np.sort(perm), np.arange(n)):
        raise PartitionError("not a valid permutation of the node set")
    return perm


def permute_graph(graph: Graph, perm: np.ndarray) -> Graph:
    """Relabel nodes so old node ``perm[i]`` becomes new node ``i``.

    ``perm`` lists old node ids in their new order (new -> old). Features,
    labels and masks are permuted consistently; ``meta`` records the
    composition so the original order can be recovered.
    """
    n = graph.num_nodes
    perm = check_permutation(perm, n)
    inverse = np.empty(n, dtype=np.int64)
    inverse[perm] = np.arange(n)
    coo = graph.adj.tocoo()
    adj = sp.csr_matrix(
        (coo.data, (inverse[coo.row], inverse[coo.col])), shape=(n, n)
    )
    out = Graph(
        adj=adj,
        features=graph.features[perm],
        labels=graph.labels[perm],
        train_mask=graph.train_mask[perm],
        val_mask=graph.val_mask[perm],
        test_mask=graph.test_mask[perm],
        name=graph.name,
        meta=dict(graph.meta),
    )
    prior = graph.meta.get("permutation")
    out.meta["permutation"] = perm if prior is None else np.asarray(prior)[perm]
    return out


def rcm_permutation(graph: Graph) -> np.ndarray:
    """Reverse-Cuthill-McKee ordering (bandwidth-minimizing baseline)."""
    return np.asarray(
        reverse_cuthill_mckee(graph.adj.tocsr(), symmetric_mode=True),
        dtype=np.int64,
    )


def degree_sort_permutation(graph: Graph, descending: bool = True) -> np.ndarray:
    """Order nodes by degree (hub-first by default).

    The classic lightweight reordering for power-law graphs: clusters the
    hub-hub edges into one dense corner. Cheap, but produces no balanced
    blocks — the property GCoD's class/subgraph layout adds on top.
    """
    degrees = graph.degrees()
    order = np.argsort(-degrees if descending else degrees, kind="stable")
    return order.astype(np.int64)


def bfs_community_permutation(graph: Graph, rng=None) -> np.ndarray:
    """Community-locality ordering via BFS from degree-ranked seeds.

    A stand-in for Rabbit-order-style [1] locality reordering: repeatedly
    BFS from the highest-degree unvisited node, emitting nodes in visit
    order so that connected neighbourhoods become contiguous index ranges.
    """
    import collections

    n = graph.num_nodes
    adj = graph.adj.tocsr()
    visited = np.zeros(n, dtype=bool)
    order = np.empty(n, dtype=np.int64)
    pos = 0
    seeds = np.argsort(-graph.degrees(), kind="stable")
    queue = collections.deque()
    for seed in seeds:
        if visited[seed]:
            continue
        queue.append(seed)
        visited[seed] = True
        while queue:
            u = queue.popleft()
            order[pos] = u
            pos += 1
            lo, hi = adj.indptr[u], adj.indptr[u + 1]
            for v in adj.indices[lo:hi]:
                if not visited[v]:
                    visited[v] = True
                    queue.append(v)
    return order


#: The reordering baselines of Sec. II, keyed by name.
REORDERING_BASELINES = {
    "rcm": rcm_permutation,
    "degree-sort": degree_sort_permutation,
    "bfs-community": bfs_community_permutation,
}
