"""Synthetic graph generators with power-law degrees and community structure.

Real-world GCN graphs combine two properties that GCoD exploits:

* node degrees follow a power law (Sec. I), which makes per-node workloads
  wildly imbalanced and motivates degree-class binning;
* edges cluster inside communities, which is what lets METIS partitioning
  plus polarization concentrate non-zeros into diagonal blocks.

``powerlaw_community_graph`` produces graphs with both, via a degree-
corrected stochastic block model (Chung–Lu sampling with community mixing),
plus bag-of-words-style features whose active dimensions correlate with the
node's community so that GCN training is a meaningful task, not noise
fitting.
"""

from __future__ import annotations

from typing import Optional

import numpy as np
import scipy.sparse as sp

from repro.graphs.graph import Graph
from repro.utils.rng import SeedLike, ensure_rng


def sample_powerlaw_degrees(
    n: int,
    avg_degree: float,
    exponent: float = 2.1,
    min_degree: int = 1,
    rng: SeedLike = None,
) -> np.ndarray:
    """Sample a degree sequence from a truncated discrete power law.

    The sequence is rescaled so its mean matches ``avg_degree`` while keeping
    the heavy tail (a few hub nodes with degree >> mean).
    """
    rng = ensure_rng(rng)
    if n <= 0:
        return np.zeros(0, dtype=np.int64)
    # Inverse-CDF sampling of P(d) ~ d^-exponent on [min_degree, n).
    u = rng.random(n)
    dmin = float(min_degree)
    dmax = float(max(n - 1, min_degree + 1))
    a = 1.0 - exponent
    raw = (u * (dmax**a - dmin**a) + dmin**a) ** (1.0 / a)
    scale = avg_degree / max(raw.mean(), 1e-12)
    degrees = np.maximum(np.round(raw * scale), min_degree).astype(np.int64)
    return np.minimum(degrees, n - 1)


def _sample_edges(
    rng: np.random.Generator,
    communities: np.ndarray,
    degrees: np.ndarray,
    intra_prob: float,
    target_edges: int,
) -> np.ndarray:
    """Draw (u, v) endpoint pairs; intra-community with prob ``intra_prob``."""
    n = communities.shape[0]
    n_comm = int(communities.max()) + 1
    members = [np.nonzero(communities == c)[0] for c in range(n_comm)]
    weights = degrees.astype(np.float64)
    global_p = weights / weights.sum()
    member_p = []
    for nodes in members:
        w = weights[nodes]
        member_p.append(w / w.sum() if w.sum() > 0 else None)

    # Oversample: duplicates and self-loops are dropped afterwards.
    n_draw = int(target_edges * 1.6) + 16
    u = rng.choice(n, size=n_draw, p=global_p)
    v = np.empty(n_draw, dtype=np.int64)
    intra = rng.random(n_draw) < intra_prob
    # Inter-community endpoints: degree-weighted over the whole graph.
    v[~intra] = rng.choice(n, size=int((~intra).sum()), p=global_p)
    # Intra-community endpoints: degree-weighted within u's community.
    for c in range(n_comm):
        sel = intra & (communities[u] == c)
        count = int(sel.sum())
        if count and member_p[c] is not None:
            v[sel] = rng.choice(members[c], size=count, p=member_p[c])
        elif count:
            v[sel] = u[sel]
    return np.stack([u, v], axis=1)


def powerlaw_community_graph(
    num_nodes: int,
    avg_degree: float,
    num_features: int,
    num_classes: int,
    intra_prob: float = 0.8,
    exponent: float = 2.1,
    feature_density: float = 0.02,
    train_per_class: int = 20,
    val_fraction: float = 0.15,
    test_fraction: float = 0.3,
    name: str = "synthetic",
    rng: SeedLike = None,
) -> Graph:
    """Generate a labelled, attributed power-law community graph.

    Parameters mirror the knobs the paper's datasets differ in: scale
    (``num_nodes`` / ``avg_degree``), feature width (``num_features``), class
    count, and clustering strength (``intra_prob``).
    """
    rng = ensure_rng(rng)
    communities = rng.integers(0, num_classes, size=num_nodes)
    degrees = sample_powerlaw_degrees(
        num_nodes, avg_degree, exponent=exponent, rng=rng
    )
    target_edges = max(int(degrees.sum() // 2), num_nodes)
    pairs = _sample_edges(rng, communities, degrees, intra_prob, target_edges)
    pairs = pairs[pairs[:, 0] != pairs[:, 1]]
    # Symmetrize and deduplicate.
    lo = np.minimum(pairs[:, 0], pairs[:, 1])
    hi = np.maximum(pairs[:, 0], pairs[:, 1])
    uniq = np.unique(lo * num_nodes + hi)
    lo, hi = uniq // num_nodes, uniq % num_nodes
    rows = np.concatenate([lo, hi])
    cols = np.concatenate([hi, lo])
    adj = sp.csr_matrix(
        (np.ones(rows.shape[0]), (rows, cols)), shape=(num_nodes, num_nodes)
    )
    # Guarantee no isolated nodes: connect each to a random same-community
    # node (or any node) so normalization and METIS stay well-posed.
    isolated = np.nonzero(np.asarray(adj.sum(axis=1)).ravel() == 0)[0]
    if isolated.size:
        partners = rng.integers(0, num_nodes, size=isolated.size)
        partners = np.where(partners == isolated, (partners + 1) % num_nodes, partners)
        fix = sp.csr_matrix(
            (
                np.ones(2 * isolated.size),
                (
                    np.concatenate([isolated, partners]),
                    np.concatenate([partners, isolated]),
                ),
            ),
            shape=(num_nodes, num_nodes),
        )
        adj = adj + fix
    adj.data = np.ones_like(adj.data)

    features = _community_features(
        rng, communities, num_classes, num_features, feature_density
    )
    train_mask, val_mask, test_mask = _planetoid_split(
        rng, communities, num_classes, train_per_class, val_fraction, test_fraction
    )
    return Graph(
        adj=adj,
        features=features,
        labels=communities,
        train_mask=train_mask,
        val_mask=val_mask,
        test_mask=test_mask,
        name=name,
    )


def _community_features(
    rng: np.random.Generator,
    communities: np.ndarray,
    num_classes: int,
    num_features: int,
    density: float,
) -> np.ndarray:
    """Sparse bag-of-words features whose support depends on the community."""
    n = communities.shape[0]
    active_per_node = max(1, int(round(num_features * density)))
    # Each community prefers a contiguous band of the vocabulary plus a
    # shared background, mimicking topic-skewed citation abstracts.
    band = max(1, num_features // max(num_classes, 1))
    features = np.zeros((n, num_features), dtype=np.float64)
    for c in range(num_classes):
        nodes = np.nonzero(communities == c)[0]
        if not nodes.size:
            continue
        lo = c * band
        band_ids = (lo + rng.integers(0, band, size=(nodes.size, active_per_node))) % (
            num_features
        )
        noise_ids = rng.integers(
            0, num_features, size=(nodes.size, max(1, active_per_node // 3))
        )
        for i, node in enumerate(nodes):
            features[node, band_ids[i]] = 1.0
            features[node, noise_ids[i]] = 1.0
    return features


def _planetoid_split(
    rng: np.random.Generator,
    labels: np.ndarray,
    num_classes: int,
    train_per_class: int,
    val_fraction: float,
    test_fraction: float,
) -> tuple:
    """Planetoid-style split: fixed train nodes per class, then val/test."""
    n = labels.shape[0]
    train_mask = np.zeros(n, dtype=bool)
    for c in range(num_classes):
        nodes = np.nonzero(labels == c)[0]
        take = min(train_per_class, max(1, nodes.size // 2))
        if nodes.size:
            train_mask[rng.choice(nodes, size=take, replace=False)] = True
    remaining = np.nonzero(~train_mask)[0]
    rng.shuffle(remaining)
    n_val = int(n * val_fraction)
    n_test = int(n * test_fraction)
    val_mask = np.zeros(n, dtype=bool)
    test_mask = np.zeros(n, dtype=bool)
    val_mask[remaining[:n_val]] = True
    test_mask[remaining[n_val : n_val + n_test]] = True
    return train_mask, val_mask, test_mask
