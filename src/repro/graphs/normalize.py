"""Adjacency normalization used by GCN aggregation (Eq. 1)."""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp


def add_self_loops(adj: sp.spmatrix, weight: float = 1.0) -> sp.csr_matrix:
    """Return ``A + weight * I`` (the renormalization trick of Kipf & Welling)."""
    n = adj.shape[0]
    return sp.csr_matrix(adj + weight * sp.eye(n, format="csr"))


def symmetric_normalize(adj: sp.spmatrix, self_loops: bool = True) -> sp.csr_matrix:
    """Compute ``Â = D^{-1/2} (A [+ I]) D^{-1/2}`` as in Eq. (1).

    Rows/columns whose degree is zero are left zero (their inverse-sqrt
    degree is treated as 0), which keeps isolated nodes inert rather than
    producing NaNs.
    """
    a = add_self_loops(adj) if self_loops else sp.csr_matrix(adj)
    degrees = np.asarray(a.sum(axis=1)).ravel()
    with np.errstate(divide="ignore"):
        inv_sqrt = 1.0 / np.sqrt(degrees)
    inv_sqrt[~np.isfinite(inv_sqrt)] = 0.0
    d_inv = sp.diags(inv_sqrt)
    return sp.csr_matrix(d_inv @ a @ d_inv)


def row_normalize(adj: sp.spmatrix, self_loops: bool = True) -> sp.csr_matrix:
    """Compute ``D^{-1} (A [+ I])`` — mean aggregation (GraphSAGE-style)."""
    a = add_self_loops(adj) if self_loops else sp.csr_matrix(adj)
    degrees = np.asarray(a.sum(axis=1)).ravel()
    with np.errstate(divide="ignore"):
        inv = 1.0 / degrees
    inv[~np.isfinite(inv)] = 0.0
    return sp.csr_matrix(sp.diags(inv) @ a)
