"""Software-hardware interface pipeline (Fig. 8).

``parse`` extracts layer dimensions from a model + graph; ``allocate``
distributes PEs / buffers / bandwidth across chunks proportional to their
workloads; ``emit_templates`` fills the parameterized hardware templates;
``compile_accelerator`` chains all three into a deployable configuration.
"""

from repro.compiler.parser import NetworkDescription, ParsedLayer, parse_network
from repro.compiler.allocator import ChunkAllocation, ResourceAllocation, allocate
from repro.compiler.templates import emit_templates
from repro.compiler.compile import CompiledAccelerator, compile_accelerator

__all__ = [
    "NetworkDescription",
    "ParsedLayer",
    "parse_network",
    "ChunkAllocation",
    "ResourceAllocation",
    "allocate",
    "emit_templates",
    "CompiledAccelerator",
    "compile_accelerator",
]
