"""Network parser: model + graph -> layer dimensions (Fig. 8's "Parser").

The parser inspects a built model's parameter shapes (GCN Conv / Linear) and
the target graph to produce the dimension tuple the hardware compiler needs:
``Aggregation, Combination, Partition, FC, N, M, F, H, O`` in the paper's
notation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.graphs.graph import Graph
from repro.hardware.workload import LayerSpec, layer_specs
from repro.nn.models import hidden_dim_for


@dataclass(frozen=True)
class ParsedLayer:
    """One layer as seen by the hardware compiler."""

    index: int
    kind: str  # "gcn-conv" | "linear"
    f_in: int
    f_out: int
    has_aggregation: bool


@dataclass(frozen=True)
class NetworkDescription:
    """Everything the compiler needs about the network and graph."""

    arch: str
    num_nodes: int  # N
    num_edges: int  # M
    feature_dim: int  # F
    hidden_dim: int  # H
    output_dim: int  # O
    layers: tuple

    @property
    def num_layers(self) -> int:
        """Number of parsed layers."""
        return len(self.layers)


def parse_network(
    graph: Graph, arch: str = "gcn", hidden: Optional[int] = None
) -> NetworkDescription:
    """Parse model ``arch`` against ``graph`` into a network description."""
    hidden = hidden or hidden_dim_for(graph.name)
    specs: List[LayerSpec] = layer_specs(
        arch,
        graph.num_features,
        hidden,
        max(graph.num_classes, 2),
        x_density=1.0,
    )
    layers = tuple(
        ParsedLayer(
            index=i,
            kind="gcn-conv" if spec.aggregate else "linear",
            f_in=spec.f_in,
            f_out=spec.f_out,
            has_aggregation=spec.aggregate,
        )
        for i, spec in enumerate(specs)
    )
    return NetworkDescription(
        arch=arch,
        num_nodes=graph.num_nodes,
        num_edges=graph.num_edges,
        feature_dim=graph.num_features,
        hidden_dim=hidden,
        output_dim=max(graph.num_classes, 2),
        layers=layers,
    )
