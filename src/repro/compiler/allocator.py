"""Complexity-proportional resource allocation (Sec. V-B, "Denser Branch").

Given the measured per-class workloads from a :class:`BlockLayout`, the
allocator assigns each denser-branch chunk (and the single sparser-branch
sub-accelerator) PEs, on-chip memory, and off-chip bandwidth proportional to
its workload: MACs for PEs; feature-map + weight footprints for memory and
bandwidth — exactly the paper's two allocation rules.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.errors import CompileError


@dataclass(frozen=True)
class ChunkAllocation:
    """Resources handed to one sub-accelerator."""

    chunk_id: int  # class id, or -1 for the sparser branch
    pes: int
    buffer_bytes: int
    bandwidth_gbps: float
    workload_macs: float


@dataclass(frozen=True)
class ResourceAllocation:
    """The complete split of the hardware budget."""

    chunks: tuple  # ChunkAllocation per class (denser branch)
    sparser: ChunkAllocation
    total_pes: int
    total_buffer_bytes: int
    total_bandwidth_gbps: float

    def all_allocations(self) -> List[ChunkAllocation]:
        """Denser chunks followed by the sparser-branch allocation."""
        return list(self.chunks) + [self.sparser]

    def validate(self) -> None:
        """Raise :class:`CompileError` if the budget is exceeded."""
        allocs = self.all_allocations()
        if sum(a.pes for a in allocs) > self.total_pes:
            raise CompileError("PE allocation exceeds budget")
        if sum(a.buffer_bytes for a in allocs) > self.total_buffer_bytes:
            raise CompileError("buffer allocation exceeds budget")
        if sum(a.bandwidth_gbps for a in allocs) > self.total_bandwidth_gbps * (
            1 + 1e-9
        ):
            raise CompileError("bandwidth allocation exceeds budget")


def _proportional_split(total: int, weights: np.ndarray, minimum: int) -> np.ndarray:
    """Integer split of ``total`` proportional to ``weights`` (>= minimum each)."""
    weights = np.maximum(np.asarray(weights, dtype=np.float64), 1e-12)
    raw = weights / weights.sum() * total
    out = np.maximum(np.floor(raw).astype(np.int64), minimum)
    # Trim overshoot from the largest shares, then hand leftover to the
    # largest remainders (largest-remainder apportionment).
    while out.sum() > total:
        out[int(np.argmax(out))] -= 1
    leftovers = total - out.sum()
    if leftovers > 0:
        order = np.argsort(-(raw - np.floor(raw)))
        for i in range(int(leftovers)):
            out[order[i % len(out)]] += 1
    return out


def allocate(
    dense_macs_per_class: Sequence[float],
    sparse_macs: float,
    dense_bytes_per_class: Sequence[float],
    sparse_bytes: float,
    total_pes: int = 4096,
    total_buffer_bytes: int = 42 * 2**20,
    total_bandwidth_gbps: float = 460.0,
) -> ResourceAllocation:
    """Allocate the hardware budget over chunks + the sparser branch."""
    dense_macs = np.asarray(dense_macs_per_class, dtype=np.float64)
    if dense_macs.size == 0:
        raise CompileError("need at least one denser-branch class")
    if total_pes < dense_macs.size + 1:
        raise CompileError("not enough PEs for one per sub-accelerator")

    mac_weights = np.concatenate([dense_macs, [max(sparse_macs, 0.0)]])
    pe_split = _proportional_split(total_pes, mac_weights, minimum=1)

    byte_weights = np.concatenate(
        [np.asarray(dense_bytes_per_class, dtype=np.float64), [max(sparse_bytes, 0.0)]]
    )
    buf_split = _proportional_split(total_buffer_bytes, byte_weights, minimum=1024)
    bw_weights = byte_weights / max(byte_weights.sum(), 1e-12)

    chunks = tuple(
        ChunkAllocation(
            chunk_id=c,
            pes=int(pe_split[c]),
            buffer_bytes=int(buf_split[c]),
            bandwidth_gbps=float(bw_weights[c] * total_bandwidth_gbps),
            workload_macs=float(dense_macs[c]),
        )
        for c in range(dense_macs.size)
    )
    sparser = ChunkAllocation(
        chunk_id=-1,
        pes=int(pe_split[-1]),
        buffer_bytes=int(buf_split[-1]),
        bandwidth_gbps=float(bw_weights[-1] * total_bandwidth_gbps),
        workload_macs=float(sparse_macs),
    )
    allocation = ResourceAllocation(
        chunks=chunks,
        sparser=sparser,
        total_pes=total_pes,
        total_buffer_bytes=total_buffer_bytes,
        total_bandwidth_gbps=total_bandwidth_gbps,
    )
    allocation.validate()
    return allocation
