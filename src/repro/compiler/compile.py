"""End-to-end hardware compilation: parse -> allocate -> emit (Fig. 8)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.compiler.allocator import ResourceAllocation, allocate
from repro.compiler.parser import NetworkDescription, parse_network
from repro.compiler.templates import emit_templates
from repro.graphs.graph import Graph
from repro.hardware.accelerators.gcod import GCoDAccelerator
from repro.hardware.workload import GCNWorkload, extract_workload
from repro.partition.layout import BlockLayout


@dataclass
class CompiledAccelerator:
    """A compiled GCoD configuration, ready to "deploy" (simulate)."""

    network: NetworkDescription
    allocation: ResourceAllocation
    template: str
    accelerator: GCoDAccelerator
    workload: GCNWorkload

    def run(self):
        """Simulate one inference of the compiled design."""
        return self.accelerator.run(self.workload)


def compile_accelerator(
    graph: Graph,
    arch: str = "gcn",
    layout: Optional[BlockLayout] = None,
    bits: int = 32,
    total_pes: Optional[int] = None,
) -> CompiledAccelerator:
    """Compile a GCoD accelerator for ``graph`` + ``arch``.

    ``graph`` should be a GCoD-trained (partitioned) graph so the allocator
    sees the per-class workloads; an unpartitioned graph compiles to a
    single-chunk design.
    """
    layout = layout or graph.meta.get("layout")
    network = parse_network(graph, arch=arch)
    workload = extract_workload(graph, layout=layout, arch=arch)
    adj = workload.adjacency
    hidden = network.hidden_dim

    dense_per_class = list(adj.dense_nnz_per_class) or [adj.nnz]
    dense_macs = [nnz * hidden for nnz in dense_per_class]
    sparse_macs = adj.sparse_nnz * hidden if adj.dense_nnz_per_class else 0.0
    # Memory/bandwidth weights: feature-map + weight bytes per class scale
    # with that class's share of nodes (approximated by its nnz share).
    total_nnz = max(adj.nnz, 1)
    feat_bytes = workload.num_nodes * network.feature_dim * 4
    dense_bytes = [feat_bytes * (nnz / total_nnz) for nnz in dense_per_class]
    sparse_bytes = feat_bytes * (adj.sparse_nnz / total_nnz) + adj.csc_bytes

    accelerator = GCoDAccelerator(bits=bits, num_pes=total_pes)
    allocation = allocate(
        dense_macs,
        sparse_macs,
        dense_bytes,
        sparse_bytes,
        total_pes=accelerator.pes.num_pes,
        total_buffer_bytes=42 * 2**20,
        total_bandwidth_gbps=accelerator.memory.bandwidth_gbps,
    )
    template = emit_templates(network, allocation, bits=bits)
    return CompiledAccelerator(
        network=network,
        allocation=allocation,
        template=template,
        accelerator=accelerator,
        workload=workload,
    )
