"""The sweep registry: named, reusable :class:`SweepSpec` instances.

Modules that own a design-space axis register their grid here (the Sec.
VI-C ablation registers ``ablation-cs``; the Tab. V module registers the
hardware-scale axis as ``tab05-scale``), and ``repro sweep <name>``
discovers them the same way ``repro report`` discovers experiments.
Ad-hoc grids (``repro sweep --grid ...``) bypass the registry entirely.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.errors import UnknownSweepError
from repro.sweep.spec import SweepSpec

_REGISTRY: Dict[str, SweepSpec] = {}


def register_sweep(spec: SweepSpec) -> SweepSpec:
    """Register ``spec`` under its name; returns it (decorator-friendly)."""
    _ensure_populated()
    if spec.name in _REGISTRY:
        raise ValueError(
            f"sweep {spec.name!r} is already registered; names must be unique"
        )
    _REGISTRY[spec.name] = spec
    return spec


def all_sweeps() -> List[SweepSpec]:
    """Every registered sweep, sorted by name."""
    _ensure_populated()
    return [_REGISTRY[name] for name in sorted(_REGISTRY)]


def sweep_names() -> Tuple[str, ...]:
    return tuple(s.name for s in all_sweeps())


def get_sweep(name: str) -> SweepSpec:
    """The spec registered under ``name`` (raises UnknownSweepError)."""
    import difflib

    _ensure_populated()
    try:
        return _REGISTRY[name]
    except KeyError:
        close = difflib.get_close_matches(name, _REGISTRY, n=1, cutoff=0.6)
        hint = f" (did you mean {close[0]!r}?)" if close else ""
        raise UnknownSweepError(
            f"unknown sweep {name!r}{hint}; choose from "
            f"{', '.join(sorted(_REGISTRY)) or '(none registered)'}"
        ) from None


_populated = False


def _ensure_populated() -> None:
    # The builtin sweeps live next to the experiments they refactor
    # (ablation_cs, tab05_systems), so importing the experiments package
    # registers them. Same re-entrancy/failure discipline as the
    # experiment registry: flag set before the import, cleared on failure.
    global _populated
    if not _populated:
        _populated = True
        try:
            import repro.evaluation.experiments  # noqa: F401
        except BaseException:
            _populated = False
            raise
