"""Store-backed sweep execution: plan, warm, evaluate (in parallel), resume.

The engine mirrors the plan/execute split of :mod:`repro.runtime.runner`:

1. **Plan** — expand the :class:`~repro.sweep.spec.SweepSpec` into points,
   check which already have a :class:`SweepPointResult` in the artifact
   store (those are *skipped*, counter-assertably), and de-duplicate the
   remaining points' GCoD training dependencies — points that differ only
   in platform axes (``bits``, ``hw_scale``) or report coordinates share
   one trained pipeline.
2. **Execute** — warm the unique training runs (across the process pool
   when ``jobs > 1``), then evaluate the points. With ``jobs > 1`` and a
   store attached the *point evaluations themselves* fan out across the
   pool: each is a pure function of stored artifacts (the trained
   pipeline, the generated graph, the analytic platform models), workers
   persist their results straight into the store, and the parent collects
   in grid order — so ``--jobs N`` output is byte-identical to serial,
   just faster. A :class:`~repro.sweep.manifest.SweepManifest` opened at
   execute time records planned/done point keys; an interrupted sweep
   (worker :class:`GCoDTaskError`, SIGINT) resumes with ``repro sweep
   --resume``, re-running only the missing points.

Per-point metrics are multi-objective, following Figs. 10-12: speedup over
AWB-GCN and bandwidth reduction vs HyGCN on the same (paper-scale)
workload, plus accuracy, intra-class balance, latency, the full per-phase
energy breakdown (:mod:`repro.hardware.energy`), total DRAM traffic, and
the event-driven aggregation schedule's cycle count and DMA-channel
utilization (:mod:`repro.hardware.event_sim`) of the GCoD variant selected
by the ``bits``/``hw_scale`` axes.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import ConfigError
from repro.hardware.energy import EnergyBreakdown
from repro.runtime import counters
from repro.runtime.keys import ArtifactKey
from repro.runtime.runner import (
    GCoDTask,
    GCoDTaskError,
    _execute_task_inline,
    _task_error,
    pool_context,
    warm_tasks,
)
from repro.runtime.store import ArtifactStore
from repro.sweep.ledger import WorkLedger
from repro.sweep.manifest import (
    SweepManifest,
    begin_manifest,
    load_manifest,
    write_manifest,
)
from repro.sweep.spec import SweepPoint, SweepSpec, expand


@dataclass
class SweepPointResult:
    """Metrics of one evaluated design point (the stored artifact)."""

    #: raw grid coordinates, in axis order — e.g. (("dataset", "cora"),
    #: ("C", 2), ("S", 8)).
    axes: Tuple[Tuple[str, Any], ...]
    dataset: str
    arch: str
    num_classes: int
    num_subgraphs: int
    prune_ratio: float
    bits: int
    hw_scale: float
    #: logic technology node (nm) the budget models cost the design at.
    tech_node: int
    kernel_backend: str
    speedup_vs_awb: float
    bw_reduction_vs_hygcn: float
    accuracy: float
    balance: float
    gcod_latency_s: float
    awb_latency_s: float
    gcod_required_bw_gbps: float
    hygcn_required_bw_gbps: float
    gcod_energy_j: float
    #: total off-chip (DRAM) traffic of one GCoD inference, in bytes.
    gcod_dram_bytes: float
    #: silicon cost of the selected platform variant (bits x hw_scale x
    #: tech_node) from :class:`~repro.hardware.budget.AreaPowerModel` —
    #: what ``--constrain "power<=5,area<=40"`` budgets against.
    area_mm2: float
    tdp_w: float
    #: per-phase energy breakdowns (compute/on-chip/off-chip joules), the
    #: way Fig. 12 splits them.
    comb_energy: EnergyBreakdown
    agg_energy: EnergyBreakdown
    #: event-driven aggregation schedule: total cycles and the fraction of
    #: them the shared DMA channel was busy (per-tile accounting).
    agg_sim_cycles: float
    agg_dma_utilization: float

    def coord(self, axis: str, default: Any = None) -> Any:
        for name, value in self.axes:
            if name == axis:
                return value
        return default

    def to_summary_dict(self) -> Dict[str, Any]:
        """Scalar summary for cache-entry metadata (``repro cache ls``)."""
        return {
            "dataset": self.dataset,
            "arch": self.arch,
            "speedup_vs_awb": round(float(self.speedup_vs_awb), 4),
            "accuracy": round(float(self.accuracy), 4),
            "energy_mj": round(float(self.gcod_energy_j) * 1e3, 4),
            "dram_mb": round(float(self.gcod_dram_bytes) / 2**20, 4),
            "bits": self.bits,
            "hw_scale": self.hw_scale,
            "tech_node": self.tech_node,
            "area_mm2": round(float(self.area_mm2), 4),
            "tdp_w": round(float(self.tdp_w), 4),
        }


@dataclass
class SweepPlan:
    """What a sweep invocation is about to do."""

    spec: SweepSpec
    points: List[SweepPoint]
    keys: List[ArtifactKey]
    #: grid indices whose result is already stored.
    cached: List[int]
    #: unique GCoD training runs that must actually execute.
    tasks: List[GCoDTask]
    #: unique training dependencies before store filtering.
    deps_total: int = 0

    def describe(self) -> str:
        return (
            f"sweep {self.spec.name}: {len(self.points)} points "
            f"({len(self.cached)} cached), {self.deps_total} unique GCoD "
            f"deps ({len(self.tasks)} to run)"
        )


@dataclass
class SweepRunReport:
    """Everything ``execute_sweep`` did."""

    spec: SweepSpec
    results: List[SweepPointResult] = field(default_factory=list)
    cache_hits: List[int] = field(default_factory=list)
    points_evaluated: int = 0
    deps_total: int = 0
    tasks_executed: int = 0
    gcod_runs: int = 0
    wall_s: float = 0.0
    #: set when the sweep ran through the shared work ledger: this
    #: worker's id and its claim accounting (claimed/lost/stale/waited).
    worker: Optional[str] = None
    ledger_stats: Optional[Dict[str, float]] = None


def plan_sweep(context, spec: SweepSpec) -> SweepPlan:
    """Phase 1: expand the grid, find cached points, dedupe training."""
    points = expand(spec, context)
    keys = [p.key() for p in points]
    store: Optional[ArtifactStore] = context.store
    cached = [
        i for i, key in enumerate(keys)
        if store is not None and store.contains(key)
    ]
    cached_set = set(cached)

    deps: Dict[str, GCoDTask] = {}
    for i, point in enumerate(points):
        if i in cached_set:
            continue  # its metrics are stored; no training needed
        for task in point.gcod_tasks():
            # every node of a workload-DAG point is a dependency; the
            # primary node's task digests identically to the legacy
            # single-model task, so mixed grids share training runs.
            deps.setdefault(task.key().digest, task)
    tasks = [
        task for digest, task in deps.items()
        if store is None or not store.contains(task.key())
    ]
    return SweepPlan(
        spec=spec,
        points=points,
        keys=keys,
        cached=cached,
        tasks=tasks,
        deps_total=len(deps),
    )


class _PointEvaluator:
    """Evaluates points with per-sweep caches (baselines, platforms)."""

    def __init__(self, context):
        self.context = context
        self._gcod: Dict[str, object] = {}  # gcod digest -> GCoDResult
        self._graphs: Dict[Tuple[str, int], object] = {}
        self._baselines: Dict[Tuple[str, str, int], Tuple] = {}
        self._platforms: Dict[Tuple[int, float, int], object] = {}

    def _graph(self, dataset: str, seed: int):
        """The dataset graph at an explicit seed (store-backed).

        The context memoizes graphs at *its own* seed; a ``seed`` sweep
        axis needs the same dataset regenerated per point seed — under
        the same :func:`~repro.runtime.keys.graph_key` the training
        tasks use, so the inline path and the warmed pool path train on
        identical (store-round-tripped) inputs.
        """
        if seed == self.context.seed:
            return self.context.graph(dataset)
        memo = (dataset, seed)
        if memo not in self._graphs:
            from repro.graphs import load_dataset
            from repro.runtime.keys import graph_key

            scale = self.context.scale_for(dataset)
            key = graph_key(dataset, scale, seed)
            store: Optional[ArtifactStore] = self.context.store
            graph = store.get(key) if store is not None else None
            if graph is None:
                graph = load_dataset(dataset, scale=scale, seed=seed)
                if store is not None:
                    store.put(key, graph)
            self._graphs[memo] = graph
        return self._graphs[memo]

    def _baseline_reports(self, dataset: str, arch: str, seed: int):
        """AWB-GCN and HyGCN on the untreated (paper-scale) workload.

        The models come from ``context.platforms()`` — the same memoized
        registry every experiment uses — so a platform-construction
        change can never apply to experiments but not to sweeps. Keyed
        by seed too: a seed-axis point compares GCoD against baselines
        running the *same* generated graph.
        """
        from repro.hardware import extract_workload

        key = (dataset, arch, seed)
        if key not in self._baselines:
            plats = self.context.platforms()
            wl_base = extract_workload(
                self._graph(dataset, seed), None, arch, paper_scale=True
            )
            self._baselines[key] = (
                plats["awb-gcn"].run(wl_base), plats["hygcn"].run(wl_base)
            )
        return self._baselines[key]

    def _gcod_platform(self, bits: int, hw_scale: float, tech_node: int):
        """The GCoD accelerator variant for (bits, hw_scale, tech_node)."""
        key = (bits, hw_scale, tech_node)
        if key not in self._platforms:
            from repro.hardware.accelerators import GCoDAccelerator
            from repro.hardware.accelerators.gcod import DEFAULT_PES

            num_pes = None
            if hw_scale != 1.0:
                num_pes = max(1, int(round(DEFAULT_PES[bits] * hw_scale)))
            self._platforms[key] = GCoDAccelerator(
                bits=bits, num_pes=num_pes, tech_node=tech_node
            )
        return self._platforms[key]

    def _gcod_result(self, point: SweepPoint):
        """Train-or-load the pipeline behind ``point`` (store-backed)."""
        from repro.algorithm import run_gcod

        task = point.gcod_task()
        key = task.key()
        if key.digest in self._gcod:
            return self._gcod[key.digest]
        store: Optional[ArtifactStore] = self.context.store
        result = store.get(key) if store is not None else None
        if result is None:
            result = run_gcod(
                self._graph(point.dataset, point.seed), point.arch,
                point.config,
            )
            if store is not None:
                store.put(key, result, summary=result.to_summary_dict())
        self._gcod[key.digest] = result
        return result

    @staticmethod
    def _simulate_aggregation(workload, result, total_pes: int):
        """Event-sim the aggregation schedule of the point's own layout.

        The tiles are the layout's measured per-subgraph workloads —
        per-tile DMA/MAC accounting, not the analytic closed form — run at
        the PE count the ``bits``/``hw_scale`` axes selected (or, for a
        workload-DAG node, its allocated slice of the shared array).
        """
        from repro.hardware.event_sim import simulate_aggregation

        agg_dim = next(
            (layer.aggregation_dim for layer in workload.layers
             if layer.aggregate),
            0,
        )
        if not agg_dim:
            return None  # no aggregation phase: nothing to schedule
        sub_workloads = result.layout.subgraph_workloads(
            result.final_graph.adj
        )
        sub_classes = [s.class_id for s in result.layout.spans]
        return simulate_aggregation(
            workload,
            agg_dim=agg_dim,
            total_pes=total_pes,
            layout_tiles=(sub_workloads, sub_classes),
        )

    def _evaluate_workload_point(self, point: SweepPoint) -> SweepPointResult:
        """Metrics for a workload-DAG point (shared-accelerator merge).

        Per-node extraction goes through the same store-backed
        :meth:`_gcod_result` path the single-model grid uses (the primary
        node digests identically, so artifacts are shared); the staged
        pipeline merges the node reports with PE time-slicing. Baselines
        run every distinct (dataset, arch) pair serially on the
        monolithic AWB-GCN/HyGCN platforms — the multi-tenant framing:
        one shared GCoD accelerator vs a baseline running the models back
        to back. Every reduction below is a float identity for a
        single-node DAG (``sum([x]) == x``), keeping byte parity with
        the legacy path.
        """
        import dataclasses

        from repro.hardware import extract_workload
        from repro.hardware.pipeline import (
            PipelineSettings,
            evaluate_workload,
            parse_workload,
            slice_workload,
        )

        graph = parse_workload(point.workload)
        scales = dict(point.workload_scales)
        gcod_results: Dict[Tuple[str, str], Any] = {}
        full_workloads: Dict[Tuple[str, str], Any] = {}

        def pair_result(dataset: str, arch: str):
            pair = (dataset, arch)
            if pair not in gcod_results:
                node_point = dataclasses.replace(
                    point, dataset=dataset, arch=arch,
                    scale=scales.get(dataset, point.scale),
                )
                gcod_results[pair] = self._gcod_result(node_point)
            return gcod_results[pair]

        def extract_fn(node, _context):
            pair = (node.dataset, node.arch)
            if pair not in full_workloads:
                result = pair_result(node.dataset, node.arch)
                full_workloads[pair] = extract_workload(
                    result.final_graph, result.layout, node.arch,
                    paper_scale=True,
                )
            return full_workloads[pair]

        settings = PipelineSettings(
            bits=point.bits,
            hw_scale=point.hw_scale,
            tech_node=point.tech_node,
            extract_fn=extract_fn,
        )
        wg_report = evaluate_workload(graph, self.context, settings)
        merged = wg_report.merged()

        pairs = list(dict.fromkeys(
            (n.dataset, n.arch) for n in graph.nodes
        ))
        baselines = [
            self._baseline_reports(ds, arch, point.seed)
            for ds, arch in pairs
        ]
        awb_latency = sum(awb.latency_s for awb, _ in baselines)
        hygcn_streamed = sum(h.streamed_bytes for _, h in baselines)
        hygcn_latency = sum(h.latency_s for _, h in baselines)
        hygcn_bw = hygcn_streamed / max(hygcn_latency, 1e-30) / 1e9

        speedup = awb_latency / merged.latency_s
        bw_red = 1.0 - merged.required_bandwidth_gbps / max(hygcn_bw, 1e-9)
        accuracy = sum(
            float(pair_result(ds, arch).accuracy_final)
            for ds, arch in pairs
        ) / len(pairs)
        balance = sum(
            float(r.layout.balance_within_classes(r.final_graph.adj))
            for r in (pair_result(ds, arch) for ds, arch in pairs)
        ) / len(pairs)

        # Event-sim each node's aggregation at its allocated PE slice;
        # cycles sum, utilization is the cycle-weighted mean.
        node_pes = dict(wg_report.node_pes)
        sims = []
        for node in graph.nodes:
            wl = slice_workload(extract_fn(node, self.context), node)
            sim = self._simulate_aggregation(
                wl, pair_result(node.dataset, node.arch),
                node_pes[node.name],
            )
            if sim is not None:
                sims.append(sim)
        sim_cycles = sum(float(s.cycles) for s in sims)
        if len(sims) == 1:
            dma_util = float(sims[0].dma_utilization)
        elif sim_cycles > 0:
            dma_util = sum(
                float(s.cycles) * float(s.dma_utilization) for s in sims
            ) / sim_cycles
        else:
            dma_util = 0.0

        budget = self._gcod_platform(
            point.bits, point.hw_scale, point.tech_node
        ).budget()
        return SweepPointResult(
            axes=point.axes,
            dataset=point.dataset,
            arch=point.arch,
            num_classes=point.config.num_classes,
            num_subgraphs=point.config.num_subgraphs,
            prune_ratio=point.config.prune_ratio,
            bits=point.bits,
            hw_scale=point.hw_scale,
            tech_node=point.tech_node,
            kernel_backend=point.kernel_backend,
            speedup_vs_awb=float(speedup),
            bw_reduction_vs_hygcn=float(bw_red),
            accuracy=float(accuracy),
            balance=float(balance),
            gcod_latency_s=float(merged.latency_s),
            awb_latency_s=float(awb_latency),
            gcod_required_bw_gbps=float(merged.required_bandwidth_gbps),
            hygcn_required_bw_gbps=float(hygcn_bw),
            gcod_energy_j=float(merged.energy.total_j),
            gcod_dram_bytes=float(merged.offchip_bytes),
            area_mm2=float(budget.area_mm2),
            tdp_w=float(budget.tdp_w),
            comb_energy=merged.combination.energy,
            agg_energy=merged.aggregation.energy,
            agg_sim_cycles=sim_cycles,
            agg_dma_utilization=dma_util,
        )

    def evaluate(self, point: SweepPoint) -> SweepPointResult:
        """Compute one point's metrics (the expensive, counted path)."""
        from repro.hardware import extract_workload

        counters.record_sweep_point_run()
        if point.workload is not None:
            return self._evaluate_workload_point(point)
        awb, hygcn = self._baseline_reports(
            point.dataset, point.arch, point.seed
        )
        result = self._gcod_result(point)
        wl = extract_workload(
            result.final_graph, result.layout, point.arch, paper_scale=True
        )
        platform = self._gcod_platform(
            point.bits, point.hw_scale, point.tech_node
        )
        report = platform.run(wl)
        budget = platform.budget()
        sim = self._simulate_aggregation(wl, result, platform.pes.num_pes)
        speedup = awb.latency_s / report.latency_s
        bw_red = 1.0 - report.required_bandwidth_gbps / max(
            hygcn.required_bandwidth_gbps, 1e-9
        )
        return SweepPointResult(
            axes=point.axes,
            dataset=point.dataset,
            arch=point.arch,
            num_classes=point.config.num_classes,
            num_subgraphs=point.config.num_subgraphs,
            prune_ratio=point.config.prune_ratio,
            bits=point.bits,
            hw_scale=point.hw_scale,
            tech_node=point.tech_node,
            kernel_backend=point.kernel_backend,
            speedup_vs_awb=float(speedup),
            bw_reduction_vs_hygcn=float(bw_red),
            accuracy=float(result.accuracy_final),
            balance=float(
                result.layout.balance_within_classes(result.final_graph.adj)
            ),
            gcod_latency_s=float(report.latency_s),
            awb_latency_s=float(awb.latency_s),
            gcod_required_bw_gbps=float(report.required_bandwidth_gbps),
            hygcn_required_bw_gbps=float(hygcn.required_bandwidth_gbps),
            gcod_energy_j=float(report.energy.total_j),
            gcod_dram_bytes=float(report.offchip_bytes),
            area_mm2=float(budget.area_mm2),
            tdp_w=float(budget.tdp_w),
            comb_energy=report.combination.energy,
            agg_energy=report.aggregation.energy,
            agg_sim_cycles=float(sim.cycles) if sim is not None else 0.0,
            agg_dma_utilization=(
                float(sim.dma_utilization) if sim is not None else 0.0
            ),
        )


def _point_error(point: SweepPoint, exc: Exception) -> GCoDTaskError:
    """The one wrapping for point-evaluation failures (tests match on it)."""
    return GCoDTaskError(
        f"sweep point ({point.label()}) failed: "
        f"{type(exc).__name__}: {exc}"
    )


#: Per-process evaluator cache for pool workers, keyed by the context
#: signature. A worker evaluates many points of one sweep; rebuilding the
#: context per point would re-unpickle the trained pipeline and recompute
#: the baselines every time — the memoized evaluator makes the worker's
#: marginal per-point cost equal to the serial path's.
_WORKER_EVALUATORS: Dict[tuple, "_PointEvaluator"] = {}


def _worker_evaluator(root, profile, seed, backend, scales):
    from repro.evaluation.context import EvalContext

    signature = (root, profile, seed, backend, tuple(sorted(scales.items())))
    evaluator = _WORKER_EVALUATORS.get(signature)
    if evaluator is None:
        ctx = EvalContext(
            profile=profile, seed=seed, kernel_backend=backend,
            store=ArtifactStore(root),
        )
        ctx.dataset_scales = dict(scales)
        evaluator = _WORKER_EVALUATORS[signature] = _PointEvaluator(ctx)
    return evaluator


def _evaluate_point_worker(payload) -> Tuple[str, bool]:
    """Pool worker: evaluate one design point and persist it to the store.

    Points are pure functions of stored artifacts — the warmed pipeline,
    the generated graph, the deterministic platform models — so a worker
    computes exactly the result the serial path would. Returns the point
    label and whether it actually evaluated (a stored entry is skipped, so
    a resumed pooled sweep never re-runs a finished point).
    """
    root, profile, seed, backend, scales, point = payload
    from repro.sparse.kernels import set_default_backend

    try:
        # Resolved in the parent; pin it process-wide so a spawn-started
        # worker sees the same default-backend environment a fork child
        # inherits.
        set_default_backend(backend)
        evaluator = _worker_evaluator(root, profile, seed, backend, scales)
        store: ArtifactStore = evaluator.context.store
        key = point.key()
        if store.contains(key):
            return point.label(), False
        result = evaluator.evaluate(point)
        store.put(key, result, summary=result.to_summary_dict())
    except GCoDTaskError:
        raise
    except Exception as exc:
        raise _point_error(point, exc) from exc
    return point.label(), True


def _evaluate_points_pooled(
    plan: SweepPlan,
    context,
    pending: List[int],
    jobs: int,
    report: SweepRunReport,
    say,
) -> None:
    """Fan the pending point evaluations across a process pool."""
    store: ArtifactStore = context.store
    backend = context._backend_name()
    # Pre-warm the graphs every pending point's baselines need: otherwise
    # each worker sharing a dataset would race the store miss and
    # regenerate the same graph. Keyed per (dataset, seed) — a seed axis
    # means the same dataset exists at several generation seeds.
    prewarmer = _PointEvaluator(context)
    for dataset, seed in dict.fromkeys(
        (ds, plan.points[i].seed)
        for i in pending
        for ds in dict.fromkeys(
            [plan.points[i].dataset]
            + [d for d, _ in plan.points[i].workload_scales]
        )
    ):
        prewarmer._graph(dataset, seed)
    payloads = [
        (
            store.root,
            context.profile,
            context.seed,
            backend,
            dict(context.dataset_scales),
            plan.points[i],
        )
        for i in pending
    ]
    say(f"evaluating {len(pending)} point(s) with jobs={jobs}")
    processes = min(jobs, len(pending))
    # Contiguous chunks: grid order keeps platform-axis variants of one
    # trained pipeline adjacent, so chunking bounds how many stored
    # GCoDResults each worker must unpickle (the dominant per-worker
    # cost at real graph scales).
    chunksize = max(1, -(-len(payloads) // processes))
    with pool_context().Pool(processes=processes) as pool:
        for label, evaluated in pool.imap_unordered(
            _evaluate_point_worker, payloads, chunksize=chunksize
        ):
            if evaluated:
                report.points_evaluated += 1
                say(f"  evaluated ({label})")


def _warm_tasks_ledger(plan: SweepPlan, context, ledger: WorkLedger,
                       say) -> None:
    """Warm the unique training runs through shared-store claims.

    Each worker claims a task, trains it inline, and persists the result;
    peers sharing the store observe membership and skip. Exactly one
    worker trains each pipeline — the multi-host counterpart of the
    process-pool dedupe in :func:`~repro.runtime.runner.warm_tasks`.
    """
    if not plan.tasks:
        return
    store: ArtifactStore = context.store
    say(f"warming {len(plan.tasks)} GCoD run(s) through the shared "
        f"work ledger (worker {ledger.worker})")

    def is_done(task: GCoDTask) -> bool:
        return store.contains(task.key())

    def work(task: GCoDTask) -> None:
        try:
            _execute_task_inline(context, task)
        except GCoDTaskError:
            raise
        except Exception as exc:
            raise _task_error(task, exc) from exc
        say(f"  trained ({task.dataset}, {task.arch})")

    ledger.drain(
        {"gcod-" + task.key().digest: task for task in plan.tasks},
        is_done, work,
    )


def _evaluate_points_ledger(
    plan: SweepPlan,
    context,
    pending: List[int],
    ledger: WorkLedger,
    report: SweepRunReport,
    say,
) -> Dict[int, SweepPointResult]:
    """Evaluate the pending points cooperatively via shared-store claims.

    Every worker runs this same loop against the same store; the claim
    protocol partitions the grid among them at point granularity, stale
    claims of dead workers expire, and the loop only returns once *every*
    pending point has a stored result — so any worker can then run the
    final aggregation from store contents, byte-identical to a
    single-host serial sweep. Returns the results this worker computed
    (kept locally so a store whose writes degrade cannot stall the loop).
    """
    store: ArtifactStore = context.store
    evaluator = _PointEvaluator(context)
    local: Dict[int, SweepPointResult] = {}
    total = len(plan.points)

    def is_done(i: int) -> bool:
        return i in local or store.contains(plan.keys[i])

    def work(i: int) -> None:
        point = plan.points[i]
        try:
            result = evaluator.evaluate(point)
        except GCoDTaskError:
            raise
        except Exception as exc:
            raise _point_error(point, exc) from exc
        local[i] = result
        store.put(plan.keys[i], result, summary=result.to_summary_dict())
        report.points_evaluated += 1
        say(f"  [{i + 1}/{total}] {point.label()}: "
            f"{result.speedup_vs_awb:.2f}x vs AWB-GCN (claimed)")

    say(f"evaluating {len(pending)} point(s) through the shared work "
        f"ledger (worker {ledger.worker})")
    ledger.drain(
        {"point-" + plan.keys[i].digest: i for i in pending},
        is_done, work,
    )
    return local


def _resolve_ledger(ledger, store: Optional[ArtifactStore]):
    """The :class:`WorkLedger` to use, or ``None`` for single-host mode.

    ``ledger`` may be ``None`` (auto: on iff the store is shared across
    hosts — an ``http(s)://`` locator), a bool (force on/off), or an
    already-built :class:`WorkLedger` (tests tune TTL/poll).
    """
    if isinstance(ledger, WorkLedger):
        return ledger
    if ledger is None:
        ledger = store is not None and store.is_remote
    if not ledger:
        return None
    if store is None:
        raise ConfigError(
            "the shared work ledger needs an artifact store; drop "
            "--no-cache (and point --store-url at a served store)"
        )
    return WorkLedger(store)


def execute_sweep(
    plan: SweepPlan,
    context,
    jobs: int = 1,
    progress=None,
    ledger=None,
) -> SweepRunReport:
    """Phase 2: warm training runs, evaluate every point in grid order.

    With ``ledger`` active (default whenever the context's store is a
    shared/served one) the missing points are claimed through the store's
    work ledger, so any number of workers on any number of hosts can run
    this same call concurrently: each point is evaluated exactly once
    among live workers, dead workers' claims expire, and every worker's
    final collection pass aggregates the full grid from store contents.
    """
    t0 = time.perf_counter()
    runs_before = counters.gcod_run_count()
    say = progress or (lambda msg: None)
    store: Optional[ArtifactStore] = context.store
    report = SweepRunReport(
        spec=plan.spec,
        deps_total=plan.deps_total,
        tasks_executed=len(plan.tasks),
    )
    work_ledger = _resolve_ledger(ledger, store)
    if work_ledger is not None:
        report.worker = work_ledger.worker

    cached_set = set(plan.cached)
    pending = [i for i in range(len(plan.points)) if i not in cached_set]
    pool_points = (jobs > 1 and store is not None and len(pending) > 1
                   and work_ledger is None)

    manifest: Optional[SweepManifest] = None
    if store is not None:
        # The ledger resume reads: written before any evaluation, so even
        # a sweep killed at point 1 of N leaves its plan behind.
        manifest = begin_manifest(
            store, context, plan.spec, plan.points, plan.keys
        )

    if work_ledger is not None:
        # Multi-worker mode: training dedupes through claims, not the
        # process pool (each worker stays serial; parallelism is the
        # worker fleet itself).
        if jobs > 1:
            say(f"shared work ledger active: jobs={jobs} applies per "
                "worker fleet, training through claims")
        _warm_tasks_ledger(plan, context, work_ledger, say)
    elif jobs > 1 and store is not None:
        # warm_tasks is task-faithful on every path; pooling it here is
        # purely a parallelism win. It must cover *all* tasks before a
        # pooled evaluation starts, or workers sharing a pipeline would
        # race to train it.
        warm_tasks(plan.tasks, context, jobs=jobs, progress=progress)
    elif plan.tasks:
        say(f"{len(plan.tasks)} GCoD run(s) will train inline")

    ledger_results: Dict[int, SweepPointResult] = {}
    try:
        if pool_points:
            _evaluate_points_pooled(plan, context, pending, jobs, report, say)
        if work_ledger is not None and pending:
            ledger_results = _evaluate_points_ledger(
                plan, context, pending, work_ledger, report, say
            )

        evaluator = _PointEvaluator(context)
        fetch_all = pool_points or work_ledger is not None
        for i, point in enumerate(plan.points):
            result = ledger_results.get(i)
            if result is None and store is not None and \
                    (i in cached_set or fetch_all):
                result = store.get(plan.keys[i])
                if result is not None and i in cached_set:
                    report.cache_hits.append(i)
                    counters.record_sweep_point_skip()
                # a corrupted/missing entry degrades to a recompute below
            if result is None:
                try:
                    result = evaluator.evaluate(point)
                except GCoDTaskError:
                    raise
                except Exception as exc:
                    raise _point_error(point, exc) from exc
                report.points_evaluated += 1
                if store is not None:
                    store.put(plan.keys[i], result,
                              summary=result.to_summary_dict())
                say(f"  [{i + 1}/{len(plan.points)}] {point.label()}: "
                    f"{result.speedup_vs_awb:.2f}x vs AWB-GCN")
            if manifest is not None and plan.keys[i].digest not in \
                    manifest.done:
                manifest.done.append(plan.keys[i].digest)
            report.results.append(result)
    finally:
        if manifest is not None:
            # Recompute from store membership: workers may have completed
            # points this process never collected before an interruption.
            manifest.refresh(store)
            write_manifest(store, context, plan.spec, manifest)

    if work_ledger is not None:
        report.ledger_stats = work_ledger.stats.to_dict()
    report.gcod_runs = counters.gcod_run_count() - runs_before
    report.wall_s = time.perf_counter() - t0
    return report


def run_sweep(
    context,
    spec: SweepSpec,
    jobs: int = 1,
    progress=None,
    resume: bool = False,
    ledger=None,
) -> SweepRunReport:
    """Plan then execute in one call; the ``repro sweep`` entry point.

    ``resume=True`` requires a stored manifest for this (context, grid):
    the sweep then evaluates exactly the manifest's missing points (the
    plan's store check skips everything already done). Without a manifest
    — or without a store — resume refuses loudly rather than silently
    starting a fresh sweep.
    """
    say = progress or (lambda msg: None)
    if resume:
        store: Optional[ArtifactStore] = context.store
        if store is None:
            raise ConfigError(
                "--resume needs the artifact store; drop --no-cache"
            )
        manifest = load_manifest(store, context, spec)
        if manifest is None:
            raise ConfigError(
                f"nothing to resume: no manifest for sweep {spec.name!r} "
                f"in {store.root} (run it once without --resume first)"
            )
        missing = manifest.missing_indices(store)
        say(
            f"resuming sweep {spec.name}: "
            f"{len(manifest.planned) - len(missing)}/"
            f"{len(manifest.planned)} points done, "
            f"{len(missing)} to evaluate"
        )
    plan = plan_sweep(context, spec)
    if resume and plan.keys and [k.digest for k in plan.keys] != \
            manifest.planned:
        raise ConfigError(
            f"the stored manifest for sweep {spec.name!r} names different "
            "points than this invocation plans (code, schema, or context "
            "changed); rerun without --resume"
        )
    if progress:
        progress(plan.describe())
    return execute_sweep(plan, context, jobs=jobs, progress=progress,
                         ledger=ledger)
