"""Store-backed sweep execution: plan, warm, evaluate, aggregate.

The engine mirrors the plan/execute split of :mod:`repro.runtime.runner`:

1. **Plan** — expand the :class:`~repro.sweep.spec.SweepSpec` into points,
   check which already have a :class:`SweepPointResult` in the artifact
   store (those are *skipped*, counter-assertably), and de-duplicate the
   remaining points' GCoD training dependencies — points that differ only
   in platform axes (``bits``, ``hw_scale``) or report coordinates share
   one trained pipeline.
2. **Execute** — warm the unique training runs (across the PR-3 process
   pool when ``jobs > 1``), then evaluate every point *in grid order* in
   the parent: train-or-load the pipeline, cost the design on the analytic
   platform models, persist the metrics. Evaluation order is fixed and the
   platform models are deterministic, so ``--jobs N`` output is
   byte-identical to serial, and a warm rerun byte-identical to a cold one.

Per-point metrics follow Sec. VI-C: speedup over AWB-GCN and bandwidth
reduction vs HyGCN on the same (paper-scale) workload, plus accuracy,
intra-class balance, latency, and energy of the GCoD variant selected by
the ``bits``/``hw_scale`` axes.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.runtime import counters
from repro.runtime.keys import ArtifactKey
from repro.runtime.runner import GCoDTask, warm_tasks
from repro.runtime.store import ArtifactStore
from repro.sweep.spec import SweepPoint, SweepSpec, expand


@dataclass
class SweepPointResult:
    """Metrics of one evaluated design point (the stored artifact)."""

    #: raw grid coordinates, in axis order — e.g. (("dataset", "cora"),
    #: ("C", 2), ("S", 8)).
    axes: Tuple[Tuple[str, Any], ...]
    dataset: str
    arch: str
    num_classes: int
    num_subgraphs: int
    prune_ratio: float
    bits: int
    hw_scale: float
    kernel_backend: str
    speedup_vs_awb: float
    bw_reduction_vs_hygcn: float
    accuracy: float
    balance: float
    gcod_latency_s: float
    awb_latency_s: float
    gcod_required_bw_gbps: float
    hygcn_required_bw_gbps: float
    gcod_energy_j: float

    def coord(self, axis: str, default: Any = None) -> Any:
        for name, value in self.axes:
            if name == axis:
                return value
        return default

    def to_summary_dict(self) -> Dict[str, Any]:
        """Scalar summary for cache-entry metadata (``repro cache ls``)."""
        return {
            "dataset": self.dataset,
            "arch": self.arch,
            "speedup_vs_awb": round(float(self.speedup_vs_awb), 4),
            "accuracy": round(float(self.accuracy), 4),
            "bits": self.bits,
            "hw_scale": self.hw_scale,
        }


@dataclass
class SweepPlan:
    """What a sweep invocation is about to do."""

    spec: SweepSpec
    points: List[SweepPoint]
    keys: List[ArtifactKey]
    #: grid indices whose result is already stored.
    cached: List[int]
    #: unique GCoD training runs that must actually execute.
    tasks: List[GCoDTask]
    #: unique training dependencies before store filtering.
    deps_total: int = 0

    def describe(self) -> str:
        return (
            f"sweep {self.spec.name}: {len(self.points)} points "
            f"({len(self.cached)} cached), {self.deps_total} unique GCoD "
            f"deps ({len(self.tasks)} to run)"
        )


@dataclass
class SweepRunReport:
    """Everything ``execute_sweep`` did."""

    spec: SweepSpec
    results: List[SweepPointResult] = field(default_factory=list)
    cache_hits: List[int] = field(default_factory=list)
    points_evaluated: int = 0
    deps_total: int = 0
    tasks_executed: int = 0
    gcod_runs: int = 0
    wall_s: float = 0.0


def plan_sweep(context, spec: SweepSpec) -> SweepPlan:
    """Phase 1: expand the grid, find cached points, dedupe training."""
    points = expand(spec, context)
    keys = [p.key() for p in points]
    store: Optional[ArtifactStore] = context.store
    cached = [
        i for i, key in enumerate(keys)
        if store is not None and store.contains(key)
    ]
    cached_set = set(cached)

    deps: Dict[str, GCoDTask] = {}
    for i, point in enumerate(points):
        if i in cached_set:
            continue  # its metrics are stored; no training needed
        task = point.gcod_task()
        deps.setdefault(task.key().digest, task)
    tasks = [
        task for digest, task in deps.items()
        if store is None or not store.contains(task.key())
    ]
    return SweepPlan(
        spec=spec,
        points=points,
        keys=keys,
        cached=cached,
        tasks=tasks,
        deps_total=len(deps),
    )


class _PointEvaluator:
    """Evaluates points with per-sweep caches (baselines, platforms)."""

    def __init__(self, context):
        self.context = context
        self._gcod: Dict[str, object] = {}  # gcod digest -> GCoDResult
        self._baselines: Dict[Tuple[str, str], Tuple] = {}
        self._platforms: Dict[Tuple[int, float], object] = {}

    def _baseline_reports(self, dataset: str, arch: str):
        """AWB-GCN and HyGCN on the untreated (paper-scale) workload.

        The models come from ``context.platforms()`` — the same memoized
        registry every experiment uses — so a platform-construction
        change can never apply to experiments but not to sweeps.
        """
        key = (dataset, arch)
        if key not in self._baselines:
            plats = self.context.platforms()
            wl_base = self.context.baseline_workload(dataset, arch)
            self._baselines[key] = (
                plats["awb-gcn"].run(wl_base), plats["hygcn"].run(wl_base)
            )
        return self._baselines[key]

    def _gcod_platform(self, bits: int, hw_scale: float):
        """The GCoD accelerator variant for (bits, hw_scale)."""
        key = (bits, hw_scale)
        if key not in self._platforms:
            from repro.hardware.accelerators import GCoDAccelerator
            from repro.hardware.accelerators.gcod import DEFAULT_PES

            num_pes = None
            if hw_scale != 1.0:
                num_pes = max(1, int(round(DEFAULT_PES[bits] * hw_scale)))
            self._platforms[key] = GCoDAccelerator(bits=bits, num_pes=num_pes)
        return self._platforms[key]

    def _gcod_result(self, point: SweepPoint):
        """Train-or-load the pipeline behind ``point`` (store-backed)."""
        from repro.algorithm import run_gcod

        task = point.gcod_task()
        key = task.key()
        if key.digest in self._gcod:
            return self._gcod[key.digest]
        store: Optional[ArtifactStore] = self.context.store
        result = store.get(key) if store is not None else None
        if result is None:
            result = run_gcod(
                self.context.graph(point.dataset), point.arch, point.config
            )
            if store is not None:
                store.put(key, result, summary=result.to_summary_dict())
        self._gcod[key.digest] = result
        return result

    def evaluate(self, point: SweepPoint) -> SweepPointResult:
        """Compute one point's metrics (the expensive, counted path)."""
        from repro.hardware import extract_workload

        counters.record_sweep_point_run()
        awb, hygcn = self._baseline_reports(point.dataset, point.arch)
        result = self._gcod_result(point)
        wl = extract_workload(
            result.final_graph, result.layout, point.arch, paper_scale=True
        )
        report = self._gcod_platform(point.bits, point.hw_scale).run(wl)
        speedup = awb.latency_s / report.latency_s
        bw_red = 1.0 - report.required_bandwidth_gbps / max(
            hygcn.required_bandwidth_gbps, 1e-9
        )
        return SweepPointResult(
            axes=point.axes,
            dataset=point.dataset,
            arch=point.arch,
            num_classes=point.config.num_classes,
            num_subgraphs=point.config.num_subgraphs,
            prune_ratio=point.config.prune_ratio,
            bits=point.bits,
            hw_scale=point.hw_scale,
            kernel_backend=point.kernel_backend,
            speedup_vs_awb=float(speedup),
            bw_reduction_vs_hygcn=float(bw_red),
            accuracy=float(result.accuracy_final),
            balance=float(
                result.layout.balance_within_classes(result.final_graph.adj)
            ),
            gcod_latency_s=float(report.latency_s),
            awb_latency_s=float(awb.latency_s),
            gcod_required_bw_gbps=float(report.required_bandwidth_gbps),
            hygcn_required_bw_gbps=float(hygcn.required_bandwidth_gbps),
            gcod_energy_j=float(report.energy.total_j),
        )


def execute_sweep(
    plan: SweepPlan,
    context,
    jobs: int = 1,
    progress=None,
) -> SweepRunReport:
    """Phase 2: warm training runs, evaluate every point in grid order."""
    t0 = time.perf_counter()
    runs_before = counters.gcod_run_count()
    say = progress or (lambda msg: None)
    store: Optional[ArtifactStore] = context.store
    report = SweepRunReport(
        spec=plan.spec,
        deps_total=plan.deps_total,
        tasks_executed=len(plan.tasks),
    )

    if jobs > 1 and store is not None and len(plan.tasks) > 1:
        # warm_tasks is task-faithful on every path; pooling it here is
        # purely a parallelism win. Serial runs skip it and let each
        # point train lazily in _gcod_result (no store round-trip).
        warm_tasks(plan.tasks, context, jobs=jobs, progress=progress)
    elif plan.tasks:
        say(f"{len(plan.tasks)} GCoD run(s) will train inline")

    cached_set = set(plan.cached)
    evaluator = _PointEvaluator(context)
    for i, point in enumerate(plan.points):
        result = None
        if i in cached_set:
            result = store.get(plan.keys[i])
            if result is not None:
                report.cache_hits.append(i)
            # a corrupted entry degrades to a recompute below
        if result is None:
            result = evaluator.evaluate(point)
            report.points_evaluated += 1
            if store is not None:
                store.put(plan.keys[i], result,
                          summary=result.to_summary_dict())
            say(f"  [{i + 1}/{len(plan.points)}] {point.label()}: "
                f"{result.speedup_vs_awb:.2f}x vs AWB-GCN")
        report.results.append(result)

    report.gcod_runs = counters.gcod_run_count() - runs_before
    report.wall_s = time.perf_counter() - t0
    return report


def run_sweep(
    context,
    spec: SweepSpec,
    jobs: int = 1,
    progress=None,
) -> SweepRunReport:
    """Plan then execute in one call; the ``repro sweep`` entry point."""
    plan = plan_sweep(context, spec)
    if progress:
        progress(plan.describe())
    return execute_sweep(plan, context, jobs=jobs, progress=progress)
