"""Budget constraints for sweeps: ``--constrain "power<=5,area<=40"``.

A constraint bounds one :class:`~repro.sweep.engine.SweepPointResult`
metric; the set given on the command line partitions the grid into
feasible and infeasible points. Aggregation keeps every point in the
long-form table (flagged in a ``feasible`` column) and computes the
Pareto frontier over the feasible subset only — the Lumos-style "best
design under budget" question.

Metric names get the same case-insensitive did-you-mean UX as ``--grid``
axes and ``--objectives``: an unknown name is a usage error (exit 2)
naming the known set and the near-miss.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.errors import ConfigError, did_you_mean
from repro.sweep.engine import SweepPointResult


@dataclasses.dataclass(frozen=True)
class ConstraintMetric:
    """One budgetable metric: a result attribute plus its display unit."""

    name: str
    #: the :class:`SweepPointResult` attribute holding the metric.
    attr: str
    unit: str


#: The budgetable metrics, keyed by CLI name.
CONSTRAINT_METRICS: Dict[str, ConstraintMetric] = {
    m.name: m
    for m in (
        ConstraintMetric("power", "tdp_w", "W"),
        ConstraintMetric("area", "area_mm2", "mm2"),
        ConstraintMetric("energy", "gcod_energy_j", "J"),
        ConstraintMetric("dram", "gcod_dram_bytes", "bytes"),
        ConstraintMetric("latency", "gcod_latency_s", "s"),
        ConstraintMetric("bandwidth", "gcod_required_bw_gbps", "GB/s"),
    )
}

#: Comparison operators, longest spelling first so ``<=`` never parses
#: as ``<`` with a stray ``=`` in the bound.
_OPS: Tuple[Tuple[str, object], ...] = (
    ("<=", lambda v, b: v <= b),
    (">=", lambda v, b: v >= b),
    ("<", lambda v, b: v < b),
    (">", lambda v, b: v > b),
)


def _unknown_metric_error(name: str) -> ConfigError:
    close = did_you_mean(name, CONSTRAINT_METRICS)
    suggestion = f" (did you mean {close!r}?)" if close else ""
    return ConfigError(
        f"unknown constraint metric {name!r}{suggestion}; choose from "
        f"{', '.join(CONSTRAINT_METRICS)}"
    )


@dataclasses.dataclass(frozen=True)
class Constraint:
    """One parsed bound, e.g. ``power <= 5.0``."""

    metric: ConstraintMetric
    op: str
    bound: float

    def satisfied(self, result: SweepPointResult) -> bool:
        value = float(getattr(result, self.metric.attr))
        check = dict(_OPS)[self.op]
        return bool(check(value, self.bound))

    def describe(self) -> str:
        # %g keeps bounds readable ("2e+09", "5", "40.5") and stable.
        return f"{self.metric.name} {self.op} {self.bound:g} " \
               f"[{self.metric.unit}]"


ConstraintsLike = Union[None, str, Sequence[Constraint]]


def parse_constraints(text: str) -> Tuple[Constraint, ...]:
    """Parse a ``--constrain`` string into :class:`Constraint` instances.

    Syntax: comma-separated ``metric<op>bound`` clauses with ``<=``,
    ``<``, ``>=``, or ``>``, e.g. ``"power<=5,area<=40,dram<=2e9"``.
    Metric names are matched case-insensitively; bounds are floats
    (scientific notation welcome). Repeating a metric *is* allowed —
    ``latency>=1e-6,latency<=1e-3`` brackets a range.
    """
    constraints: List[Constraint] = []
    for clause in str(text).split(","):
        clause = clause.strip()
        if not clause:
            continue
        for op, _ in _OPS:
            if op in clause:
                name, _, bound_text = clause.partition(op)
                break
        else:
            raise ConfigError(
                f"--constrain clause {clause!r} is not of the form "
                f"metric<=bound (operators: <=, <, >=, >)"
            )
        name = name.strip()
        metric = CONSTRAINT_METRICS.get(name) or CONSTRAINT_METRICS.get(
            name.casefold()
        )
        if metric is None:
            raise _unknown_metric_error(name)
        try:
            bound = float(bound_text.strip())
        except ValueError:
            raise ConfigError(
                f"--constrain clause {clause!r}: bound "
                f"{bound_text.strip()!r} is not a number"
            ) from None
        constraints.append(Constraint(metric=metric, op=op, bound=bound))
    if not constraints:
        raise ConfigError(
            f"--constrain selected no constraints; bound one of "
            f"{', '.join(CONSTRAINT_METRICS)}"
        )
    return tuple(constraints)


def resolve_constraints(
    constraints: ConstraintsLike,
) -> Tuple[Constraint, ...]:
    """Normalize a constraint selection (None, CLI string, or instances)."""
    if constraints is None:
        return ()
    if isinstance(constraints, str):
        return parse_constraints(constraints)
    return tuple(constraints)


def is_feasible(
    result: SweepPointResult, constraints: Sequence[Constraint]
) -> bool:
    """True when ``result`` satisfies every constraint."""
    return all(c.satisfied(result) for c in constraints)


def describe_constraints(constraints: Sequence[Constraint]) -> str:
    """The human-readable conjunction, e.g. ``power <= 5 [W], ...``."""
    return ", ".join(c.describe() for c in constraints)


__all__ = (
    "CONSTRAINT_METRICS",
    "Constraint",
    "ConstraintMetric",
    "ConstraintsLike",
    "describe_constraints",
    "is_feasible",
    "parse_constraints",
    "resolve_constraints",
)
