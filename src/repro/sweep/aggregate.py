"""Sweep aggregation: long-form tables and N-dimensional Pareto frontiers.

The long-form table has one row per grid point — the declared axis
coordinates first (in axis order), then the canonical metric columns — so
it loads straight into pandas/R as tidy data via
:meth:`~repro.evaluation.context.ExperimentResult.to_csv`.

The Pareto helpers reduce the same results to the designs worth looking
at, under a *selectable objective set* (``--objectives speedup,energy,
dram``): each :class:`Objective` names a :class:`SweepPointResult` metric
and whether it is maximized or minimized, and :func:`pareto_frontier`
computes the non-dominated set under N-dimensional dominance. The default
pair (speedup over AWB-GCN, accuracy) reproduces the 2-D frontier the
engine has always reported, byte for byte.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Sequence, Tuple, Union

from repro.errors import ConfigError
from repro.evaluation.context import ExperimentResult
from repro.sweep.engine import SweepPointResult
from repro.sweep.spec import SweepSpec

#: Metric columns appended after the axis coordinates, in table order.
METRIC_HEADERS = (
    "speedup vs awb",
    "BW reduction vs hygcn",
    "accuracy %",
    "balance",
    "latency (ms)",
    "energy (mJ)",
    "dram (MB)",
    "agg sim kcycles",
    "dma util",
)


@dataclasses.dataclass(frozen=True)
class Objective:
    """One Pareto objective: a point metric plus an optimization sense."""

    name: str
    #: the :class:`SweepPointResult` attribute holding the metric.
    attr: str
    #: +1 to maximize, -1 to minimize.
    sense: int
    #: how the frontier's extra text names it (grammar: fits "Pareto-
    #: optimal on (<describe>, <describe>)").
    describe: str

    def score(self, result: SweepPointResult) -> float:
        """The sense-adjusted value: dominance always maximizes scores."""
        return self.sense * float(getattr(result, self.attr))


#: The selectable objectives, keyed by CLI name.
OBJECTIVES = {
    obj.name: obj
    for obj in (
        Objective("speedup", "speedup_vs_awb", +1, "speedup vs AWB-GCN"),
        Objective("accuracy", "accuracy", +1, "accuracy"),
        Objective("energy", "gcod_energy_j", -1, "energy"),
        Objective("dram", "gcod_dram_bytes", -1, "DRAM traffic"),
        Objective("latency", "gcod_latency_s", -1, "latency"),
        Objective("bandwidth", "gcod_required_bw_gbps", -1,
                  "required bandwidth"),
    )
}

#: What the frontier optimizes when no ``--objectives`` is given — the
#: original 2-D speedup/accuracy frontier.
DEFAULT_OBJECTIVES: Tuple[str, str] = ("speedup", "accuracy")

ObjectivesLike = Union[None, str, Sequence[Union[str, Objective]]]


def _unknown_objective_error(name: str) -> ConfigError:
    """Usage error for a bad ``--objectives`` name, with a near-miss hint.

    Mirrors the grid-axis and sweep-name UX: a case slip (``Energy``) or
    a one-edit-away spelling (``dram_bytes``) exits 2 with the intended
    name instead of a raw unknown-objective line.
    """
    import difflib

    folded = str(name).casefold()
    by_fold = {o.casefold(): o for o in OBJECTIVES}
    close = (
        by_fold.get(folded)
        # a unit/suffix slip: `dram_bytes`, `latency_ms`
        or next((o for o in OBJECTIVES if folded.startswith(o.casefold())),
                None)
        or next(iter(difflib.get_close_matches(str(name), OBJECTIVES,
                                               n=1, cutoff=0.6)), None)
    )
    suggestion = f" (did you mean {close!r}?)" if close else ""
    return ConfigError(
        f"unknown objective {name!r}{suggestion}; choose from "
        f"{', '.join(OBJECTIVES)}"
    )


def resolve_objectives(objectives: ObjectivesLike) -> Tuple[Objective, ...]:
    """Normalize an objective selection into :class:`Objective` instances.

    Accepts ``None`` (the default pair), a comma-separated CLI string, or a
    sequence of names/instances. Unknown names raise :class:`ConfigError`
    naming the known set (the CLI turns that into exit code 2), as do empty
    and duplicate selections — a repeated objective would silently degrade
    the frontier to a lower dimension.
    """
    if objectives is None:
        objectives = DEFAULT_OBJECTIVES
    if isinstance(objectives, str):
        objectives = [o.strip() for o in objectives.split(",") if o.strip()]
    resolved: List[Objective] = []
    for obj in objectives:
        if isinstance(obj, Objective):
            resolved.append(obj)
            continue
        if obj not in OBJECTIVES:
            raise _unknown_objective_error(obj)
        resolved.append(OBJECTIVES[obj])
    if not resolved:
        raise ConfigError(
            f"--objectives selected nothing; choose from "
            f"{', '.join(OBJECTIVES)}"
        )
    names = [o.name for o in resolved]
    if len(set(names)) != len(names):
        raise ConfigError(f"--objectives repeats a name: {', '.join(names)}")
    return tuple(resolved)


def dominates(
    p: SweepPointResult,
    q: SweepPointResult,
    objectives: ObjectivesLike = None,
) -> bool:
    """True when ``p`` Pareto-dominates ``q`` under ``objectives``.

    Dominance is the strict product order on sense-adjusted scores: ``p``
    is at least as good on every objective and strictly better on at least
    one. It is irreflexive, asymmetric, and transitive — a strict partial
    order (property-tested in ``tests/sweep/test_pareto_properties.py``).
    """
    objs = resolve_objectives(objectives)
    return _dominates(tuple(o.score(p) for o in objs),
                      tuple(o.score(q) for o in objs))


def _dominates(a: Tuple[float, ...], b: Tuple[float, ...]) -> bool:
    return all(x >= y for x, y in zip(a, b)) and any(
        x > y for x, y in zip(a, b)
    )


def pareto_frontier(
    results: Sequence[SweepPointResult],
    objectives: ObjectivesLike = None,
) -> List[SweepPointResult]:
    """The non-dominated set under the selected objectives.

    A point survives unless another point dominates it; exact ties all
    survive. The frontier is returned sorted by descending score on the
    first objective, then the second, ..., then grid order — a
    deterministic walk along the trade-off surface. The *membership* of
    the frontier is invariant under permutation of the points and of the
    objective columns; only this walk order depends on them.
    """
    objs = resolve_objectives(objectives)
    scored = [
        (i, r, tuple(o.score(r) for o in objs))
        for i, r in enumerate(results)
    ]
    frontier = [
        (i, r, s)
        for i, r, s in scored
        if not any(_dominates(other, s) for _, _, other in scored)
    ]
    frontier.sort(key=lambda irs: tuple(-v for v in irs[2]) + (irs[0],))
    return [r for _, r, _ in frontier]


def _metric_cells(r: SweepPointResult) -> tuple:
    return (
        round(r.speedup_vs_awb, 2),
        f"{r.bw_reduction_vs_hygcn * 100:.0f}%",
        round(r.accuracy * 100, 1),
        round(r.balance, 3),
        # 4-significant-digit strings: micro-scale latencies would render
        # as 0.00 under the table's fixed two-decimal float format.
        f"{r.gcod_latency_s * 1e3:.4g}",
        f"{r.gcod_energy_j * 1e3:.4g}",
        f"{r.gcod_dram_bytes / 2**20:.4g}",
        f"{r.agg_sim_cycles / 1e3:.4g}",
        round(r.agg_dma_utilization, 3),
    )


def long_form_result(
    spec: SweepSpec, results: Sequence[SweepPointResult]
) -> ExperimentResult:
    """The whole grid as one tidy table (grid order preserved)."""
    headers = spec.axis_names + METRIC_HEADERS
    rows = [
        tuple(value for _, value in r.axes) + _metric_cells(r)
        for r in results
    ]
    speedups = [r.speedup_vs_awb for r in results]
    accs = [r.accuracy for r in results]
    extra = (
        f"{len(results)} design points; speedup over AWB-GCN in "
        f"[{min(speedups):.2f}, {max(speedups):.2f}]; accuracy in "
        f"[{min(accs) * 100:.1f}%, {max(accs) * 100:.1f}%]."
    )
    return ExperimentResult(
        name=f"Sweep: {spec.title}",
        headers=headers,
        rows=rows,
        extra_text=extra,
    )


def pareto_result(
    spec: SweepSpec,
    results: Sequence[SweepPointResult],
    objectives: ObjectivesLike = None,
) -> ExperimentResult:
    """The Pareto frontier as a table (same columns as the long form)."""
    objs = resolve_objectives(objectives)
    frontier = pareto_frontier(results, objs)
    headers = spec.axis_names + METRIC_HEADERS
    rows = [
        tuple(value for _, value in r.axes) + _metric_cells(r)
        for r in frontier
    ]
    extra = (
        f"{len(frontier)} of {len(results)} design points are "
        f"Pareto-optimal on ({', '.join(o.describe for o in objs)})."
    )
    return ExperimentResult(
        name=f"Pareto frontier: {spec.title}",
        headers=headers,
        rows=rows,
        extra_text=extra,
    )


def sweep_report_text(
    spec: SweepSpec,
    results: Sequence[SweepPointResult],
    objectives: ObjectivesLike = None,
) -> str:
    """The printable ``repro sweep`` document: long form + frontier."""
    parts = [f"# Sweep: {spec.name}", ""]
    if spec.description:
        parts += [spec.description, ""]
    parts += [
        long_form_result(spec, results).render(),
        "",
        pareto_result(spec, results, objectives).render(),
    ]
    return "\n".join(parts) + "\n"
