"""Sweep aggregation: long-form tables and N-dimensional Pareto frontiers.

The long-form table has one row per grid point — the declared axis
coordinates first (in axis order), then the canonical metric columns — so
it loads straight into pandas/R as tidy data via
:meth:`~repro.evaluation.context.ExperimentResult.to_csv`.

The Pareto helpers reduce the same results to the designs worth looking
at, under a *selectable objective set* (``--objectives speedup,energy,
dram``): each :class:`Objective` names a :class:`SweepPointResult` metric
and whether it is maximized or minimized, and :func:`pareto_frontier`
computes the non-dominated set under N-dimensional dominance. The default
pair (speedup over AWB-GCN, accuracy) reproduces the 2-D frontier the
engine has always reported, byte for byte.

Two optional layers ride on top:

* **budget constraints** (:mod:`repro.sweep.constraints`) — with a
  ``--constrain`` set, the frontier is computed over the
  constraint-feasible subset of the grid; the long form keeps every
  point and flags each in a ``feasible`` column;
* **seed variance** — when the grid sweeps a ``seed`` axis,
  :func:`seed_variance_result` groups points that differ only in seed
  and reports a mean/std column pair for every metric, so frontier
  winners carry error bars.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.errors import ConfigError
from repro.evaluation.context import ExperimentResult
from repro.sweep.constraints import (
    ConstraintsLike,
    describe_constraints,
    is_feasible,
    resolve_constraints,
)
from repro.sweep.engine import SweepPointResult
from repro.sweep.spec import SweepSpec

#: Metric columns appended after the axis coordinates, in table order.
METRIC_HEADERS = (
    "speedup vs awb",
    "BW reduction vs hygcn",
    "accuracy %",
    "balance",
    "latency (ms)",
    "energy (mJ)",
    "dram (MB)",
    "agg sim kcycles",
    "dma util",
    "area (mm2)",
    "power (W)",
)


@dataclasses.dataclass(frozen=True)
class Objective:
    """One Pareto objective: a point metric plus an optimization sense."""

    name: str
    #: the :class:`SweepPointResult` attribute holding the metric.
    attr: str
    #: +1 to maximize, -1 to minimize.
    sense: int
    #: how the frontier's extra text names it (grammar: fits "Pareto-
    #: optimal on (<describe>, <describe>)").
    describe: str

    def score(self, result: SweepPointResult) -> float:
        """The sense-adjusted value: dominance always maximizes scores."""
        return self.sense * float(getattr(result, self.attr))


#: The selectable objectives, keyed by CLI name.
OBJECTIVES = {
    obj.name: obj
    for obj in (
        Objective("speedup", "speedup_vs_awb", +1, "speedup vs AWB-GCN"),
        Objective("accuracy", "accuracy", +1, "accuracy"),
        Objective("energy", "gcod_energy_j", -1, "energy"),
        Objective("dram", "gcod_dram_bytes", -1, "DRAM traffic"),
        Objective("latency", "gcod_latency_s", -1, "latency"),
        Objective("bandwidth", "gcod_required_bw_gbps", -1,
                  "required bandwidth"),
        Objective("power", "tdp_w", -1, "TDP"),
        Objective("area", "area_mm2", -1, "silicon area"),
    )
}

#: What the frontier optimizes when no ``--objectives`` is given — the
#: original 2-D speedup/accuracy frontier.
DEFAULT_OBJECTIVES: Tuple[str, str] = ("speedup", "accuracy")

ObjectivesLike = Union[None, str, Sequence[Union[str, Objective]]]


def _unknown_objective_error(name: str) -> ConfigError:
    """Usage error for a bad ``--objectives`` name, with a near-miss hint.

    Mirrors the grid-axis and sweep-name UX: a case slip (``Energy``) or
    a one-edit-away spelling (``dram_bytes``) exits 2 with the intended
    name instead of a raw unknown-objective line.
    """
    from repro.errors import did_you_mean

    # prefix=True catches the unit/suffix slips: `dram_bytes`, `latency_ms`
    close = did_you_mean(name, OBJECTIVES, prefix=True)
    suggestion = f" (did you mean {close!r}?)" if close else ""
    return ConfigError(
        f"unknown objective {name!r}{suggestion}; choose from "
        f"{', '.join(OBJECTIVES)}"
    )


def resolve_objectives(objectives: ObjectivesLike) -> Tuple[Objective, ...]:
    """Normalize an objective selection into :class:`Objective` instances.

    Accepts ``None`` (the default pair), a comma-separated CLI string, or a
    sequence of names/instances. Unknown names raise :class:`ConfigError`
    naming the known set (the CLI turns that into exit code 2), as do empty
    and duplicate selections — a repeated objective would silently degrade
    the frontier to a lower dimension.
    """
    if objectives is None:
        objectives = DEFAULT_OBJECTIVES
    if isinstance(objectives, str):
        objectives = [o.strip() for o in objectives.split(",") if o.strip()]
    resolved: List[Objective] = []
    for obj in objectives:
        if isinstance(obj, Objective):
            resolved.append(obj)
            continue
        if obj not in OBJECTIVES:
            raise _unknown_objective_error(obj)
        resolved.append(OBJECTIVES[obj])
    if not resolved:
        raise ConfigError(
            f"--objectives selected nothing; choose from "
            f"{', '.join(OBJECTIVES)}"
        )
    names = [o.name for o in resolved]
    if len(set(names)) != len(names):
        raise ConfigError(f"--objectives repeats a name: {', '.join(names)}")
    return tuple(resolved)


def dominates(
    p: SweepPointResult,
    q: SweepPointResult,
    objectives: ObjectivesLike = None,
) -> bool:
    """True when ``p`` Pareto-dominates ``q`` under ``objectives``.

    Dominance is the strict product order on sense-adjusted scores: ``p``
    is at least as good on every objective and strictly better on at least
    one. It is irreflexive, asymmetric, and transitive — a strict partial
    order (property-tested in ``tests/sweep/test_pareto_properties.py``).
    """
    objs = resolve_objectives(objectives)
    return _dominates(tuple(o.score(p) for o in objs),
                      tuple(o.score(q) for o in objs))


def _dominates(a: Tuple[float, ...], b: Tuple[float, ...]) -> bool:
    return all(x >= y for x, y in zip(a, b)) and any(
        x > y for x, y in zip(a, b)
    )


def pareto_frontier(
    results: Sequence[SweepPointResult],
    objectives: ObjectivesLike = None,
    constraints: ConstraintsLike = None,
) -> List[SweepPointResult]:
    """The non-dominated set under the selected objectives.

    A point survives unless another point dominates it; exact ties all
    survive. The frontier is returned sorted by descending score on the
    first objective, then the second, ..., then grid order — a
    deterministic walk along the trade-off surface. The *membership* of
    the frontier is invariant under permutation of the points and of the
    objective columns; only this walk order depends on them.

    With ``constraints``, the frontier is computed over the
    constraint-feasible subset: infeasible points neither appear on nor
    dominate the frontier — the budgeted answer is the best of what can
    actually be built. When every constraint bounds a *minimized
    objective* from above (``--objectives speedup,energy --constrain
    "energy<=x"``), this coincides exactly with post-hoc filtering of
    the unconstrained frontier, because any dominator of a feasible
    point is then itself feasible.
    """
    objs = resolve_objectives(objectives)
    cons = resolve_constraints(constraints)
    scored = [
        (i, r, tuple(o.score(r) for o in objs))
        for i, r in enumerate(results)
        if not cons or is_feasible(r, cons)
    ]
    frontier = [
        (i, r, s)
        for i, r, s in scored
        if not any(_dominates(other, s) for _, _, other in scored)
    ]
    frontier.sort(key=lambda irs: tuple(-v for v in irs[2]) + (irs[0],))
    return [r for _, r, _ in frontier]


def _metric_cells(r: SweepPointResult) -> tuple:
    return (
        round(r.speedup_vs_awb, 2),
        f"{r.bw_reduction_vs_hygcn * 100:.0f}%",
        round(r.accuracy * 100, 1),
        round(r.balance, 3),
        # 4-significant-digit strings: micro-scale latencies would render
        # as 0.00 under the table's fixed two-decimal float format.
        f"{r.gcod_latency_s * 1e3:.4g}",
        f"{r.gcod_energy_j * 1e3:.4g}",
        f"{r.gcod_dram_bytes / 2**20:.4g}",
        f"{r.agg_sim_cycles / 1e3:.4g}",
        round(r.agg_dma_utilization, 3),
        f"{r.area_mm2:.4g}",
        f"{r.tdp_w:.4g}",
    )


def long_form_result(
    spec: SweepSpec,
    results: Sequence[SweepPointResult],
    constraints: ConstraintsLike = None,
) -> ExperimentResult:
    """The whole grid as one tidy table (grid order preserved).

    With ``constraints``, every point stays in the table — infeasible
    ones included, they document the boundary — and a trailing
    ``feasible`` column flags each.
    """
    cons = resolve_constraints(constraints)
    headers = spec.axis_names + METRIC_HEADERS
    if cons:
        headers = headers + ("feasible",)
    rows = []
    feasible_n = 0
    for r in results:
        row = tuple(value for _, value in r.axes) + _metric_cells(r)
        if cons:
            ok = is_feasible(r, cons)
            feasible_n += ok
            row = row + ("yes" if ok else "no",)
        rows.append(row)
    speedups = [r.speedup_vs_awb for r in results]
    accs = [r.accuracy for r in results]
    extra = (
        f"{len(results)} design points; speedup over AWB-GCN in "
        f"[{min(speedups):.2f}, {max(speedups):.2f}]; accuracy in "
        f"[{min(accs) * 100:.1f}%, {max(accs) * 100:.1f}%]."
    )
    if cons:
        extra += (
            f" {feasible_n} of {len(results)} satisfy "
            f"{describe_constraints(cons)}."
        )
    return ExperimentResult(
        name=f"Sweep: {spec.title}",
        headers=headers,
        rows=rows,
        extra_text=extra,
    )


def pareto_result(
    spec: SweepSpec,
    results: Sequence[SweepPointResult],
    objectives: ObjectivesLike = None,
    constraints: ConstraintsLike = None,
) -> ExperimentResult:
    """The Pareto frontier as a table (same columns as the long form)."""
    objs = resolve_objectives(objectives)
    cons = resolve_constraints(constraints)
    frontier = pareto_frontier(results, objs, cons)
    headers = spec.axis_names + METRIC_HEADERS
    rows = [
        tuple(value for _, value in r.axes) + _metric_cells(r)
        for r in frontier
    ]
    if cons:
        feasible_n = sum(1 for r in results if is_feasible(r, cons))
        extra = (
            f"{len(frontier)} of {feasible_n} feasible design points "
            f"({len(results)} in the grid) are Pareto-optimal on "
            f"({', '.join(o.describe for o in objs)}) under "
            f"{describe_constraints(cons)}."
        )
    else:
        extra = (
            f"{len(frontier)} of {len(results)} design points are "
            f"Pareto-optimal on ({', '.join(o.describe for o in objs)})."
        )
    return ExperimentResult(
        name=f"Pareto frontier: {spec.title}",
        headers=headers,
        rows=rows,
        extra_text=extra,
    )


#: The metric columns of the seed-variance table: (column stem, result
#: attribute). Every numeric metric a point reports gets a mean/std pair
#: — with a single seed the mean is the exact point value and the
#: (population) std is exactly 0.
VARIANCE_METRICS: Tuple[Tuple[str, str], ...] = (
    ("speedup", "speedup_vs_awb"),
    ("bw_reduction", "bw_reduction_vs_hygcn"),
    ("accuracy", "accuracy"),
    ("balance", "balance"),
    ("latency_s", "gcod_latency_s"),
    ("energy_j", "gcod_energy_j"),
    ("dram_bytes", "gcod_dram_bytes"),
    ("bandwidth_gbps", "gcod_required_bw_gbps"),
    ("agg_cycles", "agg_sim_cycles"),
    ("dma_util", "agg_dma_utilization"),
    ("area_mm2", "area_mm2"),
    ("tdp_w", "tdp_w"),
)


def _mean_std(values: Sequence[float]) -> Tuple[float, float]:
    """Mean and *population* std (ddof=0): one sample has std exactly 0."""
    n = len(values)
    mean = math.fsum(values) / n
    var = math.fsum((v - mean) ** 2 for v in values) / n
    return mean, math.sqrt(var)


def seed_variance_result(
    spec: SweepSpec, results: Sequence[SweepPointResult]
) -> Optional[ExperimentResult]:
    """Per-point-group mean/std over the ``seed`` axis (error bars).

    Groups points that share every non-seed coordinate, in grid order,
    and reports a ``<metric> mean`` / ``<metric> std`` column pair for
    every metric. Returns ``None`` when the grid has no ``seed`` axis —
    a single-seed sweep has nothing to aggregate.
    """
    if "seed" not in spec.axis_names:
        return None
    group_axes = tuple(n for n in spec.axis_names if n != "seed")
    groups: Dict[tuple, List[SweepPointResult]] = {}
    for r in results:
        key = tuple(r.coord(a) for a in group_axes)
        groups.setdefault(key, []).append(r)
    headers = group_axes + ("seeds",) + tuple(
        f"{stem} {stat}"
        for stem, _ in VARIANCE_METRICS
        for stat in ("mean", "std")
    )
    rows = []
    for key, members in groups.items():
        cells: List[object] = list(key) + [len(members)]
        for _, attr in VARIANCE_METRICS:
            mean, std = _mean_std(
                [float(getattr(m, attr)) for m in members]
            )
            cells += [f"{mean:.6g}", f"{std:.6g}"]
        rows.append(tuple(cells))
    n_seeds = max(len(m) for m in groups.values())
    extra = (
        f"{len(groups)} point groups x up to {n_seeds} seed(s); std is "
        f"the population standard deviation (exactly 0 for one seed)."
    )
    return ExperimentResult(
        name=f"Seed variance: {spec.title}",
        headers=headers,
        rows=rows,
        extra_text=extra,
    )


def sweep_report_text(
    spec: SweepSpec,
    results: Sequence[SweepPointResult],
    objectives: ObjectivesLike = None,
    constraints: ConstraintsLike = None,
) -> str:
    """The printable ``repro sweep`` document: long form + frontier.

    A ``seed`` axis adds the variance table between the two; a
    constraint set threads into both standard tables.
    """
    parts = [f"# Sweep: {spec.name}", ""]
    if spec.description:
        parts += [spec.description, ""]
    parts += [long_form_result(spec, results, constraints).render()]
    variance = seed_variance_result(spec, results)
    if variance is not None:
        parts += ["", variance.render()]
    parts += ["", pareto_result(spec, results, objectives,
                                constraints).render()]
    return "\n".join(parts) + "\n"
