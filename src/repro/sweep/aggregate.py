"""Sweep aggregation: long-form tables and the speedup/accuracy Pareto set.

The long-form table has one row per grid point — the declared axis
coordinates first (in axis order), then the canonical metric columns — so
it loads straight into pandas/R as tidy data via
:meth:`~repro.evaluation.context.ExperimentResult.to_csv`. The Pareto
helpers reduce the same results to the designs worth looking at: the
points no other point beats on *both* speedup (over AWB-GCN) and final
accuracy.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.evaluation.context import ExperimentResult
from repro.sweep.engine import SweepPointResult
from repro.sweep.spec import SweepSpec

#: Metric columns appended after the axis coordinates, in table order.
METRIC_HEADERS = (
    "speedup vs awb",
    "BW reduction vs hygcn",
    "accuracy %",
    "balance",
    "latency (ms)",
    "energy (mJ)",
)


def _metric_cells(r: SweepPointResult) -> tuple:
    return (
        round(r.speedup_vs_awb, 2),
        f"{r.bw_reduction_vs_hygcn * 100:.0f}%",
        round(r.accuracy * 100, 1),
        round(r.balance, 3),
        # 4-significant-digit strings: micro-scale latencies would render
        # as 0.00 under the table's fixed two-decimal float format.
        f"{r.gcod_latency_s * 1e3:.4g}",
        f"{r.gcod_energy_j * 1e3:.4g}",
    )


def long_form_result(
    spec: SweepSpec, results: Sequence[SweepPointResult]
) -> ExperimentResult:
    """The whole grid as one tidy table (grid order preserved)."""
    headers = spec.axis_names + METRIC_HEADERS
    rows = [
        tuple(value for _, value in r.axes) + _metric_cells(r)
        for r in results
    ]
    speedups = [r.speedup_vs_awb for r in results]
    accs = [r.accuracy for r in results]
    extra = (
        f"{len(results)} design points; speedup over AWB-GCN in "
        f"[{min(speedups):.2f}, {max(speedups):.2f}]; accuracy in "
        f"[{min(accs) * 100:.1f}%, {max(accs) * 100:.1f}%]."
    )
    return ExperimentResult(
        name=f"Sweep: {spec.title}",
        headers=headers,
        rows=rows,
        extra_text=extra,
    )


def pareto_frontier(
    results: Sequence[SweepPointResult],
) -> List[SweepPointResult]:
    """The non-dominated set, maximizing (speedup_vs_awb, accuracy).

    A point is dominated when another point is at least as good on both
    objectives and strictly better on one. Ties (exact duplicates) all
    survive. The frontier is returned sorted by descending speedup, then
    descending accuracy, then grid order — a deterministic walk along the
    trade-off curve.
    """
    indexed = list(enumerate(results))
    frontier = []
    for i, r in indexed:
        dominated = any(
            q.speedup_vs_awb >= r.speedup_vs_awb
            and q.accuracy >= r.accuracy
            and (q.speedup_vs_awb > r.speedup_vs_awb
                 or q.accuracy > r.accuracy)
            for _, q in indexed
        )
        if not dominated:
            frontier.append((i, r))
    frontier.sort(key=lambda ir: (-ir[1].speedup_vs_awb,
                                  -ir[1].accuracy, ir[0]))
    return [r for _, r in frontier]


def pareto_result(
    spec: SweepSpec, results: Sequence[SweepPointResult]
) -> ExperimentResult:
    """The Pareto frontier as a table (same columns as the long form)."""
    frontier = pareto_frontier(results)
    headers = spec.axis_names + METRIC_HEADERS
    rows = [
        tuple(value for _, value in r.axes) + _metric_cells(r)
        for r in frontier
    ]
    extra = (
        f"{len(frontier)} of {len(results)} design points are "
        "Pareto-optimal on (speedup vs AWB-GCN, accuracy)."
    )
    return ExperimentResult(
        name=f"Pareto frontier: {spec.title}",
        headers=headers,
        rows=rows,
        extra_text=extra,
    )


def sweep_report_text(
    spec: SweepSpec, results: Sequence[SweepPointResult]
) -> str:
    """The printable ``repro sweep`` document: long form + frontier."""
    parts = [f"# Sweep: {spec.name}", ""]
    if spec.description:
        parts += [spec.description, ""]
    parts += [
        long_form_result(spec, results).render(),
        "",
        pareto_result(spec, results).render(),
    ]
    return "\n".join(parts) + "\n"
