"""The distributed sweep work ledger: claim, work, release, expire.

When many ``repro sweep`` workers — on one host or many — share a single
artifact store, the store itself becomes the coordination substrate: the
grid's missing points are the work queue, store membership is the "done"
signal, and *claims* (atomic put-if-absent entries under the ``claim``
kind, :meth:`ArtifactStore.claim`) are the mutual exclusion that keeps
every point evaluated exactly once.

The protocol, per work item:

1. if the item's result is already stored (or a peer just produced it),
   it is done — skip;
2. otherwise try to claim ``<name>``; the backend's put-if-absent
   guarantees exactly one of N racing workers wins;
3. the winner does the work, persists the result, and releases the
   claim; losers move on to the next item;
4. a claim older than its TTL is *stale* — its worker died mid-point —
   and any worker may break it and re-claim, so a pulled plug delays a
   point by at most one TTL instead of stranding it forever.

Exactly-once is guaranteed for live workers (the claim race has one
winner, and results are checked before claiming). The stale-expiry path
is at-least-once by design: if a "dead" worker was merely slow, the
point is evaluated twice — but results are content-addressed and
byte-identical, so the second write is a no-op semantically. TTLs only
bound *crash recovery* latency; they are not a correctness knob.
"""

from __future__ import annotations

import os
import socket
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

from repro.runtime.store import ArtifactStore

#: default age at which a claim is considered abandoned by a dead worker.
DEFAULT_CLAIM_TTL_S = 600.0
#: default pause between passes over a fully-claimed pending set.
DEFAULT_POLL_S = 0.5


def default_worker_id() -> str:
    """``<host>-<pid>``: unique per live worker process, debuggable."""
    return f"{socket.gethostname()}-{os.getpid()}"


@dataclass
class LedgerStats:
    """What one worker's ledger did (surfaced via ``--stats-out``)."""

    claimed: int = 0
    lost: int = 0
    stale_reclaimed: int = 0
    released: int = 0
    polls: int = 0
    waited_s: float = 0.0

    def to_dict(self) -> Dict[str, float]:
        return {
            "claimed": self.claimed,
            "lost": self.lost,
            "stale_reclaimed": self.stale_reclaimed,
            "released": self.released,
            "polls": self.polls,
            "waited_s": round(self.waited_s, 3),
        }


@dataclass
class WorkLedger:
    """Claim-based work distribution over one shared :class:`ArtifactStore`."""

    store: ArtifactStore
    worker: str = field(default_factory=default_worker_id)
    ttl_s: float = DEFAULT_CLAIM_TTL_S
    poll_s: float = DEFAULT_POLL_S
    stats: LedgerStats = field(default_factory=LedgerStats)

    # ------------------------------------------------------------------
    # claim primitives
    # ------------------------------------------------------------------
    def _payload(self) -> Dict[str, object]:
        return {
            "worker": self.worker,
            "claimed_at": time.time(),
            "ttl_s": self.ttl_s,
        }

    def try_claim(self, name: str) -> bool:
        """Try to become ``name``'s owner; True iff this worker won.

        A claim whose age exceeds its own recorded TTL is broken and
        re-claimed (the stale-expiry path for dead workers).
        """
        if self.store.claim(name, self._payload()):
            self.stats.claimed += 1
            return True
        existing = self.store.read_claim(name)
        if existing is None:
            # Released (or unreadable — treated as stale) between our
            # put-if-absent and the read: race for it once more.
            if self.store.claim(name, self._payload()):
                self.stats.claimed += 1
                return True
            self.stats.lost += 1
            return False
        try:
            age = time.time() - float(existing.get("claimed_at", 0.0))
            ttl = float(existing.get("ttl_s", self.ttl_s))
        except (TypeError, ValueError):
            age, ttl = float("inf"), 0.0  # garbled claim: stale
        if age > ttl:
            # The owner died mid-work. Break the claim and race for the
            # replacement; at most one of the racing breakers wins the
            # put-if-absent that follows.
            self.store.release_claim(name)
            if self.store.claim(name, self._payload()):
                self.stats.stale_reclaimed += 1
                return True
        self.stats.lost += 1
        return False

    def release(self, name: str) -> None:
        """Give up ``name`` (after its result landed in the store)."""
        self.store.release_claim(name)
        self.stats.released += 1

    def wait(self) -> None:
        """Pause before re-scanning a fully-claimed pending set."""
        self.stats.polls += 1
        self.stats.waited_s += self.poll_s
        time.sleep(self.poll_s)

    # ------------------------------------------------------------------
    # the drain loop
    # ------------------------------------------------------------------
    def drain(
        self,
        items: Dict[str, object],
        is_done: Callable[[object], bool],
        work: Callable[[object], None],
        on_skip: Optional[Callable[[object], None]] = None,
    ) -> int:
        """Run every item to completion, cooperating with peer workers.

        ``items`` maps claim names to work items, in priority order.
        Each pass over the pending set: finished items (``is_done`` —
        typically store membership) are dropped, unclaimed items are
        claimed and ``work``-ed here. When a pass makes no progress,
        every pending item is claimed by a live peer — wait and re-scan;
        peers' completions (or their claims going stale) unblock us.
        Returns the number of items this worker actually worked.

        ``work`` failures release the claim (a peer can retry) and
        propagate — matching the engine's fail-loudly-and-resume
        contract.
        """
        pending = dict(items)
        worked = 0
        while pending:
            progress = False
            for name, item in list(pending.items()):
                if is_done(item):
                    if on_skip is not None:
                        on_skip(item)
                    del pending[name]
                    progress = True
                    continue
                if not self.try_claim(name):
                    continue
                try:
                    # Re-check under the claim: the previous owner may
                    # have finished right before its claim was released
                    # or expired.
                    if not is_done(item):
                        work(item)
                        worked += 1
                    elif on_skip is not None:
                        on_skip(item)
                finally:
                    self.release(name)
                del pending[name]
                progress = True
            if pending and not progress:
                self.wait()
        return worked
