"""Sweep run manifests: what a sweep planned, what it finished.

A :class:`SweepManifest` is written into the artifact store the moment a
sweep starts executing and records the full list of planned point digests
(grid order) alongside which of them are done. If the sweep dies mid-grid
— a worker raising :class:`~repro.runtime.runner.GCoDTaskError`, a SIGINT,
a pulled plug — the manifest survives, and ``repro sweep --resume``
reloads it to evaluate *exactly* the missing points.

Two design rules keep resume honest:

* the manifest's identity (its store key) is the grid plus the context
  knobs the point keys inherit — never the sweep's registered name — so a
  registered sweep and an ad-hoc ``--grid`` spelling of the same axes
  share one manifest;
* :meth:`SweepManifest.missing_indices` is computed against *store
  membership* of the point entries, not the manifest's own ``done`` list.
  The ``done`` list is advisory bookkeeping (refreshed as points land and
  in a ``finally`` when the sweep unwinds); the store is the truth, so a
  process killed between a point write and a manifest update can never
  strand a completed point as "missing" forever — resume just skips it.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Tuple

from repro.runtime.keys import (
    KIND_SWEEP,
    ArtifactKey,
    CODE_SCHEMA_VERSION,
    sweep_manifest_key,
)
from repro.runtime.store import ArtifactStore
from repro.sweep.spec import SweepSpec


@dataclasses.dataclass
class SweepManifest:
    """The planned/done ledger of one sweep execution (the stored artifact)."""

    sweep: str
    title: str
    axes: Tuple[Tuple[str, tuple], ...]
    #: planned point digests, in grid order.
    planned: List[str]
    #: human-readable point labels, same order (for progress/diagnostics).
    labels: List[str]
    #: digests observed complete (advisory; the store is the truth).
    done: List[str] = dataclasses.field(default_factory=list)
    complete: bool = False
    schema: int = CODE_SCHEMA_VERSION

    def missing_indices(self, store: ArtifactStore) -> List[int]:
        """Grid indices of planned points with no stored result."""
        return [
            i for i, digest in enumerate(self.planned)
            if not store.contains_digest(KIND_SWEEP, digest)
        ]

    def missing_digests(self, store: ArtifactStore) -> List[str]:
        """Digests of planned points with no stored result (grid order)."""
        return [self.planned[i] for i in self.missing_indices(store)]

    def missing_labels(self, store: ArtifactStore) -> List[str]:
        """Labels of the missing points — what ``--resume`` will evaluate."""
        return [self.labels[i] for i in self.missing_indices(store)]

    def refresh(self, store: ArtifactStore) -> "SweepManifest":
        """Recompute ``done``/``complete`` from store membership."""
        missing = set(self.missing_indices(store))
        self.done = [
            digest for i, digest in enumerate(self.planned)
            if i not in missing
        ]
        self.complete = not missing
        return self

    def to_summary_dict(self) -> dict:
        """Scalar summary for cache-entry metadata (``repro cache ls``)."""
        return {
            "sweep": self.sweep,
            "points": len(self.planned),
            "done": len(self.done),
            "complete": self.complete,
        }


def manifest_key(context, spec: SweepSpec) -> ArtifactKey:
    """The store key of ``spec``'s manifest under ``context``."""
    return sweep_manifest_key(
        dict(spec.axes),
        context.profile,
        context.seed,
        context.kernel_backend,
        context.dataset_scales,
    )


def load_manifest(
    store: Optional[ArtifactStore], context, spec: SweepSpec
) -> Optional[SweepManifest]:
    """The stored manifest for (``context``, ``spec``), or ``None``."""
    if store is None:
        return None
    manifest = store.get(manifest_key(context, spec))
    return manifest if isinstance(manifest, SweepManifest) else None


def write_manifest(
    store: ArtifactStore, context, spec: SweepSpec, manifest: SweepManifest
) -> SweepManifest:
    """Persist ``manifest`` (atomic overwrite of any prior version)."""
    store.put(
        manifest_key(context, spec),
        manifest,
        summary=manifest.to_summary_dict(),
    )
    return manifest


def begin_manifest(
    store: ArtifactStore, context, spec: SweepSpec, points, keys
) -> SweepManifest:
    """Open (or re-open) the manifest for a sweep that is about to execute.

    ``done`` starts as whatever the store already holds, so an interrupted
    sweep's second run — with or without ``--resume`` — begins from an
    accurate ledger.
    """
    manifest = SweepManifest(
        sweep=spec.name,
        title=spec.title,
        axes=spec.axes,
        planned=[key.digest for key in keys],
        labels=[point.label() for point in points],
    )
    manifest.refresh(store)
    return write_manifest(store, context, spec, manifest)
