"""Design-space sweeps over the GCoD cost model (``repro sweep``).

The declarative counterpart of the paper's Sec. VI-C ablation, generalized
the way `zigzag`-style DSE loops generalize a single cost-model query:

* :mod:`repro.sweep.spec` — :class:`SweepSpec` grids over dataset x arch x
  GCoD knobs (C, S, sparsity) x quantization bits x kernel backend x
  hardware scale, expanded into content-addressed :class:`SweepPoint`\\ s;
* :mod:`repro.sweep.engine` — the store-backed plan/execute loop (cached
  points skip, unique training deps warm across the process pool, and the
  point evaluations themselves fan out over ``--jobs`` workers);
* :mod:`repro.sweep.manifest` — the planned/done ledger behind
  ``repro sweep --resume``;
* :mod:`repro.sweep.ledger` — the claim-based work ledger that lets many
  workers on many hosts drain one grid through a shared store
  (``--store-url`` / ``--ledger``), exactly-once per live worker;
* :mod:`repro.sweep.aggregate` — long-form tidy tables, N-dimensional
  Pareto frontiers over selectable objectives (``--objectives
  speedup,energy,dram``), and seed-variance mean/std columns;
* :mod:`repro.sweep.constraints` — Lumos-style budget constraints
  (``--constrain "power<=5,area<=40"``) restricting the frontier to the
  feasible subset;
* :mod:`repro.sweep.registry` — named sweeps (``ablation-cs``,
  ``tab05-scale``, ``fig12-energy``) discovered by the CLI.
"""

from repro.sweep.aggregate import (
    DEFAULT_OBJECTIVES,
    METRIC_HEADERS,
    OBJECTIVES,
    VARIANCE_METRICS,
    Objective,
    dominates,
    long_form_result,
    pareto_frontier,
    pareto_result,
    resolve_objectives,
    seed_variance_result,
    sweep_report_text,
)
from repro.sweep.constraints import (
    CONSTRAINT_METRICS,
    Constraint,
    ConstraintMetric,
    describe_constraints,
    is_feasible,
    parse_constraints,
    resolve_constraints,
)
from repro.sweep.engine import (
    SweepPlan,
    SweepPointResult,
    SweepRunReport,
    execute_sweep,
    plan_sweep,
    run_sweep,
)
from repro.sweep.ledger import (
    DEFAULT_CLAIM_TTL_S,
    LedgerStats,
    WorkLedger,
    default_worker_id,
)
from repro.sweep.manifest import (
    SweepManifest,
    load_manifest,
    manifest_key,
)
from repro.sweep.registry import (
    all_sweeps,
    get_sweep,
    register_sweep,
    sweep_names,
)
from repro.sweep.spec import (
    AXES,
    SweepPoint,
    SweepSpec,
    expand,
    parse_grid,
)

__all__ = [
    "AXES",
    "CONSTRAINT_METRICS",
    "Constraint",
    "ConstraintMetric",
    "DEFAULT_CLAIM_TTL_S",
    "DEFAULT_OBJECTIVES",
    "LedgerStats",
    "METRIC_HEADERS",
    "OBJECTIVES",
    "Objective",
    "SweepManifest",
    "SweepPlan",
    "SweepPoint",
    "SweepPointResult",
    "SweepRunReport",
    "SweepSpec",
    "WorkLedger",
    "VARIANCE_METRICS",
    "all_sweeps",
    "default_worker_id",
    "describe_constraints",
    "dominates",
    "execute_sweep",
    "expand",
    "get_sweep",
    "is_feasible",
    "load_manifest",
    "long_form_result",
    "manifest_key",
    "pareto_frontier",
    "pareto_result",
    "parse_constraints",
    "parse_grid",
    "plan_sweep",
    "register_sweep",
    "resolve_constraints",
    "resolve_objectives",
    "run_sweep",
    "seed_variance_result",
    "sweep_names",
    "sweep_report_text",
]
