"""Declarative design-space sweeps: axes, grids, and their expansion.

A :class:`SweepSpec` names a cartesian grid over the design space the paper
explores in Sec. VI-C and the ROADMAP extends: dataset x model architecture
x GCoD hyper-parameters (``C`` classes, ``S`` subgraphs, weight sparsity)
x quantization ``bits`` x SpMM ``kernel_backend`` x accelerator
``hw_scale`` (a multiplier on the GCoD PE array) x ``tech_node`` (the
7/16/28 nm silicon the budget models cost the design at) x training
``seed`` (for mean/std variance columns). ``expand`` turns the
grid into concrete :class:`SweepPoint`\\ s against an
:class:`~repro.evaluation.context.EvalContext` — each point carries a fully
resolved :class:`~repro.algorithm.config.GCoDConfig` plus the raw axis
coordinates, and is content-addressed by
:func:`repro.runtime.keys.sweep_point_key` so the engine can plan against
the artifact store.

Axis semantics follow the legacy ``ablation_cs`` experiment exactly (so the
engine reproduces its output byte-for-byte): ``S`` is clamped up to ``C``
(a config needs at least one subgraph per class), and axes that are absent
inherit the context's profile defaults.
"""

from __future__ import annotations

import dataclasses
import itertools
from dataclasses import replace
from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple

from repro.errors import ConfigError
from repro.runtime.keys import ArtifactKey, sweep_point_key
from repro.runtime.runner import GCoDTask


@dataclasses.dataclass(frozen=True)
class AxisDef:
    """One sweepable dimension: how to parse and validate its values."""

    name: str
    caster: Callable[[Any], Any]
    describe: str
    validate: Optional[Callable[[Any], bool]] = None

    def _invalid(self, value: Any) -> ConfigError:
        """The one message format for every bad axis value.

        Both failure paths — an uncastable input and a castable-but-
        out-of-range one — name the offending value *and its type*
        (``[1, 2]`` and ``"[1, 2]"`` render identically under ``!r``
        alone) plus what the axis wanted.
        """
        return ConfigError(
            f"axis {self.name!r}: invalid value {value!r} of type "
            f"{type(value).__name__} ({self.describe})"
        )

    def coerce(self, value: Any) -> Any:
        try:
            out = self.caster(value)
        except (TypeError, ValueError):
            raise self._invalid(value) from None
        if self.validate is not None and not self.validate(out):
            raise self._invalid(value)
        return out


def _canonical_workload(value: Any) -> str:
    """Coerce a workload-axis value to its canonical DAG shorthand.

    Parsing validates eagerly (datasets, archs, layer ranges, shares) and
    re-serializing normalizes spelling, so ``"Cora/GCN + citeseer/gat"``
    and ``"cora/gcn+citeseer/gat"`` coerce to the same axis value and
    therefore the same cache keys. ``ConfigError`` from the parser
    propagates as-is (``AxisDef.coerce`` only rewraps Type/ValueError).
    """
    from repro.hardware.pipeline import parse_workload

    if not isinstance(value, str):
        raise TypeError(f"workload axis wants a shorthand string, "
                        f"got {type(value).__name__}")
    return parse_workload(value).to_shorthand()


#: The sweepable axes, in canonical declaration order.
AXES: Dict[str, AxisDef] = {
    a.name: a
    for a in (
        AxisDef("dataset", str, "a dataset name from DATASET_SPECS"),
        AxisDef("arch", str, "a model architecture (gcn, gin, gat, ...)"),
        AxisDef(
            "workload",
            _canonical_workload,
            "a workload DAG shorthand like 'cora/gcn+citeseer/gat'",
        ),
        AxisDef("C", int, "number of degree classes, >= 1",
                lambda v: v >= 1),
        AxisDef("S", int, "number of subgraphs, >= 1", lambda v: v >= 1),
        AxisDef("sparsity", float, "weight prune ratio in [0, 1)",
                lambda v: 0.0 <= v < 1.0),
        AxisDef("bits", int, "platform precision: 8 or 32",
                lambda v: v in (8, 32)),
        AxisDef("kernel_backend", str, "a registered SpMM kernel backend"),
        AxisDef("hw_scale", float, "PE-array multiplier, > 0",
                lambda v: v > 0),
        # validated against the literal node set so a bad --grid fails
        # before any hardware module imports; repro.hardware.budget
        # asserts the same set (tests pin them equal).
        AxisDef("tech_node", int, "logic technology node in nm: 7, 16, 28",
                lambda v: v in (7, 16, 28)),
        AxisDef("seed", int, "a training seed, >= 0", lambda v: v >= 0),
    )
}


def unknown_axis_error(axis_name: str) -> ConfigError:
    """The one error every axis-validation site raises for a bad name.

    Names the full known-axis list (the CLI turns this into exit code 2)
    and suggests the near-miss when the typo is a case slip (``c=1,2``)
    or one edit away (``hwscale``) — the two ways a ``--grid`` string
    actually goes wrong.
    """
    from repro.errors import did_you_mean

    close = did_you_mean(axis_name, AXES)
    suggestion = f" (did you mean {close!r}?)" if close else ""
    return ConfigError(
        f"unknown sweep axis {axis_name!r}{suggestion}; choose from "
        f"{', '.join(AXES)}"
    )


@dataclasses.dataclass(frozen=True)
class SweepSpec:
    """A named grid over the design space.

    ``axes`` maps axis names (see :data:`AXES`) to value sequences; the
    expansion order is the declaration order of the axes, last axis fastest
    — exactly ``itertools.product``. Instances are immutable and hashable
    (axes are normalized to nested tuples), so registered sweeps are safe
    module-level constants.
    """

    name: str
    title: str
    axes: Any  # Mapping[str, Sequence] at construction; tuple once frozen
    description: str = ""

    def __post_init__(self):
        if isinstance(self.axes, Mapping):
            items = tuple(self.axes.items())
        else:
            items = tuple(self.axes)
        normalized = []
        for axis_name, values in items:
            if axis_name not in AXES:
                raise unknown_axis_error(axis_name)
            axis = AXES[axis_name]
            values = tuple(axis.coerce(v) for v in values)
            if not values:
                raise ConfigError(f"axis {axis_name!r} has no values")
            normalized.append((axis_name, values))
        if not normalized:
            raise ConfigError(f"sweep {self.name!r} declares no axes")
        object.__setattr__(self, "axes", tuple(normalized))

    @property
    def axis_names(self) -> Tuple[str, ...]:
        return tuple(name for name, _ in self.axes)

    @property
    def num_points(self) -> int:
        n = 1
        for _, values in self.axes:
            n *= len(values)
        return n

    def describe(self) -> str:
        dims = " x ".join(f"{name}[{len(vals)}]" for name, vals in self.axes)
        return f"{self.name}: {self.num_points} points ({dims})"


@dataclasses.dataclass(frozen=True)
class SweepPoint:
    """One concrete design point: resolved config + platform variant.

    ``axes`` preserves the raw grid coordinates (what the spec said) even
    where resolution changed the config (``S`` clamped up to ``C``) — the
    long-form tables report coordinates, the cache key covers both.
    """

    dataset: str
    arch: str
    scale: Optional[float]
    seed: int
    profile: str
    #: resolved backend *name* (never None) — matches GCoDTask semantics.
    kernel_backend: str
    config: object  # GCoDConfig; loosely typed to keep imports light
    bits: int
    hw_scale: float
    tech_node: int
    axes: Tuple[Tuple[str, Any], ...]
    #: canonical workload-DAG shorthand for multi-model points (``None``
    #: for the classic single-model grid); ``dataset``/``arch`` then hold
    #: the DAG's *primary* (first-declared) node.
    workload: Optional[str] = None
    #: per-dataset generation scales every DAG node trained at, sorted by
    #: dataset — baked at expand time so the cache key covers the sizes
    #: of *all* node graphs, not just the primary's.
    workload_scales: Tuple[Tuple[str, Optional[float]], ...] = ()

    def key(self) -> ArtifactKey:
        return sweep_point_key(
            self.dataset,
            self.scale,
            self.arch,
            self.config,
            self.kernel_backend,
            self.seed,
            self.profile,
            self.bits,
            self.hw_scale,
            self.tech_node,
            dict(self.axes),
            workload=self.workload,
            workload_scales=self.workload_scales,
        )

    def gcod_task(self) -> GCoDTask:
        """The training run this point depends on (pool-schedulable)."""
        return GCoDTask(
            dataset=self.dataset,
            arch=self.arch,
            scale=self.scale,
            seed=self.seed,
            profile=self.profile,
            kernel_backend=self.kernel_backend,
            config=self.config,
        )

    def gcod_tasks(self) -> List[GCoDTask]:
        """Every training run this point depends on, primary first.

        A single-model point needs exactly :meth:`gcod_task`. A
        workload-DAG point needs one run per distinct (dataset, arch)
        node pair; all nodes train under the point's resolved config
        (the documented simplification — per-node hyper-parameter
        overrides would fork the config per task), so a DAG node naming
        the primary pair digests identically to the legacy task and
        shares its stored artifact.
        """
        tasks = [self.gcod_task()]
        if self.workload is None:
            return tasks
        from repro.hardware.pipeline import parse_workload

        scales = dict(self.workload_scales)
        seen = {(self.dataset, self.arch)}
        for node in parse_workload(self.workload).nodes:
            pair = (node.dataset, node.arch)
            if pair in seen:
                continue
            seen.add(pair)
            tasks.append(replace(
                tasks[0],
                dataset=node.dataset,
                arch=node.arch,
                scale=scales.get(node.dataset, self.scale),
            ))
        return tasks

    def label(self) -> str:
        return ", ".join(f"{k}={v}" for k, v in self.axes)


def parse_grid(text: str) -> Dict[str, Tuple[Any, ...]]:
    """Parse a CLI ``--grid`` string into an axes mapping.

    Syntax: semicolon-separated ``axis=v1,v2,...`` clauses, e.g.
    ``"dataset=cora,reddit;C=1,2,3,4;S=8,12,16,20"``. Values are coerced
    per axis (ints for ``C``/``S``/``bits``, floats for ``sparsity``/
    ``hw_scale``, strings otherwise).
    """
    axes: Dict[str, Tuple[Any, ...]] = {}
    for clause in text.split(";"):
        clause = clause.strip()
        if not clause:
            continue
        if "=" not in clause:
            raise ConfigError(
                f"--grid clause {clause!r} is not of the form axis=v1,v2"
            )
        axis_name, _, values = clause.partition("=")
        axis_name = axis_name.strip()
        if axis_name not in AXES:
            raise unknown_axis_error(axis_name)
        if axis_name in axes:
            raise ConfigError(f"axis {axis_name!r} appears twice in --grid")
        axis = AXES[axis_name]
        parsed = tuple(
            axis.coerce(v.strip()) for v in values.split(",") if v.strip()
        )
        if not parsed:
            raise ConfigError(f"axis {axis_name!r} has no values in --grid")
        axes[axis_name] = parsed
    if not axes:
        raise ConfigError("--grid selected no axes")
    return axes


def _point_config(context, arch: str, coords: Mapping[str, Any]):
    """Resolve the grid coordinates into a concrete GCoDConfig."""
    from repro.sparse.kernels import get_backend

    config = context.gcod_config_for(arch)
    changes: Dict[str, Any] = {}
    if "C" in coords:
        changes["num_classes"] = coords["C"]
    effective_c = changes.get("num_classes", config.num_classes)
    if "S" in coords:
        # The legacy ablation's clamp: at least one subgraph per class.
        changes["num_subgraphs"] = max(coords["S"], effective_c)
    elif effective_c > config.num_subgraphs:
        changes["num_subgraphs"] = effective_c
    if "sparsity" in coords:
        changes["prune_ratio"] = coords["sparsity"]
    if "seed" in coords:
        # The seed axis varies the *training* randomness: the config's
        # seed and the point's seed move together (the cache key covers
        # both through the config payload and the seed component).
        changes["seed"] = coords["seed"]
    backend = get_backend(
        coords.get("kernel_backend", context.kernel_backend)
    ).name
    changes["kernel_backend"] = backend
    return replace(config, **changes), backend


def expand(spec: SweepSpec, context) -> List[SweepPoint]:
    """Expand ``spec`` into concrete points, in grid order.

    Dataset and arch names are validated eagerly (a typo should fail
    before any training starts, not at point 17 of 24).
    """
    from repro.graphs.datasets import DATASET_SPECS
    from repro.nn.models import MODEL_ARCHS
    from repro.errors import UnknownDatasetError

    if "workload" in spec.axis_names:
        clash = sorted({"dataset", "arch"} & set(spec.axis_names))
        if clash:
            raise ConfigError(
                f"the 'workload' axis already names each node's dataset "
                f"and arch; drop the {', '.join(repr(c) for c in clash)} "
                f"axis"
            )

    for name, values in spec.axes:
        if name == "dataset":
            for ds in values:
                if str(ds).lower() not in DATASET_SPECS:
                    raise UnknownDatasetError(
                        f"unknown dataset {ds!r}; choose from "
                        f"{sorted(DATASET_SPECS)}"
                    )
        if name == "arch":
            for arch in values:
                if str(arch).lower() not in MODEL_ARCHS:
                    raise ConfigError(
                        f"unknown architecture {arch!r}; choose from "
                        f"{sorted(MODEL_ARCHS)}"
                    )

    names = spec.axis_names
    points = []
    for combo in itertools.product(*(values for _, values in spec.axes)):
        # Normalize case so "Cora"/"cora" share cache keys (load_dataset
        # lowercases anyway: same numerics, so they must be the same run).
        combo = tuple(
            str(v).lower() if name in ("dataset", "arch") else v
            for name, v in zip(names, combo)
        )
        coords = dict(zip(names, combo))
        workload = coords.get("workload")
        workload_scales: Tuple[Tuple[str, Optional[float]], ...] = ()
        if workload is not None:
            # The DAG's first-declared node is the point's primary
            # (dataset, arch); the scales of *every* node dataset are
            # baked in so the cache key covers all the node graphs.
            from repro.hardware.pipeline import parse_workload

            nodes = parse_workload(workload).nodes
            dataset, arch = nodes[0].dataset, nodes[0].arch
            workload_scales = tuple(sorted(
                (ds, context.scale_for(ds))
                for ds in {n.dataset for n in nodes}
            ))
        else:
            dataset = coords.get("dataset", "cora")
            arch = coords.get("arch", "gcn")
        config, backend = _point_config(context, arch, coords)
        points.append(
            SweepPoint(
                dataset=dataset,
                arch=arch,
                scale=context.scale_for(dataset),
                seed=coords.get("seed", context.seed),
                profile=context.profile,
                kernel_backend=backend,
                config=config,
                bits=coords.get("bits", 32),
                hw_scale=float(coords.get("hw_scale", 1.0)),
                tech_node=coords.get("tech_node", 16),
                axes=tuple(zip(names, combo)),
                workload=workload,
                workload_scales=workload_scales,
            )
        )
    return points
