"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``experiment <name>``
    Run one paper experiment (names come from the runtime registry:
    ``fig04``, ``fig09``, ``fig10``, ``fig11``, ``fig12``, ``tab03``,
    ``tab04``, ``tab05``, ``tab06``, ``tab07``, ``ablation-cs``,
    ``ablation-design``, ``training-cost``, ``reordering``) and print the
    regenerated table/figure.
``train <dataset>``
    Run the full GCoD pipeline on one dataset and print the summary.
``simulate <dataset>``
    Map a GCoD-trained graph onto every platform and print the speedups.
``report``
    Run every experiment (``--experiments a,b`` to select) and write a
    combined report. ``--jobs N`` trains the de-duplicated GCoD
    dependencies across a process pool; ``--format json --out DIR`` writes
    machine-readable per-experiment files instead of markdown.
``sweep``
    Run a design-space sweep: a registered grid (``repro sweep
    ablation-cs``; bare ``repro sweep`` lists them) or an ad-hoc one
    (``--grid "dataset=cora;C=1,2,3,4;S=8,12,16,20"``). Cached points are
    skipped, unique training runs *and* the analytic point evaluations
    pool across ``--jobs N``, and the output is a long-form table plus a
    Pareto frontier over selectable objectives (``--objectives
    speedup,energy,dram``; default speedup,accuracy). An interrupted sweep
    resumes from its stored manifest with ``--resume``, re-running only
    the missing points (``--format json|csv --out DIR`` for
    machine-readable files).
``workload``
    Evaluate a multi-model workload DAG on one shared GCoD accelerator:
    ``--workload "cora/gcn+citeseer/gat"`` (shorthand: ``+`` joins
    concurrent nodes time-slicing the PE array, ``>`` joins sequential
    phases, each node is ``dataset/arch[/layers][@share]``) or ``--file
    graph.json`` for arbitrary DAGs. Per-node extraction reuses the
    store-backed GCoD training artifacts; the output is a per-node
    latency/PE table plus the contention-merged totals (``--format
    json`` for machines). The same shorthand is a sweep axis:
    ``repro sweep --grid "workload=cora/gcn+cora/gat;bits=8,32"``.
``cache``
    Inspect the persistent artifact store: ``ls``, ``stats``, ``clear``.
``store serve``
    Expose one local store root over HTTP so many sweep workers — on this
    host or others — share a single artifact store. Workers point
    ``--store-url http://host:port`` (or ``$REPRO_STORE_URL``) at it; the
    sweep engine then coordinates through the store's work ledger, so N
    workers running the same grid split the points with zero duplicate
    evaluations (``--stats-out`` writes each worker's counters as JSON).
``serve``
    Run the batched inference service: clients send line-delimited JSON
    graph queries (dataset / arch / kernel backend) over TCP; queries
    already in the artifact store answer warm (no training), cold ones
    micro-batch per (dataset, arch, backend) inside a ``--max-batch`` /
    ``--max-wait-ms`` window so one training dispatch serves every
    identical query in the window. See :mod:`repro.serve`.
``lint``
    Run the AST-based invariant checker (:mod:`repro.analysis`) over the
    installed ``repro`` source tree (or an explicit path): determinism,
    cache-key coverage, schema drift, store-write discipline, exception
    hygiene, registry consistency. ``--format json`` for machines,
    ``--rules a,b`` for a subset, ``--update-baseline``/``--write-golden``
    to refresh the checked-in state. Exits 0 clean / 1 new findings /
    2 usage.

All commands share ``--profile``, ``--kernel-backend``, and the artifact
store flags: results persist under ``--cache-dir`` (default
``$REPRO_CACHE_DIR`` or ``~/.cache/repro-gcod``) so a second invocation
reuses every trained pipeline; ``--store-url URL`` (or
``$REPRO_STORE_URL``) swaps the local directory for a served store;
``--no-cache`` disables persistence.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import Optional

from repro.errors import (
    ConfigError,
    KernelError,
    UnknownDatasetError,
    UnknownExperimentError,
    UnknownSweepError,
)
from repro.evaluation import EvalContext
from repro.runtime import CODE_SCHEMA_VERSION
from repro.runtime.registry import (
    all_experiments,
    experiment_names,
    get_experiment,
)
from repro.runtime.keys import ALL_KINDS
from repro.runtime.store import ArtifactStore, default_cache_dir
from repro.sparse.kernels import backend_choices, set_default_backend


def __getattr__(name: str):
    # Back-compat (PEP 562): the old hard-coded ``EXPERIMENTS`` dict is now
    # derived from the registry on access, so it can never drift from the
    # registered specs.
    if name == "EXPERIMENTS":
        return {spec.name: spec.runner for spec in all_experiments()}
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def _cmd_experiment(args, ctx: EvalContext) -> int:
    # an unknown name raises UnknownExperimentError; main() turns it into
    # a clear message and exit code 2
    result = get_experiment(args.name).runner(ctx)
    print(result.render())
    return 0


def _cmd_train(args, ctx: EvalContext) -> int:
    result = ctx.gcod(args.dataset, args.arch)
    print(result.summary())
    print(f"early-bird epoch: {result.early_bird_epoch}")
    print(result.layout.describe())
    return 0


def _cmd_simulate(args, ctx: EvalContext) -> int:
    from repro.utils.ascii_plot import bar_chart

    platforms = list(ctx.platforms())
    speedups = ctx.speedups_over_cpu(args.dataset, args.arch, platforms)
    print(bar_chart(platforms, [speedups[p] for p in platforms],
                    title=f"{args.dataset}/{args.arch}: speedup over PyG-CPU"))
    return 0


def _cmd_report(args, ctx: EvalContext) -> int:
    from repro.evaluation.report import (
        generate_report,
        report_results,
        shape_checks,
    )

    names = None
    if args.experiments:
        # dedup, preserving order: a repeated name would execute (and
        # render) the experiment twice on a store-less run
        names = list(dict.fromkeys(
            n.strip() for n in args.experiments.split(",") if n.strip()
        ))
        if not names:
            print("--experiments selected nothing", file=sys.stderr)
            return 2
        try:
            for name in names:
                get_experiment(name)
        except UnknownExperimentError as exc:
            print(str(exc), file=sys.stderr)
            return 2

    progress = (lambda msg: print(msg, file=sys.stderr)) if not args.quiet \
        else None
    t0 = time.perf_counter()

    if args.format == "markdown":
        if args.out:
            print("--out is for --format json/csv; markdown wants "
                  "--output FILE", file=sys.stderr)
            return 2
        text = generate_report(ctx, names=names, jobs=args.jobs,
                               progress=progress)
        if args.output:
            with open(args.output, "w") as fh:
                fh.write(text)
            print(f"wrote {args.output}")
        else:
            print(text)
        return 0

    # json / csv: one machine-readable file per experiment under --out
    # (never --output: that names the markdown file, not a directory).
    if args.output:
        print(f"--output is for markdown; --format {args.format} wants "
              "--out DIR", file=sys.stderr)
        return 2
    out_dir = args.out
    if not out_dir:
        print(f"--format {args.format} requires --out DIR", file=sys.stderr)
        return 2
    os.makedirs(out_dir, exist_ok=True)
    run = report_results(ctx, names=names, jobs=args.jobs, progress=progress)
    written = []
    for name, result in run.results.items():
        ext = "json" if args.format == "json" else "csv"
        path = os.path.join(out_dir, f"{name}.{ext}")
        with open(path, "w") as fh:
            fh.write(result.to_json() if args.format == "json"
                     else result.to_csv())
        written.append(path)
    shape_lines = shape_checks(ctx) if names is None else None
    from repro.sparse.kernels import get_backend

    index = {
        "profile": ctx.profile,
        # resolved name, matching the cache-key normalization: a default
        # run and an explicit --kernel-backend vectorized run are the
        # same series
        "kernel_backend": get_backend(ctx.kernel_backend).name,
        "seed": ctx.seed,
        "schema": CODE_SCHEMA_VERSION,
        "experiments": list(run.results),
        "cache_hits": run.cache_hits,
        # parent-process training runs; with --jobs N the pool workers do
        # the cold-run training, which tasks_executed counts.
        "gcod_runs_in_parent": run.gcod_runs,
        "gcod_tasks_executed": run.tasks_executed,
        "timings_s": {k: round(v, 4) for k, v in run.timings.items()},
        # captured after the shape checks so the index reflects the full
        # invocation cost (CI charts warm/cold trajectories off this)
        "wall_s": round(time.perf_counter() - t0, 4),
    }
    if shape_lines is not None:
        index["shape_checks"] = shape_lines
    index_path = os.path.join(out_dir, "report.json")
    with open(index_path, "w") as fh:
        json.dump(index, fh, indent=2)
    print(f"wrote {len(written)} experiment files + report.json to {out_dir}")
    return 0


def _cmd_sweep(args, ctx: EvalContext) -> int:
    from repro.sweep import (
        SweepSpec,
        all_sweeps,
        get_sweep,
        long_form_result,
        pareto_result,
        parse_grid,
        resolve_constraints,
        resolve_objectives,
        run_sweep,
        seed_variance_result,
        sweep_report_text,
    )

    # An unknown --objectives name or --constrain metric is a usage error
    # (exit 2 via main's ConfigError handler) — caught before any
    # planning or training.
    objectives = resolve_objectives(args.objectives)
    constraints = resolve_constraints(args.constrain)

    if args.name is None and not args.grid:
        print("registered sweeps (run one, or pass --grid):")
        for spec in all_sweeps():
            print(f"  {spec.name:<14} {spec.num_points:>4} points  "
                  f"{spec.title}")
        return 0
    if args.name is not None and args.grid:
        print("pass a registered sweep name OR --grid, not both",
              file=sys.stderr)
        return 2
    if args.name is not None:
        spec = get_sweep(args.name)  # UnknownSweepError -> exit 2 in main()
    else:
        spec = SweepSpec(name="custom", title="Custom grid",
                         axes=parse_grid(args.grid))

    # Validate the output plumbing *before* the sweep runs: a flag mixup
    # must not cost a full grid of training runs.
    if args.format == "markdown" and args.out:
        print("--out is for --format json/csv; markdown wants "
              "--output FILE", file=sys.stderr)
        return 2
    if args.format != "markdown":
        if args.output:
            print(f"--output is for markdown; --format {args.format} wants "
                  "--out DIR", file=sys.stderr)
            return 2
        if not args.out:
            print(f"--format {args.format} requires --out DIR",
                  file=sys.stderr)
            return 2

    progress = (lambda msg: print(msg, file=sys.stderr)) if not args.quiet \
        else None
    from repro.runtime import counters

    skips_before = counters.sweep_point_skip_count()
    report = run_sweep(ctx, spec, jobs=args.jobs, progress=progress,
                       resume=args.resume, ledger=args.ledger)
    if progress:
        progress(
            f"{len(report.results)} points in {report.wall_s:.2f}s "
            f"({len(report.cache_hits)} cached, "
            f"{report.points_evaluated} evaluated, "
            f"{report.tasks_executed} GCoD runs scheduled)"
        )

    if args.stats_out:
        # Per-worker accounting for multi-host runs: CI sums
        # sweep_point_runs across workers and asserts it equals the grid
        # size (exactly-once), and that skips account for the rest.
        stats = {
            "sweep": spec.name,
            "store": ctx.store.root if ctx.store is not None else None,
            "worker": report.worker,
            "points_total": len(report.results),
            "points_evaluated": report.points_evaluated,
            "cache_hits": len(report.cache_hits),
            "sweep_point_runs": report.points_evaluated,
            "sweep_point_skips":
                counters.sweep_point_skip_count() - skips_before,
            "gcod_runs": report.gcod_runs,
            "tasks_executed": report.tasks_executed,
            "wall_s": round(report.wall_s, 4),
            "ledger": report.ledger_stats,
        }
        with open(args.stats_out, "w") as fh:
            json.dump(stats, fh, indent=2)
            fh.write("\n")
        if progress:
            progress(f"wrote worker stats to {args.stats_out}")

    if args.format == "markdown":
        text = sweep_report_text(spec, report.results,
                                 objectives=objectives,
                                 constraints=constraints)
        if args.output:
            with open(args.output, "w") as fh:
                fh.write(text)
            print(f"wrote {args.output}")
        else:
            print(text, end="")
        return 0

    os.makedirs(args.out, exist_ok=True)
    table = long_form_result(spec, report.results, constraints=constraints)
    pareto = pareto_result(spec, report.results, objectives=objectives,
                           constraints=constraints)
    variance = seed_variance_result(spec, report.results)
    written = []
    if args.format == "json":
        # One document holding the grid, the tidy table, and the frontier.
        # Deliberately free of wall times and cache accounting: a warm
        # rerun must emit byte-identical files (progress goes to stderr).
        payload = {
            "sweep": spec.name,
            "title": spec.title,
            "axes": {name: list(values) for name, values in spec.axes},
            "objectives": [o.name for o in objectives],
            "constraints": [c.describe() for c in constraints],
            "profile": ctx.profile,
            "seed": ctx.seed,
            "schema": CODE_SCHEMA_VERSION,
            "table": table.to_jsonable(),
            "pareto": pareto.to_jsonable(),
        }
        if variance is not None:
            payload["variance"] = variance.to_jsonable()
        path = os.path.join(args.out, f"{spec.name}.json")
        with open(path, "w") as fh:
            json.dump(payload, fh, indent=2)
            fh.write("\n")
        written.append(path)
    else:
        outputs = [("", table), ("_pareto", pareto)]
        if variance is not None:
            outputs.append(("_variance", variance))
        for suffix, result in outputs:
            path = os.path.join(args.out, f"{spec.name}{suffix}.csv")
            with open(path, "w") as fh:
                fh.write(result.to_csv())
            written.append(path)
    print(f"wrote {', '.join(written)}")
    return 0


def _cmd_workload(args, ctx: EvalContext) -> int:
    from repro.hardware.pipeline import (
        PipelineSettings,
        evaluate_workload,
        parse_workload,
        workload_from_json,
    )

    if bool(args.workload) == bool(args.file):
        print("pass --workload SHORTHAND or --file JSON (exactly one)",
              file=sys.stderr)
        return 2
    if args.workload:
        graph = parse_workload(args.workload)
    else:
        try:
            with open(args.file) as fh:
                data = json.load(fh)
        except (OSError, json.JSONDecodeError) as exc:
            raise ConfigError(
                f"cannot read workload JSON {args.file!r}: {exc}"
            ) from None
        graph = workload_from_json(data)

    settings = PipelineSettings(
        bits=args.bits, hw_scale=args.hw_scale, tech_node=args.tech_node
    )
    report = evaluate_workload(graph, ctx, settings)

    if args.format == "json":
        json.dump(report.to_jsonable(), sys.stdout, indent=2)
        print()
        return 0

    merged = report.merged()
    node_pes = dict(report.node_pes)
    print(f"workload {graph.name!r} on {report.platform} "
          f"({int(report.notes['levels'])} level(s), "
          f"{sum(node_pes.values())} PEs allocated)")
    print(f"  {'node':<24} {'PEs':>6} {'latency':>12} {'energy':>10} "
          f"{'DRAM':>10}")
    for name, node_report in report.node_reports:
        print(f"  {name:<24} {node_pes[name]:>6} "
              f"{node_report.latency_s * 1e3:>10.3f}ms "
              f"{node_report.energy.total_j * 1e3:>8.3f}mJ "
              f"{_human_bytes(node_report.offchip_bytes):>10}")
    print(f"  {'merged':<24} {'':>6} {merged.latency_s * 1e3:>10.3f}ms "
          f"{merged.energy.total_j * 1e3:>8.3f}mJ "
          f"{_human_bytes(merged.offchip_bytes):>10}")
    print(f"  required bandwidth: {merged.required_bandwidth_gbps:.2f} "
          f"GB/s")
    return 0


def _human_bytes(n: float) -> str:
    for unit in ("B", "KB", "MB", "GB"):
        if abs(n) < 1024 or unit == "GB":
            return f"{n:.1f}{unit}" if unit != "B" else f"{int(n)}B"
        n /= 1024
    return f"{n:.1f}GB"


def _cmd_cache(args, ctx: EvalContext) -> int:
    if ctx.store is None:
        # --no-cache promises not to touch on-disk artifacts; refusing is
        # safer than silently operating on the default store.
        print("cache commands need a store; drop --no-cache",
              file=sys.stderr)
        return 2
    store = ctx.store
    if args.action == "clear":
        removed = store.clear(kind=args.kind)
        print(f"removed {removed} entries from {store.root}")
        return 0
    if args.action == "stats":
        stats = store.stats()
        print(f"artifact store: {store.root}")
        for kind in sorted(k for k in stats if k not in ("total", "tmp")):
            row = stats[kind]
            print(f"  {kind:<12} {int(row['entries']):>5} entries  "
                  f"{_human_bytes(row['bytes'])}")
        total = stats["total"]
        print(f"  {'total':<12} {int(total['entries']):>5} entries  "
              f"{_human_bytes(total['bytes'])}")
        if "tmp" in stats:
            # crash debris still younger than the stale threshold; older
            # temps were already swept when this store opened.
            tmp = stats["tmp"]
            print(f"  in-flight temp files: {int(tmp['entries'])} "
                  f"({_human_bytes(tmp['bytes'])})")
        if store.reclaimed_tmp:
            print(f"  reclaimed on open: {store.reclaimed_tmp} stale temp "
                  f"file(s), {_human_bytes(store.reclaimed_tmp_bytes)}")
        return 0
    # ls
    count = 0
    for entry in store.entries(kind=args.kind):
        summary = entry.meta.get("summary", {})
        extras = ""
        if summary:
            bits = [
                f"{k}={v:.3g}" if isinstance(v, float) else f"{k}={v}"
                for k, v in sorted(summary.items())
                if isinstance(v, (str, int, float))
            ][:6]
            extras = "  " + " ".join(bits)
        stamp = time.strftime("%Y-%m-%d %H:%M",
                              time.localtime(entry.created))
        print(f"{entry.kind:<12} {entry.digest[:12]}  "
              f"{_human_bytes(entry.size_bytes):>9}  {stamp}{extras}")
        count += 1
    if count == 0:
        print(f"(empty store at {store.root})")
    return 0


def _cmd_lint(args, ctx: EvalContext) -> int:
    from repro.analysis import lint_tree, write_baseline
    from repro.analysis.rules.schema_drift import write_golden as \
        regenerate_golden
    from repro.analysis.core import LintContext

    root = args.path  # None -> the installed repro package
    if args.write_golden:
        # Regenerate the schema fingerprint first so the run below
        # reports the post-refresh state, not the stale golden.
        from repro.analysis.lint import default_lint_root

        target = os.path.abspath(root or default_lint_root())
        written = regenerate_golden(LintContext(target))
        if written is None:
            print("cannot regenerate the schema golden: the tree is "
                  "missing declared shape modules", file=sys.stderr)
            return 2
        print(f"wrote {written}", file=sys.stderr)
    report = lint_tree(
        root=root,
        rules=args.rules,
        baseline=args.baseline,
        use_baseline=not args.update_baseline,
    )
    if args.update_baseline:
        from repro.analysis.baseline import default_baseline_path

        path = args.baseline or default_baseline_path(report.root)
        write_baseline(path, report.findings)
        print(f"baselined {len(report.findings)} finding(s) into {path}",
              file=sys.stderr)
        return 0
    print(report.render(args.format), end="")
    return report.exit_code


def _parse_scales(text: Optional[str]) -> dict:
    """Parse ``--dataset-scale "cora=0.1,nell=0.02"`` into a dict."""
    scales: dict = {}
    if not text:
        return scales
    for part in text.split(","):
        part = part.strip()
        if not part:
            continue
        name, sep, value = part.partition("=")
        if not sep or not name.strip():
            raise ConfigError(
                f"--dataset-scale wants name=scale pairs, got {part!r}"
            )
        try:
            scales[name.strip()] = float(value)
        except ValueError:
            raise ConfigError(
                f"--dataset-scale {name.strip()!r} wants a number, "
                f"got {value!r}"
            ) from None
    return scales


def _cmd_serve(args, ctx: EvalContext) -> int:
    from dataclasses import replace as dc_replace

    from repro.serve import ServeSettings, run_serve

    scales = _parse_scales(args.dataset_scale)
    if scales or args.seed is not None:
        ctx = dc_replace(
            ctx,
            dataset_scales=scales or ctx.dataset_scales,
            seed=args.seed if args.seed is not None else ctx.seed,
        )
    settings = ServeSettings(
        host=args.host, port=args.port, max_batch=args.max_batch,
        max_wait_ms=args.max_wait_ms, workers=args.workers,
        verbose=args.verbose,
    )
    return run_serve(ctx, settings)


def _cmd_store(args, ctx: EvalContext) -> int:
    from repro.runtime.server import serve_store

    root = args.root
    if root is None:
        if ctx.store is None or ctx.store.is_remote:
            print("store serve needs a local root: pass --root DIR (or "
                  "--cache-dir, and drop --no-cache/--store-url)",
                  file=sys.stderr)
            return 2
        root = ctx.store.root
    return serve_store(root, host=args.host, port=args.port,
                       verbose=args.verbose)


def build_parser() -> argparse.ArgumentParser:
    """Build the top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="GCoD (HPCA 2022) reproduction toolkit",
    )
    parser.add_argument("--profile", choices=("fast", "full"), default="fast",
                        help="experiment scale profile")
    # backend_choices() (not available_backends()) so lazily-probed tiers
    # like `compiled` are always requestable; an unavailable tier resolves
    # to its fallback with a stderr note instead of an argparse error.
    parser.add_argument("--kernel-backend", choices=backend_choices(),
                        default=None,
                        help="SpMM kernel backend for all numerics "
                             "(default: vectorized; `compiled` falls back "
                             "to vectorized when numba is unavailable)")
    parser.add_argument("--cache-dir", default=None,
                        help="artifact store location (default: "
                             "$REPRO_CACHE_DIR or ~/.cache/repro-gcod)")
    parser.add_argument("--store-url", default=None,
                        help="shared artifact store URL from `repro store "
                             "serve` (default: $REPRO_STORE_URL; mutually "
                             "exclusive with --cache-dir)")
    parser.add_argument("--no-cache", action="store_true",
                        help="do not persist/reuse artifacts on disk")
    sub = parser.add_subparsers(dest="command", required=True)

    p_exp = sub.add_parser("experiment", help="run one paper experiment")
    p_exp.add_argument("name", help=", ".join(experiment_names()))
    p_exp.set_defaults(func=_cmd_experiment)

    p_train = sub.add_parser("train", help="run the GCoD pipeline")
    p_train.add_argument("dataset")
    p_train.add_argument("--arch", default="gcn")
    p_train.set_defaults(func=_cmd_train)

    p_sim = sub.add_parser("simulate", help="simulate all platforms")
    p_sim.add_argument("dataset")
    p_sim.add_argument("--arch", default="gcn")
    p_sim.set_defaults(func=_cmd_simulate)

    p_rep = sub.add_parser("report", help="run everything, write a report")
    p_rep.add_argument("--output", "-o", default=None,
                       help="markdown output file (default: stdout)")
    p_rep.add_argument("--format", choices=("markdown", "json", "csv"),
                       default="markdown",
                       help="output format (json/csv write per-experiment "
                            "files under --out)")
    p_rep.add_argument("--out", default=None,
                       help="output directory for --format json/csv")
    p_rep.add_argument("--jobs", "-j", type=int, default=1,
                       help="process-pool width for GCoD training runs")
    p_rep.add_argument("--experiments", default=None,
                       help="comma-separated experiment subset (default: all)")
    p_rep.add_argument("--quiet", action="store_true",
                       help="suppress progress lines on stderr")
    p_rep.set_defaults(func=_cmd_report)

    p_sw = sub.add_parser("sweep", help="run a design-space sweep")
    p_sw.add_argument("name", nargs="?", default=None,
                      help="registered sweep name (bare `repro sweep` "
                           "lists them)")
    p_sw.add_argument("--grid", default=None,
                      help="ad-hoc grid, e.g. "
                           "\"dataset=cora;C=1,2,3,4;S=8,12,16,20\"")
    p_sw.add_argument("--jobs", "-j", type=int, default=1,
                      help="process-pool width for GCoD training runs "
                           "AND the analytic point evaluations")
    p_sw.add_argument("--objectives", default=None,
                      help="comma-separated Pareto objectives, e.g. "
                           "\"speedup,energy,dram\" (default: "
                           "speedup,accuracy; also: latency, bandwidth, "
                           "power, area)")
    p_sw.add_argument("--constrain", default=None, metavar="BOUNDS",
                      help="budget constraints the frontier must satisfy, "
                           "e.g. \"power<=5,area<=40,dram<=2e9\" "
                           "(metrics: power, area, energy, dram, latency, "
                           "bandwidth; infeasible points stay in the long "
                           "form, flagged in a `feasible` column)")
    p_sw.add_argument("--resume", action="store_true",
                      help="resume an interrupted sweep from its stored "
                           "manifest (only missing points evaluate)")
    p_sw.add_argument("--ledger", action="store_true", default=None,
                      help="coordinate with peer workers through the "
                           "store's work ledger (default: automatic when "
                           "--store-url points at a shared store; pass "
                           "explicitly for a shared --cache-dir on a "
                           "common filesystem)")
    p_sw.add_argument("--stats-out", default=None, metavar="FILE",
                      help="write this worker's evaluation/ledger "
                           "counters as JSON (multi-worker accounting)")
    p_sw.add_argument("--format", choices=("markdown", "json", "csv"),
                      default="markdown",
                      help="output format (json/csv write files under "
                           "--out)")
    p_sw.add_argument("--out", default=None,
                      help="output directory for --format json/csv")
    p_sw.add_argument("--output", "-o", default=None,
                      help="markdown output file (default: stdout)")
    p_sw.add_argument("--quiet", action="store_true",
                      help="suppress progress lines on stderr")
    p_sw.set_defaults(func=_cmd_sweep)

    p_wl = sub.add_parser("workload",
                          help="evaluate a multi-model workload DAG")
    p_wl.add_argument("--workload", "-w", default=None, metavar="SHORTHAND",
                      help="workload DAG shorthand, e.g. "
                           "\"cora/gcn+citeseer/gat\" (`+` concurrent, "
                           "`>` sequential, node = "
                           "dataset/arch[/layers][@share])")
    p_wl.add_argument("--file", "-f", default=None, metavar="JSON",
                      help="workload DAG as a JSON file (arbitrary "
                           "dependencies; see the README's schema)")
    p_wl.add_argument("--bits", type=int, choices=(8, 32), default=32,
                      help="platform precision (default: 32)")
    p_wl.add_argument("--hw-scale", type=float, default=1.0,
                      help="PE-array multiplier on the shared accelerator "
                           "(default: 1.0)")
    p_wl.add_argument("--tech-node", type=int, choices=(7, 16, 28),
                      default=16,
                      help="logic technology node in nm (default: 16)")
    p_wl.add_argument("--format", choices=("table", "json"),
                      default="table", help="output format")
    p_wl.set_defaults(func=_cmd_workload)

    p_cache = sub.add_parser("cache", help="inspect the artifact store")
    p_cache.add_argument("action", choices=("ls", "stats", "clear"))
    # choices derive from the kind constants so the CLI can never drift
    # from the store layout (the old hand-written help text omitted
    # `claim`); `repro lint`'s registry-sync rule enforces this.
    p_cache.add_argument("--kind", default=None, choices=ALL_KINDS,
                         help="restrict to one artifact kind")
    p_cache.set_defaults(func=_cmd_cache)

    p_srv = sub.add_parser("serve", help="batched inference service")
    p_srv.add_argument("--host", default="127.0.0.1",
                       help="bind address (default: 127.0.0.1)")
    p_srv.add_argument("--port", type=int, default=8731,
                       help="bind port (default: 8731; 0 picks a free "
                            "port, reported on the listening line)")
    p_srv.add_argument("--max-batch", type=int, default=16,
                       help="flush a cold micro-batch at this many "
                            "requests (default: 16)")
    p_srv.add_argument("--max-wait-ms", type=float, default=5.0,
                       help="flush a cold micro-batch this many ms after "
                            "its first request (default: 5)")
    p_srv.add_argument("--workers", type=int, default=1,
                       help="training executor width (default: 1 = "
                            "dispatches serialize)")
    p_srv.add_argument("--seed", type=int, default=None,
                       help="context seed (default: 0)")
    p_srv.add_argument("--dataset-scale", default=None, metavar="SPEC",
                       help="override generation scales, e.g. "
                            "\"cora=0.1,nell=0.02\" (keys into the same "
                            "cache series as any other context using "
                            "those scales)")
    p_srv.add_argument("--verbose", action="store_true",
                       help="log batch dispatches on stderr")
    p_srv.set_defaults(func=_cmd_serve)

    p_lint = sub.add_parser("lint", help="AST-based invariant checker")
    p_lint.add_argument("path", nargs="?", default=None,
                        help="package directory to lint (default: the "
                             "installed repro package)")
    p_lint.add_argument("--format", choices=("text", "json"),
                        default="text", help="finding output format")
    p_lint.add_argument("--rules", default=None,
                        help="comma-separated rule subset (default: all; "
                             "ids: determinism, key-coverage, "
                             "schema-drift, store-write, except-swallow, "
                             "registry-sync)")
    p_lint.add_argument("--baseline", default=None, metavar="FILE",
                        help="baseline file of grandfathered findings "
                             "(default: analysis/lint_baseline.json in "
                             "the linted tree)")
    p_lint.add_argument("--update-baseline", action="store_true",
                        help="rewrite the baseline with the current "
                             "findings instead of failing on them")
    p_lint.add_argument("--write-golden", action="store_true",
                        help="regenerate the schema-drift golden "
                             "fingerprint from the current tree")
    p_lint.set_defaults(func=_cmd_lint)

    p_store = sub.add_parser("store", help="shared artifact-store server")
    p_store.add_argument("action", choices=("serve",))
    p_store.add_argument("--root", default=None,
                         help="store root directory to serve (default: "
                              "the --cache-dir/default store)")
    p_store.add_argument("--host", default="127.0.0.1",
                         help="bind address (default: 127.0.0.1)")
    p_store.add_argument("--port", type=int, default=8750,
                         help="bind port (default: 8750; 0 picks a free "
                              "port)")
    p_store.add_argument("--verbose", action="store_true",
                         help="log every request")
    p_store.set_defaults(func=_cmd_store)
    return parser


def main(argv: Optional[list] = None) -> int:
    """CLI entry point."""
    args = build_parser().parse_args(argv)
    if args.kernel_backend is not None:
        # Make the choice process-wide so even code paths that never see the
        # context (direct GraphOps construction, the emulator) honor it.
        set_default_backend(args.kernel_backend)
    if args.store_url and args.cache_dir:
        print("--store-url and --cache-dir name different stores; pass "
              "one or the other", file=sys.stderr)
        return 2
    store = None
    if not args.no_cache:
        # Explicit flags beat the environment; default_cache_dir() itself
        # honors $REPRO_STORE_URL over $REPRO_CACHE_DIR.
        locator = args.store_url or args.cache_dir or default_cache_dir()
        store = ArtifactStore(locator)
    ctx = EvalContext(profile=args.profile, kernel_backend=args.kernel_backend,
                      store=store)
    try:
        return args.func(args, ctx)
    except (UnknownDatasetError, UnknownExperimentError, UnknownSweepError,
            ConfigError, KernelError) as exc:
        # Bad names and malformed --grid strings are usage errors: one
        # clear line on stderr and exit code 2, not a traceback.
        print(str(exc), file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
