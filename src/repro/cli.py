"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``experiment <name>``
    Run one paper experiment (``fig04``, ``fig09``, ``fig10``, ``fig11``,
    ``fig12``, ``tab03``, ``tab04``, ``tab05``, ``tab06``, ``tab07``,
    ``ablation-cs``, ``ablation-design``, ``training-cost``) and print the
    regenerated table/figure.
``train <dataset>``
    Run the full GCoD pipeline on one dataset and print the summary.
``simulate <dataset>``
    Map a GCoD-trained graph onto every platform and print the speedups.
``report``
    Run every experiment and write a combined report.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, Optional

from repro.evaluation import EvalContext
from repro.sparse.kernels import available_backends, set_default_backend
from repro.evaluation.experiments import (
    ablation_cs,
    ablation_design,
    fig04_visualization,
    fig09_citation_speedups,
    fig10_large_speedups,
    fig11_memory,
    fig12_energy,
    reordering_compare,
    tab03_datasets,
    tab04_models,
    tab05_systems,
    tab06_breakdown,
    tab07_accuracy,
    training_cost,
)

EXPERIMENTS: Dict[str, Callable] = {
    "fig04": fig04_visualization.run,
    "fig09": fig09_citation_speedups.run,
    "fig10": fig10_large_speedups.run,
    "fig11": fig11_memory.run,
    "fig12": fig12_energy.run,
    "tab03": tab03_datasets.run,
    "tab04": tab04_models.run,
    "tab05": tab05_systems.run,
    "tab06": tab06_breakdown.run,
    "tab07": tab07_accuracy.run,
    "ablation-cs": ablation_cs.run,
    "reordering": reordering_compare.run,
    "ablation-design": ablation_design.run,
    "training-cost": training_cost.run,
}


def _cmd_experiment(args, ctx: EvalContext) -> int:
    if args.name not in EXPERIMENTS:
        print(f"unknown experiment {args.name!r}; choose from "
              f"{', '.join(sorted(EXPERIMENTS))}", file=sys.stderr)
        return 2
    result = EXPERIMENTS[args.name](ctx)
    print(result.render())
    return 0


def _cmd_train(args, ctx: EvalContext) -> int:
    result = ctx.gcod(args.dataset, args.arch)
    print(result.summary())
    print(f"early-bird epoch: {result.early_bird_epoch}")
    print(result.layout.describe())
    return 0


def _cmd_simulate(args, ctx: EvalContext) -> int:
    from repro.utils.ascii_plot import bar_chart

    platforms = list(ctx.platforms())
    speedups = ctx.speedups_over_cpu(args.dataset, args.arch, platforms)
    print(bar_chart(platforms, [speedups[p] for p in platforms],
                    title=f"{args.dataset}/{args.arch}: speedup over PyG-CPU"))
    return 0


def _cmd_report(args, ctx: EvalContext) -> int:
    from repro.evaluation.report import generate_report

    text = generate_report(ctx)
    if args.output:
        with open(args.output, "w") as fh:
            fh.write(text)
        print(f"wrote {args.output}")
    else:
        print(text)
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Build the top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="GCoD (HPCA 2022) reproduction toolkit",
    )
    parser.add_argument("--profile", choices=("fast", "full"), default="fast",
                        help="experiment scale profile")
    parser.add_argument("--kernel-backend", choices=available_backends(),
                        default=None,
                        help="SpMM kernel backend for all numerics "
                             "(default: vectorized)")
    sub = parser.add_subparsers(dest="command", required=True)

    p_exp = sub.add_parser("experiment", help="run one paper experiment")
    p_exp.add_argument("name", help=", ".join(sorted(EXPERIMENTS)))
    p_exp.set_defaults(func=_cmd_experiment)

    p_train = sub.add_parser("train", help="run the GCoD pipeline")
    p_train.add_argument("dataset")
    p_train.add_argument("--arch", default="gcn")
    p_train.set_defaults(func=_cmd_train)

    p_sim = sub.add_parser("simulate", help="simulate all platforms")
    p_sim.add_argument("dataset")
    p_sim.add_argument("--arch", default="gcn")
    p_sim.set_defaults(func=_cmd_simulate)

    p_rep = sub.add_parser("report", help="run everything, write a report")
    p_rep.add_argument("--output", "-o", default=None)
    p_rep.set_defaults(func=_cmd_report)
    return parser


def main(argv: Optional[list] = None) -> int:
    """CLI entry point."""
    args = build_parser().parse_args(argv)
    if args.kernel_backend is not None:
        # Make the choice process-wide so even code paths that never see the
        # context (direct GraphOps construction, the emulator) honor it.
        set_default_backend(args.kernel_backend)
    ctx = EvalContext(profile=args.profile, kernel_backend=args.kernel_backend)
    return args.func(args, ctx)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
