"""Shared utilities: RNG handling, table formatting, ASCII plots."""

from repro.utils.rng import ensure_rng
from repro.utils.tables import format_table
from repro.utils.ascii_plot import density_plot, bar_chart

__all__ = ["ensure_rng", "format_table", "density_plot", "bar_chart"]
