"""Shared utilities: RNG handling, table formatting, ASCII plots."""

from repro.utils.rng import ensure_rng
from repro.utils.sysinfo import effective_cpu_count
from repro.utils.tables import format_table
from repro.utils.ascii_plot import density_plot, bar_chart

__all__ = ["bar_chart", "density_plot", "effective_cpu_count",
           "ensure_rng", "format_table"]
