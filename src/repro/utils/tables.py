"""Plain-text table rendering for the evaluation harness.

The paper reports results as tables and bar charts; the harness renders both
as monospace text so every experiment is reproducible in a terminal.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence


def _render_cell(value, float_fmt: str) -> str:
    if isinstance(value, float):
        return format(value, float_fmt)
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence],
    title: str = "",
    float_fmt: str = ".2f",
) -> str:
    """Render ``rows`` under ``headers`` as an aligned monospace table."""
    str_rows: List[List[str]] = [
        [_render_cell(v, float_fmt) for v in row] for row in rows
    ]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return " | ".join(c.ljust(w) for c, w in zip(cells, widths))

    sep = "-+-".join("-" * w for w in widths)
    out = []
    if title:
        out.append(title)
    out.append(line(headers))
    out.append(sep)
    out.extend(line(r) for r in str_rows)
    return "\n".join(out)
