"""ASCII visualizations used to reproduce the paper's figures in a terminal.

``density_plot`` renders a (possibly huge) sparse adjacency matrix as a small
character grid, the terminal analogue of the paper's Fig. 4 scatter plots.
``bar_chart`` renders log-scale speedup bars, the analogue of Figs. 9-10.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

import numpy as np
import scipy.sparse as sp

_SHADES = " .:-=+*#%@"


def density_plot(
    adj: sp.spmatrix,
    size: int = 40,
    class_bounds: Optional[Sequence[int]] = None,
    group_bounds: Optional[Sequence[int]] = None,
) -> str:
    """Render a sparse matrix as a ``size``-by-``size`` density grid.

    Non-zero density inside each cell maps onto a ten-level shade ramp.
    ``class_bounds`` / ``group_bounds`` draw the paper's green/red partition
    separators (rendered as ``|``/``+`` column and row markers).
    """
    coo = sp.coo_matrix(adj)
    n_rows, n_cols = coo.shape
    size = max(1, min(size, max(n_rows, n_cols)))
    grid = np.zeros((size, size), dtype=np.int64)
    row_bins = np.minimum((coo.row * size) // max(n_rows, 1), size - 1)
    col_bins = np.minimum((coo.col * size) // max(n_cols, 1), size - 1)
    np.add.at(grid, (row_bins, col_bins), 1)

    max_count = grid.max()
    lines = []
    boundary_cols = set()
    for b in class_bounds or ():
        boundary_cols.add(min(int(b * size / max(n_cols, 1)), size - 1))
    group_cols = set()
    for b in group_bounds or ():
        group_cols.add(min(int(b * size / max(n_cols, 1)), size - 1))

    for r in range(size):
        chars = []
        for c in range(size):
            count = grid[r, c]
            if count == 0:
                ch = " "
            else:
                # log scaling keeps single edges visible next to dense blocks
                level = 1 + int(
                    (len(_SHADES) - 2) * math.log1p(count) / math.log1p(max_count)
                )
                ch = _SHADES[min(level, len(_SHADES) - 1)]
            if c in group_cols and ch == " ":
                ch = "!"
            elif c in boundary_cols and ch == " ":
                ch = "|"
            chars.append(ch)
        lines.append("".join(chars))
    return "\n".join(lines)


def bar_chart(
    labels: Sequence[str],
    values: Sequence[float],
    width: int = 50,
    log: bool = True,
    title: str = "",
    unit: str = "x",
) -> str:
    """Render a horizontal bar chart; log-scaled by default (like Fig. 9)."""
    if len(labels) != len(values):
        raise ValueError("labels and values must have equal length")
    if not labels:
        return title
    vmax = max(max(values), 1e-12)
    label_w = max(len(str(l)) for l in labels)
    lines = [title] if title else []
    for label, value in zip(labels, values):
        if log:
            frac = math.log1p(max(value, 0.0)) / math.log1p(vmax)
        else:
            frac = max(value, 0.0) / vmax
        bar = "#" * max(1 if value > 0 else 0, int(round(frac * width)))
        lines.append(f"{str(label).ljust(label_w)} | {bar} {value:,.1f}{unit}")
    return "\n".join(lines)
