"""Deterministic random-number-generator plumbing.

Every stochastic entry point in the package accepts either an integer seed,
a ``numpy.random.Generator``, or ``None`` and funnels it through
:func:`ensure_rng` so results are reproducible end to end.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

SeedLike = Union[None, int, np.random.Generator]


def ensure_rng(seed: SeedLike = None) -> np.random.Generator:
    """Return a ``numpy.random.Generator`` for any accepted seed form.

    Passing a ``Generator`` returns it unchanged so that callers can thread a
    single stream through nested components; integers and ``None`` construct
    a fresh ``default_rng``.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn(rng: np.random.Generator, n: int) -> list:
    """Derive ``n`` independent child generators from ``rng``.

    Used when a pipeline stage fans out into parallel sub-tasks that must not
    share a stream (e.g. per-class METIS refinement).
    """
    seeds = rng.integers(0, 2**63 - 1, size=n)
    return [np.random.default_rng(int(s)) for s in seeds]
