"""Host introspection shared by the benchmark harnesses.

Both ``bench_sweep.py`` and ``bench_serve.py`` gate their parallelism
assertions on how many CPUs the process may actually use — which on a
cgroup-restricted CI runner is the *affinity* count, not
``os.cpu_count()``'s host-wide total. One helper, one definition.
"""

from __future__ import annotations

import os


def effective_cpu_count() -> int:
    """CPUs this process may schedule onto (affinity-aware, >= 1).

    Prefers ``os.sched_getaffinity`` (respects taskset/cgroups on
    Linux), falls back to ``os.cpu_count()`` where affinity is not a
    concept (macOS, Windows), and bottoms out at 1 so callers can divide
    by it or compare against a job count without guarding ``None``.
    """
    getaffinity = getattr(os, "sched_getaffinity", None)
    if getaffinity is not None:
        try:
            return max(1, len(getaffinity(0)))
        except OSError:
            pass  # repro: lint-ok[except-swallow] — exotic platform;
            # fall through to the portable count below.
    return max(1, os.cpu_count() or 1)
