"""The lint engine: parsed sources, findings, suppressions, rule plumbing.

``repro lint`` is a set of composable AST passes over the ``repro``
package's own source tree. This module owns everything the rules share:

* :class:`SourceFile` — one parsed module (text, AST, per-line
  suppressions) addressed by its path relative to the package root;
* :class:`LintContext` — the whole scanned tree plus helpers rules use to
  scope themselves (``iter_files``) and to cross-reference other modules
  (``get``);
* :class:`Finding` — one violation: rule id, file, line, message, and a
  fix hint;
* :class:`Rule` — the plugin interface every pass implements;
* :func:`run_rules` — execute rules over a context, applying per-line
  ``# repro: lint-ok[rule-id]`` suppressions.

Everything is stdlib-``ast`` based — no imports of the code under
analysis — so the passes also run over *mutated copies* of the tree
(tests seed violations into scratch packages and lint those).
"""

from __future__ import annotations

import ast
import dataclasses
import os
import re
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

#: Per-line suppression: ``# repro: lint-ok[rule-a,rule-b]`` disables the
#: named rules on that line; bare ``# repro: lint-ok`` disables all rules.
_SUPPRESS_RE = re.compile(
    r"#\s*repro:\s*lint-ok(?:\[([A-Za-z0-9_,\- ]*)\])?"
)

#: Suppression marker meaning "every rule".
ALL_RULES = "*"


@dataclasses.dataclass(frozen=True)
class Finding:
    """One lint violation, pointing at source with a fix hint."""

    rule: str
    #: path relative to the scanned package root, posix-style.
    path: str
    line: int
    message: str
    hint: str = ""

    def render(self) -> str:
        text = f"{self.path}:{self.line}: [{self.rule}] {self.message}"
        if self.hint:
            text += f"\n    hint: {self.hint}"
        return text

    def fingerprint(self) -> str:
        """Line-number-free identity used by the baseline file.

        Deliberately excludes ``line`` so grandfathered findings survive
        unrelated edits that shift code up or down.
        """
        return f"{self.rule}::{self.path}::{self.message}"

    def to_jsonable(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "message": self.message,
            "hint": self.hint,
        }


@dataclasses.dataclass
class SourceFile:
    """One parsed module of the scanned tree."""

    rel: str
    path: str
    text: str
    tree: ast.Module
    #: line number -> rule ids suppressed there (:data:`ALL_RULES` = all).
    suppressions: Dict[int, Tuple[str, ...]]

    @property
    def lines(self) -> List[str]:
        return self.text.splitlines()

    def suppressed(self, rule: str, line: int) -> bool:
        ids = self.suppressions.get(line)
        if ids is None:
            return False
        return ALL_RULES in ids or rule in ids


def _parse_suppressions(text: str) -> Dict[int, Tuple[str, ...]]:
    out: Dict[int, Tuple[str, ...]] = {}
    for lineno, line in enumerate(text.splitlines(), start=1):
        m = _SUPPRESS_RE.search(line)
        if not m:
            continue
        raw = m.group(1)
        if raw is None:
            out[lineno] = (ALL_RULES,)
        else:
            ids = tuple(p.strip() for p in raw.split(",") if p.strip())
            out[lineno] = ids or (ALL_RULES,)
    return out


class LintContext:
    """Every parsed source file under one package root.

    ``root`` is the directory that *is* the package (the one containing
    ``runtime/``, ``sweep/``, ...). Files that fail to parse surface as
    ``parse-error`` findings rather than crashing the whole run: a lint
    tool that dies on a syntax error hides every other finding.
    """

    def __init__(self, root: str):
        self.root = os.path.abspath(root)
        self.files: Dict[str, SourceFile] = {}
        self.parse_errors: List[Finding] = []
        self._scan()

    def _scan(self) -> None:
        for dirpath, dirnames, filenames in os.walk(self.root):
            dirnames[:] = sorted(
                d for d in dirnames
                if d != "__pycache__" and not d.startswith(".")
            )
            for fname in sorted(filenames):
                if not fname.endswith(".py"):
                    continue
                path = os.path.join(dirpath, fname)
                rel = os.path.relpath(path, self.root).replace(os.sep, "/")
                try:
                    with open(path, "r", encoding="utf-8") as fh:
                        text = fh.read()
                    tree = ast.parse(text, filename=path)
                except (OSError, SyntaxError, ValueError) as exc:
                    line = getattr(exc, "lineno", None) or 1
                    self.parse_errors.append(Finding(
                        rule="parse-error",
                        path=rel,
                        line=line,
                        message=f"cannot parse: {exc}",
                        hint="fix the syntax error; no other rule can "
                             "check this file until it parses",
                    ))
                    continue
                self.files[rel] = SourceFile(
                    rel=rel,
                    path=path,
                    text=text,
                    tree=tree,
                    suppressions=_parse_suppressions(text),
                )

    def get(self, rel: str) -> Optional[SourceFile]:
        """The parsed file at ``rel``, or ``None`` if absent/unparsable."""
        return self.files.get(rel)

    def iter_files(
        self,
        prefixes: Optional[Sequence[str]] = None,
        exclude: Sequence[str] = (),
    ) -> Iterator[SourceFile]:
        """Files under any of ``prefixes`` (all files when ``None``).

        A prefix is either a directory prefix (``"runtime/"``) or an
        exact relative path (``"evaluation/context.py"``); ``exclude``
        names exact relative paths to skip.
        """
        for rel in sorted(self.files):
            if rel in exclude:
                continue
            if prefixes is None or any(
                rel == p or (p.endswith("/") and rel.startswith(p))
                for p in prefixes
            ):
                yield self.files[rel]


class Rule:
    """The plugin interface: one composable AST pass.

    Subclasses set ``id``/``description`` and implement :meth:`check`,
    yielding :class:`Finding`\\ s. Rules must not import the code under
    analysis — AST only — so they keep working on scratch copies of the
    tree. A rule that needs cross-file context (e.g. the dataclass fields
    of one module against the key functions of another) looks siblings up
    through the context and *skips silently* when its subject files are
    absent: per-file rules run on any tree, structural rules need the
    real package layout.
    """

    id: str = ""
    description: str = ""

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Rule {self.id}>"


def run_rules(
    ctx: LintContext, rules: Iterable[Rule]
) -> List[Finding]:
    """Run ``rules`` over ``ctx``; returns unsuppressed findings, sorted.

    Per-line ``# repro: lint-ok[rule-id]`` comments on the *flagged line*
    suppress matching findings. Parse errors always surface (they cannot
    be suppressed by a comment in a file that does not parse).
    """
    findings: List[Finding] = list(ctx.parse_errors)
    for rule in rules:
        for finding in rule.check(ctx):
            src = ctx.files.get(finding.path)
            if src is not None and src.suppressed(finding.rule,
                                                  finding.line):
                continue
            findings.append(finding)
    findings.sort(key=lambda f: (f.path, f.line, f.rule, f.message))
    return findings


# ----------------------------------------------------------------------
# shared AST helpers (used by several rules)
# ----------------------------------------------------------------------
def dotted_name(node: ast.AST) -> str:
    """``a.b.c`` for an attribute/name chain, ``""`` for anything else."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        base = dotted_name(node.value)
        return f"{base}.{node.attr}" if base else ""
    return ""


def import_origins(tree: ast.Module) -> Dict[str, str]:
    """Map local names to the dotted origin they were imported as.

    ``import time`` -> ``{"time": "time"}``; ``from time import time`` ->
    ``{"time": "time.time"}``; ``from datetime import datetime as dt`` ->
    ``{"dt": "datetime.datetime"}``. Lets call-site names resolve to
    their true module paths without executing any imports.
    """
    origins: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                origins[local] = alias.name if alias.asname \
                    else alias.name.split(".")[0]
        elif isinstance(node, ast.ImportFrom) and node.module \
                and node.level == 0:
            for alias in node.names:
                local = alias.asname or alias.name
                origins[local] = f"{node.module}.{alias.name}"
    return origins


def resolve_call_name(node: ast.Call, origins: Dict[str, str]) -> str:
    """The fully-qualified dotted name a call resolves to, best-effort."""
    name = dotted_name(node.func)
    if not name:
        return ""
    head, _, rest = name.partition(".")
    origin = origins.get(head)
    if origin:
        return f"{origin}.{rest}" if rest else origin
    return name


def qualnames(tree: ast.Module) -> Dict[ast.AST, str]:
    """Map every node to its enclosing ``Class.method`` qualified name.

    Module-level nodes map to ``"<module>"``. Used by allowlists that
    except specific functions (the ledger's ``claimed_at`` stamp, the
    store's ``created`` metadata) from an otherwise-banned pattern.
    """
    out: Dict[ast.AST, str] = {}

    def visit(node: ast.AST, qual: str) -> None:
        for child in ast.iter_child_nodes(node):
            child_qual = qual
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef,
                                  ast.ClassDef)):
                child_qual = f"{qual}.{child.name}" if qual else child.name
            out[child] = child_qual or "<module>"
            visit(child, child_qual)

    visit(tree, "")
    return out


def dataclass_fields(class_node: ast.ClassDef) -> List[Tuple[str, str, str]]:
    """The annotated fields of a dataclass body, in declaration order.

    Returns ``(name, annotation_source, default_source)`` triples;
    ``ClassVar`` annotations and unannotated assignments are not fields.
    """
    fields: List[Tuple[str, str, str]] = []
    for stmt in class_node.body:
        if not isinstance(stmt, ast.AnnAssign) or \
                not isinstance(stmt.target, ast.Name):
            continue
        annotation = ast.unparse(stmt.annotation)
        if annotation.startswith("ClassVar"):
            continue
        default = ast.unparse(stmt.value) if stmt.value is not None else ""
        fields.append((stmt.target.id, annotation, default))
    return fields


def is_dataclass_def(class_node: ast.ClassDef) -> bool:
    """True when the class carries a ``@dataclass`` style decorator."""
    for dec in class_node.decorator_list:
        target = dec.func if isinstance(dec, ast.Call) else dec
        name = dotted_name(target)
        if name.split(".")[-1] == "dataclass":
            return True
    return False


def find_class(src: SourceFile, name: str) -> Optional[ast.ClassDef]:
    """The top-level class ``name`` in ``src``, or ``None``."""
    for node in src.tree.body:
        if isinstance(node, ast.ClassDef) and node.name == name:
            return node
    return None


def literal_dict(src: SourceFile, name: str):
    """The literal value assigned to module-level constant ``name``.

    Returns ``None`` when absent or not a pure literal. Used to read
    declarations (``KEY_FIELD_COVERAGE``, ``CODE_SCHEMA_VERSION``) from
    source without importing it.
    """
    for node in src.tree.body:
        targets = []
        if isinstance(node, ast.Assign):
            targets = node.targets
            value = node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets = [node.target]
            value = node.value
        else:
            continue
        for target in targets:
            if isinstance(target, ast.Name) and target.id == name:
                try:
                    return ast.literal_eval(value)
                except (ValueError, SyntaxError):
                    return None
    return None
