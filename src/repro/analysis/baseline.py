"""The lint baseline: grandfathered findings that do not fail the build.

A baseline lets the linter land with real rules enabled even when the
tree has known, consciously-deferred findings: the checked-in baseline
file records their line-number-free fingerprints, ``repro lint`` exits 1
only for findings *not* in it, and ``--update-baseline`` regenerates it.
The shipped baseline is empty — PR 7 fixed the genuine violations
instead of grandfathering them — but the mechanism is what keeps the
rules adoptable as they grow stricter.

Fingerprints exclude line numbers (see
:meth:`~repro.analysis.core.Finding.fingerprint`) so unrelated edits
that shift code do not resurrect baselined findings.
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Sequence, Set, Tuple

from repro.analysis.core import Finding

#: The packaged default, relative to the package root being linted.
BASELINE_REL = "analysis/lint_baseline.json"


def default_baseline_path(root: str) -> str:
    return os.path.join(root, *BASELINE_REL.split("/"))


def load_baseline(path: str) -> Set[str]:
    """The baselined fingerprints, or an empty set when absent/garbled.

    A missing baseline means "nothing grandfathered" — the strictest
    reading — and a garbled one is treated the same way so corruption
    fails toward stricter linting, never toward hiding findings.
    """
    try:
        with open(path, "r", encoding="utf-8") as fh:
            data = json.load(fh)
    except (OSError, ValueError):
        return set()
    if isinstance(data, dict):
        data = data.get("findings", [])
    if not isinstance(data, list):
        return set()
    return {str(fp) for fp in data}


def write_baseline(path: str, findings: Sequence[Finding]) -> None:
    """Record ``findings`` as the new baseline (sorted, deduplicated)."""
    payload = {
        "comment": "grandfathered `repro lint` findings; regenerate "
                   "with `repro lint --update-baseline`",
        "findings": sorted({f.fingerprint() for f in findings}),
    }
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")


def split_by_baseline(
    findings: Sequence[Finding], baselined: Set[str]
) -> Tuple[List[Finding], List[Finding]]:
    """Partition into (new, grandfathered) against ``baselined``."""
    new: List[Finding] = []
    old: List[Finding] = []
    for finding in findings:
        (old if finding.fingerprint() in baselined else new).append(finding)
    return new, old
