"""Static analysis for the platform's structural invariants (`repro lint`).

The repo's correctness now rests on properties no test tier can fully
guard at runtime: byte-identical warm reruns, content-addressed keys
that cover every config field, schema versioning that tracks serialized
shapes, and store mutations that only flow through the atomic backend.
This package enforces them as composable AST passes over the ``repro``
source tree itself — stdlib ``ast`` only, no third-party deps, no import
of the code under analysis (so the same passes run over mutated scratch
copies in the test suite).

Layout:

* :mod:`repro.analysis.core` — the engine: parsed tree,
  :class:`~repro.analysis.core.Rule` plugin interface,
  :class:`~repro.analysis.core.Finding`, per-line
  ``# repro: lint-ok[rule-id]`` suppressions;
* :mod:`repro.analysis.rules` — the six shipped passes (determinism,
  key-coverage, schema-drift, store-write, except-swallow,
  registry-sync);
* :mod:`repro.analysis.baseline` — grandfathered-finding bookkeeping;
* :mod:`repro.analysis.lint` — the ``repro lint`` entry point: rule
  selection, text/JSON output, exit codes (0 clean / 1 new findings /
  2 usage).
"""

from repro.analysis.baseline import (
    default_baseline_path,
    load_baseline,
    split_by_baseline,
    write_baseline,
)
from repro.analysis.core import (
    Finding,
    LintContext,
    Rule,
    run_rules,
)
from repro.analysis.lint import LintReport, default_lint_root, lint_tree
from repro.analysis.rules import ALL_RULES, resolve_rules, rule_ids

__all__ = [
    "ALL_RULES",
    "Finding",
    "LintContext",
    "LintReport",
    "Rule",
    "default_baseline_path",
    "default_lint_root",
    "lint_tree",
    "load_baseline",
    "resolve_rules",
    "rule_ids",
    "run_rules",
    "split_by_baseline",
    "write_baseline",
]
