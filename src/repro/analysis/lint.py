"""The ``repro lint`` entry point: run rules, apply baseline, format.

Exit-code contract (mirrored by the CLI and asserted in
``tests/analysis/``): 0 = clean (baselined findings allowed), 1 = at
least one *new* finding, 2 = usage error (unknown rule, unreadable
root — raised as :class:`~repro.errors.ConfigError` and mapped by
``repro.cli.main``).
"""

from __future__ import annotations

import dataclasses
import json
import os
from typing import List, Optional, Sequence

from repro.analysis.baseline import (
    default_baseline_path,
    load_baseline,
    split_by_baseline,
)
from repro.analysis.core import Finding, LintContext, run_rules
from repro.analysis.rules import resolve_rules
from repro.errors import ConfigError


def default_lint_root() -> str:
    """The installed ``repro`` package directory — what CI lints."""
    import repro

    return os.path.dirname(os.path.abspath(repro.__file__))


@dataclasses.dataclass
class LintReport:
    """One lint run: what was checked and what surfaced."""

    root: str
    rules: List[str]
    findings: List[Finding]
    baselined: List[Finding]

    @property
    def exit_code(self) -> int:
        return 1 if self.findings else 0

    def to_jsonable(self) -> dict:
        return {
            "root": self.root,
            "rules": self.rules,
            "findings": [f.to_jsonable() for f in self.findings],
            "baselined": [f.to_jsonable() for f in self.baselined],
            "exit_code": self.exit_code,
        }

    def render_text(self) -> str:
        lines: List[str] = []
        for finding in self.findings:
            lines.append(finding.render())
        if self.baselined:
            lines.append(
                f"({len(self.baselined)} baselined finding(s) "
                f"suppressed; `repro lint --update-baseline` refreshes "
                f"the list)"
            )
        if not self.findings:
            lines.append(
                f"clean: {len(self.rules)} rule(s) over {self.root}"
            )
        else:
            lines.append(
                f"{len(self.findings)} new finding(s) from "
                f"{len(self.rules)} rule(s) over {self.root}"
            )
        return "\n".join(lines)

    def render(self, fmt: str = "text") -> str:
        if fmt == "json":
            return json.dumps(self.to_jsonable(), indent=2) + "\n"
        return self.render_text() + "\n"


def lint_tree(
    root: Optional[str] = None,
    rules: Optional[Sequence[str]] = None,
    baseline: Optional[str] = None,
    use_baseline: bool = True,
) -> LintReport:
    """Lint the package tree at ``root`` (default: the installed repro).

    ``rules`` selects a subset by id; ``baseline`` overrides the packaged
    baseline file path; ``use_baseline=False`` reports everything as new
    (what ``--update-baseline`` uses to capture the full set).
    """
    root = os.path.abspath(root or default_lint_root())
    if not os.path.isdir(root):
        raise ConfigError(
            f"lint root {root!r} is not a directory; pass the package "
            f"directory (the one containing runtime/, sweep/, ...)"
        )
    selected = resolve_rules(rules)
    ctx = LintContext(root)
    if not ctx.files and not ctx.parse_errors:
        raise ConfigError(f"lint root {root!r} contains no Python files")
    findings = run_rules(ctx, selected)
    baselined_fps = set()
    if use_baseline:
        baselined_fps = load_baseline(
            baseline or default_baseline_path(root)
        )
    new, old = split_by_baseline(findings, baselined_fps)
    return LintReport(
        root=root,
        rules=[r.id for r in selected],
        findings=new,
        baselined=old,
    )
