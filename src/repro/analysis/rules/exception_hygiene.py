"""Rule ``except-swallow``: broad handlers must re-raise or leave a note.

The codebase has two established shapes for ``except Exception``:

* **wrap and re-raise** — the runner/engine pattern: catch, wrap in a
  task-scoped error type, ``raise ... from exc``;
* **degrade with a stderr note** — the store pattern: a cache that
  cannot persist must not crash the run that produced an expensive
  result, but it says so on stderr (``_degrade_note``).

What is *not* acceptable is a broad handler that silently swallows: it
turns store corruption, programming errors, and ``KeyboardInterrupt``
lookalikes into invisible cache misses (the pre-PR-7 ``store.get`` did
exactly this). This rule flags bare ``except:`` and ``except
Exception/BaseException`` handlers whose body neither re-raises nor
emits a diagnostic. Narrowing the handler to the concrete failure set is
the preferred fix; the suppression comment is the escape hatch for the
rare justified swallow.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.core import (
    Finding,
    LintContext,
    Rule,
    dotted_name,
)

#: Exception names that make a handler "broad".
BROAD_NAMES = frozenset({"Exception", "BaseException"})

#: Call-name fragments accepted as "leaves a diagnostic".
_NOTE_FRAGMENTS = ("note", "warn")


def _is_broad(handler: ast.ExceptHandler) -> bool:
    if handler.type is None:
        return True  # bare except:
    names = []
    if isinstance(handler.type, ast.Tuple):
        names = [dotted_name(e) for e in handler.type.elts]
    else:
        names = [dotted_name(handler.type)]
    return any(n.split(".")[-1] in BROAD_NAMES for n in names)


def _handles(handler: ast.ExceptHandler) -> bool:
    """True when the body re-raises or emits a diagnostic."""
    for node in ast.walk(handler):
        if isinstance(node, ast.Raise):
            return True
        if isinstance(node, ast.Call):
            name = dotted_name(node.func)
            last = name.split(".")[-1].lower()
            if any(frag in last for frag in _NOTE_FRAGMENTS):
                return True
            # print(..., file=sys.stderr) and logger-style calls
            for kw in node.keywords:
                if kw.arg == "file" and \
                        dotted_name(kw.value).endswith("stderr"):
                    return True
            if name.split(".")[0] in ("logger", "logging", "log"):
                return True
    return False


class ExceptionHygieneRule(Rule):
    id = "except-swallow"
    description = (
        "no bare/broad `except Exception` that swallows silently — "
        "narrow it, re-raise, or leave a stderr note"
    )

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        for src in ctx.iter_files():
            for node in ast.walk(src.tree):
                if not isinstance(node, ast.ExceptHandler):
                    continue
                if not _is_broad(node):
                    continue
                if _handles(node):
                    continue
                caught = "bare except" if node.type is None else \
                    f"except {ast.unparse(node.type)}"
                yield Finding(
                    rule=self.id,
                    path=src.rel,
                    line=node.lineno,
                    message=f"{caught} swallows without re-raising or "
                            f"noting the failure",
                    hint=(
                        "narrow to the concrete failure set, wrap and "
                        "`raise ... from exc`, or print a degrade note "
                        "to stderr; a justified silent swallow gets "
                        "`# repro: lint-ok[except-swallow]` with a "
                        "comment saying why"
                    ),
                )
