"""Rule ``registry-sync``: registries and CLI surfaces cannot drift.

Three drift classes this catches, all of which have bitten registries
like this one before:

* an experiment module under ``evaluation/experiments/`` that never
  calls ``register_experiment`` — it imports fine, renders fine when
  called directly, and silently vanishes from ``repro report``;
* a module present in the directory but missing from the package
  ``__init__``'s imports — registration happens at import time, so an
  unimported module never registers at all;
* a CLI argument whose value set mirrors a registry (kernel backends,
  artifact kinds) but is spelled as a hard-coded literal — the PR 6 CLI
  listed artifact kinds by hand and silently omitted ``claim``. Such
  arguments must derive their ``choices`` from the registry (a name or
  call), never a literal tuple.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.core import (
    Finding,
    LintContext,
    Rule,
    dotted_name,
)

EXPERIMENTS_DIR = "evaluation/experiments/"
EXPERIMENTS_INIT = "evaluation/experiments/__init__.py"
REGISTER_CALL = "register_experiment"

#: CLI arguments whose choices mirror a registry and must stay dynamic.
DYNAMIC_CHOICE_FLAGS = {
    "--kernel-backend": "the kernel registry "
                        "(repro.sparse.kernels.available_backends)",
    "--kind": "the artifact-kind constants (repro.runtime.keys.ALL_KINDS)",
}


class RegistrySyncRule(Rule):
    id = "registry-sync"
    description = (
        "experiment modules register an ExperimentSpec, the experiments "
        "package imports them all, and registry-mirroring CLI choices "
        "are derived, not hard-coded"
    )

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        yield from self._check_experiment_modules(ctx)
        yield from self._check_experiments_init(ctx)
        yield from self._check_cli_choices(ctx)

    # ------------------------------------------------------------------
    def _experiment_modules(self, ctx: LintContext):
        for src in ctx.iter_files(prefixes=(EXPERIMENTS_DIR,)):
            if src.rel != EXPERIMENTS_INIT:
                yield src

    def _check_experiment_modules(self, ctx: LintContext):
        for src in self._experiment_modules(ctx):
            registers = any(
                isinstance(node, ast.Call) and
                dotted_name(node.func).split(".")[-1] == REGISTER_CALL
                for node in ast.walk(src.tree)
            )
            if not registers:
                yield Finding(
                    rule=self.id,
                    path=src.rel,
                    line=1,
                    message=(
                        "experiment module never calls "
                        f"{REGISTER_CALL}() — it will not appear in "
                        "`repro report` or the CLI"
                    ),
                    hint="register an ExperimentSpec (name, title, "
                         "runner, gcod_deps) via "
                         "repro.runtime.registry.register_experiment",
                )

    def _check_experiments_init(self, ctx: LintContext):
        init = ctx.get(EXPERIMENTS_INIT)
        if init is None:
            return  # partial tree
        imported = set()
        for node in ast.walk(init.tree):
            if isinstance(node, ast.ImportFrom):
                imported.update(alias.name for alias in node.names)
            elif isinstance(node, ast.Import):
                imported.update(
                    alias.name.split(".")[-1] for alias in node.names
                )
        for src in self._experiment_modules(ctx):
            module = src.rel[len(EXPERIMENTS_DIR):-len(".py")]
            if "/" in module:
                continue  # nested helper packages are not experiment modules
            if module not in imported:
                yield Finding(
                    rule=self.id,
                    path=EXPERIMENTS_INIT,
                    line=1,
                    message=(
                        f"module {module!r} exists under "
                        f"{EXPERIMENTS_DIR} but is never imported — "
                        f"registration happens at import time, so its "
                        f"experiment never registers"
                    ),
                    hint=f"import {module} in {EXPERIMENTS_INIT} (and "
                         f"add it to __all__)",
                )

    def _check_cli_choices(self, ctx: LintContext):
        cli = ctx.get("cli.py")
        if cli is None:
            return  # partial tree
        for node in ast.walk(cli.tree):
            if not isinstance(node, ast.Call):
                continue
            if dotted_name(node.func).split(".")[-1] != "add_argument":
                continue
            flags = [
                a.value for a in node.args
                if isinstance(a, ast.Constant) and isinstance(a.value, str)
            ]
            flag = next((f for f in flags if f in DYNAMIC_CHOICE_FLAGS),
                        None)
            if flag is None:
                continue
            registry = DYNAMIC_CHOICE_FLAGS[flag]
            choices = next(
                (kw.value for kw in node.keywords if kw.arg == "choices"),
                None,
            )
            if choices is None:
                yield Finding(
                    rule=self.id,
                    path=cli.rel,
                    line=node.lineno,
                    message=f"{flag} validates nothing — its value set "
                            f"mirrors {registry}",
                    hint=f"pass choices= derived from {registry} so a "
                         f"typo exits 2 instead of silently matching "
                         f"nothing",
                )
            elif isinstance(choices, (ast.Tuple, ast.List, ast.Constant)):
                yield Finding(
                    rule=self.id,
                    path=cli.rel,
                    line=node.lineno,
                    message=(
                        f"{flag} hard-codes its choices — the list "
                        f"will drift from {registry} the next time an "
                        f"entry is added"
                    ),
                    hint=f"derive choices from {registry} instead of a "
                         f"literal",
                )
