"""Rule ``registry-sync``: registries and CLI surfaces cannot drift.

Four drift classes this catches, all of which have bitten registries
like this one before:

* an experiment module under ``evaluation/experiments/`` that never
  calls ``register_experiment`` — it imports fine, renders fine when
  called directly, and silently vanishes from ``repro report``;
* a module present in the directory but missing from the package
  ``__init__``'s imports — registration happens at import time, so an
  unimported module never registers at all;
* a CLI argument whose value set mirrors a registry (kernel backends,
  artifact kinds) but is spelled as a hard-coded literal — the PR 6 CLI
  listed artifact kinds by hand and silently omitted ``claim``. Such
  arguments must derive their ``choices`` from the registry (a name or
  call), never a literal tuple;
* a kernel-backend class under ``sparse/kernels/`` (a concrete ``name``
  on a ``*Backend`` subclass) that the kernels package never wires up —
  neither ``register_backend(Cls())`` nor a
  ``register_lazy_backend("name", ...)`` entry. Such a backend imports
  fine but can never be requested: ``backend_choices()`` (and with it
  every CLI surface) omits it;
* a pipeline-stage class in ``hardware/pipeline.py`` (a concrete
  ``name`` on a ``*Stage`` subclass) that the module never passes to
  ``register_stage()`` — ``get_stage()`` would raise on the name every
  ``PipelineSettings.stages`` chain mentions it with.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.core import (
    Finding,
    LintContext,
    Rule,
    dotted_name,
)

EXPERIMENTS_DIR = "evaluation/experiments/"
EXPERIMENTS_INIT = "evaluation/experiments/__init__.py"
REGISTER_CALL = "register_experiment"

KERNELS_DIR = "sparse/kernels/"
KERNELS_INIT = "sparse/kernels/__init__.py"
REGISTER_BACKEND_CALL = "register_backend"
REGISTER_LAZY_CALL = "register_lazy_backend"

PIPELINE_MODULE = "hardware/pipeline.py"
REGISTER_STAGE_CALL = "register_stage"

#: CLI arguments whose choices mirror a registry and must stay dynamic.
DYNAMIC_CHOICE_FLAGS = {
    "--kernel-backend": "the kernel registry "
                        "(repro.sparse.kernels.backend_choices)",
    "--kind": "the artifact-kind constants (repro.runtime.keys.ALL_KINDS)",
}


class RegistrySyncRule(Rule):
    id = "registry-sync"
    description = (
        "experiment modules register an ExperimentSpec, the experiments "
        "package imports them all, and registry-mirroring CLI choices "
        "are derived, not hard-coded"
    )

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        yield from self._check_experiment_modules(ctx)
        yield from self._check_experiments_init(ctx)
        yield from self._check_cli_choices(ctx)
        yield from self._check_kernel_backends(ctx)
        yield from self._check_pipeline_stages(ctx)

    # ------------------------------------------------------------------
    def _experiment_modules(self, ctx: LintContext):
        for src in ctx.iter_files(prefixes=(EXPERIMENTS_DIR,)):
            if src.rel != EXPERIMENTS_INIT:
                yield src

    def _check_experiment_modules(self, ctx: LintContext):
        for src in self._experiment_modules(ctx):
            registers = any(
                isinstance(node, ast.Call) and
                dotted_name(node.func).split(".")[-1] == REGISTER_CALL
                for node in ast.walk(src.tree)
            )
            if not registers:
                yield Finding(
                    rule=self.id,
                    path=src.rel,
                    line=1,
                    message=(
                        "experiment module never calls "
                        f"{REGISTER_CALL}() — it will not appear in "
                        "`repro report` or the CLI"
                    ),
                    hint="register an ExperimentSpec (name, title, "
                         "runner, gcod_deps) via "
                         "repro.runtime.registry.register_experiment",
                )

    def _check_experiments_init(self, ctx: LintContext):
        init = ctx.get(EXPERIMENTS_INIT)
        if init is None:
            return  # partial tree
        imported = set()
        for node in ast.walk(init.tree):
            if isinstance(node, ast.ImportFrom):
                imported.update(alias.name for alias in node.names)
            elif isinstance(node, ast.Import):
                imported.update(
                    alias.name.split(".")[-1] for alias in node.names
                )
        for src in self._experiment_modules(ctx):
            module = src.rel[len(EXPERIMENTS_DIR):-len(".py")]
            if "/" in module:
                continue  # nested helper packages are not experiment modules
            if module not in imported:
                yield Finding(
                    rule=self.id,
                    path=EXPERIMENTS_INIT,
                    line=1,
                    message=(
                        f"module {module!r} exists under "
                        f"{EXPERIMENTS_DIR} but is never imported — "
                        f"registration happens at import time, so its "
                        f"experiment never registers"
                    ),
                    hint=f"import {module} in {EXPERIMENTS_INIT} (and "
                         f"add it to __all__)",
                )

    # ------------------------------------------------------------------
    def _kernel_backend_classes(self, ctx: LintContext):
        """Concrete backend classes: ``class XBackend(...Backend)`` with a
        class-level ``name = "<literal>"`` other than ``abstract``."""
        for src in ctx.iter_files(prefixes=(KERNELS_DIR,)):
            if src.rel == KERNELS_INIT:
                continue
            for node in ast.walk(src.tree):
                if not isinstance(node, ast.ClassDef):
                    continue
                if not any(dotted_name(b).split(".")[-1].endswith("Backend")
                           for b in node.bases):
                    continue
                backend_name = None
                for stmt in node.body:
                    if (isinstance(stmt, ast.Assign)
                            and len(stmt.targets) == 1
                            and isinstance(stmt.targets[0], ast.Name)
                            and stmt.targets[0].id == "name"
                            and isinstance(stmt.value, ast.Constant)
                            and isinstance(stmt.value.value, str)):
                        backend_name = stmt.value.value
                if backend_name is None or backend_name == "abstract":
                    continue
                yield src, node, backend_name

    def _check_kernel_backends(self, ctx: LintContext):
        init = ctx.get(KERNELS_INIT)
        if init is None:
            return  # partial tree
        registered_classes = set()
        lazy_names = set()
        for node in ast.walk(init.tree):
            if not isinstance(node, ast.Call):
                continue
            callee = dotted_name(node.func).split(".")[-1]
            if callee == REGISTER_BACKEND_CALL and node.args:
                arg = node.args[0]
                if isinstance(arg, ast.Call):  # register_backend(Cls())
                    registered_classes.add(
                        dotted_name(arg.func).split(".")[-1]
                    )
            elif callee == REGISTER_LAZY_CALL and node.args:
                arg = node.args[0]
                if isinstance(arg, ast.Constant) and isinstance(arg.value,
                                                                str):
                    lazy_names.add(arg.value)
        for src, cls, backend_name in self._kernel_backend_classes(ctx):
            if cls.name in registered_classes or backend_name in lazy_names:
                continue
            yield Finding(
                rule=self.id,
                path=src.rel,
                line=cls.lineno,
                message=(
                    f"backend class {cls.name!r} (name="
                    f"{backend_name!r}) is never registered in "
                    f"{KERNELS_INIT} — backend_choices() and every CLI "
                    f"surface will omit it"
                ),
                hint=f"call {REGISTER_BACKEND_CALL}({cls.name}()) in "
                     f"{KERNELS_INIT}, or {REGISTER_LAZY_CALL}"
                     f"({backend_name!r}, loader, fallback=...) for a "
                     f"probed tier",
            )

    def _check_pipeline_stages(self, ctx: LintContext):
        """Every concrete ``*Stage`` class must be register_stage()-ed.

        Mirrors the kernel-backend check, except stages register in the
        module that defines them: a ``class XStage(Stage)`` with a
        class-level ``name = "<literal>"`` other than the ABC's
        ``"stage"`` placeholder needs a ``register_stage(XStage())``
        call somewhere in the same file.
        """
        src = ctx.get(PIPELINE_MODULE)
        if src is None:
            return  # partial tree
        registered = set()
        for node in ast.walk(src.tree):
            if (isinstance(node, ast.Call)
                    and dotted_name(node.func).split(".")[-1]
                    == REGISTER_STAGE_CALL
                    and node.args
                    and isinstance(node.args[0], ast.Call)):
                registered.add(
                    dotted_name(node.args[0].func).split(".")[-1]
                )
        for node in ast.walk(src.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            if not any(dotted_name(b).split(".")[-1].endswith("Stage")
                       for b in node.bases):
                continue
            stage_name = None
            for stmt in node.body:
                if (isinstance(stmt, ast.Assign)
                        and len(stmt.targets) == 1
                        and isinstance(stmt.targets[0], ast.Name)
                        and stmt.targets[0].id == "name"
                        and isinstance(stmt.value, ast.Constant)
                        and isinstance(stmt.value.value, str)):
                    stage_name = stmt.value.value
            if stage_name is None or stage_name == "stage":
                continue  # the ABC's placeholder, or an abstract subclass
            if node.name in registered:
                continue
            yield Finding(
                rule=self.id,
                path=src.rel,
                line=node.lineno,
                message=(
                    f"stage class {node.name!r} (name={stage_name!r}) "
                    f"is never registered — get_stage({stage_name!r}) "
                    f"raises for every stage chain naming it"
                ),
                hint=f"call {REGISTER_STAGE_CALL}({node.name}()) at "
                     f"module level in {PIPELINE_MODULE}",
            )

    def _check_cli_choices(self, ctx: LintContext):
        cli = ctx.get("cli.py")
        if cli is None:
            return  # partial tree
        for node in ast.walk(cli.tree):
            if not isinstance(node, ast.Call):
                continue
            if dotted_name(node.func).split(".")[-1] != "add_argument":
                continue
            flags = [
                a.value for a in node.args
                if isinstance(a, ast.Constant) and isinstance(a.value, str)
            ]
            flag = next((f for f in flags if f in DYNAMIC_CHOICE_FLAGS),
                        None)
            if flag is None:
                continue
            registry = DYNAMIC_CHOICE_FLAGS[flag]
            choices = next(
                (kw.value for kw in node.keywords if kw.arg == "choices"),
                None,
            )
            if choices is None:
                yield Finding(
                    rule=self.id,
                    path=cli.rel,
                    line=node.lineno,
                    message=f"{flag} validates nothing — its value set "
                            f"mirrors {registry}",
                    hint=f"pass choices= derived from {registry} so a "
                         f"typo exits 2 instead of silently matching "
                         f"nothing",
                )
            elif isinstance(choices, (ast.Tuple, ast.List, ast.Constant)):
                yield Finding(
                    rule=self.id,
                    path=cli.rel,
                    line=node.lineno,
                    message=(
                        f"{flag} hard-codes its choices — the list "
                        f"will drift from {registry} the next time an "
                        f"entry is added"
                    ),
                    hint=f"derive choices from {registry} instead of a "
                         f"literal",
                )
