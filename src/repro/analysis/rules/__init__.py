"""The rule registry: every shipped pass, discoverable by id.

Adding a rule is one module implementing
:class:`~repro.analysis.core.Rule` plus one entry in :data:`ALL_RULES`.
``repro lint --rules a,b`` selects a subset; unknown ids fail with the
house did-you-mean hint (exit code 2 via the CLI's ConfigError path).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.core import Rule
from repro.analysis.rules.cache_keys import KeyCoverageRule
from repro.analysis.rules.determinism import DeterminismRule
from repro.analysis.rules.exception_hygiene import ExceptionHygieneRule
from repro.analysis.rules.registry_sync import RegistrySyncRule
from repro.analysis.rules.schema_drift import SchemaDriftRule
from repro.analysis.rules.store_writes import StoreWriteRule

from repro.errors import ConfigError

#: Every shipped rule, in report order. The schema-drift pass owns two
#: finding ids (``schema-drift`` and ``schema-golden-stale``); selecting
#: either id runs the pass.
ALL_RULES: Tuple[Rule, ...] = (
    DeterminismRule(),
    KeyCoverageRule(),
    SchemaDriftRule(),
    StoreWriteRule(),
    ExceptionHygieneRule(),
    RegistrySyncRule(),
)

#: Selection ids -> the rule instance that produces them.
_BY_ID: Dict[str, Rule] = {rule.id: rule for rule in ALL_RULES}
_BY_ID["schema-golden-stale"] = _BY_ID["schema-drift"]


def rule_ids() -> Tuple[str, ...]:
    """The selectable rule ids, in report order."""
    return tuple(rule.id for rule in ALL_RULES)


def resolve_rules(names: Optional[Sequence[str]] = None) -> List[Rule]:
    """Rule instances for ``names`` (all rules when ``None``).

    Accepts a comma-separated string or a sequence; unknown names raise
    :class:`ConfigError` with a near-miss suggestion, matching the
    sweep/objective selection UX.
    """
    if names is None:
        return list(ALL_RULES)
    if isinstance(names, str):
        names = [n.strip() for n in names.split(",") if n.strip()]
    import difflib

    selected: Dict[str, Rule] = {}
    for name in names:
        rule = _BY_ID.get(name)
        if rule is None:
            by_fold = {rid.casefold(): rid for rid in _BY_ID}
            close = by_fold.get(name.casefold()) or next(
                iter(difflib.get_close_matches(name, _BY_ID, n=1,
                                               cutoff=0.6)),
                None,
            )
            hint = f" (did you mean {close!r}?)" if close else ""
            raise ConfigError(
                f"unknown lint rule {name!r}{hint}; choose from "
                f"{', '.join(rule_ids())}"
            )
        selected[rule.id] = rule
    if not selected:
        raise ConfigError(
            f"--rules selected nothing; choose from {', '.join(rule_ids())}"
        )
    return list(selected.values())


__all__ = [
    "ALL_RULES",
    "DeterminismRule",
    "ExceptionHygieneRule",
    "KeyCoverageRule",
    "RegistrySyncRule",
    "SchemaDriftRule",
    "StoreWriteRule",
    "resolve_rules",
    "rule_ids",
]
