"""Rule ``store-write``: store bytes move only through the backend.

PR 6's crash-safety guarantees (atomic writes, sidecar-before-blob
ordering, stale-temp sweeps, content-verified HTTP PUTs) live entirely in
:mod:`repro.runtime.backends`. They hold only if nothing else touches
store files: one raw ``open(path, "w")`` or ``os.rename`` against a
store root reintroduces every torn-write bug the backend was built to
kill.

Statically proving a path targets a store root is undecidable, so the
rule enforces the structural version: inside the store-adjacent packages
(``runtime/``, ``sweep/``) no module except ``runtime/backends.py`` may
perform raw filesystem writes — ``open`` in a writing mode,
``os.fdopen`` on a writable descriptor, ``os.rename``/``os.replace``,
or ``shutil.move``/``shutil.copy*``. Code that needs to persist bytes
goes through a :class:`~repro.runtime.backends.StoreBackend`.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.core import (
    Finding,
    LintContext,
    Rule,
    import_origins,
    resolve_call_name,
)

#: Where raw writes are forbidden (the store-adjacent packages).
SCOPE = ("runtime/", "sweep/")

#: The one module allowed to move store bytes.
BACKEND_MODULE = "runtime/backends.py"

#: Calls that relocate or clobber files regardless of mode arguments.
MOVE_CALLS = frozenset({
    "os.rename",
    "os.replace",
    "shutil.move",
    "shutil.copy",
    "shutil.copy2",
    "shutil.copyfile",
})

#: Mode characters that make an ``open`` a write.
_WRITE_MODE_CHARS = set("wax+")


def _write_mode(node: ast.Call) -> bool:
    """True when an ``open``/``os.fdopen`` call opens for writing."""
    mode = None
    if len(node.args) >= 2:
        mode = node.args[1]
    for kw in node.keywords:
        if kw.arg == "mode":
            mode = kw.value
    if mode is None:
        return False  # bare open(path) reads
    if isinstance(mode, ast.Constant) and isinstance(mode.value, str):
        return bool(_WRITE_MODE_CHARS & set(mode.value))
    return True  # dynamic mode: assume the worst


class StoreWriteRule(Rule):
    id = "store-write"
    description = (
        "no raw file writes or renames in runtime/ or sweep/ outside "
        "runtime/backends.py (atomicity lives in the backend)"
    )

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        for src in ctx.iter_files(prefixes=SCOPE,
                                  exclude=(BACKEND_MODULE,)):
            origins = import_origins(src.tree)
            for node in ast.walk(src.tree):
                if not isinstance(node, ast.Call):
                    continue
                name = resolve_call_name(node, origins)
                if name in MOVE_CALLS:
                    yield Finding(
                        rule=self.id,
                        path=src.rel,
                        line=node.lineno,
                        message=f"raw {name}() in a store-adjacent "
                                f"module",
                        hint="route the write through a StoreBackend "
                             "(runtime/backends.py) so it inherits the "
                             "atomic-write and crash-safety guarantees",
                    )
                elif name in ("open", "io.open", "os.fdopen") and \
                        _write_mode(node):
                    yield Finding(
                        rule=self.id,
                        path=src.rel,
                        line=node.lineno,
                        message=f"raw {name}(..., 'w') in a "
                                f"store-adjacent module",
                        hint="persist bytes via StoreBackend.write / "
                             "put_if_absent — a raw write can leave a "
                             "torn entry under a valid name",
                    )
