"""Rule ``key-coverage``: cache keys must cover every config field.

A PR 3 regression served stale entries because the memo keys missed
``kernel_backend``/``scale``/``seed``. The structural fix: the key module
(``runtime/keys.py``) carries an explicit ``KEY_FIELD_COVERAGE``
declaration — for each key-relevant dataclass, which fields its key
functions bake into the digest and which are deliberately exempt
(presentation-only fields like a sweep's title). This rule diffs that
declaration against the *actual* dataclass fields, read from source.

Adding a field to ``GCoDConfig`` without touching ``runtime/keys.py`` is
therefore a lint error: the new field is in the dataclass but in neither
the covered nor the exempt set. The fix is to extend the coverage
declaration (and bump ``CODE_SCHEMA_VERSION`` — the ``schema-drift``
rule enforces that half) or to consciously mark the field exempt.
"""

from __future__ import annotations

from typing import Iterator

from repro.analysis.core import (
    Finding,
    LintContext,
    Rule,
    dataclass_fields,
    find_class,
    literal_dict,
)

#: Where the coverage declaration lives.
KEYS_MODULE = "runtime/keys.py"
DECLARATION = "KEY_FIELD_COVERAGE"

#: The key-relevant dataclasses and the modules that define them.
SUBJECTS = {
    "GCoDConfig": "algorithm/config.py",
    "SweepSpec": "sweep/spec.py",
    "SweepPoint": "sweep/spec.py",
}


class KeyCoverageRule(Rule):
    id = "key-coverage"
    description = (
        "every GCoDConfig/SweepSpec/SweepPoint field is declared covered "
        "(or exempt) by the key functions in runtime/keys.py"
    )

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        keys_src = ctx.get(KEYS_MODULE)
        if keys_src is None:
            return  # partial tree: structural rule needs the key module
        coverage = literal_dict(keys_src, DECLARATION)
        if not isinstance(coverage, dict):
            yield Finding(
                rule=self.id,
                path=KEYS_MODULE,
                line=1,
                message=(
                    f"{DECLARATION} is missing or not a pure literal "
                    f"dict — the key-coverage contract cannot be checked"
                ),
                hint=f"declare {DECLARATION} as a literal dict mapping "
                     f"class names to covered/exempt field tuples",
            )
            return
        for cls_name, module_rel in SUBJECTS.items():
            src = ctx.get(module_rel)
            if src is None:
                continue  # partial tree: skip subjects that are absent
            class_node = find_class(src, cls_name)
            if class_node is None:
                yield Finding(
                    rule=self.id,
                    path=module_rel,
                    line=1,
                    message=f"expected dataclass {cls_name} not found",
                    hint=f"update SUBJECTS in "
                         f"repro/analysis/rules/cache_keys.py if "
                         f"{cls_name} moved",
                )
                continue
            actual = [name for name, _, _ in dataclass_fields(class_node)]
            declared = coverage.get(cls_name)
            if not isinstance(declared, dict):
                yield Finding(
                    rule=self.id,
                    path=KEYS_MODULE,
                    line=1,
                    message=f"{DECLARATION} has no entry for {cls_name}",
                    hint=f"add {cls_name!r}: {{'covered': (...), "
                         f"'exempt': (...)}}",
                )
                continue
            covered = tuple(declared.get("covered", ()))
            exempt = tuple(declared.get("exempt", ()))
            overlap = sorted(set(covered) & set(exempt))
            if overlap:
                yield Finding(
                    rule=self.id,
                    path=KEYS_MODULE,
                    line=1,
                    message=(
                        f"{cls_name} fields declared both covered and "
                        f"exempt: {', '.join(overlap)}"
                    ),
                    hint="a field is either baked into the key or "
                         "consciously excluded — never both",
                )
            known = set(covered) | set(exempt)
            for name in actual:
                if name not in known:
                    line = class_node.lineno
                    for stmt in class_node.body:
                        if getattr(getattr(stmt, "target", None),
                                   "id", None) == name:
                            line = stmt.lineno
                            break
                    yield Finding(
                        rule=self.id,
                        path=module_rel,
                        line=line,
                        message=(
                            f"{cls_name}.{name} is not covered by the "
                            f"cache keys in {KEYS_MODULE} — a run "
                            f"varying only this field would share a "
                            f"digest with one that does not"
                        ),
                        hint=(
                            f"add {name!r} to "
                            f"{DECLARATION}[{cls_name!r}]['covered'] in "
                            f"{KEYS_MODULE} and bump "
                            f"CODE_SCHEMA_VERSION; or, if the field can "
                            f"never change what a cached artifact "
                            f"means, to ['exempt']"
                        ),
                    )
            for name in sorted(known - set(actual)):
                yield Finding(
                    rule=self.id,
                    path=KEYS_MODULE,
                    line=1,
                    message=(
                        f"{DECLARATION} names {cls_name}.{name}, which "
                        f"no longer exists on the dataclass"
                    ),
                    hint=f"remove the stale {name!r} entry (and bump "
                         f"CODE_SCHEMA_VERSION if the field was renamed "
                         f"rather than dropped)",
                )
