"""Rule ``determinism``: no wall clocks or entropy in reproducible paths.

The platform's headline guarantee is byte-identical warm reruns: a sweep
or report rendered from cached artifacts must equal the cold run bit for
bit, across processes and machines. That dies the moment key derivation
or output serialization consults a wall clock or an entropy source — so
inside the modules that build cache keys, aggregate sweep tables, or
serialize experiment results, calls like ``time.time()``,
``datetime.now()``, ``random.*``, and ``os.urandom()`` are banned
outright.

Legitimate uses keep an explicit allowlist: liveness metadata is *about*
wall time (the work ledger's ``claimed_at`` stamps, the store's
``created`` sidecar field, stale-temp age checks) and never flows into
artifact bytes. Anything new either goes through the allowlist here or a
per-line ``# repro: lint-ok[determinism]`` with a justification.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.core import (
    Finding,
    LintContext,
    Rule,
    import_origins,
    qualnames,
    resolve_call_name,
)

#: Exact dotted call names that are never deterministic.
BANNED_CALLS = frozenset({
    "time.time",
    "time.time_ns",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.date.today",
    "os.urandom",
    "uuid.uuid1",
    "uuid.uuid4",
})

#: Modules whose *every* public call is an entropy source.
BANNED_MODULES = frozenset({"random", "secrets"})

#: Where determinism is load-bearing: key derivation, store contents,
#: sweep aggregation/serialization, and experiment rendering. (Timing
#: via ``time.perf_counter`` stays legal everywhere: wall-clock
#: accounting is deliberately kept out of the byte-stable outputs.)
SCOPE = (
    "runtime/",
    "sweep/",
    "evaluation/context.py",
    "evaluation/report.py",
)

#: ``(path, qualified name)`` pairs where a banned call is legitimate —
#: liveness/bookkeeping metadata that never reaches artifact bytes.
ALLOWLIST = frozenset({
    # store sidecar metadata: `created` records when the entry landed.
    ("runtime/store.py", "ArtifactStore.put"),
    # crash-debris reclamation compares file ages against wall time.
    ("runtime/backends.py", "LocalDirBackend.sweep_stale_temps"),
    # ledger claims carry their own wall-clock TTL lease.
    ("sweep/ledger.py", "WorkLedger._payload"),
    ("sweep/ledger.py", "WorkLedger.try_claim"),
})


class DeterminismRule(Rule):
    id = "determinism"
    description = (
        "no wall clocks or entropy sources in key-derivation or "
        "output-serialization modules"
    )

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        for src in ctx.iter_files(prefixes=SCOPE):
            origins = import_origins(src.tree)
            quals = qualnames(src.tree)
            for node in ast.walk(src.tree):
                if not isinstance(node, ast.Call):
                    continue
                name = resolve_call_name(node, origins)
                if not name:
                    continue
                banned = name in BANNED_CALLS or \
                    name.split(".")[0] in BANNED_MODULES
                if not banned:
                    continue
                qual = quals.get(node, "<module>")
                if (src.rel, qual) in ALLOWLIST:
                    continue
                yield Finding(
                    rule=self.id,
                    path=src.rel,
                    line=node.lineno,
                    message=(
                        f"nondeterministic call {name}() in {qual} — "
                        f"this module feeds cache keys or byte-stable "
                        f"outputs"
                    ),
                    hint=(
                        "derive the value from inputs (seed, config, "
                        "stored artifacts); if this is liveness metadata "
                        "that never reaches artifact bytes, add the "
                        "(file, function) pair to the allowlist in "
                        "repro/analysis/rules/determinism.py or mark the "
                        "line `# repro: lint-ok[determinism]`"
                    ),
                )
