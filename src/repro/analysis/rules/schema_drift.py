"""Rules ``schema-drift`` / ``schema-golden-stale``: shapes vs version.

Every artifact in the store is a pickled dataclass; every cache key
embeds ``CODE_SCHEMA_VERSION``. The contract (runtime/keys.py): change
what a cached artifact *means* — its dataclass layout — and you bump the
version so stale entries orphan themselves. Nothing enforced that until
now: a field added to ``SweepPointResult`` without a bump silently
unpickles old entries into the new layout.

The enforcement is a golden fingerprint. ``schema_golden.json`` (checked
in next to this package) records a SHA-256 over the *source-level
shapes* — field names, annotations, defaults — of every dataclass that
gets serialized, together with the ``CODE_SCHEMA_VERSION`` current when
it was written. Two rules fall out:

* ``schema-drift`` — the shapes changed but the version did not: the
  exact bug class this guards. Fails until ``CODE_SCHEMA_VERSION`` is
  bumped.
* ``schema-golden-stale`` — the version was bumped but the golden file
  was not regenerated: run ``repro lint --write-golden`` so the *next*
  drift is measured against the new shapes (otherwise a second change
  could ride the same bump forever).
"""

from __future__ import annotations

import json
import os
from typing import Dict, Iterator, List, Optional, Tuple

from repro.analysis.core import (
    Finding,
    LintContext,
    Rule,
    dataclass_fields,
    find_class,
    literal_dict,
)
from repro.runtime.keys import stable_hash

#: Where the golden fingerprint lives, relative to the package root.
GOLDEN_REL = "analysis/schema_golden.json"

#: The serialized dataclasses: everything pickled into the store or
#: written as a machine-readable document, keyed by defining module.
SERIALIZED_SHAPES: Dict[str, Tuple[str, ...]] = {
    "algorithm/config.py": ("GCoDConfig",),
    "sweep/spec.py": ("SweepSpec", "SweepPoint"),
    "sweep/engine.py": ("SweepPointResult",),
    "sweep/manifest.py": ("SweepManifest",),
    "evaluation/context.py": ("ExperimentResult",),
    "runtime/store.py": ("StoreEntry",),
    "serve/schema.py": ("ServeRequest", "ServeResponse"),
    "hardware/pipeline.py": (
        "WorkloadNode",
        "WorkloadGraph",
        "WorkloadGraphReport",
    ),
}


def collect_shapes(ctx: LintContext) -> Optional[Dict[str, List]]:
    """The source-level field shapes of every serialized dataclass.

    Returns ``None`` on a partial tree (any declared module missing):
    a fingerprint over a subset would spuriously differ from the golden.
    """
    shapes: Dict[str, List] = {}
    for module_rel, class_names in SERIALIZED_SHAPES.items():
        src = ctx.get(module_rel)
        if src is None:
            return None
        for cls_name in class_names:
            node = find_class(src, cls_name)
            if node is None:
                return None
            shapes[cls_name] = [
                list(triple) for triple in dataclass_fields(node)
            ]
    return shapes


def fingerprint(shapes: Dict[str, List]) -> str:
    """Stable digest of the shape map (sorted-keys canonical JSON)."""
    return stable_hash(shapes)


def current_schema_version(ctx: LintContext) -> Optional[int]:
    keys_src = ctx.get("runtime/keys.py")
    if keys_src is None:
        return None
    version = literal_dict(keys_src, "CODE_SCHEMA_VERSION")
    return version if isinstance(version, int) else None


def golden_path(ctx: LintContext) -> str:
    return os.path.join(ctx.root, *GOLDEN_REL.split("/"))


def load_golden(ctx: LintContext) -> Optional[Dict]:
    try:
        with open(golden_path(ctx), "r", encoding="utf-8") as fh:
            data = json.load(fh)
    except (OSError, ValueError):
        return None
    return data if isinstance(data, dict) else None


def write_golden(ctx: LintContext) -> Optional[str]:
    """Regenerate the golden file from the current tree; returns its path.

    Called by ``repro lint --write-golden``. Returns ``None`` on a
    partial tree (nothing sensible to record).
    """
    shapes = collect_shapes(ctx)
    version = current_schema_version(ctx)
    if shapes is None or version is None:
        return None
    path = golden_path(ctx)
    payload = {
        "schema_version": version,
        "fingerprint": fingerprint(shapes),
        # the shapes ride along so a failing diff can say *what* moved
        "shapes": shapes,
    }
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path


def _shape_diff(old: Dict[str, List], new: Dict[str, List]) -> str:
    """A one-line summary of which classes/fields changed."""
    parts = []
    for cls in sorted(set(old) | set(new)):
        if cls not in old:
            parts.append(f"{cls} (new class)")
        elif cls not in new:
            parts.append(f"{cls} (removed)")
        elif old[cls] != new[cls]:
            old_names = {f[0] for f in old[cls]}
            new_names = {f[0] for f in new[cls]}
            added = sorted(new_names - old_names)
            removed = sorted(old_names - new_names)
            bits = []
            if added:
                bits.append(f"+{', +'.join(added)}")
            if removed:
                bits.append(f"-{', -'.join(removed)}")
            if not bits:
                bits.append("annotations/defaults changed")
            parts.append(f"{cls} ({'; '.join(bits)})")
    return "; ".join(parts) or "shapes differ"


class SchemaDriftRule(Rule):
    id = "schema-drift"
    description = (
        "serialized-dataclass shapes must not change without a "
        "CODE_SCHEMA_VERSION bump (golden fingerprint)"
    )

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        shapes = collect_shapes(ctx)
        version = current_schema_version(ctx)
        if shapes is None or version is None:
            return  # partial tree: structural rule needs all modules
        golden = load_golden(ctx)
        if golden is None:
            yield Finding(
                rule="schema-golden-stale",
                path=GOLDEN_REL,
                line=1,
                message="golden schema fingerprint file is missing or "
                        "unreadable",
                hint="run `repro lint --write-golden` and check the "
                     "regenerated file in",
            )
            return
        current = fingerprint(shapes)
        recorded = golden.get("fingerprint")
        recorded_version = golden.get("schema_version")
        if current == recorded:
            return
        diff = _shape_diff(golden.get("shapes", {}), shapes)
        if version == recorded_version:
            yield Finding(
                rule="schema-drift",
                path="runtime/keys.py",
                line=1,
                message=(
                    f"serialized dataclass shapes changed without a "
                    f"CODE_SCHEMA_VERSION bump (still {version}): {diff}"
                ),
                hint=(
                    "bump CODE_SCHEMA_VERSION in runtime/keys.py (old "
                    "cache entries then orphan themselves), then run "
                    "`repro lint --write-golden`"
                ),
            )
        else:
            yield Finding(
                rule="schema-golden-stale",
                path=GOLDEN_REL,
                line=1,
                message=(
                    f"CODE_SCHEMA_VERSION was bumped "
                    f"({recorded_version} -> {version}) but the golden "
                    f"fingerprint was not regenerated: {diff}"
                ),
                hint="run `repro lint --write-golden` and check the "
                     "regenerated file in, so the next drift is "
                     "measured against the new shapes",
            )
