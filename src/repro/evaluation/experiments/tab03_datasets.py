"""Tab. III: dataset statistics (paper-reported vs generated)."""

from __future__ import annotations

from typing import Optional, Sequence

from repro.evaluation.context import (
    ALL_DATASETS,
    EvalContext,
    ExperimentResult,
    default_context,
)
from repro.graphs import DATASET_SPECS, compute_stats
from repro.runtime.registry import register_experiment


def run(
    context: Optional[EvalContext] = None,
    datasets: Sequence[str] = ALL_DATASETS,
) -> ExperimentResult:
    """Reproduce Tab. III, showing the synthetic stand-ins' actual stats."""
    context = context or default_context()
    rows = []
    for dataset in datasets:
        spec = DATASET_SPECS[dataset]
        stats = compute_stats(context.graph(dataset))
        rows.append(
            (
                dataset,
                spec.nodes,
                spec.edges,
                spec.features,
                spec.classes,
                stats.nodes,
                stats.edges,
                stats.features,
                f"{stats.sparsity * 100:.3f}%",
                round(stats.degree_gini, 2),
            )
        )
    return ExperimentResult(
        name="Tab. III: dataset statistics (paper spec vs generated graph)",
        headers=("dataset", "paper N", "paper M", "paper F", "classes",
                 "gen N", "gen M", "gen F", "gen sparsity", "degree gini"),
        rows=rows,
    )

SPEC = register_experiment(
    name="tab03",
    title="Tab. III — dataset statistics",
    runner=run,
    order=10,
)
