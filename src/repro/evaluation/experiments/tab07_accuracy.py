"""Tab. VII: accuracy of GCoD vs SOTA compression baselines.

For each (model, dataset): vanilla training, Random Pruning, SGCN, QAT,
Degree-Quant, GCoD, and GCoD (8-bit). The paper's claim to reproduce: GCoD
matches or beats vanilla and all compression baselines while also providing
5-15% structural sparsity.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.compression import (
    train_degree_quant,
    train_qat,
    train_random_pruned,
    train_sgcn,
)
from repro.evaluation.context import (
    EvalContext,
    ExperimentResult,
    default_context,
)
from repro.nn.models import build_model
from repro.nn.training import train_model
from repro.runtime.registry import register_experiment


def _fmt(values) -> object:
    """mean (float) for one seed; 'mean±std' string for several (paper style)."""
    import numpy as np

    pcts = [v * 100 for v in values]
    if len(pcts) == 1:
        return round(pcts[0], 1)
    return f"{np.mean(pcts):.1f}±{np.std(pcts):.1f}"


def run(
    context: Optional[EvalContext] = None,
    models: Sequence[str] = ("gcn",),
    datasets: Sequence[str] = ("cora", "citeseer"),
    epochs: Optional[int] = None,
    n_seeds: int = 1,
) -> ExperimentResult:
    """Reproduce Tab. VII (restricted by default to keep runtimes sane).

    Pass ``models=("gcn", "gat", "gin", "sage")``, all five datasets, and
    ``n_seeds > 1`` (the paper reports mean ± std) for the full table.
    """
    context = context or default_context()
    epochs = epochs or (40 if context.profile == "fast" else 400)
    rows = []
    for arch in models:
        for dataset in datasets:
            graph = context.graph(dataset)
            gcod_result = context.gcod(dataset, arch)
            acc = {k: [] for k in
                   ("vanilla", "rp", "sgcn", "qat", "dq", "q8")}
            for seed in range(context.seed, context.seed + n_seeds):
                vanilla_model = build_model(arch, graph, rng=seed)
                acc["vanilla"].append(
                    train_model(vanilla_model, graph, epochs=epochs).test_accuracy
                )
                acc["rp"].append(
                    train_random_pruned(graph, arch, epochs=epochs,
                                        seed=seed)[0].test_accuracy
                )
                acc["sgcn"].append(
                    train_sgcn(graph, arch, pretrain_epochs=max(epochs // 2, 5),
                               retrain_epochs=epochs, seed=seed)[0].test_accuracy
                )
                acc["qat"].append(
                    train_qat(graph, arch, epochs=epochs, seed=seed)[0].test_accuracy
                )
                acc["dq"].append(
                    train_degree_quant(graph, arch, epochs=epochs,
                                       seed=seed)[0].test_accuracy
                )
                # GCoD (8-bit): QAT on the GCoD-trained graph.
                acc["q8"].append(
                    train_qat(gcod_result.final_graph, arch, epochs=epochs,
                              seed=seed)[0].test_accuracy
                )
            rows.append(
                (
                    arch,
                    dataset,
                    _fmt(acc["vanilla"]),
                    _fmt(acc["rp"]),
                    _fmt(acc["sgcn"]),
                    _fmt(acc["qat"]),
                    _fmt(acc["dq"]),
                    _fmt([gcod_result.accuracy_final]),
                    _fmt(acc["q8"]),
                )
            )
    return ExperimentResult(
        name="Tab. VII: accuracy (%) vs compression baselines",
        headers=("model", "dataset", "vanilla", "rp", "sgcn", "qat",
                 "degree-quant", "gcod", "gcod-8bit"),
        rows=rows,
    )

SPEC = register_experiment(
    name="tab07",
    title="Tab. VII — accuracy vs compression",
    runner=run,
    gcod_deps=tuple((ds, "gcn") for ds in ("cora", "citeseer")),
    order=100,
)
