"""Tab. V (+ Tabs. I-II): platform configurations and design characteristics."""

from __future__ import annotations

from typing import Optional

from repro.evaluation.context import ExperimentResult
from repro.hardware.accelerators import system_configurations
from repro.hardware.accelerators.gcod import branch_characteristics
from repro.hardware.dataflow import pipeline_characteristics
from repro.utils.tables import format_table
from repro.runtime.registry import register_experiment


def run(context=None) -> ExperimentResult:
    """Reproduce Tab. V, with Tabs. I and II appended as extra text."""
    configs = system_configurations()
    rows = [
        (c["platform"], c["compute"], c["onchip"], c["offchip"], c["power_w"])
        for c in configs
    ]
    tab1 = format_table(
        ("branch", "multi chunks", "onchip storage", "offchip access",
         "arch reuse", "data reuse", "workloads"),
        [tuple(r.values()) for r in branch_characteristics()],
        title="Tab. I: branch characteristics",
    )
    tab2 = format_table(
        ("pipeline", "comb spmm", "agg spmm", "onchip", "offchip",
         "data reuse", "fit for"),
        [tuple(r.values()) for r in pipeline_characteristics()],
        title="Tab. II: inter-phase pipelines",
    )
    return ExperimentResult(
        name="Tab. V: system configurations",
        headers=("platform", "compute", "on-chip", "off-chip", "power (W)"),
        rows=rows,
        extra_text=tab1 + "\n\n" + tab2,
    )

SPEC = register_experiment(
    name="tab05",
    title="Tab. V (+ I, II) — system configurations",
    runner=run,
    order=30,
)
