"""Tab. V (+ Tabs. I-II): platform configurations and design characteristics.

The static tables describe each platform at its shipped scale. The *scale
axis* of the GCoD design — how the speedup moves as the PE array shrinks
or grows, in both precisions — is declared here as a thin
:class:`~repro.sweep.spec.SweepSpec` over the shared sweep engine
(``repro sweep tab05-scale``) instead of another hand-rolled loop.
"""

from __future__ import annotations

from typing import Optional

from repro.evaluation.context import ExperimentResult
from repro.hardware.accelerators import system_configurations
from repro.hardware.accelerators.gcod import branch_characteristics
from repro.hardware.dataflow import pipeline_characteristics
from repro.utils.tables import format_table
from repro.runtime.registry import register_experiment
from repro.sweep.registry import register_sweep
from repro.sweep.spec import SweepSpec


def run(context=None) -> ExperimentResult:
    """Reproduce Tab. V, with Tabs. I and II appended as extra text."""
    configs = system_configurations()
    rows = [
        (c["platform"], c["compute"], c["onchip"], c["offchip"], c["power_w"])
        for c in configs
    ]
    tab1 = format_table(
        ("branch", "multi chunks", "onchip storage", "offchip access",
         "arch reuse", "data reuse", "workloads"),
        [tuple(r.values()) for r in branch_characteristics()],
        title="Tab. I: branch characteristics",
    )
    tab2 = format_table(
        ("pipeline", "comb spmm", "agg spmm", "onchip", "offchip",
         "data reuse", "fit for"),
        [tuple(r.values()) for r in pipeline_characteristics()],
        title="Tab. II: inter-phase pipelines",
    )
    scale_note = (
        "Scale axis: `repro sweep tab05-scale` sweeps the GCoD PE array "
        "over {0.5x, 1x, 2x} in both precisions (32/8 bit) and reports "
        "the speedup/accuracy frontier; add `--objectives "
        "speedup,energy,dram` for the energy/bandwidth trade-off surface."
    )
    return ExperimentResult(
        name="Tab. V: system configurations",
        headers=("platform", "compute", "on-chip", "off-chip", "power (W)"),
        rows=rows,
        extra_text=tab1 + "\n\n" + tab2 + "\n\n" + scale_note,
    )

SPEC = register_experiment(
    name="tab05",
    title="Tab. V (+ I, II) — system configurations",
    runner=run,
    order=30,
)

#: Tab. V's hardware-scale axis as data: one trained pipeline (the
#: platform axes don't change the training config, so the engine dedups
#: all six points onto a single GCoD run), six analytic design points.
SCALE_SWEEP = register_sweep(
    SweepSpec(
        name="tab05-scale",
        title="Tab. V scale axis: GCoD PE array x precision",
        axes={
            "dataset": ("cora",),
            "bits": (32, 8),
            "hw_scale": (0.5, 1.0, 2.0),
        },
        description=(
            "How the GCoD speedup over AWB-GCN moves as the PE array "
            "scales from half to double Tab. V's 4096 (32-bit) / 10240 "
            "(8-bit) PEs."
        ),
    )
)
