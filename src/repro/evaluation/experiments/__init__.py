"""One module per paper table/figure; each exposes ``run(context) -> result``."""

from repro.evaluation.experiments import (
    ablation_design,
    ablation_cs,
    fig04_visualization,
    fig09_citation_speedups,
    fig10_large_speedups,
    fig11_memory,
    fig12_energy,
    multi_tenant,
    reordering_compare,
    tab03_datasets,
    tab04_models,
    tab05_systems,
    tab06_breakdown,
    tab07_accuracy,
    training_cost,
)

__all__ = [
    "ablation_cs",
    "ablation_design",
    "fig04_visualization",
    "fig09_citation_speedups",
    "fig10_large_speedups",
    "fig11_memory",
    "fig12_energy",
    "multi_tenant",
    "reordering_compare",
    "tab03_datasets",
    "tab04_models",
    "tab05_systems",
    "tab06_breakdown",
    "tab07_accuracy",
    "training_cost",
]
