"""Fig. 4: adjacency matrices before/after GCoD + accuracy and latency delta.

The paper's figure shows three citation datasets' adjacency matrices before
and after the split-and-conquer training, annotated with accuracy and the
latency reduction over HyGCN measured on the GCoD accelerator. We render the
matrices as ASCII density plots and recompute both annotations.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.evaluation.context import (
    CITATION_DATASETS,
    EvalContext,
    ExperimentResult,
    default_context,
)
from repro.utils.ascii_plot import density_plot
from repro.runtime.registry import register_experiment


def run(
    context: Optional[EvalContext] = None,
    datasets: Sequence[str] = CITATION_DATASETS,
    plot_size: int = 32,
) -> ExperimentResult:
    """Reproduce Fig. 4 for ``datasets``."""
    context = context or default_context()
    rows = []
    blocks = []
    plats = context.platforms()
    for dataset in datasets:
        result = context.gcod(dataset, "gcn")
        hygcn = plats["hygcn"].run(context.baseline_workload(dataset, "gcn"))
        gcod = plats["gcod"].run(context.gcod_workload(dataset, "gcn"))
        latency_reduction = hygcn.latency_s / gcod.latency_s
        rows.append(
            (
                dataset,
                f"{result.accuracy_pretrain * 100:.1f}%",
                f"{result.accuracy_final * 100:.1f}%",
                f"{latency_reduction:.1f}x",
                f"{result.layout.dense_fraction(result.final_graph.adj) * 100:.0f}%",
            )
        )
        before = density_plot(result.partitioned_graph.adj, size=plot_size)
        after = density_plot(
            result.final_graph.adj,
            size=plot_size,
            class_bounds=result.layout.class_bounds(),
            group_bounds=result.layout.group_bounds(),
        )
        blocks.append(
            f"== {dataset}: before GCoD ==\n{before}\n"
            f"== {dataset}: after GCoD ==\n{after}"
        )
    return ExperimentResult(
        name="Fig. 4: adjacency polarization (before -> after GCoD)",
        headers=("dataset", "acc before", "acc after", "latency vs HyGCN",
                 "dense fraction"),
        rows=rows,
        extra_text="\n\n".join(blocks),
    )

SPEC = register_experiment(
    name="fig04",
    title="Fig. 4 — adjacency polarization",
    runner=run,
    gcod_deps=tuple((ds, "gcn") for ds in CITATION_DATASETS),
    order=40,
)
