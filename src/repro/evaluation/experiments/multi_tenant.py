"""Multi-tenant serving: two GNN models time-slicing one GCoD accelerator.

Not a paper table — a ROADMAP extension built on the staged workload-DAG
pipeline (:mod:`repro.hardware.pipeline`): a GCN and a GAT, both
GCoD-trained on Cora, share the accelerator's PE array concurrently
(each node gets half the PEs), compared against running the same two
models back to back on the full array. Consolidation wins when the
shared latency (max over concurrent nodes) beats the serial sum —
which it does whenever the models' phase mixes don't contend for the
same resource at the same time.

The matching sweep (``repro sweep multi-tenant``) moves the same DAG
across precision and array scale through the shared sweep engine.
"""

from __future__ import annotations

from repro.evaluation.context import ExperimentResult
from repro.runtime.registry import register_experiment
from repro.sweep.registry import register_sweep
from repro.sweep.spec import SweepSpec

#: The DAG under test: both models concurrent, equal PE shares.
SHARED = "cora/gcn+cora/gat"


def run(context) -> ExperimentResult:
    from repro.hardware.pipeline import evaluate_workload, parse_workload

    shared = evaluate_workload(parse_workload(SHARED), context)
    # The serial reference: each model alone is a single-node DAG, so it
    # runs on the full array — byte-identical to the legacy single-model
    # path — and the latencies sum.
    solos = [
        evaluate_workload(parse_workload(token), context)
        for token in SHARED.split("+")
    ]

    rows = []
    node_pes = dict(shared.node_pes)
    for name, report in shared.node_reports:
        rows.append((
            f"shared: {name}",
            node_pes[name],
            round(report.latency_s * 1e6, 2),
            round(report.energy.total_j * 1e3, 4),
        ))
    merged = shared.merged()
    rows.append((
        "shared: merged",
        sum(node_pes.values()),
        round(merged.latency_s * 1e6, 2),
        round(merged.energy.total_j * 1e3, 4),
    ))
    serial_latency = 0.0
    serial_energy = 0.0
    for solo in solos:
        solo_merged = solo.merged()
        solo_name = solo.node_reports[0][0]
        serial_latency += solo_merged.latency_s
        serial_energy += solo_merged.energy.total_j
        rows.append((
            f"serial: {solo_name}",
            dict(solo.node_pes)[solo_name],
            round(solo_merged.latency_s * 1e6, 2),
            round(solo_merged.energy.total_j * 1e3, 4),
        ))
    rows.append((
        "serial: total",
        "",
        round(serial_latency * 1e6, 2),
        round(serial_energy * 1e3, 4),
    ))
    ratio = serial_latency / max(merged.latency_s, 1e-30)
    return ExperimentResult(
        name="Multi-tenant: two models on one GCoD accelerator",
        headers=("configuration", "PEs", "latency (us)", "energy (mJ)"),
        rows=rows,
        extra_text=(
            f"Consolidation ratio (serial / shared latency): {ratio:.2f}x. "
            f"The shared run time-slices the PE array "
            f"(`PEArray.allocate`); traffic and energy sum across nodes, "
            f"latency is the slowest tenant's. Same DAG via the CLI: "
            f"`repro workload -w \"{SHARED}\"`."
        ),
    )


SPEC = register_experiment(
    name="multi-tenant",
    title="Multi-tenant — two GNNs sharing one GCoD accelerator",
    runner=run,
    gcod_deps=(("cora", "gcn"), ("cora", "gat")),
    order=95,
)

#: The same DAG as a grid: precision x array scale, one trained pipeline
#: pair (platform axes never change the training config).
MULTI_TENANT_SWEEP = register_sweep(
    SweepSpec(
        name="multi-tenant",
        title="Multi-tenant DAG: precision x PE-array scale",
        axes={
            "workload": (SHARED,),
            "bits": (32, 8),
            "hw_scale": (1.0, 2.0),
        },
        description=(
            "How the shared-accelerator latency of a concurrent "
            "GCN+GAT workload moves with precision and PE-array scale."
        ),
    )
)
