"""Fig. 9: speedups over PyG-CPU on the citation graphs, 4 models x 9+ platforms."""

from __future__ import annotations

from typing import Optional, Sequence

from repro.evaluation.context import (
    CITATION_DATASETS,
    EvalContext,
    ExperimentResult,
    default_context,
)
from repro.utils.ascii_plot import bar_chart
from repro.runtime.registry import register_experiment

PLATFORM_ORDER = (
    "pyg-gpu",
    "dgl-cpu",
    "dgl-gpu",
    "hygcn",
    "awb-gcn",
    "deepburning-zc706",
    "deepburning-kcu1500",
    "deepburning-alveo-u50",
    "gcod",
    "gcod-8bit",
)

MODELS = ("gcn", "gin", "gat", "sage")


def run(
    context: Optional[EvalContext] = None,
    datasets: Sequence[str] = CITATION_DATASETS,
    models: Sequence[str] = MODELS,
    platforms: Sequence[str] = PLATFORM_ORDER,
) -> ExperimentResult:
    """Reproduce Fig. 9 (speedups normalized to PyG-CPU)."""
    context = context or default_context()
    rows = []
    charts = []
    for arch in models:
        for dataset in datasets:
            speedups = context.speedups_over_cpu(dataset, arch, platforms)
            rows.append(
                (arch, dataset)
                + tuple(round(speedups[p], 1) for p in platforms)
            )
            charts.append(
                bar_chart(
                    list(platforms),
                    [speedups[p] for p in platforms],
                    title=f"[{arch} / {dataset}] speedup over PyG-CPU (log scale)",
                )
            )
    return ExperimentResult(
        name="Fig. 9: inference speedups over PyG-CPU (citation graphs)",
        headers=("model", "dataset") + tuple(platforms),
        rows=rows,
        extra_text="\n\n".join(charts),
    )

SPEC = register_experiment(
    name="fig09",
    title="Fig. 9 — citation-graph speedups",
    runner=run,
    gcod_deps=tuple(
        (ds, arch) for arch in MODELS for ds in CITATION_DATASETS
    ),
    order=50,
)
