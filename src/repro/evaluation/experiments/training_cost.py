"""Sec. IV-B2: training-cost accounting with early-bird tickets.

The paper claims GCoD training costs 0.7x-1.1x standard GCN training, with
the three steps at roughly 5%/50%/45% of the total. The accounting depends
on the *proportions* of the budgets (pretraining : ADMM : retraining =
400 : 80 : 200+200 in the paper), so this experiment runs its own pipeline
with paper-proportional budgets scaled down 2.5x to keep the runtime small;
the cost *ratio* is scale-invariant.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional, Sequence

from repro.algorithm import run_gcod
from repro.evaluation.context import (
    EvalContext,
    ExperimentResult,
    default_context,
)
from repro.runtime.registry import register_experiment

#: paper budgets scaled by 1/2.5: 400 -> 160 pretrain, 200 -> 80 retrain.
_SCALED = dict(
    pretrain_epochs=160,
    retrain_epochs=80,
    admm_iterations=4,
    admm_inner_steps=8,
)


def run(
    context: Optional[EvalContext] = None,
    datasets: Sequence[str] = ("cora", "citeseer"),
    arch: str = "gcn",
) -> ExperimentResult:
    """Reproduce the training-cost accounting with paper-like proportions."""
    context = context or default_context()
    rows = []
    for dataset in datasets:
        config = replace(context.gcod_config(), **_SCALED)
        result = run_gcod(context.graph(dataset), arch, config)
        cost = result.cost_breakdown
        rows.append(
            (
                dataset,
                result.pretrain_epochs_run,
                result.early_bird_epoch if result.early_bird_epoch is not None
                else "-",
                round(cost["relative_cost"], 2),
                f"{cost['step1_fraction'] * 100:.0f}%",
                f"{cost['step2_fraction'] * 100:.0f}%",
                f"{cost['step3_fraction'] * 100:.0f}%",
            )
        )
    return ExperimentResult(
        name="Training cost vs standard GCN training (early-bird enabled)",
        headers=("dataset", "pretrain epochs", "EB epoch", "relative cost",
                 "step1 %", "step2 %", "step3 %"),
        rows=rows,
        extra_text="paper: relative cost 0.7x-1.1x; step split ~5%/50%/45%.",
    )

# Trains its own paper-proportioned pipelines (not ``context.gcod`` runs),
# so it declares no shareable GCoD deps; its rendered result still caches.
SPEC = register_experiment(
    name="training-cost",
    title="Training cost (Sec. IV-B2)",
    runner=run,
    order=110,
)
