"""Tab. IV: model specifications."""

from __future__ import annotations

from typing import Optional

from repro.evaluation.context import ExperimentResult
from repro.runtime.registry import register_experiment


def run(context=None) -> ExperimentResult:
    """Reproduce Tab. IV (static: the evaluated model configurations)."""
    rows = [
        ("GCN", 2, "16/64", "Mean", "16 for citation; 64 for NELL/Reddit"),
        ("GIN", 3, "16/64", "Add", "2-layer MLP + batch norm per layer"),
        ("GraphSAGE", 2, "16/64", "Mean", "samples 25 / 10 neighbours"),
        ("GAT", 2, "8", "Attention", "8 heads"),
        ("ResGCN", 28, "128", "Max", "residual blocks"),
    ]
    return ExperimentResult(
        name="Tab. IV: GCN model specifications",
        headers=("model", "layers", "hidden dim", "aggregation", "details"),
        rows=rows,
    )

SPEC = register_experiment(
    name="tab04",
    title="Tab. IV — model specifications",
    runner=run,
    order=20,
)
