"""Reordering comparison: GCoD's layout vs prior graph-reordering baselines.

Sec. II positions GCoD against graph reordering works (Rabbit order [1],
RCM [4], degree binning [17]): those improve locality *after* training,
while GCoD co-trains the reordering with pruning/polarization and produces
*balanced, hardware-mapped* blocks. This experiment quantifies the claim:
for each ordering we report the polarization loss (lower = mass nearer the
diagonal) and the dense diagonal-block fraction under the same block
geometry, plus what the GCoD accelerator would make of each.
"""

from __future__ import annotations

from typing import Optional

from repro.algorithm.admm import polarization_loss
from repro.evaluation.context import (
    EvalContext,
    ExperimentResult,
    default_context,
)
from repro.graphs.reorder import REORDERING_BASELINES, permute_graph
from repro.runtime.registry import register_experiment


def run(
    context: Optional[EvalContext] = None,
    dataset: str = "cora",
) -> ExperimentResult:
    """Compare node orderings on ``dataset``."""
    context = context or default_context()
    graph = context.graph(dataset)
    gcod = context.gcod(dataset, "gcn")

    rows = []
    # Prior reordering baselines operate on the *trained but unpruned*
    # graph — reordering alone, which is exactly their scope.
    rows.append(
        (
            "original order",
            round(polarization_loss(graph.adj), 4),
            "-",
        )
    )
    for name, fn in REORDERING_BASELINES.items():
        perm = fn(graph)
        reordered = permute_graph(graph, perm)
        rows.append(
            (
                name,
                round(polarization_loss(reordered.adj), 4),
                "-",
            )
        )
    # GCoD: reordered by (group, class, subgraph) AND pruned/polarized.
    rows.append(
        (
            "gcod step 1 (reorder only)",
            round(polarization_loss(gcod.partitioned_graph.adj), 4),
            f"{gcod.layout.dense_fraction(gcod.partitioned_graph.adj) * 100:.0f}%",
        )
    )
    rows.append(
        (
            "gcod steps 1-3 (full)",
            round(polarization_loss(gcod.final_graph.adj), 4),
            f"{gcod.layout.dense_fraction(gcod.final_graph.adj) * 100:.0f}%",
        )
    )
    return ExperimentResult(
        name=f"Reordering comparison on {dataset} "
             "(polarization loss: lower = more diagonal)",
        headers=("ordering", "polarization loss", "dense block fraction"),
        rows=rows,
        extra_text=(
            "Prior reordering improves locality but provides no balanced "
            "block structure for chunks; GCoD's trained layout does both."
        ),
    )

SPEC = register_experiment(
    name="reordering",
    title="Reordering baselines (Sec. II)",
    runner=run,
    gcod_deps=(("cora", "gcn"),),
    order=140,
)
