"""Design-choice ablations: what each GCoD mechanism contributes.

DESIGN.md calls out four load-bearing design choices; this experiment
removes them one at a time and measures the damage:

* **query-based weight forwarding** (Sec. V-B): disabling it sends the
  sparser branch's weight reads off-chip (traffic/bandwidth damage);
* **the two-pronged architecture** itself: a single undifferentiated branch
  loses the chunk balance and the forwarding path (latency damage on
  aggregation-bound graphs);
* **polarization** (the ``L_Pola`` term of Eq. 4): without it the tuner is
  plain SGCN and fewer non-zeros land inside the diagonal blocks;
* **structural sparsification** (Step 3): without it no columns empty out.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional

from repro.algorithm import run_gcod
from repro.evaluation.context import (
    EvalContext,
    ExperimentResult,
    default_context,
)
from repro.hardware import extract_workload
from repro.hardware.accelerators import GCoDAccelerator
from repro.runtime.registry import register_experiment


def run(
    context: Optional[EvalContext] = None,
    dataset: str = "cora",
    agg_heavy_dataset: str = "reddit",
) -> ExperimentResult:
    """Ablate each design choice on ``dataset`` (+ one aggregation-bound one)."""
    context = context or default_context()
    rows = []

    for ds in (dataset, agg_heavy_dataset):
        full_result = context.gcod(ds, "gcn")
        wl_final = context.gcod_workload(ds, "gcn", stage="final")
        wl_tuned = context.gcod_workload(ds, "gcn", stage="tuned")
        full = GCoDAccelerator().run(wl_final)

        def row(variant, report, dense_fraction):
            rows.append(
                (
                    ds,
                    variant,
                    f"{report.latency_s * 1e6:.2f}us",
                    round(report.latency_s / full.latency_s, 2),
                    round(report.offchip_bytes / max(full.offchip_bytes, 1e-9), 2),
                    f"{dense_fraction * 100:.0f}%",
                )
            )

        final_frac = full_result.layout.dense_fraction(full_result.final_graph.adj)
        row("full gcod", full, final_frac)
        row(
            "w/o weight forwarding",
            GCoDAccelerator(weight_forward_rate=0.0).run(wl_final),
            final_frac,
        )
        row(
            "single branch (no chunks)",
            GCoDAccelerator(two_pronged=False).run(wl_final),
            final_frac,
        )
        row(
            "w/o structural sparsif.",
            GCoDAccelerator().run(wl_tuned),
            full_result.layout.dense_fraction(full_result.tuned_graph.adj),
        )
        # Polarization off = SGCN-style tuning: rerun the pipeline once.
        nopola_cfg = replace(context.gcod_config(), pola_weight=0.0)
        nopola = run_gcod(context.graph(ds), "gcn", nopola_cfg)
        wl_nopola = extract_workload(
            nopola.final_graph, nopola.layout, "gcn", paper_scale=True
        )
        row(
            "w/o polarization (SGCN)",
            GCoDAccelerator().run(wl_nopola),
            nopola.layout.dense_fraction(nopola.final_graph.adj),
        )

    return ExperimentResult(
        name="Design ablation: remove one GCoD mechanism at a time",
        headers=("dataset", "variant", "latency", "latency vs full",
                 "offchip vs full", "dense fraction"),
        rows=rows,
    )

# The ablations themselves retrain with a mechanism removed (private,
# unshareable runs), but the full-GCoD baseline rows come from
# ``context.gcod`` on the two default datasets — those are shareable.
SPEC = register_experiment(
    name="ablation-design",
    title="Ablation — design choices",
    runner=run,
    gcod_deps=(("cora", "gcn"), ("reddit", "gcn")),
    order=130,
)
