"""Tab. VI: speedup breakdown — accelerator alone, + sparsification, + quant.

Rows (speedups over PyG-CPU, GCN model):
* AWB-GCN (baseline accelerator on the untreated graph);
* GCoD accelerator on the *partitioned but unpruned* graph (architecture
  contribution only);
* GCoD accelerator with sparsification (the full algorithm's graph);
* GCoD with sparsification and 8-bit quantization.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.evaluation.context import (
    EvalContext,
    ExperimentResult,
    default_context,
)
from repro.runtime.registry import register_experiment

DATASETS = ("cora", "citeseer", "pubmed", "nell", "reddit")


def run(
    context: Optional[EvalContext] = None,
    datasets: Sequence[str] = DATASETS,
) -> ExperimentResult:
    """Reproduce Tab. VI."""
    context = context or default_context()
    plats = context.platforms()
    methods = ("awb-gcn", "gcod accel.", "gcod accel. w/ sp",
               "gcod accel. w/ sp & quant")
    table = {m: [] for m in methods}
    for dataset in datasets:
        wl_base = context.baseline_workload(dataset, "gcn")
        cpu = plats["pyg-cpu"].run(wl_base).latency_s
        awb = plats["awb-gcn"].run(wl_base).latency_s
        accel_only = plats["gcod"].run(
            context.gcod_workload(dataset, "gcn", stage="partitioned")
        ).latency_s
        with_sp = plats["gcod"].run(
            context.gcod_workload(dataset, "gcn", stage="final")
        ).latency_s
        with_quant = plats["gcod-8bit"].run(
            context.gcod_workload(dataset, "gcn", stage="final")
        ).latency_s
        table["awb-gcn"].append(cpu / awb)
        table["gcod accel."].append(cpu / accel_only)
        table["gcod accel. w/ sp"].append(cpu / with_sp)
        table["gcod accel. w/ sp & quant"].append(cpu / with_quant)

    rows = [
        (method,) + tuple(round(v, 0) for v in values)
        for method, values in table.items()
    ]
    accel_vs_awb = np.mean(
        [a / b for a, b in zip(table["gcod accel."], table["awb-gcn"])]
    )
    sp_gain = np.mean(
        [a / b for a, b in zip(table["gcod accel. w/ sp"], table["gcod accel."])]
    )
    quant_gain = np.mean(
        [
            a / b
            for a, b in zip(
                table["gcod accel. w/ sp & quant"], table["gcod accel. w/ sp"]
            )
        ]
    )
    summary = (
        f"two-pronged accelerator alone: {accel_vs_awb:.2f}x over AWB-GCN "
        f"(paper: 2.29x); sparsification adds {sp_gain:.2f}x (paper: 1.09x); "
        f"8-bit adds {quant_gain:.2f}x (paper: 2.02x)."
    )
    return ExperimentResult(
        name="Tab. VI: speedup breakdown over PyG-CPU (GCN)",
        headers=("method",) + tuple(datasets),
        rows=rows,
        extra_text=summary,
    )

SPEC = register_experiment(
    name="tab06",
    title="Tab. VI — speedup breakdown",
    runner=run,
    gcod_deps=tuple((ds, "gcn") for ds in DATASETS),
    order=90,
)
