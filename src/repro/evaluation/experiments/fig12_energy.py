"""Fig. 12: energy breakdown of the GCoD accelerator.

Per (model, dataset): the share of energy spent on computation, on-chip
reads/writes, and off-chip reads/writes, split by phase (combination vs
aggregation). The paper's observations to reproduce: combination dominates
(GCoD fixed the aggregation bottleneck), and HBM energy stays reasonable as
graphs grow.

The same (model, dataset) grid is registered as sweep ``fig12-energy``:
the sweep engine records every point's per-phase
:class:`~repro.hardware.energy.EnergyBreakdown` and DRAM traffic, and
:func:`rows_from_sweep` renders Fig. 12's exact columns from those stored
metrics — parity-tested against this module's direct loop, so the sweep
path can never drift from the paper table.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.evaluation.context import (
    EvalContext,
    ExperimentResult,
    default_context,
)
from repro.hardware.energy import EnergyBreakdown
from repro.runtime.registry import register_experiment
from repro.sweep.registry import register_sweep
from repro.sweep.spec import SweepSpec

DATASETS = ("cora", "citeseer", "pubmed", "nell", "reddit")
MODELS = ("gcn", "sage", "gin", "gat")


def _energy_row(
    arch: str,
    dataset: str,
    comb: EnergyBreakdown,
    agg: EnergyBreakdown,
    total_j: float,
) -> tuple:
    """One Fig. 12 row: phase-component percentages plus the total."""
    total = max(total_j, 1e-30)
    return (arch, dataset) + tuple(
        round(joules / total * 100, 1)
        for phase in (comb, agg)
        for joules in phase.components()
    ) + (f"{total * 1e6:.1f}uJ",)


HEADERS = ("model", "dataset", "comb compute", "comb onchip",
           "comb offchip", "agg compute", "agg onchip", "agg offchip",
           "total")


def run(
    context: Optional[EvalContext] = None,
    models: Sequence[str] = MODELS,
    datasets: Sequence[str] = DATASETS,
) -> ExperimentResult:
    """Reproduce Fig. 12 (energy fractions per model/dataset)."""
    context = context or default_context()
    gcod = context.platforms()["gcod"]
    rows = []
    for arch in models:
        for dataset in datasets:
            report = gcod.run(context.gcod_workload(dataset, arch))
            rows.append(
                _energy_row(
                    arch,
                    dataset,
                    report.combination.energy,
                    report.aggregation.energy,
                    report.energy.total_j,
                )
            )
    return ExperimentResult(
        name="Fig. 12: GCoD energy breakdown (% of total)",
        headers=HEADERS,
        rows=rows,
    )


def energy_sweep_spec(
    models: Sequence[str] = MODELS,
    datasets: Sequence[str] = DATASETS,
) -> SweepSpec:
    """The Fig. 12 grid as a sweep: arch outer, dataset inner (Fig. order)."""
    return SweepSpec(
        name="fig12-energy",
        title="Fig. 12 grid: per-phase energy x DRAM traffic",
        axes={"arch": tuple(models), "dataset": tuple(datasets)},
        description=(
            "Fig. 12's (model, dataset) grid through the sweep engine: "
            "every point records the per-phase energy breakdown and DRAM "
            "traffic of the default GCoD variant."
        ),
    )


def rows_from_sweep(results) -> list:
    """Fig. 12's rows rebuilt from sweep-engine point metrics.

    ``results`` is ``SweepRunReport.results`` from a sweep over
    :func:`energy_sweep_spec` — the stored per-phase breakdowns replay the
    exact table :func:`run` computes directly.
    """
    return [
        _energy_row(
            point.arch,
            point.dataset,
            point.comb_energy,
            point.agg_energy,
            point.gcod_energy_j,
        )
        for point in results
    ]


SPEC = register_experiment(
    name="fig12",
    title="Fig. 12 — energy breakdown",
    runner=run,
    gcod_deps=tuple((ds, arch) for arch in MODELS for ds in DATASETS),
    order=80,
)

#: Fig. 12's grid, runnable standalone: ``repro sweep fig12-energy``
#: (try ``--objectives speedup,energy,dram`` for its 3-D frontier).
ENERGY_SWEEP = register_sweep(energy_sweep_spec())
