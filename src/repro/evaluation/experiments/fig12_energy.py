"""Fig. 12: energy breakdown of the GCoD accelerator.

Per (model, dataset): the share of energy spent on computation, on-chip
reads/writes, and off-chip reads/writes, split by phase (combination vs
aggregation). The paper's observations to reproduce: combination dominates
(GCoD fixed the aggregation bottleneck), and HBM energy stays reasonable as
graphs grow.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.evaluation.context import (
    EvalContext,
    ExperimentResult,
    default_context,
)
from repro.runtime.registry import register_experiment

DATASETS = ("cora", "citeseer", "pubmed", "nell", "reddit")
MODELS = ("gcn", "sage", "gin", "gat")


def run(
    context: Optional[EvalContext] = None,
    models: Sequence[str] = MODELS,
    datasets: Sequence[str] = DATASETS,
) -> ExperimentResult:
    """Reproduce Fig. 12 (energy fractions per model/dataset)."""
    context = context or default_context()
    gcod = context.platforms()["gcod"]
    rows = []
    for arch in models:
        for dataset in datasets:
            report = gcod.run(context.gcod_workload(dataset, arch))
            total = max(report.energy.total_j, 1e-30)
            comb_e = report.combination.energy
            agg_e = report.aggregation.energy
            rows.append(
                (
                    arch,
                    dataset,
                    round(comb_e.compute_j / total * 100, 1),
                    round(comb_e.onchip_j / total * 100, 1),
                    round(comb_e.offchip_j / total * 100, 1),
                    round(agg_e.compute_j / total * 100, 1),
                    round(agg_e.onchip_j / total * 100, 1),
                    round(agg_e.offchip_j / total * 100, 1),
                    f"{total * 1e6:.1f}uJ",
                )
            )
    return ExperimentResult(
        name="Fig. 12: GCoD energy breakdown (% of total)",
        headers=("model", "dataset", "comb compute", "comb onchip",
                 "comb offchip", "agg compute", "agg onchip", "agg offchip",
                 "total"),
        rows=rows,
    )

SPEC = register_experiment(
    name="fig12",
    title="Fig. 12 — energy breakdown",
    runner=run,
    gcod_deps=tuple((ds, arch) for arch in MODELS for ds in DATASETS),
    order=80,
)
