"""Fig. 11: (a) off-chip bandwidth requirement, (b) normalized data accesses.

(a) compares the bandwidth GCoD and GCoD (8-bit) need to sustain their
latency against HyGCN's; the paper reports GCoD needing ~48% (8-bit: ~26%)
of HyGCN's bandwidth on average.
(b) counts off-chip accesses (input features and adjacency start off-chip)
for GCoD, HyGCN, and AWB-GCN, normalized to GCoD.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.evaluation.context import (
    CITATION_DATASETS,
    LARGE_DATASETS,
    EvalContext,
    ExperimentResult,
    default_context,
)
from repro.runtime.registry import register_experiment

DATASETS = CITATION_DATASETS + LARGE_DATASETS


def run(
    context: Optional[EvalContext] = None,
    datasets: Sequence[str] = DATASETS,
    arch: str = "gcn",
) -> ExperimentResult:
    """Reproduce Fig. 11 for the GCN model."""
    context = context or default_context()
    plats = context.platforms()
    rows = []
    bw_ratios = {"gcod": [], "gcod-8bit": []}
    for dataset in datasets:
        wl_base = context.baseline_workload(dataset, arch)
        wl_gcod = context.gcod_workload(dataset, arch)
        hygcn = plats["hygcn"].run(wl_base)
        awb = plats["awb-gcn"].run(wl_base)
        gcod = plats["gcod"].run(wl_gcod)
        gcod8 = plats["gcod-8bit"].run(wl_gcod)
        for name, ratio in (
            ("gcod", gcod.required_bandwidth_gbps / max(hygcn.required_bandwidth_gbps, 1e-9)),
            ("gcod-8bit", gcod8.required_bandwidth_gbps / max(hygcn.required_bandwidth_gbps, 1e-9)),
        ):
            bw_ratios[name].append(ratio)
        norm = max(gcod.offchip_bytes, 1e-9)
        rows.append(
            (
                dataset,
                round(hygcn.required_bandwidth_gbps, 1),
                round(gcod.required_bandwidth_gbps, 1),
                round(gcod8.required_bandwidth_gbps, 1),
                round(hygcn.offchip_bytes / norm, 2),
                round(awb.offchip_bytes / norm, 2),
                1.0,
                round(gcod8.offchip_bytes / norm, 2),
            )
        )
    summary = (
        f"GCoD needs {np.mean(bw_ratios['gcod']) * 100:.0f}% of HyGCN's "
        f"bandwidth on average (paper: 48%); GCoD-8bit "
        f"{np.mean(bw_ratios['gcod-8bit']) * 100:.0f}% (paper: 26%)."
    )
    return ExperimentResult(
        name="Fig. 11: bandwidth requirement (GB/s) and normalized off-chip accesses",
        headers=("dataset", "hygcn BW", "gcod BW", "gcod8 BW",
                 "hygcn acc/gcod", "awb acc/gcod", "gcod acc", "gcod8 acc/gcod"),
        rows=rows,
        extra_text=summary,
    )

SPEC = register_experiment(
    name="fig11",
    title="Fig. 11 — bandwidth & off-chip accesses",
    runner=run,
    gcod_deps=tuple((ds, "gcn") for ds in DATASETS),
    order=70,
)
