"""Fig. 10: speedups on the large graphs (NELL, Reddit, ogbn-ArXiv).

The figure covers GCN/GIN/GAT/GraphSAGE on NELL and Reddit plus the
28-layer ResGCN on ogbn-ArXiv. GraphSAGE on Reddit is the configuration
where HyGCN's gathered aggregation produced the paper's outlier.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from repro.evaluation.context import (
    EvalContext,
    ExperimentResult,
    default_context,
)
from repro.runtime.registry import register_experiment

PLATFORMS = ("pyg-gpu", "dgl-cpu", "dgl-gpu", "hygcn", "awb-gcn",
             "gcod", "gcod-8bit")

#: (model, dataset) pairs evaluated by the paper's Fig. 10
CASES: Tuple[Tuple[str, str], ...] = (
    ("gcn", "nell"),
    ("gcn", "reddit"),
    ("gin", "nell"),
    ("gin", "reddit"),
    ("gat", "nell"),
    ("gat", "reddit"),
    ("sage", "nell"),
    ("sage", "reddit"),
    ("resgcn", "ogbn-arxiv"),
)


def run(
    context: Optional[EvalContext] = None,
    cases: Sequence[Tuple[str, str]] = CASES,
    platforms: Sequence[str] = PLATFORMS,
) -> ExperimentResult:
    """Reproduce Fig. 10 (speedups normalized to PyG-CPU, large graphs)."""
    context = context or default_context()
    rows = []
    for arch, dataset in cases:
        speedups = context.speedups_over_cpu(dataset, arch, platforms)
        rows.append(
            (arch, dataset) + tuple(round(speedups[p], 1) for p in platforms)
        )
    return ExperimentResult(
        name="Fig. 10: inference speedups over PyG-CPU (large graphs)",
        headers=("model", "dataset") + tuple(platforms),
        rows=rows,
    )

SPEC = register_experiment(
    name="fig10",
    title="Fig. 10 — large-graph speedups",
    runner=run,
    gcod_deps=tuple((ds, arch) for arch, ds in CASES),
    order=60,
)
