"""Sec. VI-C ablation: sweep the design hyper-parameters C and S.

The paper sweeps C (number of classes / sub-accelerators) over {1,2,3,4}
and S (number of subgraphs) over {8,12,16,20}, finding 1.8-2.8x speedups
over AWB-GCN and 26-53% off-chip bandwidth reduction throughout — i.e. the
benefit is robust, not a point solution.

We sweep on two datasets with opposite bottlenecks: a combination-bound
citation graph (where the layout mostly moves bandwidth) and the
aggregation-bound Reddit stand-in (where the layout moves latency).
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional, Sequence

from repro.algorithm import run_gcod
from repro.evaluation.context import (
    EvalContext,
    ExperimentResult,
    default_context,
)
from repro.hardware import extract_workload
from repro.runtime.registry import register_experiment


def run(
    context: Optional[EvalContext] = None,
    datasets: Sequence[str] = ("cora", "reddit"),
    class_counts: Sequence[int] = (1, 2, 3, 4),
    subgraph_counts: Sequence[int] = (8, 12, 16, 20),
) -> ExperimentResult:
    """Sweep (C, S) on ``datasets`` with the GCN model."""
    context = context or default_context()
    plats = context.platforms()

    rows = []
    speedups = []
    bw_reductions = []
    for dataset in datasets:
        graph = context.graph(dataset)
        wl_base = context.baseline_workload(dataset, "gcn")
        awb = plats["awb-gcn"].run(wl_base)
        hygcn = plats["hygcn"].run(wl_base)
        for c in class_counts:
            for s in subgraph_counts:
                config = replace(
                    context.gcod_config(), num_classes=c,
                    num_subgraphs=max(s, c),
                )
                result = run_gcod(graph, "gcn", config)
                wl = extract_workload(
                    result.final_graph, result.layout, "gcn", paper_scale=True
                )
                gcod = plats["gcod"].run(wl)
                speedup = awb.latency_s / gcod.latency_s
                bw_red = 1.0 - gcod.required_bandwidth_gbps / max(
                    hygcn.required_bandwidth_gbps, 1e-9
                )
                speedups.append(speedup)
                bw_reductions.append(bw_red)
                rows.append(
                    (
                        dataset,
                        c,
                        s,
                        round(speedup, 2),
                        f"{bw_red * 100:.0f}%",
                        round(result.accuracy_final * 100, 1),
                        round(result.layout.balance_within_classes(
                            result.final_graph.adj), 3),
                    )
                )
    summary = (
        f"speedup over AWB-GCN in [{min(speedups):.2f}, {max(speedups):.2f}] "
        f"(paper: [1.8, 2.8]); bandwidth reduction in "
        f"[{min(bw_reductions) * 100:.0f}%, {max(bw_reductions) * 100:.0f}%] "
        f"(paper: [26%, 53%]). GCoD beats AWB-GCN at every design point."
    )
    return ExperimentResult(
        name="Ablation: C x S sweep (GCN)",
        headers=("dataset", "C", "S", "speedup vs awb",
                 "BW reduction vs hygcn", "accuracy %", "balance"),
        rows=rows,
        extra_text=summary,
    )

# The (C, S) sweep trains privately tuned configs; no shareable GCoD deps.
SPEC = register_experiment(
    name="ablation-cs",
    title="Ablation — C x S sweep (Sec. VI-C)",
    runner=run,
    order=120,
)
