"""Sec. VI-C ablation: sweep the design hyper-parameters C and S.

The paper sweeps C (number of classes / sub-accelerators) over {1,2,3,4}
and S (number of subgraphs) over {8,12,16,20}, finding 1.8-2.8x speedups
over AWB-GCN and 26-53% off-chip bandwidth reduction throughout — i.e. the
benefit is robust, not a point solution.

We sweep on two datasets with opposite bottlenecks: a combination-bound
citation graph (where the layout mostly moves bandwidth) and the
aggregation-bound Reddit stand-in (where the layout moves latency).

The grid itself is a :class:`~repro.sweep.spec.SweepSpec` executed by the
shared :mod:`repro.sweep` engine — this module only declares the axes and
formats the paper's table from the engine's point metrics. Every (C, S)
design point is content-addressed in the artifact store, so a rerun (or a
``repro sweep ablation-cs`` with different output plumbing) is warm.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.evaluation.context import (
    EvalContext,
    ExperimentResult,
    default_context,
)
from repro.runtime.registry import register_experiment
from repro.sweep.engine import run_sweep
from repro.sweep.registry import register_sweep
from repro.sweep.spec import SweepSpec

PAPER_DATASETS = ("cora", "reddit")
PAPER_CLASS_COUNTS = (1, 2, 3, 4)
PAPER_SUBGRAPH_COUNTS = (8, 12, 16, 20)


def sweep_spec(
    datasets: Sequence[str] = PAPER_DATASETS,
    class_counts: Sequence[int] = PAPER_CLASS_COUNTS,
    subgraph_counts: Sequence[int] = PAPER_SUBGRAPH_COUNTS,
) -> SweepSpec:
    """The (dataset, C, S) grid — the paper's by default."""
    return SweepSpec(
        name="ablation-cs",
        title="Ablation: C x S sweep (GCN)",
        axes={
            "dataset": tuple(datasets),
            "C": tuple(class_counts),
            "S": tuple(subgraph_counts),
        },
        description=(
            "Sec. VI-C design-hyper-parameter robustness: GCoD speedup "
            "over AWB-GCN and bandwidth reduction vs HyGCN across the "
            "C x S grid."
        ),
    )


def run(
    context: Optional[EvalContext] = None,
    datasets: Sequence[str] = PAPER_DATASETS,
    class_counts: Sequence[int] = PAPER_CLASS_COUNTS,
    subgraph_counts: Sequence[int] = PAPER_SUBGRAPH_COUNTS,
    jobs: int = 1,
) -> ExperimentResult:
    """Sweep (C, S) on ``datasets`` with the GCN model."""
    context = context or default_context()
    spec = sweep_spec(datasets, class_counts, subgraph_counts)
    report = run_sweep(context, spec, jobs=jobs)

    rows = []
    speedups = []
    bw_reductions = []
    for point in report.results:
        speedups.append(point.speedup_vs_awb)
        bw_reductions.append(point.bw_reduction_vs_hygcn)
        rows.append(
            (
                point.dataset,
                point.coord("C"),
                point.coord("S"),
                round(point.speedup_vs_awb, 2),
                f"{point.bw_reduction_vs_hygcn * 100:.0f}%",
                round(point.accuracy * 100, 1),
                round(point.balance, 3),
            )
        )
    summary = (
        f"speedup over AWB-GCN in [{min(speedups):.2f}, {max(speedups):.2f}] "
        f"(paper: [1.8, 2.8]); bandwidth reduction in "
        f"[{min(bw_reductions) * 100:.0f}%, {max(bw_reductions) * 100:.0f}%] "
        f"(paper: [26%, 53%]). GCoD beats AWB-GCN at every design point."
    )
    return ExperimentResult(
        name="Ablation: C x S sweep (GCN)",
        headers=("dataset", "C", "S", "speedup vs awb",
                 "BW reduction vs hygcn", "accuracy %", "balance"),
        rows=rows,
        extra_text=summary,
    )

# The (C, S) grid trains privately tuned configs; no shareable GCoD deps
# at the *experiment* level — the sweep engine dedups and caches the
# per-point pipelines itself.
SPEC = register_experiment(
    name="ablation-cs",
    title="Ablation — C x S sweep (Sec. VI-C)",
    runner=run,
    order=120,
)

#: The same grid, runnable standalone: ``repro sweep ablation-cs``.
SWEEP = register_sweep(sweep_spec())
