"""Paper-reported values, used to check reproduction *shape* in EXPERIMENTS.md.

Only values stated in the paper's text/tables are recorded. Figures 9-11 are
bar charts whose exact values are hard to read; where the text states
averages we record those.
"""

# Headline averages (Abstract / Sec. VI-B)
SPEEDUP_OVER = {
    "pyg-cpu": 15286.0,
    "pyg-gpu": 294.0,
    "dgl-cpu": 1057.0,
    "dgl-gpu": 460.0,
    "hygcn": 7.8,
    "awb-gcn": 2.5,
    "deepburning-zc706": 2532.0,
    "deepburning-kcu1500": 165.0,
    "deepburning-alveo-u50": 115.0,
}

SPEEDUP_OVER_8BIT = {
    "pyg-cpu": 32158.0,
    "pyg-gpu": 607.0,
    "dgl-cpu": 2213.0,
    "dgl-gpu": 962.0,
}

# Tab. VI: speedups over PyG-CPU (GCN)
TABLE_VI = {
    "awb-gcn": {"cora": 1063, "citeseer": 913, "pubmed": 466, "nell": 1425,
                "reddit": 9242},
    "gcod-accel": {"cora": 1824, "citeseer": 1692, "pubmed": 901,
                   "nell": 2294, "reddit": 39881},
    "gcod-accel-sp": {"cora": 2031, "citeseer": 1763, "pubmed": 970,
                      "nell": 2459, "reddit": 44827},
    "gcod-accel-sp-quant": {"cora": 4373, "citeseer": 3459, "pubmed": 1931,
                            "nell": 4915, "reddit": 90301},
}

# Tab. VII: accuracy (%) for the GCN model rows
TABLE_VII_GCN = {
    "vanilla": {"cora": 81.1, "citeseer": 70.2, "pubmed": 79.1, "nell": 65.6,
                "reddit": 92.2},
    "rp": {"cora": 79.6, "citeseer": 70.4, "pubmed": 78.4, "nell": 63.5,
           "reddit": 91.2},
    "sgcn": {"cora": 80.2, "citeseer": 70.4, "pubmed": 79.1, "nell": 64.2,
             "reddit": 91.3},
    "qat": {"cora": 81.0, "citeseer": 71.3, "pubmed": 79.0, "nell": 65.1,
            "reddit": 92.4},
    "degree-quant": {"cora": 81.7, "citeseer": 71.0, "pubmed": 79.1,
                     "nell": 65.2, "reddit": 92.6},
    "gcod": {"cora": 81.9, "citeseer": 71.7, "pubmed": 79.5, "nell": 66.3,
             "reddit": 93.4},
    "gcod-8bit": {"cora": 81.0, "citeseer": 70.6, "pubmed": 79.5, "nell": 66.0,
                  "reddit": 93.2},
}

# Fig. 4 latency reductions over HyGCN (visualization captions)
FIG4_LATENCY_REDUCTION = {"cora": 7.8, "citeseer": 9.2, "pubmed": 3.2}

# Fig. 11a: GCoD needs on average 48% (26% for 8-bit) of HyGCN's bandwidth
BANDWIDTH_VS_HYGCN = {"gcod": 0.48, "gcod-8bit": 0.26}

# Sec. VI-C ablation: across C in {1..4}, S in {8..20}
ABLATION_SPEEDUP_OVER_AWB = (1.8, 2.8)
ABLATION_BANDWIDTH_REDUCTION = (0.26, 0.53)

# Sec. IV-B2: training cost accounting
TRAINING_COST_RANGE = (0.7, 1.1)
TRAINING_STEP_FRACTIONS = (0.05, 0.50, 0.45)

# Sec. V-B: sparser-branch weight forwarding rate
WEIGHT_FORWARD_RATE = 0.63

# Sec. I: sparser workload keeps ~30% of non-zeros on Cora
CORA_SPARSE_NNZ_FRACTION = 0.30

# Tab. VI text: sparsification contributes ~1.09x, 8-bit ~2.02x on average
SPARSIFICATION_GAIN = 1.09
QUANTIZATION_GAIN = 2.02
