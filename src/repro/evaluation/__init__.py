"""Evaluation harness: one module per table/figure of the paper.

Every experiment module exposes ``run(...) -> ExperimentResult``; the
result carries structured rows plus a ``render()`` method that prints the
table/figure as monospace text. ``repro.evaluation.reference`` holds the
paper-reported values used in EXPERIMENTS.md comparisons.
"""

from repro.evaluation.context import (
    EvalContext,
    ExperimentResult,
    default_context,
)
from repro.evaluation import reference

__all__ = ["EvalContext", "ExperimentResult", "default_context", "reference"]
