"""Shared experiment context: dataset/GCoD-run caching and result plumbing.

Running GCoD training is the expensive part of every experiment, and several
tables need the same trained graphs, so :class:`EvalContext` memoizes
dataset generation and GCoD pipeline runs within a process — and, when an
:class:`~repro.runtime.store.ArtifactStore` is attached, persists them
across processes under stable content-addressed keys (see
:mod:`repro.runtime.keys`). The ``fast`` profile (default) uses reduced
scales and epoch budgets so the whole harness completes in minutes;
``full`` uses the paper's settings.

Cache keys include the kernel backend and the effective dataset scale, so
two contexts that share memo dictionaries (e.g. via ``dataclasses.replace``)
but differ in backend or scale can never serve each other stale entries.
"""

from __future__ import annotations

import csv
import io
import json
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.algorithm import GCoDConfig, GCoDResult, run_gcod
from repro.graphs import Graph, load_dataset
from repro.hardware import GCNWorkload, extract_workload
from repro.hardware.accelerators import all_platforms
from repro.runtime import keys as runtime_keys
from repro.runtime.store import ArtifactStore
from repro.utils.tables import format_table

CITATION_DATASETS = ("cora", "citeseer", "pubmed")
LARGE_DATASETS = ("nell", "reddit")
ALL_DATASETS = CITATION_DATASETS + LARGE_DATASETS + ("ogbn-arxiv",)


def _plain(value):
    """Coerce a cell value to a JSON-friendly plain Python value."""
    try:
        return runtime_keys.jsonable(value)
    except TypeError:
        return str(value)  # an exotic cell type: serialize its repr


@dataclass
class ExperimentResult:
    """Structured output of one experiment."""

    name: str
    headers: Sequence[str]
    rows: List[Sequence]
    extra_text: str = ""

    def render(self, float_fmt: str = ".2f") -> str:
        """The experiment as printable text."""
        table = format_table(self.headers, self.rows, title=self.name,
                             float_fmt=float_fmt)
        if self.extra_text:
            return table + "\n\n" + self.extra_text
        return table

    def as_dict(self) -> Dict[str, List]:
        """Column-oriented dict of the rows (for programmatic use)."""
        cols: Dict[str, List] = {h: [] for h in self.headers}
        for row in self.rows:
            for h, v in zip(self.headers, row):
                cols[h].append(v)
        return cols

    # ------------------------------------------------------------------
    # machine-readable serialization (`repro report --format json/csv`)
    # ------------------------------------------------------------------
    def to_jsonable(self) -> Dict:
        """A plain-Python dict round-trippable through JSON."""
        return {
            "name": self.name,
            "headers": [str(h) for h in self.headers],
            "rows": [[_plain(v) for v in row] for row in self.rows],
            "extra_text": self.extra_text,
        }

    def to_json(self, indent: Optional[int] = 2) -> str:
        """The result as a JSON document."""
        return json.dumps(self.to_jsonable(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "ExperimentResult":
        """Rebuild a result from :meth:`to_json` output."""
        data = json.loads(text)
        return cls(
            name=data["name"],
            headers=tuple(data["headers"]),
            rows=[tuple(row) for row in data["rows"]],
            extra_text=data.get("extra_text", ""),
        )

    def to_csv(self) -> str:
        """The rows as an RFC-4180 CSV document (headers included)."""
        buf = io.StringIO()
        writer = csv.writer(buf, lineterminator="\n")
        writer.writerow([str(h) for h in self.headers])
        for row in self.rows:
            writer.writerow([_plain(v) for v in row])
        return buf.getvalue()


@dataclass
class EvalContext:
    """Caches graphs, GCoD runs, and platform models across experiments."""

    profile: str = "fast"
    seed: int = 0
    #: SpMM kernel backend for every pipeline run this context performs
    #: (None = the registry default, "vectorized"; "reference" and "tiled"
    #: are the other registered engines).
    kernel_backend: Optional[str] = None
    dataset_scales: Dict[str, float] = field(default_factory=dict)
    #: optional persistent artifact store; when attached, graphs, GCoD
    #: results, and traces survive across processes.
    store: Optional[ArtifactStore] = None
    _graphs: Dict[tuple, Graph] = field(default_factory=dict, repr=False)
    _gcod: Dict[tuple, GCoDResult] = field(default_factory=dict, repr=False)
    _traces: Dict[tuple, object] = field(default_factory=dict, repr=False)
    _platforms: Optional[dict] = field(default=None, repr=False)

    # fast-profile scales chosen so each dataset trains in seconds while
    # keeping enough structure for the partitioner to be meaningful.
    _FAST_SCALES = {
        "cora": 0.3,
        "citeseer": 0.25,
        "pubmed": 0.05,
        "nell": 0.015,
        "ogbn-arxiv": 0.006,
        "reddit": 0.004,
    }

    def scale_for(self, dataset: str) -> Optional[float]:
        """The generation scale used for ``dataset`` under this profile."""
        if dataset in self.dataset_scales:
            return self.dataset_scales[dataset]
        if self.profile == "fast":
            return self._FAST_SCALES.get(dataset)
        return None  # full profile: each spec's default scale

    def _backend_name(self) -> str:
        """The kernel backend name with ``None`` resolved to the default."""
        from repro.sparse.kernels import get_backend

        return get_backend(self.kernel_backend).name

    def gcod_config(self) -> GCoDConfig:
        """The GCoD hyper-parameters for this profile."""
        if self.profile == "fast":
            return GCoDConfig(
                pretrain_epochs=30,
                retrain_epochs=20,
                admm_iterations=2,
                admm_inner_steps=6,
                seed=self.seed,
                kernel_backend=self.kernel_backend,
            )
        return GCoDConfig(seed=self.seed, kernel_backend=self.kernel_backend)

    def gcod_config_for(self, arch: str) -> GCoDConfig:
        """The per-arch config :meth:`gcod` (and the runner) will use."""
        config = self.gcod_config()
        if arch == "resgcn":  # 28 layers is too deep for fast training
            config = replace(
                config, pretrain_epochs=min(config.pretrain_epochs, 15),
                retrain_epochs=min(config.retrain_epochs, 10),
            )
        return config

    # ------------------------------------------------------------------
    # cache keys (in-memory memo + persistent store)
    # ------------------------------------------------------------------
    def _graph_memo_key(self, dataset: str) -> tuple:
        return (dataset, self.scale_for(dataset), self.seed)

    def _gcod_memo_key(self, dataset: str, arch: str) -> tuple:
        # Backend, effective scale, and profile are part of the key:
        # contexts created via ``replace(ctx, kernel_backend=...)`` (or
        # ``profile=...``) share these memo dicts, and must never silently
        # share trained results. Profile matters even at an identical
        # explicit scale because it selects the epoch budgets.
        return (dataset, arch, self._backend_name(),
                self.scale_for(dataset), self.seed, self.profile)

    def graph_store_key(self, dataset: str) -> runtime_keys.ArtifactKey:
        """The persistent-store key of this context's ``dataset`` graph."""
        return runtime_keys.graph_key(
            dataset, self.scale_for(dataset), self.seed
        )

    def gcod_store_key(
        self, dataset: str, arch: str = "gcn"
    ) -> runtime_keys.ArtifactKey:
        """The persistent-store key of this context's (dataset, arch) run."""
        return runtime_keys.gcod_key(
            dataset,
            self.scale_for(dataset),
            arch,
            self.gcod_config_for(arch),
            self.kernel_backend,
            self.seed,
            self.profile,
        )

    def experiment_store_key(self, name: str) -> runtime_keys.ArtifactKey:
        """The persistent-store key of experiment ``name`` in this context."""
        return runtime_keys.experiment_key(
            name, self.profile, self.seed, self.kernel_backend,
            self.dataset_scales,
        )

    # ------------------------------------------------------------------
    # cached products
    # ------------------------------------------------------------------
    def graph(self, dataset: str) -> Graph:
        """The (cached) synthetic graph for ``dataset``."""
        memo = self._graph_memo_key(dataset)
        if memo not in self._graphs:
            graph = None
            if self.store is not None:
                graph = self.store.get(self.graph_store_key(dataset))
            if graph is None:
                graph = load_dataset(
                    dataset, scale=self.scale_for(dataset), seed=self.seed
                )
                if self.store is not None:
                    self.store.put(self.graph_store_key(dataset), graph)
            self._graphs[memo] = graph
        return self._graphs[memo]

    def has_gcod(self, dataset: str, arch: str = "gcn") -> bool:
        """True if (dataset, arch) is already trained (memory or store)."""
        if self._gcod_memo_key(dataset, arch) in self._gcod:
            return True
        return self.store is not None and self.store.contains(
            self.gcod_store_key(dataset, arch)
        )

    def gcod(self, dataset: str, arch: str = "gcn") -> GCoDResult:
        """The (cached) GCoD pipeline result for (dataset, arch)."""
        memo = self._gcod_memo_key(dataset, arch)
        if memo not in self._gcod:
            result = None
            key = self.gcod_store_key(dataset, arch)
            if self.store is not None:
                result = self.store.get(key)
            if result is None:
                # Run with the backend name resolved (same numerics), so the
                # stored artifact is byte-identical whether this context or
                # a pool worker — which must resolve eagerly — produced it.
                config = replace(
                    self.gcod_config_for(arch),
                    kernel_backend=self._backend_name(),
                )
                result = run_gcod(self.graph(dataset), arch, config)
                if self.store is not None:
                    self.store.put(key, result,
                                   summary=result.to_summary_dict())
            self._gcod[memo] = result
        return self._gcod[memo]

    def platforms(self) -> dict:
        """The (cached) platform models, keyed by name."""
        if self._platforms is None:
            self._platforms = all_platforms()
        return self._platforms

    def measured_trace(self, dataset: str, arch: str = "gcn"):
        """The (cached) first-layer :class:`ExecutionTrace` of the trained
        model, functionally executed on the two-pronged schedule.

        This is the measured counterpart of the analytic model's assumed
        constants: pass it to ``GCoDAccelerator(measured_trace=...)`` to
        cost an inference with the *observed* chunk balance and
        query-forwarding rate instead of the paper's ~63%.
        """
        from repro.hardware.functional import execute_layer

        memo = self._gcod_memo_key(dataset, arch)
        if memo not in self._traces:
            trace = None
            key = runtime_keys.trace_key(self.gcod_store_key(dataset, arch))
            if self.store is not None:
                trace = self.store.get(key)
            if trace is None:
                result = self.gcod(dataset, arch)
                first_weight = result.model.layers[0].weight.data
                execution = execute_layer(
                    result.final_graph,
                    result.layout,
                    result.final_graph.features,
                    first_weight,
                    kernel_backend=self.kernel_backend,
                )
                trace = execution.trace
                if self.store is not None:
                    self.store.put(key, trace)
            self._traces[memo] = trace
        return self._traces[memo]

    # ------------------------------------------------------------------
    # workload helpers
    # ------------------------------------------------------------------
    def baseline_workload(
        self, dataset: str, arch: str = "gcn", **kw
    ) -> GCNWorkload:
        """Paper-scale workload of the untreated graph (for baselines)."""
        return extract_workload(
            self.graph(dataset), None, arch, paper_scale=True, **kw
        )

    def gcod_workload(
        self, dataset: str, arch: str = "gcn", stage: str = "final", **kw
    ) -> GCNWorkload:
        """Paper-scale workload of a GCoD-trained graph.

        ``stage`` picks the pipeline stage: ``partitioned`` (Step 1 only,
        i.e. the accelerator without sparsification), ``tuned`` (Step 2), or
        ``final`` (all three steps).
        """
        result = self.gcod(dataset, arch)
        graph = {
            "partitioned": result.partitioned_graph,
            "tuned": result.tuned_graph,
            "final": result.final_graph,
        }[stage]
        return extract_workload(graph, result.layout, arch, paper_scale=True, **kw)

    def speedups_over_cpu(
        self,
        dataset: str,
        arch: str,
        platform_names: Sequence[str],
    ) -> Dict[str, float]:
        """Normalized speedups vs PyG-CPU for the named platforms (Fig. 9/10)."""
        plats = self.platforms()
        wl_base = self.baseline_workload(dataset, arch)
        cpu = plats["pyg-cpu"].run(wl_base)
        out = {}
        for name in platform_names:
            if name.startswith("gcod"):
                wl = self.gcod_workload(dataset, arch, stage="final")
            else:
                wl = wl_base
            report = plats[name].run(wl)
            out[name] = cpu.latency_s / report.latency_s
        return out


_DEFAULT: Optional[EvalContext] = None


def default_context(profile: str = "fast") -> EvalContext:
    """A process-wide shared context (so benchmarks reuse trained graphs)."""
    global _DEFAULT
    if _DEFAULT is None or _DEFAULT.profile != profile:
        _DEFAULT = EvalContext(profile=profile)
    return _DEFAULT
