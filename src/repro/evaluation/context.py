"""Shared experiment context: dataset/GCoD-run caching and result plumbing.

Running GCoD training is the expensive part of every experiment, and several
tables need the same trained graphs, so :class:`EvalContext` memoizes
dataset generation and GCoD pipeline runs per (dataset, arch) within a
process. The ``fast`` profile (default) uses reduced scales and epoch
budgets so the whole harness completes in minutes; ``full`` uses the paper's
settings.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.algorithm import GCoDConfig, GCoDResult, run_gcod
from repro.graphs import Graph, load_dataset
from repro.hardware import GCNWorkload, extract_workload
from repro.hardware.accelerators import all_platforms
from repro.utils.tables import format_table

CITATION_DATASETS = ("cora", "citeseer", "pubmed")
LARGE_DATASETS = ("nell", "reddit")
ALL_DATASETS = CITATION_DATASETS + LARGE_DATASETS + ("ogbn-arxiv",)


@dataclass
class ExperimentResult:
    """Structured output of one experiment."""

    name: str
    headers: Sequence[str]
    rows: List[Sequence]
    extra_text: str = ""

    def render(self, float_fmt: str = ".2f") -> str:
        """The experiment as printable text."""
        table = format_table(self.headers, self.rows, title=self.name,
                             float_fmt=float_fmt)
        if self.extra_text:
            return table + "\n\n" + self.extra_text
        return table

    def as_dict(self) -> Dict[str, List]:
        """Column-oriented dict of the rows (for programmatic use)."""
        cols: Dict[str, List] = {h: [] for h in self.headers}
        for row in self.rows:
            for h, v in zip(self.headers, row):
                cols[h].append(v)
        return cols


@dataclass
class EvalContext:
    """Caches graphs, GCoD runs, and platform models across experiments."""

    profile: str = "fast"
    seed: int = 0
    #: SpMM kernel backend for every pipeline run this context performs
    #: (None = the registry default, "vectorized"; "reference" and "tiled"
    #: are the other registered engines).
    kernel_backend: Optional[str] = None
    dataset_scales: Dict[str, float] = field(default_factory=dict)
    _graphs: Dict[str, Graph] = field(default_factory=dict, repr=False)
    _gcod: Dict[Tuple[str, str], GCoDResult] = field(
        default_factory=dict, repr=False
    )
    _traces: Dict[Tuple[str, str], object] = field(
        default_factory=dict, repr=False
    )
    _platforms: Optional[dict] = field(default=None, repr=False)

    # fast-profile scales chosen so each dataset trains in seconds while
    # keeping enough structure for the partitioner to be meaningful.
    _FAST_SCALES = {
        "cora": 0.3,
        "citeseer": 0.25,
        "pubmed": 0.05,
        "nell": 0.015,
        "ogbn-arxiv": 0.006,
        "reddit": 0.004,
    }

    def scale_for(self, dataset: str) -> Optional[float]:
        """The generation scale used for ``dataset`` under this profile."""
        if dataset in self.dataset_scales:
            return self.dataset_scales[dataset]
        if self.profile == "fast":
            return self._FAST_SCALES.get(dataset)
        return None  # full profile: each spec's default scale

    def gcod_config(self) -> GCoDConfig:
        """The GCoD hyper-parameters for this profile."""
        if self.profile == "fast":
            return GCoDConfig(
                pretrain_epochs=30,
                retrain_epochs=20,
                admm_iterations=2,
                admm_inner_steps=6,
                seed=self.seed,
                kernel_backend=self.kernel_backend,
            )
        return GCoDConfig(seed=self.seed, kernel_backend=self.kernel_backend)

    def graph(self, dataset: str) -> Graph:
        """The (cached) synthetic graph for ``dataset``."""
        if dataset not in self._graphs:
            self._graphs[dataset] = load_dataset(
                dataset, scale=self.scale_for(dataset), seed=self.seed
            )
        return self._graphs[dataset]

    def gcod(self, dataset: str, arch: str = "gcn") -> GCoDResult:
        """The (cached) GCoD pipeline result for (dataset, arch)."""
        key = (dataset, arch)
        if key not in self._gcod:
            config = self.gcod_config()
            if arch == "resgcn":  # 28 layers is too deep for fast training
                config = replace(
                    config, pretrain_epochs=min(config.pretrain_epochs, 15),
                    retrain_epochs=min(config.retrain_epochs, 10),
                )
            self._gcod[key] = run_gcod(self.graph(dataset), arch, config)
        return self._gcod[key]

    def platforms(self) -> dict:
        """The (cached) platform models, keyed by name."""
        if self._platforms is None:
            self._platforms = all_platforms()
        return self._platforms

    def measured_trace(self, dataset: str, arch: str = "gcn"):
        """The (cached) first-layer :class:`ExecutionTrace` of the trained
        model, functionally executed on the two-pronged schedule.

        This is the measured counterpart of the analytic model's assumed
        constants: pass it to ``GCoDAccelerator(measured_trace=...)`` to
        cost an inference with the *observed* chunk balance and
        query-forwarding rate instead of the paper's ~63%.
        """
        from repro.hardware.functional import execute_layer

        key = (dataset, arch)
        if key not in self._traces:
            result = self.gcod(dataset, arch)
            first_weight = result.model.layers[0].weight.data
            execution = execute_layer(
                result.final_graph,
                result.layout,
                result.final_graph.features,
                first_weight,
                kernel_backend=self.kernel_backend,
            )
            self._traces[key] = execution.trace
        return self._traces[key]

    # ------------------------------------------------------------------
    # workload helpers
    # ------------------------------------------------------------------
    def baseline_workload(
        self, dataset: str, arch: str = "gcn", **kw
    ) -> GCNWorkload:
        """Paper-scale workload of the untreated graph (for baselines)."""
        return extract_workload(
            self.graph(dataset), None, arch, paper_scale=True, **kw
        )

    def gcod_workload(
        self, dataset: str, arch: str = "gcn", stage: str = "final", **kw
    ) -> GCNWorkload:
        """Paper-scale workload of a GCoD-trained graph.

        ``stage`` picks the pipeline stage: ``partitioned`` (Step 1 only,
        i.e. the accelerator without sparsification), ``tuned`` (Step 2), or
        ``final`` (all three steps).
        """
        result = self.gcod(dataset, arch)
        graph = {
            "partitioned": result.partitioned_graph,
            "tuned": result.tuned_graph,
            "final": result.final_graph,
        }[stage]
        return extract_workload(graph, result.layout, arch, paper_scale=True, **kw)

    def speedups_over_cpu(
        self,
        dataset: str,
        arch: str,
        platform_names: Sequence[str],
    ) -> Dict[str, float]:
        """Normalized speedups vs PyG-CPU for the named platforms (Fig. 9/10)."""
        plats = self.platforms()
        wl_base = self.baseline_workload(dataset, arch)
        cpu = plats["pyg-cpu"].run(wl_base)
        out = {}
        for name in platform_names:
            if name.startswith("gcod"):
                wl = self.gcod_workload(dataset, arch, stage="final")
            else:
                wl = wl_base
            report = plats[name].run(wl)
            out[name] = cpu.latency_s / report.latency_s
        return out


_DEFAULT: Optional[EvalContext] = None


def default_context(profile: str = "fast") -> EvalContext:
    """A process-wide shared context (so benchmarks reuse trained graphs)."""
    global _DEFAULT
    if _DEFAULT is None or _DEFAULT.profile != profile:
        _DEFAULT = EvalContext(profile=profile)
    return _DEFAULT
