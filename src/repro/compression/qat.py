"""QAT baseline [8]: quantization-aware training via weight projection.

After every optimizer step the weights are projected onto the int-``bits``
grid, so the optimizer always sees quantization error during training (the
"quant noise" mechanism), and the final weights are exactly representable in
``bits`` bits.
"""

from __future__ import annotations

from typing import Tuple

from repro.compression.quantize import quantize_dequantize
from repro.graphs.graph import Graph
from repro.nn.models import build_model
from repro.nn.models.base import GNNModel
from repro.nn.training import TrainResult, train_model


def _project_weights(model: GNNModel, bits: int) -> None:
    """Snap every weight matrix onto the quantization grid, in place."""
    for _, param in model.named_parameters():
        if param.data.ndim >= 2:
            param.data = quantize_dequantize(param.data, bits)


def train_qat(
    graph: Graph,
    arch: str = "gcn",
    bits: int = 8,
    epochs: int = 200,
    seed: int = 0,
) -> Tuple[TrainResult, GNNModel]:
    """Train ``arch`` on ``graph`` with int-``bits`` weight quantization."""
    model = build_model(arch, graph, rng=seed)

    def project(epoch, m, val_acc):
        _project_weights(m, bits)
        return False

    result = train_model(model, graph, epochs=epochs, epoch_callback=project)
    _project_weights(model, bits)
    return result, model
