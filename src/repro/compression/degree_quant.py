"""Degree-Quant baseline [34]: degree-aware quantization-aware training.

Degree-Quant's observation: aggregation error concentrates at high-in-degree
nodes (their sums have the widest dynamic range), so during training those
nodes are stochastically *protected* — kept in full precision — with
probability proportional to their degree percentile, while everything else
trains under int-``bits`` quantization noise.

We reproduce the mechanism with a per-epoch protective row mask applied to
the feature quantizer, combined with the same weight projection as QAT.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.compression.qat import _project_weights
from repro.compression.quantize import quantize_dequantize
from repro.graphs.graph import Graph
from repro.nn.models import build_model
from repro.nn.models.base import GNNModel
from repro.nn.training import TrainResult, train_model
from repro.utils.rng import ensure_rng


def protection_probabilities(degrees: np.ndarray, max_prob: float = 0.9) -> np.ndarray:
    """Per-node protection probability: degree percentile scaled to max_prob."""
    ranks = np.argsort(np.argsort(degrees))
    if degrees.size <= 1:
        return np.full(degrees.shape, max_prob / 2)
    return max_prob * ranks / (degrees.size - 1)


def train_degree_quant(
    graph: Graph,
    arch: str = "gcn",
    bits: int = 8,
    epochs: int = 200,
    max_protect_prob: float = 0.9,
    seed: int = 0,
) -> Tuple[TrainResult, GNNModel]:
    """Degree-Quant training: protected-row feature quantization + QAT weights."""
    rng = ensure_rng(seed)
    probs = protection_probabilities(graph.degrees(), max_protect_prob)
    model = build_model(arch, graph, rng=seed)
    original_features = graph.features.copy()

    def per_epoch(epoch, m, val_acc):
        # Re-draw the protection mask and re-quantize unprotected node
        # features for the next epoch; weights snap onto the int grid.
        protected = rng.random(probs.shape[0]) < probs
        quantized = quantize_dequantize(original_features, bits)
        graph.features[:] = np.where(
            protected[:, None], original_features, quantized
        )
        _project_weights(m, bits)
        return False

    result = train_model(model, graph, epochs=epochs, epoch_callback=per_epoch)
    graph.features[:] = original_features
    _project_weights(model, bits)
    return result, model
