"""GCN compression baselines compared against GCoD in Tab. VII.

* :mod:`repro.compression.random_pruning` — RP [10]: remove edges at random;
* :mod:`repro.compression.sgcn` — SGCN [23]: ADMM graph sparsifier (GCoD's
  Step 2 without the polarization term);
* :mod:`repro.compression.qat` — QAT [8]: quantization-aware training with a
  straight-through estimator;
* :mod:`repro.compression.degree_quant` — Degree-Quant [34]: QAT with
  stochastic protection of high-degree nodes.

Plus :mod:`repro.compression.quantize`, the shared int-k fake-quantization
machinery also used by the GCoD (8-bit) accelerator variant.
"""

from repro.compression.quantize import (
    QuantSpec,
    quantize_dequantize,
    quantize_ste,
)
from repro.compression.random_pruning import random_prune_edges, train_random_pruned
from repro.compression.sgcn import sgcn_sparsify, train_sgcn
from repro.compression.qat import train_qat
from repro.compression.degree_quant import train_degree_quant

__all__ = [
    "QuantSpec",
    "quantize_dequantize",
    "quantize_ste",
    "random_prune_edges",
    "train_random_pruned",
    "sgcn_sparsify",
    "train_sgcn",
    "train_qat",
    "train_degree_quant",
]
