"""SGCN baseline [23]: ADMM graph sparsification *without* polarization.

SGCN is the method GCoD's Step 2 builds on; running GCoD's ADMM tuner with
the polarization weight zeroed reproduces it, which doubles as the ablation
isolating what polarization itself contributes.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional, Tuple

from repro.algorithm.admm import ADMMResult, admm_sparsify_polarize
from repro.algorithm.config import GCoDConfig
from repro.graphs.graph import Graph
from repro.nn.models import build_model
from repro.nn.training import TrainResult, train_model


def sgcn_sparsify(
    graph: Graph,
    model,
    config: Optional[GCoDConfig] = None,
) -> ADMMResult:
    """Run the ADMM sparsifier with ``pola_weight = 0`` (pure SGCN)."""
    config = config or GCoDConfig()
    return admm_sparsify_polarize(graph, model, replace(config, pola_weight=0.0))


def train_sgcn(
    graph: Graph,
    arch: str = "gcn",
    prune_ratio: float = 0.10,
    pretrain_epochs: int = 100,
    retrain_epochs: int = 200,
    seed: int = 0,
) -> Tuple[TrainResult, Graph]:
    """SGCN pipeline: pretrain -> ADMM sparsify -> retrain from scratch."""
    model = build_model(arch, graph, rng=seed)
    train_model(model, graph, epochs=pretrain_epochs)
    config = GCoDConfig(prune_ratio=prune_ratio, seed=seed, pola_weight=0.0)
    admm = sgcn_sparsify(graph, model, config)
    pruned = graph.with_adj(admm.pruned_adj)
    model = build_model(arch, pruned, rng=seed)
    result = train_model(model, pruned, epochs=retrain_epochs)
    return result, pruned
