"""Uniform fake quantization with a straight-through estimator (STE).

Shared by the QAT / Degree-Quant baselines and by the GCoD (8-bit)
accelerator variant, whose 4x bandwidth saving (Tab. V footnote) comes from
exactly this 32-bit -> 8-bit conversion.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.nn.tensor import Tensor, _make


@dataclass(frozen=True)
class QuantSpec:
    """Symmetric uniform quantizer description."""

    bits: int = 8

    @property
    def levels(self) -> int:
        """Number of representable magnitudes on each side of zero."""
        return 2 ** (self.bits - 1) - 1

    def scale_for(self, values: np.ndarray) -> float:
        """Per-tensor scale mapping the max magnitude onto the last level."""
        max_abs = float(np.max(np.abs(values))) if values.size else 0.0
        return max_abs / self.levels if max_abs > 0 else 1.0


def quantize_dequantize(values: np.ndarray, bits: int = 8) -> np.ndarray:
    """Round ``values`` to the nearest int-``bits`` grid point (symmetric)."""
    spec = QuantSpec(bits)
    scale = spec.scale_for(values)
    q = np.clip(np.round(values / scale), -spec.levels, spec.levels)
    return q * scale


def quantize_ste(x: Tensor, bits: int = 8, row_mask: np.ndarray = None) -> Tensor:
    """Fake-quantize ``x`` in the forward pass; identity gradient backward.

    ``row_mask`` (optional, boolean per row) exempts rows from quantization
    — Degree-Quant's protection of high-in-degree nodes.
    """
    data = quantize_dequantize(x.data, bits)
    if row_mask is not None:
        mask = np.asarray(row_mask, dtype=bool)
        data = np.where(mask[:, None], x.data, data)

    def backward(grad):
        if x.requires_grad:
            x.accumulate_grad(grad)

    return _make(data, (x,), backward)
