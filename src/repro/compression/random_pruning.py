"""RP baseline: random edge pruning at a matched ratio (Tab. VII)."""

from __future__ import annotations

from typing import Tuple

import numpy as np
import scipy.sparse as sp

from repro.graphs.graph import Graph
from repro.nn.models import build_model
from repro.nn.training import TrainResult, train_model
from repro.utils.rng import SeedLike, ensure_rng


def random_prune_edges(
    adj: sp.spmatrix, prune_ratio: float, rng: SeedLike = None
) -> sp.csr_matrix:
    """Remove ``prune_ratio`` of undirected edges uniformly at random.

    Both stored triangles of a pruned edge are removed, so the result stays
    symmetric.
    """
    gen = ensure_rng(rng)
    coo = sp.coo_matrix(adj)
    n = coo.shape[0]
    lo = np.minimum(coo.row, coo.col)
    hi = np.maximum(coo.row, coo.col)
    keys = lo * n + hi
    unique_keys, pair_id = np.unique(keys, return_inverse=True)
    keep_pairs = gen.random(unique_keys.size) >= prune_ratio
    keep = keep_pairs[pair_id]
    return sp.csr_matrix(
        (coo.data[keep], (coo.row[keep], coo.col[keep])), shape=coo.shape
    )


def train_random_pruned(
    graph: Graph,
    arch: str = "gcn",
    prune_ratio: float = 0.10,
    epochs: int = 200,
    seed: int = 0,
) -> Tuple[TrainResult, Graph]:
    """Prune edges at random, retrain from scratch, report accuracy."""
    pruned = graph.with_adj(random_prune_edges(graph.adj, prune_ratio, rng=seed))
    model = build_model(arch, pruned, rng=seed)
    result = train_model(model, pruned, epochs=epochs)
    return result, pruned
