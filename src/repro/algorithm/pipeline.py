"""The end-to-end GCoD training pipeline (Fig. 3).

Step 1: pretrain the GCN on the partitioned (reordered) graph;
Step 2: tune the graph (sparsify + polarize) with ADMM, then retrain;
Step 3: structurally sparsify patches, then retrain.

``run_gcod`` returns a :class:`GCoDResult` holding the graph after every
step, the block layout, per-step accuracies, and a training-cost accounting
that reproduces the paper's 0.7x-1.1x overhead claim and its 5%/50%/45%
per-step cost split.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from repro.algorithm.admm import ADMMResult, admm_sparsify_polarize
from repro.algorithm.config import GCoDConfig
from repro.algorithm.earlybird import EarlyBirdDetector
from repro.algorithm.structural import StructuralResult, structural_sparsify
from repro.graphs.graph import Graph
from repro.nn.models import build_model
from repro.nn.models.base import GNNModel, GraphOps
from repro.nn.training import TrainResult, train_model
from repro.partition.layout import BlockLayout, partition_graph
from repro.runtime.counters import record_gcod_run
from repro.utils.rng import ensure_rng


@dataclass
class GCoDResult:
    """Everything produced by one GCoD run."""

    arch: str
    config: GCoDConfig
    layout: BlockLayout
    partitioned_graph: Graph
    tuned_graph: Graph
    final_graph: Graph
    model: GNNModel
    accuracy_pretrain: float
    accuracy_after_tuning: float
    accuracy_final: float
    admm: ADMMResult
    structural: StructuralResult
    pretrain_epochs_run: int
    early_bird_epoch: Optional[int]
    cost_breakdown: Dict[str, float] = field(default_factory=dict)

    @property
    def total_edge_reduction(self) -> float:
        """Fraction of original edges removed across steps 2 + 3."""
        before = self.partitioned_graph.adj.nnz
        after = self.final_graph.adj.nnz
        return 1.0 - after / max(before, 1)

    def to_summary_dict(self) -> Dict[str, object]:
        """Machine-readable summary (cache-entry metadata, JSON reports).

        Deliberately scalar-only: the heavyweight payload (graphs, model,
        ADMM history) stays in the pickled artifact; this is what ``repro
        cache ls`` and ``report.json`` surface about a run.
        """
        return {
            "arch": self.arch,
            "dataset": self.final_graph.name,
            "seed": self.config.seed,
            "accuracy_pretrain": float(self.accuracy_pretrain),
            "accuracy_after_tuning": float(self.accuracy_after_tuning),
            "accuracy_final": float(self.accuracy_final),
            "total_edge_reduction": float(self.total_edge_reduction),
            "dense_fraction": float(
                self.layout.dense_fraction(self.final_graph.adj)
            ),
            "pretrain_epochs_run": int(self.pretrain_epochs_run),
            "early_bird_epoch": self.early_bird_epoch,
            "relative_cost": float(
                self.cost_breakdown.get("relative_cost", 0.0)
            ),
        }

    def summary(self) -> str:
        """One-paragraph human-readable summary."""
        return (
            f"GCoD[{self.arch}] on {self.final_graph.name}: "
            f"acc {self.accuracy_pretrain:.3f} -> {self.accuracy_final:.3f}, "
            f"edges kept {1 - self.total_edge_reduction:.1%}, "
            f"dense fraction {self.layout.dense_fraction(self.final_graph.adj):.1%}, "
            f"training cost {self.cost_breakdown.get('relative_cost', 0):.2f}x standard"
        )


class GCoDTrainer:
    """Runs the three GCoD steps; see :func:`run_gcod` for the one-liner."""

    def __init__(self, arch: str = "gcn", config: Optional[GCoDConfig] = None):
        self.arch = arch
        self.config = config or GCoDConfig()

    def run(self, graph: Graph) -> GCoDResult:
        """Execute Steps 1-3 on ``graph`` and return the full result."""
        # The artifact store's warm-cache guarantee ("a warm report performs
        # zero training runs") is asserted against this counter.
        record_gcod_run()
        cfg = self.config
        rng = ensure_rng(cfg.seed)

        # ---------------- Step 1: partition + pretrain --------------------
        part_graph, layout = partition_graph(
            graph,
            num_classes=cfg.num_classes,
            num_groups=cfg.num_groups,
            num_subgraphs=cfg.num_subgraphs,
            rng=rng,
        )
        model = build_model(self.arch, part_graph, rng=cfg.seed)
        detector = (
            EarlyBirdDetector(
                prune_ratio=cfg.early_bird_prune_ratio,
                threshold=cfg.early_bird_threshold,
                patience=cfg.early_bird_patience,
            )
            if cfg.early_bird
            else None
        )
        pretrain = train_model(
            model,
            part_graph,
            epochs=cfg.pretrain_epochs,
            lr=cfg.lr,
            weight_decay=cfg.weight_decay,
            epoch_callback=detector,
            kernel_backend=cfg.kernel_backend,
        )

        # ---------------- Step 2: sparsify + polarize, retrain ------------
        admm = admm_sparsify_polarize(part_graph, model, cfg)
        tuned_graph = part_graph.with_adj(admm.pruned_adj)
        tuned_graph.meta["layout"] = layout
        model = build_model(self.arch, tuned_graph, rng=cfg.seed)
        retrain2 = train_model(
            model,
            tuned_graph,
            epochs=cfg.retrain_epochs,
            lr=cfg.lr,
            weight_decay=cfg.weight_decay,
            kernel_backend=cfg.kernel_backend,
        )

        # ---------------- Step 3: structural sparsify, retrain ------------
        structural = structural_sparsify(
            tuned_graph.adj,
            layout=layout,
            patch_threshold=cfg.patch_threshold,
            patch_size=cfg.auto_patch_size(tuned_graph.num_nodes),
            off_diagonal_only=cfg.off_diagonal_only,
        )
        final_graph = tuned_graph.with_adj(structural.pruned_adj)
        final_graph.meta["layout"] = layout
        model = build_model(self.arch, final_graph, rng=cfg.seed)
        retrain3 = train_model(
            model,
            final_graph,
            epochs=cfg.retrain_epochs,
            lr=cfg.lr,
            weight_decay=cfg.weight_decay,
            kernel_backend=cfg.kernel_backend,
        )

        cost = self._cost_breakdown(pretrain, admm, retrain2, retrain3)
        return GCoDResult(
            arch=self.arch,
            config=cfg,
            layout=layout,
            partitioned_graph=part_graph,
            tuned_graph=tuned_graph,
            final_graph=final_graph,
            model=model,
            accuracy_pretrain=pretrain.test_accuracy,
            accuracy_after_tuning=retrain2.test_accuracy,
            accuracy_final=retrain3.test_accuracy,
            admm=admm,
            structural=structural,
            pretrain_epochs_run=pretrain.epochs_run,
            early_bird_epoch=detector.found_epoch if detector else None,
            cost_breakdown=cost,
        )

    def _cost_breakdown(
        self,
        pretrain: TrainResult,
        admm: ADMMResult,
        retrain2: TrainResult,
        retrain3: TrainResult,
    ) -> Dict[str, float]:
        """Account training cost in epoch-equivalents (Sec. IV-B2).

        One ADMM inner step costs about one forward/backward, i.e. one
        epoch-equivalent. Retraining after pruning touches only the winning
        subnetwork, so its per-epoch cost is discounted by the kept-edge
        fraction on the aggregation side (~the dominant cost for GCNs).
        """
        cfg = self.config
        admm_epochs = cfg.admm_iterations * cfg.admm_inner_steps
        kept = admm.kept_edge_fraction
        step1 = float(pretrain.epochs_run)
        step2 = admm_epochs + retrain2.epochs_run * (0.5 + 0.5 * kept)
        step3 = retrain3.epochs_run * (0.5 + 0.5 * kept)
        total = step1 + step2 + step3
        standard = float(cfg.pretrain_epochs)
        return {
            "step1_epochs": step1,
            "step2_epochs": step2,
            "step3_epochs": step3,
            "total_epochs": total,
            "standard_epochs": standard,
            "relative_cost": total / standard,
            "step1_fraction": step1 / total,
            "step2_fraction": step2 / total,
            "step3_fraction": step3 / total,
        }


def run_gcod(
    graph: Graph, arch: str = "gcn", config: Optional[GCoDConfig] = None
) -> GCoDResult:
    """Run the full GCoD pipeline on ``graph`` with model ``arch``."""
    return GCoDTrainer(arch=arch, config=config).run(graph)
