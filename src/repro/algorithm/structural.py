"""Step 3: structural sparsification — prune near-empty patches (Sec. IV-B1).

The reordered adjacency is tiled into square *patches* (Fig. 2); any patch
with fewer than ``η`` non-zeros is pruned entirely, leaving the "vacancies"
visible in Fig. 4. Emptied patches translate directly into hardware savings:
whole columns of the sparser branch's CSC input can be skipped.

Pruning is restricted to off-diagonal patches by default so the dense
subgraph blocks (the denser branch's balanced workload) are never damaged.
Because square tiles of a symmetric matrix have symmetric counts, the pruned
adjacency stays symmetric without extra work.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np
import scipy.sparse as sp

from repro.algorithm.config import GCoDConfig
from repro.partition.layout import BlockLayout


@dataclass
class StructuralResult:
    """Outcome of patch pruning."""

    pruned_adj: sp.csr_matrix
    removed_edges: int
    removed_fraction: float
    pruned_patches: int
    total_patches: int
    patch_size: int


def patch_nnz_counts(adj: sp.spmatrix, patch_size: int) -> sp.csr_matrix:
    """Non-zero count of every ``patch_size``-square tile, as a sparse matrix.

    Entry (I, J) of the result is the nnz of patch (I, J). Only non-empty
    patches are stored.
    """
    coo = sp.coo_matrix(adj)
    n_rows = -(-adj.shape[0] // patch_size)
    n_cols = -(-adj.shape[1] // patch_size)
    pr = coo.row // patch_size
    pc = coo.col // patch_size
    return sp.csr_matrix(
        (np.ones(coo.nnz), (pr, pc)), shape=(n_rows, n_cols)
    )


def structural_sparsify(
    adj: sp.spmatrix,
    layout: Optional[BlockLayout] = None,
    patch_threshold: int = 10,
    patch_size: int = 16,
    off_diagonal_only: bool = True,
) -> StructuralResult:
    """Prune every patch whose nnz is below ``patch_threshold`` (η).

    With ``off_diagonal_only`` and a ``layout``, entries inside diagonal
    subgraph blocks are exempt — those are the denser branch's workload and
    their balance must be preserved.
    """
    adj = sp.csr_matrix(adj)
    coo = adj.tocoo()
    counts = patch_nnz_counts(adj, patch_size)
    dense_counts = np.asarray(counts.todense())
    pr = coo.row // patch_size
    pc = coo.col // patch_size
    prune_entry = dense_counts[pr, pc] < patch_threshold
    if off_diagonal_only and layout is not None:
        diagonal = layout.diagonal_mask(coo)
        prune_entry &= ~diagonal

    keep = ~prune_entry
    pruned = sp.csr_matrix(
        (coo.data[keep], (coo.row[keep], coo.col[keep])), shape=adj.shape
    )
    nonempty = dense_counts > 0
    prunable = nonempty & (dense_counts < patch_threshold)
    return StructuralResult(
        pruned_adj=pruned,
        removed_edges=int(prune_entry.sum()) // 2,
        removed_fraction=float(prune_entry.sum()) / max(coo.nnz, 1),
        pruned_patches=int(prunable.sum()),
        total_patches=int(nonempty.sum()),
        patch_size=patch_size,
    )
