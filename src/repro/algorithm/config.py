"""Hyper-parameters for the GCoD training pipeline."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.errors import ConfigError


@dataclass
class GCoDConfig:
    """All knobs of the three-step GCoD algorithm (Sec. IV-B).

    Defaults follow the paper where stated: 400-epoch budget, prune ratio
    ~10% (the SOTA ratio GCoD reaches without accuracy loss), patch
    threshold η in [10, 30], C classes and S subgraphs from the ablation
    ranges.
    """

    # Step 1: partitioning
    num_classes: int = 2
    num_groups: int = 2
    num_subgraphs: int = 8

    # Step 1: pretraining
    pretrain_epochs: int = 400
    early_bird: bool = True
    early_bird_threshold: float = 0.10
    early_bird_patience: int = 3
    early_bird_prune_ratio: float = 0.5

    # Step 2: sparsify + polarize (ADMM)
    prune_ratio: float = 0.10
    pola_weight: float = 1.0
    admm_rho: float = 1e-2
    admm_iterations: int = 4
    admm_inner_steps: int = 20
    admm_lr: float = 0.05
    protect_connectivity: bool = True

    # Step 3: structural sparsification
    patch_threshold: int = 10  # η
    patch_size: int = 0  # 0 = auto (derived from N and S)
    off_diagonal_only: bool = True

    # Retraining after steps 2 and 3
    retrain_epochs: int = 200

    # Misc
    lr: float = 0.01
    weight_decay: float = 5e-4
    seed: int = 0
    # SpMM kernel backend for every aggregation the pipeline performs
    # (None = the registry default, "vectorized").
    kernel_backend: Optional[str] = None

    def __post_init__(self):
        if self.kernel_backend is not None:
            # Resolve eagerly so a typo fails at configuration time with the
            # registry's clear unknown-backend message.
            from repro.sparse.kernels import get_backend

            get_backend(self.kernel_backend)
        if not 0.0 <= self.prune_ratio < 1.0:
            raise ConfigError("prune_ratio must be in [0, 1)")
        if self.num_classes < 1 or self.num_groups < 1:
            raise ConfigError("num_classes and num_groups must be >= 1")
        if self.num_subgraphs < self.num_classes:
            raise ConfigError("need at least one subgraph per class")
        if self.admm_iterations < 0 or self.admm_inner_steps < 0:
            raise ConfigError(
                "admm_iterations and admm_inner_steps must be non-negative"
            )
        if self.patch_threshold < 0:
            raise ConfigError("patch_threshold must be non-negative")

    def auto_patch_size(self, num_nodes: int) -> int:
        """Patch edge length: explicit if set, else ~1/4 of a subgraph side."""
        if self.patch_size > 0:
            return self.patch_size
        approx_subgraph = max(num_nodes // max(self.num_subgraphs, 1), 4)
        return max(4, approx_subgraph // 4)
