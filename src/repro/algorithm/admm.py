"""Step 2: graph tuning — ADMM sparsification + polarization (Eq. 4).

With the GCN's weights frozen, the adjacency's edge weights become the
trainable parameters and the loss is::

    L_Graph(A) = L_GCN(A) + L_SP(A) + L_Pola(A)

* ``L_GCN(A)`` — the task cross-entropy, differentiated through
  :func:`repro.nn.functional.edge_spmm`;
* ``L_SP(A)`` — the L0 pruning constraint ``||A||_0 <= (1 - p) ||A_0||_0``,
  non-differentiable, handled with ADMM following SGCN [23]: an auxiliary
  variable ``z`` is projected onto the k-sparse set each outer iteration and
  a quadratic penalty ``rho/2 ||w - z + u||^2`` pulls ``w`` toward it;
* ``L_Pola(A)`` — ``1/M * Σ_e w_e |i_e - j_e|``: surviving mass is pulled
  toward the (block) diagonal of the *reordered* adjacency, polarizing the
  matrix into dense diagonal blocks + a light remainder.

Undirected edges are tuned as single variables (the two stored triangles
share one weight), so the result stays symmetric by construction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np
import scipy.sparse as sp

from repro.algorithm.config import GCoDConfig
from repro.graphs.graph import Graph
from repro.nn import functional as F
from repro.nn.models.base import GNNModel, GraphOps
from repro.nn.optim import Adam
from repro.nn.tensor import Tensor


@dataclass
class ADMMResult:
    """Outcome of the sparsify-and-polarize step."""

    pruned_adj: sp.csr_matrix
    kept_edge_fraction: float
    history: list
    polarization_before: float
    polarization_after: float


def _undirected_pairs(adj: sp.csr_matrix) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Map stored entries to undirected-pair variables.

    Returns ``(rows, cols, pair_id)`` over stored nnz, where symmetric
    entries (u, v) and (v, u) share a ``pair_id``.
    """
    coo = adj.tocoo()
    n = adj.shape[0]
    lo = np.minimum(coo.row, coo.col)
    hi = np.maximum(coo.row, coo.col)
    keys = lo * n + hi
    _, pair_id = np.unique(keys, return_inverse=True)
    return coo.row.astype(np.int64), coo.col.astype(np.int64), pair_id


def polarization_loss(adj: sp.spmatrix) -> float:
    """``L_Pola = 1/M * Σ |i - j|`` over non-zeros, normalized by N.

    Lower is better: mass sits near the diagonal. Computed on binary
    support so pruning cannot cheat the metric by shrinking values.
    """
    coo = sp.coo_matrix(adj)
    if coo.nnz == 0:
        return 0.0
    n = max(coo.shape[0], 1)
    return float(np.abs(coo.row - coo.col).mean()) / n


def _project_topk(values: np.ndarray, k: int) -> np.ndarray:
    """Euclidean projection onto the set of at-most-k-sparse vectors."""
    out = np.zeros_like(values)
    if k <= 0:
        return out
    if k >= values.size:
        return values.copy()
    keep = np.argpartition(np.abs(values), -k)[-k:]
    out[keep] = values[keep]
    return out


def admm_sparsify_polarize(
    graph: Graph,
    model: GNNModel,
    config: Optional[GCoDConfig] = None,
) -> ADMMResult:
    """Tune ``graph.adj`` under a frozen ``model`` (GCoD Step 2).

    The graph should already be reordered by Step 1 so the polarization
    distance is measured in the blocked order. Returns the pruned, binary,
    symmetric adjacency plus diagnostics.
    """
    config = config or GCoDConfig()
    adj = sp.csr_matrix(graph.adj)
    rows, cols, pair_id = _undirected_pairs(adj)
    num_pairs = int(pair_id.max()) + 1 if pair_id.size else 0
    keep_pairs = int(round(num_pairs * (1.0 - config.prune_ratio)))

    # Per-pair polarization distance (both triangles share it).
    dist = np.zeros(num_pairs)
    dist[pair_id] = np.abs(rows - cols) / max(graph.num_nodes, 1)

    w_pairs = Tensor(np.ones(num_pairs), requires_grad=True)
    z = np.ones(num_pairs)
    u = np.zeros(num_pairs)
    opt = Adam([w_pairs], lr=config.admm_lr)
    x = Tensor(graph.features)
    model.eval()  # freeze batch-norm stats / dropout; weights get no grads
    for p in model.parameters():
        p.requires_grad = False

    pola_before = polarization_loss(adj)
    history = []
    # admm_inner_steps == 0 is a legal (projection-only) configuration: the
    # inner loop never runs, so the losses it would define stay None and the
    # history records NaN for them instead of crashing.
    task_loss = pola = None
    for _ in range(config.admm_iterations):
        for _ in range(config.admm_inner_steps):
            opt.zero_grad()
            ops = GraphOps(
                adj,
                edge_weights=_expand(
                    w_pairs, pair_id, backend=config.kernel_backend
                ),
                kernel_backend=config.kernel_backend,
            )
            logits = model(x, ops)
            task_loss = F.cross_entropy(logits, graph.labels, graph.train_mask)
            pola = (w_pairs * Tensor(dist)).sum() * Tensor(
                config.pola_weight / max(num_pairs, 1)
            )
            penalty = ((w_pairs + Tensor(-(z - u))) * (w_pairs + Tensor(-(z - u)))).sum() * Tensor(config.admm_rho / 2.0)
            loss = task_loss + pola + penalty
            loss.backward()
            opt.step()
            np.clip(w_pairs.data, 0.0, 1.0, out=w_pairs.data)
        z = _project_topk(w_pairs.data + u, keep_pairs)
        u = u + w_pairs.data - z
        history.append(
            {
                "task_loss": (
                    float(task_loss.data) if task_loss is not None
                    else float("nan")
                ),
                "pola": float(pola.data) if pola is not None else float("nan"),
                "residual": float(np.abs(w_pairs.data - z).mean()),
            }
        )

    # Final support: z's top-k, optionally protecting each node's best edge.
    scores = w_pairs.data + u
    keep = np.zeros(num_pairs, dtype=bool)
    if keep_pairs > 0:
        keep[np.argpartition(np.abs(scores), -keep_pairs)[-keep_pairs:]] = True
    if config.protect_connectivity and num_pairs:
        keep |= _best_edge_per_node(rows, cols, pair_id, scores, graph.num_nodes)

    entry_keep = keep[pair_id]
    pruned = sp.csr_matrix(
        (
            np.ones(int(entry_keep.sum())),
            (rows[entry_keep], cols[entry_keep]),
        ),
        shape=adj.shape,
    )
    for p in model.parameters():
        p.requires_grad = True
    return ADMMResult(
        pruned_adj=pruned,
        kept_edge_fraction=float(keep.sum()) / max(num_pairs, 1),
        history=history,
        polarization_before=pola_before,
        polarization_after=polarization_loss(pruned),
    )


def _expand(w_pairs: Tensor, pair_id: np.ndarray, backend=None) -> Tensor:
    """Expand per-pair weights to per-stored-entry weights (differentiable).

    ``gather_rows`` indexes along axis 0, which for a 1-D tensor is exactly
    the per-entry expansion; its backward scatter-adds gradients from both
    stored triangles back onto the shared pair variable.
    """
    return F.gather_rows(w_pairs, pair_id, backend=backend)


def _best_edge_per_node(
    rows: np.ndarray,
    cols: np.ndarray,
    pair_id: np.ndarray,
    scores: np.ndarray,
    num_nodes: int,
) -> np.ndarray:
    """Mark the highest-scoring incident pair of every node as kept.

    Prevents the pruning from isolating nodes, which would silently zero
    their aggregation (and can crash METIS-style post-processing).
    """
    best_score = np.full(num_nodes, -np.inf)
    s = scores[pair_id]
    np.maximum.at(best_score, rows, s)
    np.maximum.at(best_score, cols, s)
    # An entry achieving its endpoint's best score pins its pair (ties keep
    # a few extra pairs, which only errs on the safe side).
    winning = (s >= best_score[rows]) | (s >= best_score[cols])
    keep = np.zeros(int(pair_id.max()) + 1, dtype=bool)
    keep[pair_id[winning]] = True
    return keep
