"""The GCoD split-and-conquer training algorithm (Sec. IV).

Three steps, orchestrated by :func:`run_gcod` / :class:`GCoDTrainer`:

1. partition the graph and pretrain the GCN (with optional early-bird
   early stopping);
2. tune the graph — ADMM-driven sparsification plus polarization — and
   retrain;
3. structurally sparsify patches and retrain again.
"""

from repro.algorithm.config import GCoDConfig
from repro.algorithm.admm import ADMMResult, admm_sparsify_polarize, polarization_loss
from repro.algorithm.structural import (
    patch_nnz_counts,
    structural_sparsify,
)
from repro.algorithm.earlybird import EarlyBirdDetector
from repro.algorithm.pipeline import GCoDResult, GCoDTrainer, run_gcod

__all__ = [
    "GCoDConfig",
    "ADMMResult",
    "admm_sparsify_polarize",
    "polarization_loss",
    "patch_nnz_counts",
    "structural_sparsify",
    "EarlyBirdDetector",
    "GCoDResult",
    "GCoDTrainer",
    "run_gcod",
]
