"""Early-bird ticket detection (Sec. IV-B2, following [45], [46]).

GCoD keeps training costs near standard GCN training by stopping pretraining
as soon as the "winning subnetwork" stabilizes: at every epoch, prune the
model's weights to the top-(1-p) fraction by magnitude and compare the
resulting binary mask with recent epochs' masks. Once the Hamming distance
stays below a threshold for ``patience`` consecutive epochs, the ticket is
drawn and pretraining stops (the paper finds this happens within 10-20 of
400 epochs).
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.nn.layers import Module


def magnitude_mask(model: Module, prune_ratio: float) -> Dict[str, np.ndarray]:
    """Binary keep-masks for every weight matrix (top (1-ratio) by |w|)."""
    masks = {}
    for name, param in model.named_parameters():
        if param.data.ndim < 2:
            continue  # biases and norm scales are never pruned
        flat = np.abs(param.data).ravel()
        k = int(round(flat.size * (1.0 - prune_ratio)))
        mask = np.zeros(flat.size, dtype=bool)
        if k > 0:
            mask[np.argpartition(flat, -k)[-k:]] = True
        masks[name] = mask.reshape(param.data.shape)
    return masks


def mask_distance(
    a: Dict[str, np.ndarray], b: Dict[str, np.ndarray]
) -> float:
    """Normalized Hamming distance between two mask dictionaries."""
    total, differing = 0, 0
    for name in a:
        if name not in b:
            continue
        total += a[name].size
        differing += int((a[name] != b[name]).sum())
    return differing / total if total else 0.0


class EarlyBirdDetector:
    """Stateful detector usable as a ``train_model`` epoch callback."""

    def __init__(
        self,
        prune_ratio: float = 0.5,
        threshold: float = 0.10,
        patience: int = 3,
        window: int = 5,
    ):
        self.prune_ratio = prune_ratio
        self.threshold = threshold
        self.patience = patience
        self.window = window
        self._masks: List[Dict[str, np.ndarray]] = []
        self._stable_epochs = 0
        self.found_epoch: Optional[int] = None

    def __call__(self, epoch: int, model: Module, val_acc: float) -> bool:
        """Record this epoch's mask; return True when the ticket is drawn."""
        mask = magnitude_mask(model, self.prune_ratio)
        self._masks.append(mask)
        if len(self._masks) > self.window:
            self._masks.pop(0)
        if len(self._masks) < 2:
            return False
        max_dist = max(
            mask_distance(mask, earlier) for earlier in self._masks[:-1]
        )
        if max_dist < self.threshold:
            self._stable_epochs += 1
        else:
            self._stable_epochs = 0
        if self._stable_epochs >= self.patience:
            if self.found_epoch is None:
                self.found_epoch = epoch
            return True
        return False
