"""The content-addressed artifact store, over a pluggable byte backend.

Layout: ``<kind>/<digest>.pkl`` holds the pickled artifact and
``<kind>/<digest>.json`` a small metadata sidecar (the key payload,
creation time, payload sizes, plus any artifact summary the producer
attached). Everything is addressed by the stable keys built in
:mod:`repro.runtime.keys`, so a second process — or a second machine with
the same code — computes the same digests and reuses the same entries.

Where the bytes live is a :class:`~repro.runtime.backends.StoreBackend`:
the default is the original local directory layout; an ``http(s)://``
locator (``--store-url`` / ``$REPRO_STORE_URL``) selects the client for
the object store behind ``repro store serve``, letting many hosts share
one cache (and one sweep work ledger — :mod:`repro.sweep.ledger`).

Robustness rules:

* writes are atomic, so a killed process never leaves a half-written
  entry under a valid name; the metadata sidecar is committed *before*
  the data blob, so an entry becomes visible only when its metadata
  already exists — a kill between the two writes leaves an invisible
  orphan sidecar, never a data blob that lists with empty metadata;
* reads of corrupted entries (truncated pickle, stale class layout) are
  treated as a cache miss — the entry is deleted and the caller
  recomputes; reads and writes that fail for environmental reasons
  (permissions, disk errors, memory pressure, an unreachable store
  server) also degrade to misses but leave the stored bytes alone;
* ``put`` never raises: unpicklable artifacts/summaries and unwritable
  backends degrade to not persisting, with a note on stderr — the store
  never makes a run fail;
* the root directory is created lazily on first write, so read-only
  users never touch the filesystem; opening a local store lazily sweeps
  ``.tmp-*.part`` orphans left by killed writers (reported by
  ``repro cache stats``), so an unattended cache cannot leak disk.
"""

from __future__ import annotations

import json
import os
import pickle
import time
from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Optional

from repro.runtime.backends import (
    STALE_TMP_S,
    LocalDirBackend,
    StoreBackend,
    StoreBackendError,
    open_backend,
)
from repro.runtime.keys import (
    ArtifactKey,
    CODE_SCHEMA_VERSION,
    KIND_CLAIM,
    canonical_json,
)

#: Environment variable overriding the default cache location.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"
#: Environment variable selecting a shared store server URL.
STORE_URL_ENV = "REPRO_STORE_URL"


def default_cache_dir() -> str:
    """``$REPRO_STORE_URL`` or ``$REPRO_CACHE_DIR`` if set, else
    ``~/.cache/repro-gcod``."""
    url = os.environ.get(STORE_URL_ENV)
    if url:
        return url
    env = os.environ.get(CACHE_DIR_ENV)
    if env:
        return env
    xdg = os.environ.get("XDG_CACHE_HOME", os.path.expanduser("~/.cache"))
    return os.path.join(xdg, "repro-gcod")


@dataclass
class StoreEntry:
    """One artifact as listed by :meth:`ArtifactStore.entries`."""

    kind: str
    digest: str
    size_bytes: int
    created: float
    meta: Dict[str, Any]


class ArtifactStore:
    """Content-addressed pickle store over one backend.

    ``root`` is a *locator*: a local directory path (the default), an
    ``http(s)://`` store URL, or an already-built
    :class:`~repro.runtime.backends.StoreBackend`. ``store.root`` always
    round-trips — ``ArtifactStore(other.root)`` opens the same store, so
    pool workers and remote hosts can be handed the locator string.
    """

    #: age after which a ``.tmp-*.part`` file is an orphan (local roots).
    _STALE_TMP_S = STALE_TMP_S

    def __init__(self, root: Optional[str] = None):
        if isinstance(root, StoreBackend):
            self.backend = root
        else:
            self.backend = open_backend(root or default_cache_dir())
        self.root = self.backend.locator
        #: stale temp files reclaimed when this (local) store was opened.
        self.reclaimed_tmp = 0
        self.reclaimed_tmp_bytes = 0
        if isinstance(self.backend, LocalDirBackend):
            # Lazy crash-debris sweep: a killed writer's orphaned
            # .tmp-*.part files used to be invisible to everything but
            # `repro cache clear` and leaked disk forever.
            self.reclaimed_tmp, self.reclaimed_tmp_bytes = (
                self.backend.sweep_stale_temps(self._STALE_TMP_S)
            )

    @property
    def is_remote(self) -> bool:
        """True when this store is shared across hosts (a served store)."""
        return self.backend.shared

    # ------------------------------------------------------------------
    # naming
    # ------------------------------------------------------------------
    @staticmethod
    def _data_name(digest: str) -> str:
        return digest + ".pkl"

    @staticmethod
    def _meta_name(digest: str) -> str:
        return digest + ".json"

    # Local-path helpers kept for tooling/tests that inspect the on-disk
    # layout directly; only meaningful for directory-backed stores.
    def _dir(self, kind: str) -> str:
        return os.path.join(self.root, kind)

    def _data_path(self, key: ArtifactKey) -> str:
        return os.path.join(self._dir(key.kind), self._data_name(key.digest))

    def _meta_path(self, key: ArtifactKey) -> str:
        return os.path.join(self._dir(key.kind), self._meta_name(key.digest))

    # ------------------------------------------------------------------
    # read / write
    # ------------------------------------------------------------------
    def contains(self, key: ArtifactKey) -> bool:
        """True if an entry for ``key`` exists."""
        return self.backend.exists(key.kind, self._data_name(key.digest))

    def contains_digest(self, kind: str, digest: str) -> bool:
        """True if an entry of ``kind`` with ``digest`` exists.

        Lets a consumer that recorded only digests (a sweep manifest's
        planned-point list) check membership without rebuilding the full
        key payloads.
        """
        return self.backend.exists(kind, self._data_name(digest))

    def get(self, key: ArtifactKey) -> Optional[Any]:
        """The stored artifact, or ``None`` on a miss *or* corrupted entry."""
        blob = self.backend.read(key.kind, self._data_name(key.digest))
        if blob is None:
            # Miss, or a transient backend failure (EIO, permissions, an
            # unreachable server): treat as a miss, keep the entry.
            return None
        try:
            return pickle.loads(blob)
        except MemoryError:
            return None  # memory pressure: the stored bytes may be fine
        except (pickle.UnpicklingError, EOFError, AttributeError,
                ImportError, IndexError, KeyError, TypeError,
                ValueError) as exc:
            # The concrete ways a stored blob fails to load: truncated or
            # garbled pickle (UnpicklingError/EOFError/IndexError/
            # ValueError/KeyError) and a stale class layout from an older
            # code version (AttributeError/ImportError/TypeError).
            # Recover by dropping the entry so the caller recomputes it —
            # with a note, so corruption is visible instead of reading as
            # an ordinary miss. Anything outside this set propagates:
            # swallowing an unexpected error here hid real bugs before.
            import sys

            print(f"artifact store: dropping corrupted entry {key.short} "
                  f"({type(exc).__name__}: {exc}); recomputing",
                  file=sys.stderr)
            self.invalidate(key)
            return None

    def put(
        self,
        key: ArtifactKey,
        artifact: Any,
        summary: Optional[Dict[str, Any]] = None,
    ) -> ArtifactKey:
        """Atomically persist ``artifact`` under ``key``; returns ``key``.

        Best-effort: an unwritable cache (permissions, disk full, a dead
        store server) *or an unserializable artifact/summary* must not
        crash the run that just produced an expensive result — the store
        degrades to not persisting, with a note on stderr.
        """
        try:
            blob = pickle.dumps(artifact, protocol=pickle.HIGHEST_PROTOCOL)
            meta = {
                "kind": key.kind,
                "digest": key.digest,
                "schema": CODE_SCHEMA_VERSION,
                "created": time.time(),
                "size_bytes": len(blob),
                "key": key.payload,
            }
            if summary:
                meta["summary"] = summary
            meta_blob = canonical_json(meta).encode("utf-8")
        except Exception as exc:
            # pickle.PicklingError, RecursionError, a TypeError from an
            # unserializable summary: the artifact exists only in memory,
            # which is exactly where the caller already has it.
            self._degrade_note(key, exc)
            return key
        try:
            # Sidecar first: the entry becomes visible (the .pkl exists)
            # only once its metadata is durable, so a kill between the
            # two writes can never produce a listable entry with empty
            # metadata and no schema tag.
            self.backend.write(
                key.kind, self._meta_name(key.digest), meta_blob
            )
            self.backend.write(key.kind, self._data_name(key.digest), blob)
        except (OSError, StoreBackendError) as exc:
            self._degrade_note(key, exc)
        return key

    @staticmethod
    def _degrade_note(key: ArtifactKey, exc: Exception) -> None:
        import sys

        print(f"artifact store: could not persist {key.short} "
              f"({exc}); continuing without caching it",
              file=sys.stderr)

    # ------------------------------------------------------------------
    # work-ledger claims (atomic put-if-absent entries)
    # ------------------------------------------------------------------
    def claim(self, name: str, payload: Dict[str, Any]) -> bool:
        """Atomically create claim ``name``; True iff this caller won.

        Claims are tiny canonical-JSON blobs under the ``claim`` kind —
        the mutual-exclusion primitive the distributed sweep ledger
        (:mod:`repro.sweep.ledger`) builds on. A backend failure counts
        as a lost claim (somebody has to not win; the cautious answer).
        """
        blob = canonical_json(payload).encode("utf-8")
        try:
            return self.backend.put_if_absent(
                KIND_CLAIM, self._meta_name(name), blob
            )
        except StoreBackendError:
            return False

    def read_claim(self, name: str) -> Optional[Dict[str, Any]]:
        """The payload of claim ``name``, or ``None``."""
        blob = self.backend.read(KIND_CLAIM, self._meta_name(name))
        if blob is None:
            return None
        try:
            payload = json.loads(blob.decode("utf-8"))
        except (ValueError, UnicodeDecodeError):
            return None  # garbled claim: callers treat it as stale
        return payload if isinstance(payload, dict) else None

    def release_claim(self, name: str) -> bool:
        """Delete claim ``name``; True iff it existed."""
        return self.backend.delete(KIND_CLAIM, self._meta_name(name))

    # ------------------------------------------------------------------
    # invalidation / introspection
    # ------------------------------------------------------------------
    def invalidate(self, key: ArtifactKey) -> bool:
        """Remove the entry for ``key``; True if anything was deleted."""
        removed = False
        for name in (self._data_name(key.digest),
                     self._meta_name(key.digest)):
            if self.backend.delete(key.kind, name):
                removed = True
        return removed

    def clear(self, kind: Optional[str] = None) -> int:
        """Delete every entry (of ``kind``, or all kinds); returns the count.

        On local roots this also reclaims stale ``.tmp-*.part`` orphans
        (another process's *fresh* in-flight write survives).
        """
        removed = 0
        for entry_kind in self.backend.list_kinds():
            if kind is not None and entry_kind != kind:
                continue
            for name in self.backend.list_names(entry_kind):
                if self.backend.delete(entry_kind, name) and \
                        name.endswith(".pkl"):
                    removed += 1
        if kind is None and isinstance(self.backend, LocalDirBackend):
            self.backend.sweep_stale_temps(self._STALE_TMP_S)
        return removed

    def _kinds(self) -> List[str]:
        return self.backend.list_kinds()

    def entries(self, kind: Optional[str] = None) -> Iterator[StoreEntry]:
        """Iterate over stored entries (newest first within each kind)."""
        for entry_kind in self._kinds():
            if kind is not None and entry_kind != kind:
                continue
            names = self.backend.list_names(entry_kind)
            found = []
            for fname in names:
                if not fname.endswith(".pkl"):
                    continue
                digest = fname[: -len(".pkl")]
                meta: Dict[str, Any] = {}
                raw = self.backend.read(
                    entry_kind, self._meta_name(digest)
                )
                if raw is not None:
                    try:
                        meta = json.loads(raw.decode("utf-8"))
                    except (ValueError, UnicodeDecodeError):
                        meta = {}
                stat = self.backend.stat(entry_kind, fname)
                if stat is None:
                    continue  # deleted concurrently (clear/invalidate race)
                found.append(
                    StoreEntry(
                        kind=entry_kind,
                        digest=digest,
                        size_bytes=stat.size_bytes,
                        created=meta.get("created", stat.mtime),
                        meta=meta,
                    )
                )
            yield from sorted(found, key=lambda e: e.created, reverse=True)

    def stats(self) -> Dict[str, Dict[str, float]]:
        """Per-kind ``{"entries": n, "bytes": total}`` plus a ``total`` row.

        Local stores also report crash debris under a ``tmp`` pseudo-kind
        (in-flight/orphaned ``.tmp-*.part`` files, excluded from
        ``total``) so leaked temp space is visible in ``repro cache
        stats`` instead of silently accumulating.
        """
        out: Dict[str, Dict[str, float]] = {}
        total_n, total_b = 0, 0
        for entry in self.entries():
            bucket = out.setdefault(entry.kind, {"entries": 0, "bytes": 0})
            bucket["entries"] += 1
            bucket["bytes"] += entry.size_bytes
            total_n += 1
            total_b += entry.size_bytes
        if isinstance(self.backend, LocalDirBackend):
            tmp_n, tmp_b = 0, 0
            for _path, st in self.backend.temp_files():
                tmp_n += 1
                tmp_b += st.st_size
            if tmp_n:
                out["tmp"] = {"entries": tmp_n, "bytes": tmp_b}
        out["total"] = {"entries": total_n, "bytes": total_b}
        return out


_DEFAULT_STORE: Optional[ArtifactStore] = None


def default_store() -> ArtifactStore:
    """A process-wide store rooted at :func:`default_cache_dir`."""
    global _DEFAULT_STORE
    locator = default_cache_dir()
    if not locator.startswith(("http://", "https://")):
        locator = os.path.abspath(locator)
    if _DEFAULT_STORE is None or _DEFAULT_STORE.root != locator:
        _DEFAULT_STORE = ArtifactStore()
    return _DEFAULT_STORE
