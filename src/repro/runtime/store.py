"""The on-disk, content-addressed artifact store.

Layout: ``<root>/<kind>/<digest>.pkl`` holds the pickled artifact and
``<root>/<kind>/<digest>.json`` a small metadata sidecar (the key payload,
creation time, payload sizes, plus any artifact summary the producer
attached). Everything is addressed by the stable keys built in
:mod:`repro.runtime.keys`, so a second process — or a second machine with
the same code — computes the same digests and reuses the same entries.

Robustness rules:

* writes are atomic (temp file + ``os.replace``), so a killed process never
  leaves a half-written entry under a valid name;
* reads of corrupted entries (truncated pickle, stale class layout) are
  treated as a cache miss — the entry is deleted and the caller
  recomputes; reads and writes that fail for environmental reasons
  (permissions, disk errors, memory pressure) also degrade to misses but
  leave the bytes on disk alone — the store never makes a run fail;
* the root directory is created lazily on first write, so read-only users
  never touch the filesystem.
"""

from __future__ import annotations

import os
import pickle
import tempfile
import time
from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Optional

from repro.runtime.keys import ArtifactKey, CODE_SCHEMA_VERSION, canonical_json

#: Environment variable overriding the default cache location.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"


def default_cache_dir() -> str:
    """``$REPRO_CACHE_DIR`` if set, else ``~/.cache/repro-gcod``."""
    env = os.environ.get(CACHE_DIR_ENV)
    if env:
        return env
    xdg = os.environ.get("XDG_CACHE_HOME", os.path.expanduser("~/.cache"))
    return os.path.join(xdg, "repro-gcod")


@dataclass
class StoreEntry:
    """One artifact as listed by :meth:`ArtifactStore.entries`."""

    kind: str
    digest: str
    size_bytes: int
    created: float
    meta: Dict[str, Any]


class ArtifactStore:
    """Content-addressed pickle store under one root directory."""

    def __init__(self, root: Optional[str] = None):
        self.root = os.path.abspath(root or default_cache_dir())

    # ------------------------------------------------------------------
    # paths
    # ------------------------------------------------------------------
    def _dir(self, kind: str) -> str:
        return os.path.join(self.root, kind)

    def _data_path(self, key: ArtifactKey) -> str:
        return os.path.join(self._dir(key.kind), key.digest + ".pkl")

    def _meta_path(self, key: ArtifactKey) -> str:
        return os.path.join(self._dir(key.kind), key.digest + ".json")

    # ------------------------------------------------------------------
    # read / write
    # ------------------------------------------------------------------
    def contains(self, key: ArtifactKey) -> bool:
        """True if an entry for ``key`` exists on disk."""
        return os.path.exists(self._data_path(key))

    def contains_digest(self, kind: str, digest: str) -> bool:
        """True if an entry of ``kind`` with ``digest`` exists on disk.

        Lets a consumer that recorded only digests (a sweep manifest's
        planned-point list) check membership without rebuilding the full
        key payloads.
        """
        return os.path.exists(os.path.join(self._dir(kind), digest + ".pkl"))

    def get(self, key: ArtifactKey) -> Optional[Any]:
        """The stored artifact, or ``None`` on a miss *or* corrupted entry."""
        path = self._data_path(key)
        try:
            with open(path, "rb") as fh:
                return pickle.load(fh)
        except FileNotFoundError:
            return None
        except (OSError, MemoryError):
            # Transient failure (EIO, fd exhaustion, permissions, memory
            # pressure): the bytes on disk may be fine — treat as a miss,
            # keep the entry.
            return None
        except Exception:
            # Truncated/garbled pickle or incompatible class layout: recover
            # by dropping the entry so the caller recomputes it.
            self.invalidate(key)
            return None

    def put(
        self,
        key: ArtifactKey,
        artifact: Any,
        summary: Optional[Dict[str, Any]] = None,
    ) -> ArtifactKey:
        """Atomically persist ``artifact`` under ``key``; returns ``key``.

        Best-effort: an unwritable cache (permissions, disk full) must not
        crash the run that just produced an expensive artifact — the store
        degrades to not persisting, with a note on stderr.
        """
        try:
            directory = self._dir(key.kind)
            os.makedirs(directory, exist_ok=True)
            blob = pickle.dumps(artifact, protocol=pickle.HIGHEST_PROTOCOL)
            meta = {
                "kind": key.kind,
                "digest": key.digest,
                "schema": CODE_SCHEMA_VERSION,
                "created": time.time(),
                "size_bytes": len(blob),
                "key": key.payload,
            }
            if summary:
                meta["summary"] = summary
            self._atomic_write(self._data_path(key), blob)
            self._atomic_write(
                self._meta_path(key), canonical_json(meta).encode("utf-8")
            )
        except OSError as exc:
            import sys

            print(f"artifact store: could not persist {key.short} "
                  f"({exc}); continuing without caching it",
                  file=sys.stderr)
        return key

    @staticmethod
    def _atomic_write(path: str, blob: bytes) -> None:
        fd, tmp = tempfile.mkstemp(
            dir=os.path.dirname(path), prefix=".tmp-", suffix=".part"
        )
        try:
            with os.fdopen(fd, "wb") as fh:
                fh.write(blob)
            os.replace(tmp, path)
        except BaseException:
            if os.path.exists(tmp):
                os.unlink(tmp)
            raise

    # ------------------------------------------------------------------
    # invalidation / introspection
    # ------------------------------------------------------------------
    def invalidate(self, key: ArtifactKey) -> bool:
        """Remove the entry for ``key``; True if anything was deleted."""
        removed = False
        for path in (self._data_path(key), self._meta_path(key)):
            try:
                os.unlink(path)
                removed = True
            except FileNotFoundError:
                pass
        return removed

    def clear(self, kind: Optional[str] = None) -> int:
        """Delete every entry (of ``kind``, or all kinds); returns the count."""
        removed = 0
        for entry_kind in self._kinds():
            if kind is not None and entry_kind != kind:
                continue
            directory = self._dir(entry_kind)
            for fname in os.listdir(directory):
                path = os.path.join(directory, fname)
                if fname.startswith(".tmp-"):
                    # Another process's in-flight atomic write — unless it
                    # is old enough that the writer must have died, in
                    # which case this is the only tool that reclaims it.
                    try:
                        fresh = time.time() - os.stat(path).st_mtime \
                            < self._STALE_TMP_S
                    except FileNotFoundError:
                        continue
                    if fresh:
                        continue
                try:
                    os.unlink(path)
                except FileNotFoundError:
                    continue  # removed concurrently: don't count it
                if fname.endswith(".pkl"):
                    removed += 1
        return removed

    #: age after which a .tmp-*.part file is considered an orphan of a
    #: killed writer (atomic writes complete in seconds).
    _STALE_TMP_S = 600.0

    def _kinds(self) -> List[str]:
        if not os.path.isdir(self.root):
            return []
        return sorted(
            d for d in os.listdir(self.root)
            if os.path.isdir(os.path.join(self.root, d))
        )

    def entries(self, kind: Optional[str] = None) -> Iterator[StoreEntry]:
        """Iterate over stored entries (newest first within each kind)."""
        import json

        for entry_kind in self._kinds():
            if kind is not None and entry_kind != kind:
                continue
            directory = self._dir(entry_kind)
            found = []
            for fname in os.listdir(directory):
                if not fname.endswith(".pkl"):
                    continue
                digest = fname[: -len(".pkl")]
                data_path = os.path.join(directory, fname)
                meta_path = os.path.join(directory, digest + ".json")
                meta: Dict[str, Any] = {}
                try:
                    with open(meta_path) as fh:
                        meta = json.load(fh)
                except Exception:
                    pass
                try:
                    stat = os.stat(data_path)
                except FileNotFoundError:
                    continue  # deleted concurrently (clear/invalidate race)
                found.append(
                    StoreEntry(
                        kind=entry_kind,
                        digest=digest,
                        size_bytes=stat.st_size,
                        created=meta.get("created", stat.st_mtime),
                        meta=meta,
                    )
                )
            yield from sorted(found, key=lambda e: e.created, reverse=True)

    def stats(self) -> Dict[str, Dict[str, float]]:
        """Per-kind ``{"entries": n, "bytes": total}`` plus a ``total`` row."""
        out: Dict[str, Dict[str, float]] = {}
        total_n, total_b = 0, 0
        for entry in self.entries():
            bucket = out.setdefault(entry.kind, {"entries": 0, "bytes": 0})
            bucket["entries"] += 1
            bucket["bytes"] += entry.size_bytes
            total_n += 1
            total_b += entry.size_bytes
        out["total"] = {"entries": total_n, "bytes": total_b}
        return out


_DEFAULT_STORE: Optional[ArtifactStore] = None


def default_store() -> ArtifactStore:
    """A process-wide store rooted at :func:`default_cache_dir`."""
    global _DEFAULT_STORE
    if _DEFAULT_STORE is None or _DEFAULT_STORE.root != os.path.abspath(
        default_cache_dir()
    ):
        _DEFAULT_STORE = ArtifactStore()
    return _DEFAULT_STORE
