"""Plan/execute experiment runner with process-pool GCoD warming.

The runner splits a report into two phases:

1. **Plan** — resolve the requested experiment specs, check which already
   have a rendered result in the artifact store, and collect the *union* of
   the remaining experiments' declared ``(dataset, arch)`` GCoD
   dependencies. The union is de-duplicated (Fig. 9, Fig. 11, Tab. VI and
   friends all want ``(cora, gcn)``; it is trained once) and filtered
   against the store, leaving only the runs that truly must execute.
2. **Execute** — run the unique GCoD tasks, either inline or across a
   process pool (``jobs > 1``), each worker writing its result straight
   into the shared on-disk store; then render every experiment in report
   order in the parent, where each ``context.gcod(...)`` call now hits the
   warmed store. Rendered results are themselves persisted, so the next
   invocation skips straight to phase 2's final step.

Determinism: every task carries its full config (seed included) and a
*resolved* kernel-backend name, and workers run exactly the same
``run_gcod`` the serial path runs — so ``--jobs 8`` produces byte-identical
reports (markdown/JSON/CSV) to ``--jobs 1``, just faster. The stored
artifacts are semantically identical too (every field compares equal);
only their pickle framing may differ, because workers train on a
store-round-tripped graph object while the serial path trains on the
freshly generated one.
"""

from __future__ import annotations

import multiprocessing as mp
import sys
import time
from collections import OrderedDict
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ReproError
from repro.runtime.keys import ArtifactKey, gcod_key, graph_key
from repro.runtime.registry import (
    ExperimentSpec,
    resolve_experiments,
)
from repro.runtime.store import ArtifactStore
from repro.runtime import counters


class GCoDTaskError(ReproError, RuntimeError):
    """A GCoD training task failed (in a pool worker or inline).

    Carries one human-readable message naming the ``(dataset, arch)`` task,
    so the parent process of a ``--jobs N`` run reports *which* run died
    rather than surfacing a bare worker traceback. Single-argument by
    construction: multiprocessing pickles the exception across the pool
    boundary, and single-message exceptions round-trip reliably.
    """


@dataclass(frozen=True)
class GCoDTask:
    """One self-contained GCoD training run (picklable, deterministic)."""

    dataset: str
    arch: str
    scale: Optional[float]
    seed: int
    profile: str
    #: resolved backend *name* (never None), so worker processes — whose
    #: process-wide default backend is freshly initialised — run the same
    #: kernels the parent would.
    kernel_backend: str
    config: object  # GCoDConfig; typed loosely to keep imports light

    def key(self) -> ArtifactKey:
        return gcod_key(
            self.dataset,
            self.scale,
            self.arch,
            self.config,
            self.kernel_backend,
            self.seed,
            self.profile,
        )


@dataclass
class ExperimentPlan:
    """What a report invocation is about to do."""

    specs: List[ExperimentSpec]
    #: experiment name -> store key, for every requested experiment.
    experiment_keys: Dict[str, ArtifactKey]
    #: names whose rendered result is already stored.
    cached: List[str]
    #: unique GCoD tasks that must actually execute.
    tasks: List[GCoDTask]
    #: unique (dataset, arch) dependency count before store filtering.
    deps_total: int = 0

    def describe(self) -> str:
        return (
            f"{len(self.specs)} experiments ({len(self.cached)} cached), "
            f"{self.deps_total} unique GCoD deps "
            f"({len(self.tasks)} to run)"
        )


@dataclass
class RunReport:
    """Everything ``execute_plan`` did, with timings for benchmarking."""

    results: "OrderedDict[str, object]" = field(default_factory=OrderedDict)
    timings: Dict[str, float] = field(default_factory=dict)
    cache_hits: List[str] = field(default_factory=list)
    deps_total: int = 0
    tasks_executed: int = 0
    gcod_runs: int = 0
    wall_s: float = 0.0


def build_task(context, dataset: str, arch: str) -> GCoDTask:
    """The task ``context.gcod(dataset, arch)`` would execute, as data."""
    from repro.sparse.kernels import get_backend

    backend = get_backend(context.kernel_backend).name
    config = replace(context.gcod_config_for(arch), kernel_backend=backend)
    return GCoDTask(
        dataset=dataset,
        arch=arch,
        scale=context.scale_for(dataset),
        seed=context.seed,
        profile=context.profile,
        kernel_backend=backend,
        config=config,
    )


def plan_experiments(
    context,
    names: Optional[Sequence[str]] = None,
    extra_deps: Sequence[Tuple[str, str]] = (),
) -> ExperimentPlan:
    """Phase 1: resolve specs, find cached results, dedupe GCoD deps."""
    specs = resolve_experiments(names)
    store: Optional[ArtifactStore] = context.store
    experiment_keys = {
        spec.name: context.experiment_store_key(spec.name) for spec in specs
    }
    cached = [
        spec.name
        for spec in specs
        if store is not None and store.contains(experiment_keys[spec.name])
    ]

    deps: "OrderedDict[Tuple[str, str], None]" = OrderedDict()
    for dataset, arch in extra_deps:
        deps[(dataset, arch)] = None
    for spec in specs:
        if spec.name in cached:
            continue  # its result is already rendered; no training needed
        for dep in spec.deps(context):
            deps[dep] = None

    tasks = [
        build_task(context, dataset, arch)
        for dataset, arch in sorted(deps)
        if not context.has_gcod(dataset, arch)  # not in memory or on disk
    ]
    return ExperimentPlan(
        specs=specs,
        experiment_keys=experiment_keys,
        cached=cached,
        tasks=tasks,
        deps_total=len(deps),
    )


def pool_context() -> mp.context.BaseContext:
    """The multiprocessing context every runtime pool uses.

    fork is cheap (no re-import) but only safe on Linux; macOS system
    frameworks and BLAS are fork-unsafe (why CPython's macOS default moved
    to spawn). Shared by the GCoD warming pool and the sweep engine's
    point-evaluation pool so the two can never drift in start-method
    semantics.
    """
    use_fork = (sys.platform.startswith("linux")
                and "fork" in mp.get_all_start_methods())
    return mp.get_context("fork" if use_fork else "spawn")


def _execute_task(payload: Tuple[str, GCoDTask]) -> Tuple[str, str]:
    """Pool worker: run one GCoD task and persist it into the store.

    Failures are re-raised as :class:`GCoDTaskError` naming the task. The
    store's atomic writes guarantee a dying worker leaves no partial entry
    under a valid key — a rerun replans against whatever the surviving
    workers completed.
    """
    root, task = payload
    from repro.algorithm import run_gcod
    from repro.graphs import load_dataset
    from repro.sparse.kernels import set_default_backend

    try:
        set_default_backend(task.kernel_backend)
        store = ArtifactStore(root)
        graph = _task_graph(task, store)
        result = run_gcod(graph, task.arch, task.config)
        key = task.key()
        store.put(key, result, summary=result.to_summary_dict())
    except GCoDTaskError:
        raise
    except Exception as exc:
        raise _task_error(task, exc) from exc
    return (task.dataset, task.arch)


def _task_error(task: GCoDTask, exc: Exception) -> GCoDTaskError:
    """The one wrapping used by every execution path (tests match on it)."""
    return GCoDTaskError(
        f"GCoD task ({task.dataset}, {task.arch}) failed: "
        f"{type(exc).__name__}: {exc}"
    )


def _task_graph(task: GCoDTask, store: Optional[ArtifactStore]):
    """The graph at the *task's* scale and seed, store-backed."""
    from repro.graphs import load_dataset

    gkey = graph_key(task.dataset, task.scale, task.seed)
    graph = store.get(gkey) if store is not None else None
    if graph is None:
        graph = load_dataset(task.dataset, scale=task.scale, seed=task.seed)
        if store is not None:
            store.put(gkey, graph)
    return graph


def warm_tasks(
    tasks: Sequence[GCoDTask],
    context,
    jobs: int = 1,
    progress=None,
) -> int:
    """Train ``tasks`` into the context's store, possibly across a pool.

    The shared warming phase of ``repro report`` and ``repro sweep``:
    serially each task trains in-process (through ``context.gcod`` when
    the task matches the context's own config — populating the in-memory
    memo — or directly from ``task.config`` otherwise, so custom-config
    tasks are honored on every path); with ``jobs > 1`` and a store
    attached, workers run :func:`_execute_task` and hand results back
    *through* the store. Returns the effective pool width used (1 when
    serial).
    """
    store: Optional[ArtifactStore] = context.store
    say = progress or (lambda msg: None)
    if not tasks:
        return 1
    if jobs > 1 and store is None:
        # Workers hand results back through the shared store; without one
        # there is nothing to pool over.
        say(f"no artifact store attached: ignoring jobs={jobs}, "
            "training serially")
        jobs = 1
    say(f"warming {len(tasks)} GCoD run(s) with jobs={jobs}")
    if jobs > 1 and store is not None and len(tasks) > 1:
        # Pre-warm each unique graph from the parent (rendering needs them
        # anyway): otherwise every worker sharing a dataset would race the
        # store miss and regenerate the same graph.
        for dataset in dict.fromkeys(t.dataset for t in tasks):
            context.graph(dataset)
        ctx_mp = pool_context()
        # store.root is a *locator* (a directory path or a served-store
        # http(s) URL); ArtifactStore(locator) in the worker reconnects to
        # the same store either way.
        payloads = [(store.root, task) for task in tasks]
        with ctx_mp.Pool(processes=min(jobs, len(tasks))) as pool:
            for dataset, arch in pool.imap_unordered(_execute_task, payloads):
                say(f"  trained ({dataset}, {arch})")
        # The results live in the store now; nothing to pull into memory —
        # rendering loads exactly what it needs.
        return min(jobs, len(tasks))
    for task in tasks:
        context_key = context.gcod_store_key(task.dataset, task.arch)
        if task.key().digest == context_key.digest:
            # The context's own run: train through the memo so store-less
            # rendering reuses it without a second training.
            context.gcod(task.dataset, task.arch)
        else:
            # Custom-config task (a sweep point): train exactly what the
            # task says, never the context's re-derived config.
            try:
                _execute_task_inline(context, task)
            except GCoDTaskError:
                raise
            except Exception as exc:
                raise _task_error(task, exc) from exc
        say(f"  trained ({task.dataset}, {task.arch})")
    return 1


def _execute_task_inline(context, task: GCoDTask) -> None:
    """Serial counterpart of :func:`_execute_task`: same store protocol,
    but no process-global backend default is touched (the task's config
    already names its backend). The graph comes from the context's memo
    only when the task shares the context's scale and seed — an arbitrary
    task trains on the graph *its* key names, exactly like a pool worker.
    """
    from repro.algorithm import run_gcod

    store: Optional[ArtifactStore] = context.store
    if store is not None and store.contains(task.key()):
        return
    if (task.scale == context.scale_for(task.dataset)
            and task.seed == context.seed):
        graph = context.graph(task.dataset)
    else:
        graph = _task_graph(task, store)
    result = run_gcod(graph, task.arch, task.config)
    if store is not None:
        store.put(task.key(), result, summary=result.to_summary_dict())


def execute_plan(
    plan: ExperimentPlan,
    context,
    jobs: int = 1,
    progress=None,
) -> RunReport:
    """Phase 2: warm the store (possibly in parallel), render, persist."""
    t0 = time.perf_counter()
    runs_before = counters.gcod_run_count()
    report = RunReport(deps_total=plan.deps_total,
                       tasks_executed=len(plan.tasks))
    store: Optional[ArtifactStore] = context.store
    say = progress or (lambda msg: None)

    warm_tasks(plan.tasks, context, jobs=jobs, progress=progress)

    for spec in plan.specs:
        key = plan.experiment_keys[spec.name]
        t_exp = time.perf_counter()
        result = store.get(key) if store is not None else None
        if result is not None:
            report.cache_hits.append(spec.name)
        else:
            result = spec.runner(context)
            if store is not None:
                store.put(key, result, summary={"name": result.name})
        report.results[spec.name] = result
        report.timings[spec.name] = time.perf_counter() - t_exp
        say(f"  {spec.name}: {report.timings[spec.name]:.2f}s"
            + (" (cached)" if spec.name in report.cache_hits else ""))

    report.gcod_runs = counters.gcod_run_count() - runs_before
    report.wall_s = time.perf_counter() - t0
    return report


def run_experiments(
    context,
    names: Optional[Sequence[str]] = None,
    jobs: int = 1,
    extra_deps: Sequence[Tuple[str, str]] = (),
    progress=None,
) -> RunReport:
    """Plan then execute in one call; the ``repro report`` entry point."""
    plan = plan_experiments(context, names=names, extra_deps=extra_deps)
    if progress:
        progress(plan.describe())
    return execute_plan(plan, context, jobs=jobs, progress=progress)
