"""Pluggable storage backends behind the :class:`ArtifactStore`.

The store's durability contract is expressed as a tiny set of blob
primitives — :class:`StoreBackend` — so the *same* content-addressed cache
logic (keys, pickling, corruption recovery, crash-safety) runs against any
byte transport:

* :class:`LocalDirBackend` — the reference implementation: the original
  ``<root>/<kind>/<name>`` on-disk layout with atomic temp-file +
  ``os.replace`` writes and hard-link-based atomic put-if-absent;
* :class:`HTTPStoreBackend` — a thin ``urllib`` client for the object
  store served by ``repro store serve`` (:mod:`repro.runtime.server`),
  with bounded retry/backoff, per-request timeouts, SHA-256-verified
  uploads, and reads that degrade to misses on any transport failure.

Backend rules (what the store relies on):

* ``read`` never raises: a miss, a timeout, a half-served response, and a
  dead server all return ``None`` — the caller recomputes;
* ``write`` is atomic (a killed writer leaves no partial blob under a
  valid name) and raises :class:`StoreBackendError` on environmental
  failure so the store can degrade with its "continuing without caching"
  note;
* ``put_if_absent`` is the *claim* primitive: exactly one of N racing
  writers of the same name observes ``True``. The sweep engine's
  distributed work ledger (:mod:`repro.sweep.ledger`) is built on it.

``open_backend`` picks the implementation from a locator string: an
``http(s)://`` URL selects the HTTP client, anything else is a local
directory path.
"""

from __future__ import annotations

import abc
import http.client
import json
import os
import tempfile
import time
import urllib.error
import urllib.parse
import urllib.request
from dataclasses import dataclass
from typing import List, Optional

#: age after which a ``.tmp-*.part`` file is considered an orphan of a
#: killed writer (atomic writes complete in seconds).
STALE_TMP_S = 600.0


class StoreBackendError(Exception):
    """An environmental backend failure (I/O, network); callers degrade."""


@dataclass(frozen=True)
class BlobStat:
    """Size and modification time of one stored blob."""

    size_bytes: int
    mtime: float


class StoreBackend(abc.ABC):
    """Blob primitives every store backend provides.

    Blobs live in a two-level namespace: a ``kind`` (one of the artifact
    kinds in :mod:`repro.runtime.keys`, plus ``claim`` for the work
    ledger) and a ``name`` (digest plus extension). Names are restricted
    to ``[A-Za-z0-9._-]`` so every backend can map them to paths/URLs
    verbatim.
    """

    #: locator string that reconstructs this backend in another process
    #: (a directory path, or a store URL) — what pool workers are handed.
    locator: str

    #: True when many hosts observe the same bytes (a served store); the
    #: sweep engine turns its distributed work ledger on by default then.
    shared: bool = False

    @abc.abstractmethod
    def read(self, kind: str, name: str) -> Optional[bytes]:
        """The blob's bytes, or ``None`` on a miss *or* any failure."""

    @abc.abstractmethod
    def write(self, kind: str, name: str, blob: bytes) -> None:
        """Atomically persist ``blob``; :class:`StoreBackendError` on failure."""

    @abc.abstractmethod
    def put_if_absent(self, kind: str, name: str, blob: bytes) -> bool:
        """Atomically create ``name`` unless it exists; True iff we won."""

    @abc.abstractmethod
    def exists(self, kind: str, name: str) -> bool:
        """True if the blob exists (False on any failure)."""

    @abc.abstractmethod
    def delete(self, kind: str, name: str) -> bool:
        """Remove the blob; True iff something was deleted."""

    @abc.abstractmethod
    def stat(self, kind: str, name: str) -> Optional[BlobStat]:
        """Size/mtime of the blob, or ``None``."""

    @abc.abstractmethod
    def list_names(self, kind: str) -> List[str]:
        """Every blob name under ``kind`` (no in-flight temp files)."""

    @abc.abstractmethod
    def list_kinds(self) -> List[str]:
        """Every kind with at least one blob (or an empty directory)."""


# ----------------------------------------------------------------------
# local directory (the reference implementation)
# ----------------------------------------------------------------------
class LocalDirBackend(StoreBackend):
    """The original one-directory-per-kind on-disk layout."""

    shared = False

    def __init__(self, root: str):
        self.root = os.path.abspath(root)
        self.locator = self.root

    def path(self, kind: str, name: str) -> str:
        return os.path.join(self.root, kind, name)

    def _dir(self, kind: str) -> str:
        return os.path.join(self.root, kind)

    def read(self, kind: str, name: str) -> Optional[bytes]:
        try:
            with open(self.path(kind, name), "rb") as fh:
                return fh.read()
        except (OSError, MemoryError):
            # Miss, or a transient failure (EIO, fd exhaustion,
            # permissions): either way the caller treats it as a miss and
            # the bytes on disk are left alone.
            return None

    def write(self, kind: str, name: str, blob: bytes) -> None:
        try:
            os.makedirs(self._dir(kind), exist_ok=True)
            self._atomic_write(self.path(kind, name), blob)
        except OSError as exc:
            raise StoreBackendError(str(exc)) from exc

    def put_if_absent(self, kind: str, name: str, blob: bytes) -> bool:
        path = self.path(kind, name)
        if os.path.exists(path):
            return False
        try:
            os.makedirs(self._dir(kind), exist_ok=True)
            fd, tmp = tempfile.mkstemp(
                dir=self._dir(kind), prefix=".tmp-", suffix=".part"
            )
            try:
                with os.fdopen(fd, "wb") as fh:
                    fh.write(blob)
                # A hard link is the atomic create-exclusive rename: it
                # fails (FileExistsError) iff another writer already
                # linked the name, and never exposes a partial blob.
                os.link(tmp, path)
            except FileExistsError:
                return False
            finally:
                if os.path.exists(tmp):
                    os.unlink(tmp)
        except OSError as exc:
            raise StoreBackendError(str(exc)) from exc
        return True

    def exists(self, kind: str, name: str) -> bool:
        return os.path.exists(self.path(kind, name))

    def delete(self, kind: str, name: str) -> bool:
        try:
            os.unlink(self.path(kind, name))
            return True
        except OSError:
            return False

    def stat(self, kind: str, name: str) -> Optional[BlobStat]:
        try:
            st = os.stat(self.path(kind, name))
        except OSError:
            return None
        return BlobStat(size_bytes=st.st_size, mtime=st.st_mtime)

    def list_names(self, kind: str) -> List[str]:
        try:
            return sorted(
                f for f in os.listdir(self._dir(kind))
                if not f.startswith(".tmp-")
            )
        except OSError:
            return []

    def list_kinds(self) -> List[str]:
        if not os.path.isdir(self.root):
            return []
        return sorted(
            d for d in os.listdir(self.root)
            if os.path.isdir(os.path.join(self.root, d))
        )

    # ------------------------------------------------------------------
    # local-only maintenance
    # ------------------------------------------------------------------
    def temp_files(self):
        """Yield ``(path, stat)`` of every in-flight/orphaned temp file."""
        for kind in self.list_kinds():
            directory = self._dir(kind)
            try:
                fnames = os.listdir(directory)
            except OSError:
                continue
            for fname in fnames:
                if not fname.startswith(".tmp-"):
                    continue
                path = os.path.join(directory, fname)
                try:
                    yield path, os.stat(path)
                except OSError:
                    continue  # completed or reclaimed concurrently

    def sweep_stale_temps(self, stale_s: float = STALE_TMP_S):
        """Reclaim ``.tmp-*.part`` orphans of killed writers.

        Only temps older than ``stale_s`` are touched — a fresh temp is
        another process's in-flight atomic write. Returns
        ``(files_removed, bytes_reclaimed)``.
        """
        removed, freed = 0, 0
        now = time.time()
        for path, st in self.temp_files():
            if now - st.st_mtime < stale_s:
                continue
            try:
                os.unlink(path)
            except OSError:
                continue  # reclaimed concurrently
            removed += 1
            freed += st.st_size
        return removed, freed

    @staticmethod
    def _atomic_write(path: str, blob: bytes) -> None:
        fd, tmp = tempfile.mkstemp(
            dir=os.path.dirname(path), prefix=".tmp-", suffix=".part"
        )
        try:
            with os.fdopen(fd, "wb") as fh:
                fh.write(blob)
            os.replace(tmp, path)
        except BaseException:
            if os.path.exists(tmp):
                os.unlink(tmp)
            raise


# ----------------------------------------------------------------------
# HTTP object store client
# ----------------------------------------------------------------------

#: header carrying the SHA-256 of a PUT body; the server refuses to
#: commit a blob whose received bytes do not match (no partial entries).
SHA_HEADER = "X-Repro-Sha256"
#: header marking a PUT as create-exclusive (the claim primitive).
IF_ABSENT_HEADER = "X-Repro-If-Absent"
#: header carrying a blob's server-side mtime on GET/HEAD responses.
MTIME_HEADER = "X-Repro-Mtime"


def _sha256(blob: bytes) -> str:
    import hashlib

    return hashlib.sha256(blob).hexdigest()


class HTTPStoreBackend(StoreBackend):
    """``urllib`` client for the object store behind ``repro store serve``.

    Every request is bounded by ``timeout_s`` and retried ``retries``
    times with exponential backoff on transport failures and 5xx
    responses. Reads degrade to misses (truncated bodies — detected via
    ``Content-Length`` — timeouts, resets, HTTP 5xx all return ``None``);
    writes raise :class:`StoreBackendError` after the retry budget so the
    store can fall back to not caching.
    """

    shared = True

    def __init__(
        self,
        url: str,
        timeout_s: float = 10.0,
        retries: int = 3,
        backoff_s: float = 0.05,
    ):
        self.base = url.rstrip("/")
        self.locator = self.base
        self.timeout_s = timeout_s
        self.retries = max(1, retries)
        self.backoff_s = backoff_s

    def _url(self, kind: str, name: str = "", query: str = "") -> str:
        path = "/" + urllib.parse.quote(kind)
        if name:
            path += "/" + urllib.parse.quote(name)
        return self.base + path + (("?" + query) if query else "")

    def _request(
        self,
        method: str,
        url: str,
        body: Optional[bytes] = None,
        headers: Optional[dict] = None,
        miss_codes=(404,),
    ):
        """One retried request; ``(status, body, headers)`` or ``None``
        on a miss.

        Raises :class:`StoreBackendError` once the retry budget is spent.
        4xx responses other than ``miss_codes`` are returned to the
        caller (they are protocol answers — e.g. 409 for a lost claim —
        not transport failures) and never retried.
        """
        last_error: Optional[Exception] = None
        for attempt in range(self.retries):
            if attempt:
                time.sleep(self.backoff_s * (2 ** (attempt - 1)))
            req = urllib.request.Request(
                url, data=body, method=method, headers=headers or {}
            )
            try:
                with urllib.request.urlopen(req, timeout=self.timeout_s) as resp:
                    # .read() raises IncompleteRead on a body shorter
                    # than Content-Length — a dropped connection can
                    # never hand back truncated bytes as a valid blob.
                    return resp.status, resp.read(), dict(resp.headers)
            except urllib.error.HTTPError as exc:
                if exc.code in miss_codes:
                    return None
                if exc.code < 500:
                    return exc.code, exc.read(), dict(exc.headers or {})
                last_error = exc  # 5xx: retry
            except (OSError, http.client.HTTPException) as exc:
                # URLError, timeouts, resets, IncompleteRead: retry.
                last_error = exc
        raise StoreBackendError(
            f"{method} {url} failed after {self.retries} attempts: "
            f"{type(last_error).__name__}: {last_error}"
        )

    def read(self, kind: str, name: str) -> Optional[bytes]:
        try:
            got = self._request("GET", self._url(kind, name))
        except StoreBackendError:
            return None  # reads degrade to misses; the caller recomputes
        if got is None or got[0] not in (200,):
            return None
        return got[1]

    def write(self, kind: str, name: str, blob: bytes) -> None:
        got = self._request(
            "PUT", self._url(kind, name), body=blob,
            headers={SHA_HEADER: _sha256(blob)},
        )
        if got is None or got[0] not in (200, 201, 204):
            status = "miss" if got is None else got[0]
            raise StoreBackendError(
                f"PUT {kind}/{name} rejected by store server ({status})"
            )

    def put_if_absent(self, kind: str, name: str, blob: bytes) -> bool:
        got = self._request(
            "PUT", self._url(kind, name), body=blob,
            headers={SHA_HEADER: _sha256(blob), IF_ABSENT_HEADER: "1"},
        )
        if got is not None and got[0] in (200, 201, 204):
            return True
        if got is not None and got[0] == 409:
            return False  # another writer won the race
        status = "miss" if got is None else got[0]
        raise StoreBackendError(
            f"conditional PUT {kind}/{name} rejected ({status})"
        )

    def exists(self, kind: str, name: str) -> bool:
        return self.stat(kind, name) is not None

    def delete(self, kind: str, name: str) -> bool:
        try:
            got = self._request("DELETE", self._url(kind, name))
        except StoreBackendError:
            return False
        return got is not None and got[0] in (200, 204)

    def stat(self, kind: str, name: str) -> Optional[BlobStat]:
        try:
            got = self._request("HEAD", self._url(kind, name))
        except StoreBackendError:
            return None
        if got is None or got[0] != 200:
            return None
        headers = got[2]
        try:
            size = int(headers.get("Content-Length", 0))
            mtime = float(headers.get(MTIME_HEADER, 0.0))
        except ValueError:
            return None
        return BlobStat(size_bytes=size, mtime=mtime)

    def _list(self, url: str) -> List[str]:
        try:
            got = self._request("GET", url)
        except StoreBackendError:
            return []
        if got is None or got[0] != 200:
            return []
        try:
            names = json.loads(got[1].decode("utf-8"))
        except (ValueError, UnicodeDecodeError):
            return []
        return [str(n) for n in names] if isinstance(names, list) else []

    def list_names(self, kind: str) -> List[str]:
        return self._list(self._url(kind, query="list=1"))

    def list_kinds(self) -> List[str]:
        return self._list(self.base + "/?list=1")


def is_remote_locator(locator: str) -> bool:
    """True when ``locator`` names a served store rather than a directory."""
    return locator.startswith(("http://", "https://"))


def open_backend(locator: str) -> StoreBackend:
    """The backend for ``locator``: a store URL or a local directory."""
    if is_remote_locator(locator):
        return HTTPStoreBackend(locator)
    return LocalDirBackend(locator)
