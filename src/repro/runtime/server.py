"""The stdlib HTTP object-store server behind ``repro store serve``.

One :class:`LocalDirBackend` root exposed over a tiny REST surface so
many sweep workers on many hosts can share a single artifact store:

* ``GET /<kind>/<name>`` — blob bytes (``Content-Length``,
  ``X-Repro-Mtime`` headers); 404 on a miss;
* ``HEAD /<kind>/<name>`` — existence + size/mtime;
* ``PUT /<kind>/<name>`` — atomic write. The client sends the body's
  SHA-256 in ``X-Repro-Sha256``; a mismatch (a connection dropped
  mid-upload surfaces as a short body) is refused with 400 and **nothing
  is committed** — the store can never hold a partial remote entry. With
  ``X-Repro-If-Absent: 1`` the PUT is create-exclusive: 201 when this
  writer won, 409 when the name already existed (the work-ledger claim
  primitive);
* ``DELETE /<kind>/<name>`` — 204, or 404 when absent;
* ``GET /<kind>?list=1`` and ``GET /?list=1`` — JSON name/kind listings.

The server is intentionally trust-the-network simple (no auth, no TLS):
it exists so a lab cluster — or a CI job, or a test — can stand up a
shared store in one process with zero dependencies. Anything fancier
should implement :class:`~repro.runtime.backends.StoreBackend` against a
real object store instead.
"""

from __future__ import annotations

import hashlib
import json
import re
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable, Optional, Tuple
from urllib.parse import unquote, urlparse

from repro.runtime.backends import (
    IF_ABSENT_HEADER,
    MTIME_HEADER,
    SHA_HEADER,
    LocalDirBackend,
    StoreBackendError,
)

#: kind and name segments the server will touch on disk — anything else
#: (traversal attempts, empty segments) is a 400.
_SEGMENT = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]*$")


class StoreRequestHandler(BaseHTTPRequestHandler):
    """Request handler bound to the server's backend root."""

    #: quiet by default; ``repro store serve --verbose`` flips this.
    verbose = False
    #: test hook: ``hook(handler, method, kind, name) -> Optional[int]``.
    #: Returning a status short-circuits the request with that code;
    #: raising simulates a server-side crash (a 500 to the client). Used
    #: by the fault-injection tier; ``None`` in production.
    fault_hook: Optional[Callable] = None

    server_version = "ReproStore/1"
    protocol_version = "HTTP/1.1"

    # ------------------------------------------------------------------
    # plumbing
    # ------------------------------------------------------------------
    @property
    def backend(self) -> LocalDirBackend:
        return self.server.backend  # type: ignore[attr-defined]

    def log_message(self, fmt, *args):  # pragma: no cover - logging only
        if self.verbose:
            super().log_message(fmt, *args)

    def _parse(self) -> Optional[Tuple[str, str, dict]]:
        """``(kind, name, query)`` of the request path, or ``None`` (400)."""
        parsed = urlparse(self.path)
        parts = [unquote(p) for p in parsed.path.split("/") if p]
        query = {}
        for item in parsed.query.split("&"):
            if "=" in item:
                k, v = item.split("=", 1)
                query[k] = v
        if len(parts) > 2:
            return None
        kind = parts[0] if parts else ""
        name = parts[1] if len(parts) > 1 else ""
        for segment in (kind, name):
            if segment and not _SEGMENT.match(segment):
                return None
        return kind, name, query

    def _respond(self, status: int, body: bytes = b"",
                 headers: Optional[dict] = None) -> None:
        self.send_response(status)
        for key, value in (headers or {}).items():
            self.send_header(key, value)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        if self.command != "HEAD":
            self.wfile.write(body)

    def _json(self, payload) -> None:
        self._respond(
            200, json.dumps(payload).encode("utf-8"),
            {"Content-Type": "application/json"},
        )

    def _dispatch(self, method: str) -> None:
        parsed = self._parse()
        if parsed is None:
            self._respond(400, b"bad path")
            return
        kind, name, query = parsed
        if self.fault_hook is not None:
            status = self.fault_hook(self, method, kind, name)
            if status is not None:
                self._respond(int(status), b"injected fault")
                return
        try:
            getattr(self, "_handle_" + method.lower())(kind, name, query)
        except StoreBackendError as exc:
            self._respond(500, str(exc).encode("utf-8"))

    # BaseHTTPRequestHandler entry points --------------------------------
    def do_GET(self):  # noqa: N802 (stdlib naming)
        self._dispatch("GET")

    def do_HEAD(self):  # noqa: N802
        self._dispatch("HEAD")

    def do_PUT(self):  # noqa: N802
        self._dispatch("PUT")

    def do_DELETE(self):  # noqa: N802
        self._dispatch("DELETE")

    # ------------------------------------------------------------------
    # handlers
    # ------------------------------------------------------------------
    def _handle_get(self, kind: str, name: str, query: dict) -> None:
        if not name:
            if "list" in query:
                if not kind:
                    self._json(self.backend.list_kinds())
                else:
                    self._json(self.backend.list_names(kind))
                return
            self._respond(400, b"missing blob name (use ?list=1 to list)")
            return
        blob = self.backend.read(kind, name)
        if blob is None:
            self._respond(404, b"not found")
            return
        stat = self.backend.stat(kind, name)
        self._respond(200, blob, {
            "Content-Type": "application/octet-stream",
            SHA_HEADER: hashlib.sha256(blob).hexdigest(),
            MTIME_HEADER: f"{stat.mtime:.6f}" if stat else "0",
        })

    def _handle_head(self, kind: str, name: str, query: dict) -> None:
        stat = self.backend.stat(kind, name) if name else None
        if stat is None:
            self._respond(404)
            return
        # _respond(HEAD) sends no body; Content-Length must describe the
        # blob, so answer directly.
        self.send_response(200)
        self.send_header("Content-Length", str(stat.size_bytes))
        self.send_header(MTIME_HEADER, f"{stat.mtime:.6f}")
        self.end_headers()

    def _handle_put(self, kind: str, name: str, query: dict) -> None:
        if not kind or not name:
            self._respond(400, b"PUT needs /<kind>/<name>")
            return
        try:
            length = int(self.headers.get("Content-Length", -1))
        except ValueError:
            length = -1
        if length < 0:
            self._respond(411, b"Content-Length required")
            return
        # A dropped connection raises here, before anything touches the
        # backend — an interrupted upload commits nothing.
        body = self.rfile.read(length)
        if len(body) != length:
            self._respond(400, b"short body")
            return
        want_sha = self.headers.get(SHA_HEADER)
        if want_sha and hashlib.sha256(body).hexdigest() != want_sha:
            self._respond(400, b"sha256 mismatch; not committed")
            return
        if self.headers.get(IF_ABSENT_HEADER):
            # Serialized across this server's worker threads so two
            # concurrent claims cannot both win the filesystem race
            # window between exists() and link().
            with self.server.claim_lock:  # type: ignore[attr-defined]
                created = self.backend.put_if_absent(kind, name, body)
            self._respond(201 if created else 409)
            return
        self.backend.write(kind, name, body)
        self._respond(204)

    def _handle_delete(self, kind: str, name: str, query: dict) -> None:
        if not kind or not name:
            self._respond(400, b"DELETE needs /<kind>/<name>")
            return
        self._respond(204 if self.backend.delete(kind, name) else 404)


class StoreServer(ThreadingHTTPServer):
    """A :class:`ThreadingHTTPServer` bound to one local store root."""

    daemon_threads = True

    def __init__(self, root: str, host: str = "127.0.0.1", port: int = 0,
                 handler=StoreRequestHandler):
        self.backend = LocalDirBackend(root)
        self.claim_lock = threading.Lock()
        super().__init__((host, port), handler)

    @property
    def url(self) -> str:
        host, port = self.server_address[0], self.server_address[1]
        return f"http://{host}:{port}"


def make_store_server(root: str, host: str = "127.0.0.1", port: int = 0,
                      handler=StoreRequestHandler) -> StoreServer:
    """A ready-to-run server (``port=0`` picks a free port — tests)."""
    return StoreServer(root, host=host, port=port, handler=handler)


def serve_store(root: str, host: str = "127.0.0.1", port: int = 8750,
                verbose: bool = False, say=print) -> int:
    """Run the store server until interrupted (``repro store serve``)."""
    handler = type("Handler", (StoreRequestHandler,), {"verbose": verbose})
    server = make_store_server(root, host=host, port=port, handler=handler)
    say(f"serving artifact store {root} at {server.url} "
        f"(Ctrl-C to stop)")
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
    return 0
