"""Experiment runtime: artifact store, run counters, registry, runner.

This package is the substrate under ``repro report``:

* :mod:`repro.runtime.keys` — stable content-addressed cache keys
  (``CODE_SCHEMA_VERSION`` lives here);
* :mod:`repro.runtime.backends` — the :class:`StoreBackend` byte-blob
  interface the store sits on: :class:`LocalDirBackend` (the reference
  on-disk layout) and :class:`HTTPStoreBackend` (a served store shared
  across hosts, selected by an ``http(s)://`` locator);
* :mod:`repro.runtime.store` — the :class:`ArtifactStore` (pickle +
  metadata-sidecar layer over whichever backend the locator names);
* :mod:`repro.runtime.server` — the stdlib HTTP object-store server
  behind ``repro store serve``;
* :mod:`repro.runtime.counters` — process-wide counters of real training
  runs (the zero-runs-when-warm guarantee is asserted against these);
* :mod:`repro.runtime.registry` — :class:`ExperimentSpec` descriptors that
  the report generator and CLI discover instead of hard-coding lists;
* :mod:`repro.runtime.runner` — the plan/execute split with ``--jobs N``
  process-pool GCoD warming (imported lazily: it pulls in the algorithm
  stack, which low-level users of the store/counters don't need).
"""

from repro.runtime.keys import (
    CODE_SCHEMA_VERSION,
    ArtifactKey,
    experiment_key,
    gcod_key,
    graph_key,
    stable_hash,
    sweep_manifest_key,
    sweep_point_key,
    trace_key,
)
from repro.runtime.backends import (
    HTTPStoreBackend,
    LocalDirBackend,
    StoreBackend,
    StoreBackendError,
    is_remote_locator,
    open_backend,
)
from repro.runtime.store import (
    STORE_URL_ENV,
    ArtifactStore,
    default_cache_dir,
    default_store,
)
from repro.runtime.registry import (
    ExperimentSpec,
    all_experiments,
    experiment_names,
    get_experiment,
    register_experiment,
    resolve_experiments,
)
from repro.runtime import counters

__all__ = [
    "CODE_SCHEMA_VERSION",
    "STORE_URL_ENV",
    "ArtifactKey",
    "ArtifactStore",
    "ExperimentSpec",
    "HTTPStoreBackend",
    "LocalDirBackend",
    "StoreBackend",
    "StoreBackendError",
    "all_experiments",
    "counters",
    "default_cache_dir",
    "default_store",
    "experiment_key",
    "experiment_names",
    "gcod_key",
    "get_experiment",
    "graph_key",
    "is_remote_locator",
    "open_backend",
    "register_experiment",
    "resolve_experiments",
    "stable_hash",
    "sweep_manifest_key",
    "sweep_point_key",
    "trace_key",
]
