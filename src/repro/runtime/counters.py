"""Process-wide run counters: how many expensive things actually executed.

The headline promise of the artifact store is that a warm ``repro report``
performs *zero* GCoD training runs. That claim is only testable if the
expensive call sites report themselves somewhere — so
:meth:`~repro.algorithm.pipeline.GCoDTrainer.run` records every real
pipeline execution here, and tests (plus ``benchmarks/bench_report.py``)
snapshot the counter around a report to prove cache hits did the work.

Counters are per-process: pool workers increment their own copies, so the
parent's counter counts exactly the training runs the *parent* performed.
"""

from __future__ import annotations

from typing import Dict

_COUNTS: Dict[str, int] = {
    "gcod_runs": 0,
    "sweep_point_runs": 0,
    "sweep_point_skips": 0,
}


def record_gcod_run() -> None:
    """Note one real (non-cached) GCoD pipeline execution."""
    _COUNTS["gcod_runs"] += 1


def gcod_run_count() -> int:
    """Number of GCoD pipeline executions in this process so far."""
    return _COUNTS["gcod_runs"]


def record_sweep_point_run() -> None:
    """Note one real (non-cached) sweep design-point evaluation."""
    _COUNTS["sweep_point_runs"] += 1


def sweep_point_run_count() -> int:
    """Number of sweep points actually evaluated in this process so far."""
    return _COUNTS["sweep_point_runs"]


def record_sweep_point_skip() -> None:
    """Note one sweep design point served from the store (not evaluated).

    The resume guarantee ("only missing points re-run") is asserted as
    ``runs == missing`` *and* ``skips == done``: both sides of the ledger
    must add up to the plan, or a point silently fell through.
    """
    _COUNTS["sweep_point_skips"] += 1


def sweep_point_skip_count() -> int:
    """Number of sweep points served from the store in this process."""
    return _COUNTS["sweep_point_skips"]


def reset_counters() -> None:
    """Zero all counters (test isolation)."""
    for key in _COUNTS:
        _COUNTS[key] = 0
