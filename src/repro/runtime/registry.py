"""The experiment registry: descriptors instead of hard-coded module lists.

Each module under ``repro.evaluation.experiments`` registers one
:class:`ExperimentSpec` describing itself: its CLI name, its report section
title, the callable that produces its :class:`ExperimentResult`, and —
crucially for the parallel runner — the ``(dataset, arch)`` GCoD training
runs it depends on. ``repro.evaluation.report`` and ``repro.cli`` *discover*
experiments here rather than importing a hand-maintained list, so adding an
experiment is one module plus one ``register_experiment(...)`` call.

Registration happens at import time of the experiment modules; importing
:mod:`repro.evaluation.experiments` populates the whole registry.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import UnknownExperimentError

#: One GCoD training dependency: (dataset, arch).
GCoDDep = Tuple[str, str]
DepsFn = Callable[[object], Sequence[GCoDDep]]


@dataclass(frozen=True)
class ExperimentSpec:
    """A registered experiment: identity, report placement, and deps."""

    #: Short CLI name (``fig09``, ``tab06``, ``ablation-cs``, ...).
    name: str
    #: Report section title (``## <title>`` in the markdown report).
    title: str
    #: ``runner(context) -> ExperimentResult``.
    runner: Callable
    #: Declared GCoD dependencies as ``(dataset, arch)`` pairs, either a
    #: static tuple or a callable of the context (for profile-dependent
    #: dataset lists). Experiments that train privately tuned pipelines
    #: (ablations, training-cost) declare no deps: their work is not
    #: shareable, but their *rendered result* is still cached.
    gcod_deps: object = ()
    #: Report ordering (ascending).
    order: int = 1000

    def deps(self, context) -> Tuple[GCoDDep, ...]:
        """The resolved, de-duplicated (dataset, arch) dependency tuple."""
        deps = self.gcod_deps
        if callable(deps):
            deps = deps(context)
        seen: Dict[GCoDDep, None] = {}
        for dep in deps:
            seen[(str(dep[0]), str(dep[1]))] = None
        return tuple(seen)


_REGISTRY: Dict[str, ExperimentSpec] = {}


def register_experiment(
    name: str,
    title: str,
    runner: Callable,
    gcod_deps: object = (),
    order: int = 1000,
) -> ExperimentSpec:
    """Create and register an :class:`ExperimentSpec`; returns it."""
    # Load the builtin experiments first so an external registration that
    # collides with a builtin name fails here, loudly, rather than when
    # discovery later imports the builtin module. (No-op while the builtin
    # package itself is importing: the flag is set before the import.)
    _ensure_populated()
    if name in _REGISTRY:
        raise ValueError(
            f"experiment {name!r} is already registered "
            f"(by {_REGISTRY[name].runner.__module__}); names must be unique"
        )
    spec = ExperimentSpec(
        name=name,
        title=title,
        runner=runner,
        gcod_deps=gcod_deps,
        order=order,
    )
    _REGISTRY[name] = spec
    return spec


def experiment_names() -> Tuple[str, ...]:
    """All registered names in report order."""
    return tuple(s.name for s in all_experiments())


def all_experiments() -> List[ExperimentSpec]:
    """Every registered spec, in report order."""
    _ensure_populated()
    return sorted(_REGISTRY.values(), key=lambda s: (s.order, s.name))


def get_experiment(name: str) -> ExperimentSpec:
    """The spec registered under ``name`` (raises UnknownExperimentError)."""
    _ensure_populated()
    try:
        return _REGISTRY[name]
    except KeyError:
        raise UnknownExperimentError(
            f"unknown experiment {name!r}; choose from "
            f"{', '.join(sorted(_REGISTRY))}"
        ) from None


def resolve_experiments(
    names: Optional[Sequence[str]] = None,
) -> List[ExperimentSpec]:
    """Specs for ``names`` (report order), or all of them when ``None``."""
    if names is None:
        return all_experiments()
    specs = [get_experiment(n) for n in names]
    order = {s.name: i for i, s in enumerate(all_experiments())}
    return sorted(specs, key=lambda s: order[s.name])


_populated = False


def _ensure_populated() -> None:
    # Importing the experiments package registers every module's spec; the
    # import is lazy so `repro.runtime` stays importable from low-level code
    # (e.g. the pipeline's run counter) without dragging in the evaluation
    # stack. A dedicated flag (not `_REGISTRY` truthiness) so external
    # registrations before first discovery can't suppress the builtins.
    global _populated
    if not _populated:
        _populated = True  # before the import: modules register re-entrantly
        try:
            import repro.evaluation.experiments  # noqa: F401
        except BaseException:
            # A broken experiment module must fail loudly on *every*
            # discovery attempt, not once and then an empty registry.
            _populated = False
            raise
