"""Stable, content-addressed cache keys for experiment artifacts.

Every artifact the runtime persists — generated graphs, GCoD pipeline
results, execution traces, rendered experiment results — is addressed by a
SHA-256 digest of a *canonical JSON payload* describing exactly what went
into producing it: dataset, generation scale, model architecture, the full
:class:`~repro.algorithm.config.GCoDConfig`, the kernel backend, the seed,
the evaluation profile, and :data:`CODE_SCHEMA_VERSION`.

The payload is built only from JSON primitives with sorted keys, so the
digest is stable across processes and machines (Python's randomized
``hash()`` is never involved). Bump :data:`CODE_SCHEMA_VERSION` whenever a
code change alters what any cached artifact *means* (pipeline numerics, the
``GCoDResult`` layout, experiment row formats): every existing cache entry
is then automatically invalidated because no new key can match it.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from typing import Any, Dict, Optional, Tuple

#: Version of the cached-artifact schema. Part of every cache key: bumping
#: it orphans (and therefore invalidates) all previously stored artifacts.
#: v2: SweepPointResult gained the multi-objective metric fields (per-phase
#: energy breakdowns, DRAM traffic, event-sim cycles).
#: v3: the `repro serve` wire dataclasses (ServeRequest/ServeResponse)
#: joined the serialized-shape set, and the `compiled` kernel tier gained
#: its own cache-key series (the fallback spelling still resolves to
#: `vectorized`, so only machines with numba mint new keys).
#: v4: budget-constrained DSE — SweepPoint gained `tech_node` (and the
#: point key a tech_node component), SweepPointResult gained
#: `tech_node`/`area_mm2`/`tdp_w`, so stored sweep artifacts changed
#: meaning and layout.
#: v5: workload DAGs — SweepPoint gained `workload`/`workload_scales`
#: (and the point key matching components), so a multi-model point and
#: the single-model point sharing its primary node can never collide.
CODE_SCHEMA_VERSION = 5

#: Artifact kinds the store recognises (one subdirectory per kind).
KIND_GRAPH = "graph"
KIND_GCOD = "gcod"
KIND_TRACE = "trace"
KIND_EXPERIMENT = "experiment"
KIND_SWEEP = "sweep"
KIND_MANIFEST = "manifest"
#: work-ledger claim entries (atomic put-if-absent; not content-addressed
#: artifacts — they carry liveness metadata, not computation results).
KIND_CLAIM = "claim"

#: Every artifact kind, in store-listing order. CLI surfaces (the cache
#: ``--kind`` filter) derive their choices from this tuple — never a
#: hand-maintained list, which is how ``claim`` went missing from the
#: PR 6 help text (`repro lint`'s registry-sync rule now guards this).
ALL_KINDS = (
    KIND_GRAPH,
    KIND_GCOD,
    KIND_TRACE,
    KIND_EXPERIMENT,
    KIND_SWEEP,
    KIND_MANIFEST,
    KIND_CLAIM,
)

#: The cache-key coverage contract, checked by `repro lint`'s
#: key-coverage rule: for each key-relevant dataclass, every field must
#: appear in exactly one of these tuples. ``covered`` fields reach the
#: digest (GCoDConfig travels wholesale through :func:`jsonable` in
#: :func:`gcod_key`/:func:`sweep_point_key`; SweepSpec contributes its
#: ``axes`` to :func:`sweep_manifest_key`); ``exempt`` fields are
#: consciously presentation-only (a sweep's registered name and title
#: must NOT enter the manifest key — `--grid` spellings of the same axes
#: resume the same manifest). Adding a dataclass field without extending
#: this declaration (and bumping :data:`CODE_SCHEMA_VERSION`) is a lint
#: error — the exact regression that once served stale entries when memo
#: keys missed ``kernel_backend``/``scale``/``seed``. Must stay a pure
#: literal: the lint rule reads it from source without importing.
KEY_FIELD_COVERAGE = {
    "GCoDConfig": {
        "covered": (
            "num_classes",
            "num_groups",
            "num_subgraphs",
            "pretrain_epochs",
            "early_bird",
            "early_bird_threshold",
            "early_bird_patience",
            "early_bird_prune_ratio",
            "prune_ratio",
            "pola_weight",
            "admm_rho",
            "admm_iterations",
            "admm_inner_steps",
            "admm_lr",
            "protect_connectivity",
            "patch_threshold",
            "patch_size",
            "off_diagonal_only",
            "retrain_epochs",
            "lr",
            "weight_decay",
            "seed",
            "kernel_backend",
        ),
        "exempt": (),
    },
    "SweepSpec": {
        "covered": ("axes",),
        "exempt": ("name", "title", "description"),
    },
    # Every SweepPoint field reaches sweep_point_key — the whole point of
    # the dataclass is to be the digest's input, so nothing is exempt.
    "SweepPoint": {
        "covered": (
            "dataset", "arch", "scale", "seed", "profile",
            "config", "kernel_backend", "bits", "hw_scale",
            "tech_node", "axes", "workload", "workload_scales",
        ),
        "exempt": (),
    },
}


def jsonable(obj: Any) -> Any:
    """Recursively convert ``obj`` into JSON-stable primitives.

    Handles dataclasses, dicts (keys coerced to ``str``), sequences, and
    numpy scalars; anything else must already be a JSON primitive.
    """
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return jsonable(dataclasses.asdict(obj))
    if isinstance(obj, dict):
        return {str(k): jsonable(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [jsonable(v) for v in obj]
    if hasattr(obj, "item") and not isinstance(obj, (str, bytes)):
        # numpy scalar: unwrap to the native Python number. Real arrays
        # (ndim > 0) are rejected below — silently unwrapping a size-1
        # array would make array([x]) and x hash identically.
        if getattr(obj, "ndim", 0) == 0:
            return obj.item()
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    raise TypeError(f"cannot build a stable cache key from {type(obj).__name__}")


def canonical_json(payload: Any) -> str:
    """The canonical (sorted-keys, no-whitespace) JSON form of ``payload``."""
    return json.dumps(jsonable(payload), sort_keys=True, separators=(",", ":"))


def stable_hash(payload: Any) -> str:
    """SHA-256 hex digest of the canonical JSON form of ``payload``."""
    return hashlib.sha256(canonical_json(payload).encode("utf-8")).hexdigest()


@dataclasses.dataclass(frozen=True)
class ArtifactKey:
    """A content address: artifact kind + digest (+ the payload behind it)."""

    kind: str
    digest: str
    payload: Dict[str, Any] = dataclasses.field(compare=False, hash=False)

    @property
    def short(self) -> str:
        return f"{self.kind}/{self.digest[:12]}"


def _resolve_backend_name(kernel_backend: Optional[str]) -> str:
    """Resolve ``None`` to the process-wide default backend's name.

    Two runs that differ only in *how they spelled* the default backend
    (``None`` vs ``"vectorized"``) produce identical numbers and must share
    cache entries.
    """
    from repro.sparse.kernels import get_backend

    return get_backend(kernel_backend).name


def make_key(kind: str, **components: Any) -> ArtifactKey:
    """Build an :class:`ArtifactKey` for ``kind`` from ``components``."""
    payload = dict(components)
    payload["kind"] = kind
    payload["schema"] = CODE_SCHEMA_VERSION
    payload = jsonable(payload)
    return ArtifactKey(kind=kind, digest=stable_hash(payload), payload=payload)


def graph_key(
    dataset: str, scale: Optional[float], seed: int
) -> ArtifactKey:
    """Key for a generated :class:`~repro.graphs.graph.Graph`."""
    return make_key(KIND_GRAPH, dataset=dataset, scale=scale, seed=seed)


def gcod_key(
    dataset: str,
    scale: Optional[float],
    arch: str,
    config: Any,
    kernel_backend: Optional[str],
    seed: int,
    profile: str,
) -> ArtifactKey:
    """Key for a :class:`~repro.algorithm.pipeline.GCoDResult`."""
    backend = _resolve_backend_name(kernel_backend)
    config_payload = jsonable(config)
    if isinstance(config_payload, dict) and "kernel_backend" in config_payload:
        # Normalize the config's backend spelling too: a config saying
        # ``None`` (process default) and one naming the default explicitly
        # produce identical numbers, so they must share a digest.
        config_payload["kernel_backend"] = _resolve_backend_name(
            config_payload["kernel_backend"]
        )
    return make_key(
        KIND_GCOD,
        dataset=dataset,
        scale=scale,
        arch=arch,
        config=config_payload,
        kernel_backend=backend,
        seed=seed,
        profile=profile,
    )


def trace_key(gcod: ArtifactKey) -> ArtifactKey:
    """Key for the measured first-layer execution trace of a GCoD run."""
    return make_key(KIND_TRACE, gcod_digest=gcod.digest)


def sweep_point_key(
    dataset: str,
    scale: Optional[float],
    arch: str,
    config: Any,
    kernel_backend: Optional[str],
    seed: int,
    profile: str,
    bits: int,
    hw_scale: float,
    tech_node: int,
    axes: Dict[str, Any],
    workload: Optional[str] = None,
    workload_scales: Any = (),
) -> ArtifactKey:
    """Key for one evaluated design point of a ``repro sweep``.

    The payload covers everything the point's metrics depend on — the full
    training config (backend spellings normalized exactly like
    :func:`gcod_key`), the platform variant (``bits``, ``hw_scale``,
    ``tech_node``) — plus the raw axis values, because two points may
    share a resolved config (e.g. ``S`` clamped up to ``C``) while
    reporting different coordinates. Multi-model points additionally
    carry the canonical workload-DAG shorthand and the per-dataset
    generation scales every node trained at — without the scales, two
    contexts generating ``citeseer`` at different sizes would collide on
    the key minted from the primary node alone.
    """
    backend = _resolve_backend_name(kernel_backend)
    config_payload = jsonable(config)
    if isinstance(config_payload, dict) and "kernel_backend" in config_payload:
        config_payload["kernel_backend"] = _resolve_backend_name(
            config_payload["kernel_backend"]
        )
    return make_key(
        KIND_SWEEP,
        dataset=dataset,
        scale=scale,
        arch=arch,
        config=config_payload,
        kernel_backend=backend,
        seed=seed,
        profile=profile,
        bits=bits,
        hw_scale=float(hw_scale),
        tech_node=int(tech_node),
        axes=dict(sorted(axes.items())),
        workload=workload,
        workload_scales=dict(sorted(dict(workload_scales).items())),
    )


def sweep_manifest_key(
    axes: Any,
    profile: str,
    seed: int,
    kernel_backend: Optional[str],
    dataset_scales: Dict[str, float],
) -> ArtifactKey:
    """Key for a sweep's run manifest (planned/done point digests).

    The manifest's identity is the *grid* plus everything the point keys
    inherit from the context — deliberately **not** the sweep's registered
    name, so ``repro sweep ablation-cs --resume`` and an ad-hoc ``--grid``
    spelling of the same axes resume the same manifest.
    """
    return make_key(
        KIND_MANIFEST,
        axes=jsonable(axes),
        profile=profile,
        seed=seed,
        kernel_backend=_resolve_backend_name(kernel_backend),
        dataset_scales=dict(sorted(dataset_scales.items())),
    )


def experiment_key(
    name: str,
    profile: str,
    seed: int,
    kernel_backend: Optional[str],
    dataset_scales: Dict[str, float],
) -> ArtifactKey:
    """Key for a rendered :class:`~repro.evaluation.context.ExperimentResult`."""
    return make_key(
        KIND_EXPERIMENT,
        name=name,
        profile=profile,
        seed=seed,
        kernel_backend=_resolve_backend_name(kernel_backend),
        dataset_scales=dict(sorted(dataset_scales.items())),
    )


__all__: Tuple[str, ...] = (
    "ALL_KINDS",
    "CODE_SCHEMA_VERSION",
    "KEY_FIELD_COVERAGE",
    "KIND_CLAIM",
    "KIND_EXPERIMENT",
    "KIND_GCOD",
    "KIND_GRAPH",
    "KIND_MANIFEST",
    "KIND_SWEEP",
    "KIND_TRACE",
    "ArtifactKey",
    "canonical_json",
    "experiment_key",
    "gcod_key",
    "graph_key",
    "jsonable",
    "make_key",
    "stable_hash",
    "sweep_manifest_key",
    "sweep_point_key",
    "trace_key",
)
