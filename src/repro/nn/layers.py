"""Parameterized layers and the ``Module`` base class."""

from __future__ import annotations

from typing import Dict, Iterator, List, Tuple

import numpy as np

from repro.nn import init
from repro.nn.tensor import Tensor
from repro.utils.rng import SeedLike, ensure_rng


class Module:
    """Base class: parameter registration, train/eval mode, state dicts."""

    def __init__(self):
        self.training = True

    def parameters(self) -> List[Tensor]:
        """All trainable tensors reachable from this module, depth-first."""
        params: List[Tensor] = []
        seen = set()
        for _, tensor in self.named_parameters():
            if id(tensor) not in seen:
                seen.add(id(tensor))
                params.append(tensor)
        return params

    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Tensor]]:
        """Yield (dotted name, tensor) pairs for every trainable parameter."""
        for attr, value in vars(self).items():
            name = f"{prefix}{attr}"
            if isinstance(value, Tensor) and value.requires_grad:
                yield name, value
            elif isinstance(value, Module):
                yield from value.named_parameters(prefix=name + ".")
            elif isinstance(value, (list, tuple)):
                for i, item in enumerate(value):
                    if isinstance(item, Module):
                        yield from item.named_parameters(prefix=f"{name}.{i}.")
                    elif isinstance(item, Tensor) and item.requires_grad:
                        yield f"{name}.{i}", item

    def zero_grad(self) -> None:
        """Clear gradients on every parameter."""
        for p in self.parameters():
            p.zero_grad()

    def train(self) -> "Module":
        """Enable training mode (dropout active) on self and children."""
        self._set_mode(True)
        return self

    def eval(self) -> "Module":
        """Enable eval mode (dropout inert) on self and children."""
        self._set_mode(False)
        return self

    def _set_mode(self, training: bool) -> None:
        self.training = training
        for value in vars(self).values():
            if isinstance(value, Module):
                value._set_mode(training)
            elif isinstance(value, (list, tuple)):
                for item in value:
                    if isinstance(item, Module):
                        item._set_mode(training)

    def state_dict(self) -> Dict[str, np.ndarray]:
        """Copy of every parameter's value, keyed by dotted name."""
        return {name: t.data.copy() for name, t in self.named_parameters()}

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        """Load values saved by :meth:`state_dict` (shapes must match)."""
        named = dict(self.named_parameters())
        for name, value in state.items():
            if name not in named:
                raise KeyError(f"unexpected parameter {name!r}")
            if named[name].data.shape != value.shape:
                raise ValueError(f"shape mismatch for {name!r}")
            named[name].data = value.copy()


class Linear(Module):
    """Dense affine layer ``x @ W + b``."""

    def __init__(self, in_dim: int, out_dim: int, bias: bool = True, rng: SeedLike = None):
        super().__init__()
        gen = ensure_rng(rng)
        self.weight = Tensor(glorot_matrix(in_dim, out_dim, gen), requires_grad=True)
        self.bias = (
            Tensor(init.zeros((out_dim,)), requires_grad=True) if bias else None
        )

    def __call__(self, x: Tensor) -> Tensor:
        out = x @ self.weight
        if self.bias is not None:
            out = out + self.bias
        return out


class BatchNorm1d(Module):
    """Feature-wise batch normalization with running statistics.

    GIN's sum aggregation on power-law graphs produces activations whose
    scale varies by orders of magnitude between hub and leaf nodes; the
    reference GIN interleaves batch norm after every MLP for exactly this
    reason, and training diverges without it.
    """

    def __init__(self, dim: int, momentum: float = 0.1, eps: float = 1e-5):
        super().__init__()
        self.gamma = Tensor(np.ones(dim), requires_grad=True)
        self.beta = Tensor(np.zeros(dim), requires_grad=True)
        self.momentum = momentum
        self.eps = eps
        self.running_mean = np.zeros(dim)
        self.running_var = np.ones(dim)

    def __call__(self, x: Tensor) -> Tensor:
        from repro.nn.tensor import power

        if self.training:
            mean = x.data.mean(axis=0)
            var = x.data.var(axis=0)
            self.running_mean = (
                (1 - self.momentum) * self.running_mean + self.momentum * mean
            )
            self.running_var = (
                (1 - self.momentum) * self.running_var + self.momentum * var
            )
        else:
            mean, var = self.running_mean, self.running_var
        # Normalization treats the batch statistics as constants (a standard
        # simplification that keeps gradients stable for full-batch GCNs).
        scale = 1.0 / np.sqrt(var + self.eps)
        normalized = (x + Tensor(-mean)) * Tensor(scale)
        return normalized * self.gamma + self.beta


def glorot_matrix(in_dim: int, out_dim: int, rng: SeedLike = None) -> np.ndarray:
    """Glorot-uniform weight matrix of shape (in_dim, out_dim)."""
    return init.glorot((in_dim, out_dim), rng=rng)
