"""Training loop for semi-supervised node classification (Eq. 2)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

import numpy as np

from repro.graphs.graph import Graph
from repro.nn import functional as F
from repro.nn.models.base import GNNModel, GraphOps
from repro.nn.optim import Adam, Optimizer
from repro.nn.tensor import Tensor
from repro.sparse.kernels import BackendLike


@dataclass
class TrainResult:
    """Outcome of a training run."""

    train_losses: List[float] = field(default_factory=list)
    val_accuracies: List[float] = field(default_factory=list)
    test_accuracy: float = 0.0
    best_epoch: int = 0
    epochs_run: int = 0
    best_state: Optional[dict] = None


def accuracy(
    model: GNNModel, graph: Graph, ops: GraphOps, mask: np.ndarray
) -> float:
    """Fraction of correctly classified nodes under ``mask``."""
    preds = model.predict(graph.features, ops)
    mask = np.asarray(mask, dtype=bool)
    if not mask.any():
        return 0.0
    return float((preds[mask] == graph.labels[mask]).mean())


def train_model(
    model: GNNModel,
    graph: Graph,
    ops: Optional[GraphOps] = None,
    epochs: int = 400,
    lr: float = 0.01,
    weight_decay: float = 5e-4,
    optimizer: Optional[Optimizer] = None,
    epoch_callback: Optional[Callable[[int, "GNNModel", float], bool]] = None,
    track_best: bool = True,
    kernel_backend: BackendLike = None,
) -> TrainResult:
    """Train ``model`` on ``graph`` with the paper's settings (Sec. VI-A).

    ``epoch_callback(epoch, model, val_acc)`` may return ``True`` to stop
    early — this is the hook the early-bird ticket detector uses. When
    ``track_best`` is set the parameters with the best validation accuracy
    are restored before computing the test accuracy. ``kernel_backend``
    selects the SpMM kernels used for aggregation (ignored when ``ops`` is
    supplied, which carries its own backend).
    """
    ops = ops or GraphOps(graph.adj, kernel_backend=kernel_backend)
    opt = optimizer or Adam(model.parameters(), lr=lr, weight_decay=weight_decay)
    result = TrainResult()
    best_val = -1.0
    x = Tensor(graph.features)

    for epoch in range(epochs):
        model.train()
        opt.zero_grad()
        logits = model(x, ops)
        loss = F.cross_entropy(logits, graph.labels, graph.train_mask)
        loss.backward()
        opt.step()
        result.train_losses.append(float(loss.data))

        val_acc = accuracy(model, graph, ops, graph.val_mask)
        result.val_accuracies.append(val_acc)
        if track_best and val_acc >= best_val:
            best_val = val_acc
            result.best_epoch = epoch
            result.best_state = model.state_dict()
        result.epochs_run = epoch + 1

        if epoch_callback is not None and epoch_callback(epoch, model, val_acc):
            break

    if track_best and result.best_state is not None:
        model.load_state_dict(result.best_state)
    result.test_accuracy = accuracy(model, graph, ops, graph.test_mask)
    return result
