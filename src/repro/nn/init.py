"""Weight initialization schemes."""

from __future__ import annotations

import numpy as np

from repro.utils.rng import SeedLike, ensure_rng


def glorot(shape: tuple, rng: SeedLike = None) -> np.ndarray:
    """Glorot/Xavier uniform initialization (standard for GCN layers)."""
    gen = ensure_rng(rng)
    fan_in, fan_out = shape[0], shape[-1]
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return gen.uniform(-limit, limit, size=shape)


def zeros(shape: tuple) -> np.ndarray:
    """All-zeros initialization (biases)."""
    return np.zeros(shape, dtype=np.float64)
