"""Gradient-descent optimizers (the paper trains everything with Adam, lr 0.01)."""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.nn.tensor import Tensor


class Optimizer:
    """Base optimizer: holds the parameter list and zero_grad plumbing."""

    def __init__(self, params: Sequence[Tensor]):
        self.params: List[Tensor] = [p for p in params if p.requires_grad]
        if not self.params:
            raise ValueError("optimizer received no trainable parameters")

    def zero_grad(self) -> None:
        """Clear every parameter's gradient."""
        for p in self.params:
            p.zero_grad()

    def step(self) -> None:
        """Apply one update; implemented by subclasses."""
        raise NotImplementedError


class SGD(Optimizer):
    """Plain stochastic gradient descent with optional weight decay."""

    def __init__(self, params, lr: float = 0.01, weight_decay: float = 0.0):
        super().__init__(params)
        self.lr = lr
        self.weight_decay = weight_decay

    def step(self) -> None:
        """Take one SGD step using accumulated gradients."""
        for p in self.params:
            if p.grad is None:
                continue
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            p.data = p.data - self.lr * grad


class Adam(Optimizer):
    """Adam (Kingma & Ba), the paper's optimizer (Sec. VI-A)."""

    def __init__(
        self,
        params,
        lr: float = 0.01,
        betas: tuple = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ):
        super().__init__(params)
        self.lr = lr
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self.t = 0
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        """Take one Adam step using accumulated gradients."""
        self.t += 1
        bc1 = 1.0 - self.beta1**self.t
        bc2 = 1.0 - self.beta2**self.t
        for i, p in enumerate(self.params):
            if p.grad is None:
                continue
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            self._m[i] = self.beta1 * self._m[i] + (1 - self.beta1) * grad
            self._v[i] = self.beta2 * self._v[i] + (1 - self.beta2) * grad**2
            m_hat = self._m[i] / bc1
            v_hat = self._v[i] / bc2
            p.data = p.data - self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
