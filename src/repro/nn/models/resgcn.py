"""Deep residual GCN (Li et al., DeeperGCN): 28 layers, 128 hidden (Tab. IV)."""

from __future__ import annotations

from typing import List

from repro.nn import functional as F
from repro.nn.layers import Linear
from repro.nn.models.base import GNNModel, GraphOps
from repro.nn.tensor import Tensor
from repro.utils.rng import SeedLike, ensure_rng


class ResGCN(GNNModel):
    """Residual GCN with Max aggregation.

    Each block computes ``h + ReLU(Agg_max(h W))``; an input projection
    lifts features to ``hidden_dim`` and an output head maps to classes.
    28 layers in the paper's configuration; tests use fewer for speed.
    """

    def __init__(
        self,
        in_dim: int,
        hidden_dim: int,
        out_dim: int,
        num_layers: int = 28,
        dropout: float = 0.2,
        rng: SeedLike = None,
    ):
        super().__init__()
        if num_layers < 1:
            raise ValueError("ResGCN needs at least one residual block")
        gen = ensure_rng(rng)
        self.input_proj = Linear(in_dim, hidden_dim, rng=gen)
        self.blocks: List[Linear] = [
            Linear(hidden_dim, hidden_dim, rng=gen) for _ in range(num_layers)
        ]
        self.head = Linear(hidden_dim, out_dim, rng=gen)
        self.dropout = dropout
        self._rng = gen

    @property
    def num_layers(self) -> int:
        """Number of residual blocks."""
        return len(self.blocks)

    def forward(self, x: Tensor, ops: GraphOps) -> Tensor:
        """Return class logits for every node."""
        h = self.input_proj(x)
        for block in self.blocks:
            update = F.relu(ops.agg_max(block(h)))
            update = F.dropout(update, self.dropout, self.training, rng=self._rng)
            h = h + update
        return self.head(h)
