"""Graph Isomorphism Network (Xu et al.) with Add aggregation (Tab. IV)."""

from __future__ import annotations

from typing import List

from repro.nn import functional as F
from repro.nn.layers import BatchNorm1d, Linear, Module
from repro.nn.models.base import GNNModel, GraphOps
from repro.nn.tensor import Tensor
from repro.utils.rng import SeedLike, ensure_rng


class _GINMLP(Module):
    """The 2-layer MLP applied after each GIN aggregation."""

    def __init__(self, in_dim: int, hidden_dim: int, out_dim: int, rng=None):
        super().__init__()
        gen = ensure_rng(rng)
        self.fc1 = Linear(in_dim, hidden_dim, rng=gen)
        self.bn = BatchNorm1d(hidden_dim)
        self.fc2 = Linear(hidden_dim, out_dim, rng=gen)

    def __call__(self, x: Tensor) -> Tensor:
        return self.fc2(F.relu(self.bn(self.fc1(x))))


class GIN(GNNModel):
    """``h' = MLP((1 + eps) h + Σ_{j∈N(i)} h_j)``; 3 layers per Tab. IV."""

    def __init__(
        self,
        in_dim: int,
        hidden_dim: int,
        out_dim: int,
        num_layers: int = 3,
        dropout: float = 0.5,
        eps: float = 0.0,
        rng: SeedLike = None,
    ):
        super().__init__()
        gen = ensure_rng(rng)
        dims = [in_dim] + [hidden_dim] * (num_layers - 1) + [out_dim]
        self.mlps: List[_GINMLP] = [
            _GINMLP(dims[i], hidden_dim, dims[i + 1], rng=gen)
            for i in range(num_layers)
        ]
        self.eps = Tensor(eps * 1.0 + 0.0, requires_grad=True)
        self.dropout = dropout
        self._rng = gen

    def forward(self, x: Tensor, ops: GraphOps) -> Tensor:
        """Return class logits for every node."""
        h = x
        for i, mlp in enumerate(self.mlps):
            h = F.dropout(h, self.dropout, self.training, rng=self._rng)
            aggregated = ops.agg_sum(h) + h * (self.eps + Tensor(1.0))
            h = mlp(aggregated)
            if i < len(self.mlps) - 1:
                h = F.relu(h)
        return h
