"""The five GCN variants evaluated by the paper (Tab. IV)."""

from repro.nn.models.base import GNNModel, GraphOps
from repro.nn.models.gcn import GCN
from repro.nn.models.gin import GIN
from repro.nn.models.gat import GAT, GATLayer
from repro.nn.models.sage import GraphSAGE, SAGELayer, sample_neighbors
from repro.nn.models.resgcn import ResGCN

from repro.errors import invalid_value_error
from repro.graphs.graph import Graph
from repro.utils.rng import SeedLike


#: Tab. IV hidden dimensions: 16 for citation graphs, 64 for NELL/Reddit.
def hidden_dim_for(dataset_name: str) -> int:
    """Hidden width the paper uses for ``dataset_name`` (Tab. IV)."""
    return 16 if dataset_name in ("cora", "citeseer", "pubmed") else 64


def build_model(
    arch: str,
    graph: Graph,
    hidden_dim: int = None,
    num_layers: int = None,
    rng: SeedLike = None,
) -> GNNModel:
    """Construct one of the Tab. IV models sized for ``graph``.

    ``arch`` is one of ``gcn``, ``gin``, ``gat``, ``sage``, ``resgcn``.
    ``hidden_dim`` / ``num_layers`` default to the paper's settings.
    """
    arch = arch.lower()
    in_dim = graph.num_features
    out_dim = graph.num_classes
    if hidden_dim is not None and hidden_dim <= 0:
        # `hidden_dim or default` would silently swap 0 for the paper
        # width; an explicit non-positive width is a config mistake.
        raise invalid_value_error(
            "hidden_dim", hidden_dim,
            "a positive hidden width, or None for the paper default",
        )
    hidden = hidden_dim or hidden_dim_for(graph.name)
    if arch == "gcn":
        return GCN(in_dim, hidden, out_dim, num_layers=num_layers or 2, rng=rng)
    if arch == "gin":
        return GIN(in_dim, hidden, out_dim, num_layers=num_layers or 3, rng=rng)
    if arch == "gat":
        return GAT(in_dim, hidden_dim or 8, out_dim, heads=8, rng=rng)
    if arch in ("sage", "graphsage"):
        return GraphSAGE(in_dim, hidden, out_dim, rng=rng)
    if arch == "resgcn":
        return ResGCN(
            in_dim, hidden_dim or 128, out_dim, num_layers=num_layers or 28, rng=rng
        )
    raise ValueError(f"unknown architecture {arch!r}")


MODEL_ARCHS = ("gcn", "gin", "gat", "sage", "resgcn")

__all__ = [
    "GNNModel",
    "GraphOps",
    "GCN",
    "GIN",
    "GAT",
    "GATLayer",
    "GraphSAGE",
    "SAGELayer",
    "sample_neighbors",
    "ResGCN",
    "build_model",
    "hidden_dim_for",
    "MODEL_ARCHS",
]
