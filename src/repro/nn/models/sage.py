"""GraphSAGE (Hamilton et al.): mean aggregation + neighbour sampling.

Tab. IV: two layers, same hidden dims as GCN, neighbourhood sample sizes of
25 and 10 per layer. Sampling builds a *sampled* ``GraphOps`` per call during
training; evaluation runs full-batch on the whole neighbourhood.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np
import scipy.sparse as sp

from repro.nn import functional as F
from repro.nn.layers import Linear
from repro.nn.models.base import GNNModel, GraphOps
from repro.nn.tensor import Tensor
from repro.utils.rng import SeedLike, ensure_rng


def sample_neighbors(
    adj: sp.spmatrix, max_neighbors: int, rng: SeedLike = None
) -> sp.csr_matrix:
    """Uniformly subsample each node's neighbour list to ``max_neighbors``.

    This is the "Sampling Unit" workload of the accelerator (Sec. V-B): pick
    random non-zeros from each adjacency column/row.
    """
    gen = ensure_rng(rng)
    csr = sp.csr_matrix(adj)
    degrees = np.diff(csr.indptr)
    oversized = np.nonzero(degrees > max_neighbors)[0]
    if oversized.size == 0:  # nothing to subsample: keep the structure as is
        return sp.csr_matrix(
            (
                np.ones(csr.indices.shape[0]),
                csr.indices.astype(np.int64),
                csr.indptr.copy(),
            ),
            shape=csr.shape,
        )
    rows: List[np.ndarray] = []
    cols: List[np.ndarray] = []
    for i in oversized:
        lo, hi = csr.indptr[i], csr.indptr[i + 1]
        neigh = gen.choice(
            csr.indices[lo:hi], size=max_neighbors, replace=False
        )
        rows.append(np.full(neigh.size, i, dtype=np.int64))
        cols.append(neigh.astype(np.int64))
    # Rows at or under the budget keep their full neighbour lists.
    keep = np.repeat(degrees <= max_neighbors, degrees)
    row = np.concatenate(
        [np.repeat(np.arange(csr.shape[0]), degrees)[keep]] + rows
    )
    col = np.concatenate([csr.indices[keep].astype(np.int64)] + cols)
    return sp.csr_matrix(
        (np.ones(row.shape[0]), (row, col)), shape=csr.shape
    )


class SAGELayer(GNNModel):
    """``h' = W_self h + W_neigh mean(h_neigh)`` (mean aggregator variant)."""

    def __init__(self, in_dim: int, out_dim: int, rng=None):
        super().__init__()
        gen = ensure_rng(rng)
        self.self_fc = Linear(in_dim, out_dim, rng=gen)
        self.neigh_fc = Linear(in_dim, out_dim, bias=False, rng=gen)

    def forward(self, x: Tensor, ops: GraphOps) -> Tensor:
        return self.self_fc(x) + self.neigh_fc(ops.agg_mean(x))


class GraphSAGE(GNNModel):
    """Two-layer GraphSAGE with per-layer neighbour sampling during training."""

    def __init__(
        self,
        in_dim: int,
        hidden_dim: int,
        out_dim: int,
        sample_sizes: Sequence[int] = (25, 10),
        dropout: float = 0.5,
        rng: SeedLike = None,
    ):
        super().__init__()
        gen = ensure_rng(rng)
        self.layer1 = SAGELayer(in_dim, hidden_dim, rng=gen)
        self.layer2 = SAGELayer(hidden_dim, out_dim, rng=gen)
        self.sample_sizes = tuple(sample_sizes)
        self.dropout = dropout
        self._rng = gen

    def _layer_ops(self, ops: GraphOps, layer_idx: int) -> GraphOps:
        """Sampled ops during training; the provided full ops otherwise."""
        if not self.training or ops.trainable:
            return ops
        adj = sp.csr_matrix(
            (ops.base_data, (ops.rows, ops.cols)),
            shape=(ops.num_nodes, ops.num_nodes),
        )
        sampled = sample_neighbors(adj, self.sample_sizes[layer_idx], rng=self._rng)
        return GraphOps(sampled, kernel_backend=ops.kernel)

    def forward(self, x: Tensor, ops: GraphOps) -> Tensor:
        """Return class logits for every node."""
        h = F.dropout(x, self.dropout, self.training, rng=self._rng)
        h = F.relu(self.layer1(h, self._layer_ops(ops, 0)))
        h = F.dropout(h, self.dropout, self.training, rng=self._rng)
        return self.layer2(h, self._layer_ops(ops, 1))
