"""Shared graph-operator abstraction for all five GCN variants.

Every model aggregates neighbour features through a :class:`GraphOps`
object. ``GraphOps`` has two personalities:

* **constant adjacency** — the normal case: aggregations run as SpMM against
  precomputed (normalized) sparse matrices;
* **trainable adjacency** — GCoD's graph-tuning step (Eq. 4): a per-edge
  weight tensor multiplies the fixed symmetric normalization, and
  aggregation runs through :func:`repro.nn.functional.edge_spmm` so that
  gradients flow into the edge weights.

Keeping the switch here means the *same model code* is used for pretraining,
graph tuning, and retraining — exactly the paper's "W is replaced with A in
Eq. (2)" trick.
"""

from __future__ import annotations

from typing import Optional

import numpy as np
import scipy.sparse as sp

from repro.nn import functional as F
from repro.nn.layers import Module
from repro.nn.tensor import Tensor, reshape
from repro.sparse.kernels import BackendLike, get_backend


class GraphOps:
    """Aggregation operators over one graph, constant or trainable.

    Parameters
    ----------
    adj:
        Binary/weighted adjacency (no self-loops), scipy sparse.
    edge_weights:
        Optional trainable tensor with one entry per *stored* non-zero of
        ``adj`` (ordered like ``adj.tocoo()``). When given, symmetric-
        normalized aggregation multiplies each edge's fixed normalization by
        its weight; self-loops keep weight 1.
    kernel_backend:
        SpMM kernel backend name or instance (see
        :mod:`repro.sparse.kernels`); ``None`` uses the registry default.
        Every aggregation this object performs routes through it.
    """

    def __init__(
        self,
        adj: sp.spmatrix,
        edge_weights: Optional[Tensor] = None,
        kernel_backend: BackendLike = None,
    ):
        coo = sp.coo_matrix(adj)
        self.kernel = get_backend(kernel_backend)
        self.num_nodes = coo.shape[0]
        self.rows = coo.row.astype(np.int64)
        self.cols = coo.col.astype(np.int64)
        self.base_data = coo.data.astype(np.float64)
        self.edge_weights = edge_weights
        if edge_weights is not None and edge_weights.data.shape[0] != self.rows.shape[0]:
            raise ValueError(
                "edge_weights must have one entry per stored non-zero"
            )

        # Fixed symmetric normalization computed on A + I (renormalization
        # trick); held constant during graph tuning, following SGCN [23].
        degrees = np.bincount(
            self.rows, weights=self.base_data, minlength=self.num_nodes
        ).astype(np.float64)
        degrees += 1.0  # self loop
        inv_sqrt = 1.0 / np.sqrt(np.maximum(degrees, 1e-12))
        self.sym_edge_norm = (
            inv_sqrt[self.rows] * inv_sqrt[self.cols] * self.base_data
        )
        self.sym_loop_norm = inv_sqrt * inv_sqrt
        # Row-mean weights (GraphSAGE's mean aggregation over neighbours).
        counts = np.bincount(self.rows, minlength=self.num_nodes).astype(np.float64)
        self.mean_edge_norm = self.base_data / np.maximum(counts[self.rows], 1.0)

        if edge_weights is None:
            n = self.num_nodes
            self._sym_mat = sp.csr_matrix(
                (self.sym_edge_norm, (self.rows, self.cols)), shape=(n, n)
            ) + sp.diags(self.sym_loop_norm)
            self._sum_mat = sp.csr_matrix(
                (self.base_data, (self.rows, self.cols)), shape=(n, n)
            )
            self._mean_mat = sp.csr_matrix(
                (self.mean_edge_norm, (self.rows, self.cols)), shape=(n, n)
            )

    @property
    def trainable(self) -> bool:
        """True when aggregation routes gradients into edge weights."""
        return self.edge_weights is not None

    # ------------------------------------------------------------------
    # aggregations
    # ------------------------------------------------------------------
    def agg_sym(self, x: Tensor) -> Tensor:
        """Symmetric-normalized aggregation ``Â x`` (GCN / ResGCN)."""
        if self.edge_weights is None:
            return F.spmm(self._sym_mat, x, backend=self.kernel)
        weights = self.edge_weights * Tensor(self.sym_edge_norm)
        neigh = F.edge_spmm(
            weights, self.rows, self.cols, x, self.num_nodes,
            backend=self.kernel,
        )
        return neigh + x * Tensor(self.sym_loop_norm[:, None])

    def agg_sum(self, x: Tensor) -> Tensor:
        """Unnormalized sum aggregation (GIN's Add, Tab. IV)."""
        if self.edge_weights is None:
            return F.spmm(self._sum_mat, x, backend=self.kernel)
        weights = self.edge_weights * Tensor(self.base_data)
        return F.edge_spmm(
            weights, self.rows, self.cols, x, self.num_nodes,
            backend=self.kernel,
        )

    def agg_mean(self, x: Tensor) -> Tensor:
        """Neighbour-mean aggregation (GraphSAGE, Tab. IV)."""
        if self.edge_weights is None:
            return F.spmm(self._mean_mat, x, backend=self.kernel)
        weights = self.edge_weights * Tensor(self.mean_edge_norm)
        return F.edge_spmm(
            weights, self.rows, self.cols, x, self.num_nodes,
            backend=self.kernel,
        )

    def agg_max(self, x: Tensor) -> Tensor:
        """Neighbour-max aggregation (ResGCN's Max, Tab. IV)."""
        gathered = F.gather_rows(x, self.cols, backend=self.kernel)
        if self.edge_weights is not None:
            gathered = gathered * reshape(self.edge_weights, (-1, 1))
        return F.segment_max(
            gathered, self.rows, self.num_nodes, backend=self.kernel
        )

    def attention_aggregate(self, x: Tensor, edge_scores: Tensor) -> Tensor:
        """GAT aggregation: per-edge softmaxed scores weight source features.

        ``edge_scores`` is 1-D over edges; self-loops are not added here —
        GAT layers append them to the edge list themselves if wanted.
        """
        alpha = F.segment_softmax(
            edge_scores, self.rows, self.num_nodes, backend=self.kernel
        )
        if self.edge_weights is not None:
            alpha = alpha * self.edge_weights
        return F.edge_spmm(
            alpha, self.rows, self.cols, x, self.num_nodes,
            backend=self.kernel,
        )


class GNNModel(Module):
    """Base class for the five models: ``forward(x, ops) -> logits``."""

    def forward(self, x: Tensor, ops: GraphOps) -> Tensor:
        raise NotImplementedError

    def __call__(self, x: Tensor, ops: GraphOps) -> Tensor:
        return self.forward(x, ops)

    def predict(self, x: np.ndarray, ops: GraphOps) -> np.ndarray:
        """Class predictions with dropout disabled."""
        was_training = self.training
        self.eval()
        logits = self.forward(Tensor(x), ops)
        if was_training:
            self.train()
        return np.argmax(logits.data, axis=1)
