"""The 2-layer GCN of Kipf & Welling (Eq. 1): the paper's primary model."""

from __future__ import annotations

from typing import List

from repro.nn import functional as F
from repro.nn.layers import Linear
from repro.nn.models.base import GNNModel, GraphOps
from repro.nn.tensor import Tensor
from repro.utils.rng import SeedLike, ensure_rng


class GCN(GNNModel):
    """``Z = softmax(Â ReLU(Â X W0) W1)`` generalized to ``num_layers``.

    Tab. IV: 2 layers; hidden 16 for the citation graphs, 64 for
    NELL/Reddit; mean (symmetric-normalized) aggregation.
    """

    def __init__(
        self,
        in_dim: int,
        hidden_dim: int,
        out_dim: int,
        num_layers: int = 2,
        dropout: float = 0.5,
        rng: SeedLike = None,
    ):
        super().__init__()
        if num_layers < 1:
            raise ValueError("GCN needs at least one layer")
        gen = ensure_rng(rng)
        dims = [in_dim] + [hidden_dim] * (num_layers - 1) + [out_dim]
        self.layers: List[Linear] = [
            Linear(dims[i], dims[i + 1], rng=gen) for i in range(num_layers)
        ]
        self.dropout = dropout
        self._rng = gen

    def forward(self, x: Tensor, ops: GraphOps) -> Tensor:
        """Return class logits for every node."""
        h = x
        for i, layer in enumerate(self.layers):
            h = F.dropout(h, self.dropout, self.training, rng=self._rng)
            # Combination (X W) then aggregation (Â ·) — the two phases the
            # accelerator pipelines (Sec. V-B, Fig. 7).
            h = ops.agg_sym(layer(h))
            if i < len(self.layers) - 1:
                h = F.relu(h)
        return h
