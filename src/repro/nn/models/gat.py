"""Graph Attention Network (Velickovic et al.): 8 hidden units, 8 heads (Tab. IV)."""

from __future__ import annotations

from typing import List

import numpy as np

from repro.nn import functional as F
from repro.nn import init
from repro.nn.layers import Module
from repro.nn.models.base import GNNModel, GraphOps
from repro.nn.tensor import Tensor, concat, reshape
from repro.utils.rng import SeedLike, ensure_rng


class GATLayer(Module):
    """One multi-head attention layer.

    Per head: ``e_ij = LeakyReLU(a_l · W h_i + a_r · W h_j)`` for each edge
    ``(i <- j)``; attention is softmaxed over each node's in-edges via
    ``segment_softmax``; outputs are concatenated (hidden layers) or averaged
    (output layer).
    """

    def __init__(
        self,
        in_dim: int,
        out_dim: int,
        heads: int,
        concat_heads: bool,
        rng=None,
    ):
        super().__init__()
        gen = ensure_rng(rng)
        self.heads = heads
        self.out_dim = out_dim
        self.concat_heads = concat_heads
        self.weights: List[Tensor] = [
            Tensor(init.glorot((in_dim, out_dim), rng=gen), requires_grad=True)
            for _ in range(heads)
        ]
        self.att_left: List[Tensor] = [
            Tensor(init.glorot((out_dim, 1), rng=gen).ravel(), requires_grad=True)
            for _ in range(heads)
        ]
        self.att_right: List[Tensor] = [
            Tensor(init.glorot((out_dim, 1), rng=gen).ravel(), requires_grad=True)
            for _ in range(heads)
        ]

    def __call__(self, x: Tensor, ops: GraphOps) -> Tensor:
        head_outputs = []
        for h in range(self.heads):
            transformed = x @ self.weights[h]
            # Scalar score components per node, combined per edge.
            left = transformed @ reshape(self.att_left[h], (-1, 1))
            right = transformed @ reshape(self.att_right[h], (-1, 1))
            scores = F.leaky_relu(
                F.gather_rows(left, ops.rows) + F.gather_rows(right, ops.cols)
            )
            edge_scores = reshape(scores, (-1,))
            out = ops.attention_aggregate(transformed, edge_scores)
            head_outputs.append(out)
        if self.concat_heads:
            return concat(head_outputs, axis=1)
        total = head_outputs[0]
        for out in head_outputs[1:]:
            total = total + out
        return total * Tensor(1.0 / self.heads)


class GAT(GNNModel):
    """Two GAT layers: 8-head concat hidden layer, averaged output layer."""

    def __init__(
        self,
        in_dim: int,
        hidden_dim: int,
        out_dim: int,
        heads: int = 8,
        dropout: float = 0.6,
        rng: SeedLike = None,
    ):
        super().__init__()
        gen = ensure_rng(rng)
        self.layer1 = GATLayer(in_dim, hidden_dim, heads, concat_heads=True, rng=gen)
        self.layer2 = GATLayer(
            hidden_dim * heads, out_dim, heads=1, concat_heads=False, rng=gen
        )
        self.dropout = dropout
        self._rng = gen

    def forward(self, x: Tensor, ops: GraphOps) -> Tensor:
        """Return class logits for every node."""
        h = F.dropout(x, self.dropout, self.training, rng=self._rng)
        h = F.elu(self.layer1(h, ops))
        h = F.dropout(h, self.dropout, self.training, rng=self._rng)
        return self.layer2(h, ops)
