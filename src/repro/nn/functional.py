"""Neural-network ops: activations, losses, sparse and segment operations.

The segment ops (``gather_rows`` / ``scatter_add_rows`` / ``segment_softmax``
/ ``segment_max``) are the building blocks for GAT attention, GraphSAGE /
GIN / ResGCN aggregations, and — crucially — for GCoD's graph tuning, where
``edge_spmm`` makes the adjacency's per-edge weights themselves trainable.
"""

from __future__ import annotations

from typing import Optional

import numpy as np
import scipy.sparse as sp

from repro.nn.tensor import Tensor, _make
from repro.sparse.kernels import BackendLike, get_backend
from repro.utils.rng import SeedLike, ensure_rng


# ----------------------------------------------------------------------
# activations
# ----------------------------------------------------------------------
def relu(a: Tensor) -> Tensor:
    """Rectified linear unit."""
    mask = a.data > 0
    data = a.data * mask

    def backward(grad):
        if a.requires_grad:
            a.accumulate_grad(grad * mask)

    return _make(data, (a,), backward)


def leaky_relu(a: Tensor, slope: float = 0.2) -> Tensor:
    """Leaky ReLU (GAT's attention nonlinearity uses slope 0.2)."""
    mask = a.data > 0
    data = np.where(mask, a.data, slope * a.data)

    def backward(grad):
        if a.requires_grad:
            a.accumulate_grad(grad * np.where(mask, 1.0, slope))

    return _make(data, (a,), backward)


def elu(a: Tensor, alpha: float = 1.0) -> Tensor:
    """Exponential linear unit (used between GAT layers)."""
    mask = a.data > 0
    expm1 = alpha * np.expm1(np.minimum(a.data, 0.0))
    data = np.where(mask, a.data, expm1)

    def backward(grad):
        if a.requires_grad:
            a.accumulate_grad(grad * np.where(mask, 1.0, expm1 + alpha))

    return _make(data, (a,), backward)


def dropout(a: Tensor, p: float, training: bool, rng: SeedLike = None) -> Tensor:
    """Inverted dropout; identity when ``training`` is False or ``p`` is 0."""
    if not training or p <= 0.0:
        return a
    gen = ensure_rng(rng)
    keep = (gen.random(a.data.shape) >= p) / (1.0 - p)
    data = a.data * keep

    def backward(grad):
        if a.requires_grad:
            a.accumulate_grad(grad * keep)

    return _make(data, (a,), backward)


# ----------------------------------------------------------------------
# losses
# ----------------------------------------------------------------------
def log_softmax(a: Tensor) -> Tensor:
    """Row-wise log-softmax (numerically stabilized)."""
    shifted = a.data - a.data.max(axis=1, keepdims=True)
    logsumexp = np.log(np.exp(shifted).sum(axis=1, keepdims=True))
    data = shifted - logsumexp
    softmax = np.exp(data)

    def backward(grad):
        if a.requires_grad:
            a.accumulate_grad(grad - softmax * grad.sum(axis=1, keepdims=True))

    return _make(data, (a,), backward)


def nll_loss(log_probs: Tensor, labels: np.ndarray, mask: np.ndarray) -> Tensor:
    """Masked negative log-likelihood: Eq. (2)'s cross-entropy over labeled nodes."""
    idx = np.nonzero(np.asarray(mask, dtype=bool))[0]
    if idx.size == 0:
        raise ValueError("nll_loss received an empty mask")
    labels = np.asarray(labels, dtype=np.int64)
    picked = log_probs.data[idx, labels[idx]]
    data = np.array(-picked.mean())

    def backward(grad):
        if log_probs.requires_grad:
            g = np.zeros_like(log_probs.data)
            g[idx, labels[idx]] = -float(grad) / idx.size
            log_probs.accumulate_grad(g)

    return _make(data, (log_probs,), backward)


def cross_entropy(logits: Tensor, labels: np.ndarray, mask: np.ndarray) -> Tensor:
    """Cross-entropy on raw logits (log-softmax + masked NLL)."""
    return nll_loss(log_softmax(logits), labels, mask)


# ----------------------------------------------------------------------
# sparse / graph ops
# ----------------------------------------------------------------------
def spmm(adj: sp.spmatrix, x: Tensor, backend: BackendLike = None) -> Tensor:
    """Aggregation ``Â X`` with a *constant* sparse matrix.

    Gradient: ``dL/dX = Â^T dL/dY``. This is the hot op of standard GCN
    training (Step 1 / retraining); graph tuning uses :func:`edge_spmm`.
    ``backend`` picks the kernel implementation (see
    :mod:`repro.sparse.kernels`).
    """
    kernel = get_backend(backend)
    a = sp.csr_matrix(adj)
    data = kernel.spmm_row_product(a, x.data)

    def backward(grad):
        if x.requires_grad:
            x.accumulate_grad(kernel.spmm_row_product(a.T.tocsr(), grad))

    return _make(data, (x,), backward)


def gather_rows(
    x: Tensor, index: np.ndarray, backend: BackendLike = None
) -> Tensor:
    """Select rows ``x[index]`` (differentiable scatter-add on backward)."""
    kernel = get_backend(backend)
    index = np.asarray(index, dtype=np.int64)
    data = x.data[index]

    def backward(grad):
        if x.requires_grad:
            x.accumulate_grad(kernel.segment_sum(grad, index, x.data.shape[0]))

    return _make(data, (x,), backward)


def scatter_add_rows(
    x: Tensor, index: np.ndarray, num_rows: int, backend: BackendLike = None
) -> Tensor:
    """Accumulate row ``e`` of ``x`` into output row ``index[e]``."""
    kernel = get_backend(backend)
    index = np.asarray(index, dtype=np.int64)
    data = kernel.segment_sum(x.data, index, num_rows)

    def backward(grad):
        if x.requires_grad:
            x.accumulate_grad(grad[index])

    return _make(data, (x,), backward)


def edge_spmm(
    weights: Tensor,
    rows: np.ndarray,
    cols: np.ndarray,
    x: Tensor,
    num_rows: int,
    backend: BackendLike = None,
) -> Tensor:
    """Aggregation with *trainable* edge weights: ``Y[r] += w_e * X[c]``.

    Both the edge-weight vector and the features receive gradients:
    ``dL/dw_e = dY[r_e] · X[c_e]`` and ``dL/dX[c] += w_e * dY[r_e]``.
    This single op is what makes Eq. (4)'s ``L_Graph(A)`` trainable and also
    implements GAT's attention-weighted aggregation.
    """
    kernel = get_backend(backend)
    rows = np.asarray(rows, dtype=np.int64)
    cols = np.asarray(cols, dtype=np.int64)
    w = weights.data.reshape(-1)
    data = kernel.coo_spmm(w, rows, cols, x.data, num_rows)

    def backward(grad):
        if weights.requires_grad:
            gw = np.einsum("ef,ef->e", grad[rows], x.data[cols])
            weights.accumulate_grad(gw.reshape(weights.data.shape))
        if x.requires_grad:
            # The transposed aggregation: dX[c] += w_e * dY[r_e].
            x.accumulate_grad(
                kernel.coo_spmm(w, cols, rows, grad, x.data.shape[0])
            )

    return _make(data, (weights, x), backward)


def segment_softmax(
    scores: Tensor,
    segments: np.ndarray,
    num_segments: int,
    backend: BackendLike = None,
) -> Tensor:
    """Softmax within segments (GAT: normalize attention over each node's in-edges).

    ``scores`` may be 1-D ``(E,)`` or 2-D ``(E, H)`` for multi-head attention.
    """
    kernel = get_backend(backend)
    segments = np.asarray(segments, dtype=np.int64)
    s = scores.data
    squeeze = s.ndim == 1
    if squeeze:
        s = s[:, None]
    seg_max = kernel.segment_max(s, segments, num_segments)
    seg_max[~np.isfinite(seg_max)] = 0.0
    shifted = np.exp(s - seg_max[segments])
    seg_sum = kernel.segment_sum(shifted, segments, num_segments)
    out = shifted / np.maximum(seg_sum[segments], 1e-30)
    data = out[:, 0] if squeeze else out

    def backward(grad):
        if not scores.requires_grad:
            return
        g = grad if not squeeze else grad[:, None]
        # d softmax: p * (g - sum_seg(p * g))
        weighted = kernel.segment_sum(out * g, segments, num_segments)
        gs = out * (g - weighted[segments])
        scores.accumulate_grad(gs[:, 0] if squeeze else gs)

    return _make(data, (scores,), backward)


def segment_max(
    x: Tensor,
    segments: np.ndarray,
    num_segments: int,
    backend: BackendLike = None,
) -> Tensor:
    """Per-segment elementwise max (ResGCN's max aggregation, Tab. IV).

    Empty segments produce zeros. Gradient routes to the arg-max element of
    each (segment, feature) pair.
    """
    kernel = get_backend(backend)
    segments = np.asarray(segments, dtype=np.int64)
    feat = x.data.shape[1]
    data = kernel.segment_max(x.data, segments, num_segments)
    empty = ~np.isfinite(data)
    data = np.where(empty, 0.0, data)

    def backward(grad):
        if not x.requires_grad:
            return
        # argmax bookkeeping: rows achieving the max within their segment.
        winner = x.data == data[segments]
        g = np.where(winner, grad[segments], 0.0)
        # If several rows tie, split the gradient equally among them.
        counts = kernel.segment_sum(
            winner.astype(np.float64), segments, num_segments
        )
        denom = np.maximum(counts[segments], 1.0)
        x.accumulate_grad(g / denom)

    return _make(data, (x,), backward)


def segment_mean(
    x: Tensor,
    segments: np.ndarray,
    num_segments: int,
    backend: BackendLike = None,
) -> Tensor:
    """Per-segment mean (GraphSAGE's mean aggregation over sampled neighbors)."""
    segments = np.asarray(segments, dtype=np.int64)
    counts = np.bincount(segments, minlength=num_segments).astype(np.float64)
    counts = np.maximum(counts, 1.0)
    summed = scatter_add_rows(x, segments, num_segments, backend=backend)
    return _make(
        summed.data / counts[:, None],
        (summed,),
        lambda grad: summed.accumulate_grad(grad / counts[:, None])
        if summed.requires_grad
        else None,
    )
