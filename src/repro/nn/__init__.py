"""Neural-network substrate: autograd, layers, optimizers, GCN models.

A self-contained replacement for the PyTorch stack the paper uses: a small
reverse-mode autograd engine (:mod:`repro.nn.tensor`), graph-specific ops
(:mod:`repro.nn.functional`), the five evaluated models
(:mod:`repro.nn.models`), and a training loop (:mod:`repro.nn.training`).
"""

from repro.nn.tensor import Tensor
from repro.nn.layers import Linear, Module
from repro.nn.optim import Adam, SGD
from repro.nn.training import TrainResult, accuracy, train_model
from repro.nn.models import (
    GCN,
    GIN,
    GAT,
    GraphSAGE,
    ResGCN,
    GNNModel,
    GraphOps,
    build_model,
    MODEL_ARCHS,
)

__all__ = [
    "Tensor",
    "Linear",
    "Module",
    "Adam",
    "SGD",
    "TrainResult",
    "accuracy",
    "train_model",
    "GCN",
    "GIN",
    "GAT",
    "GraphSAGE",
    "ResGCN",
    "GNNModel",
    "GraphOps",
    "build_model",
    "MODEL_ARCHS",
]
