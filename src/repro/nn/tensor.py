"""A minimal reverse-mode autograd engine over numpy arrays.

This is the training substrate standing in for PyTorch: just enough to train
the paper's five GCN variants (Eq. 1-2) and to run GCoD's graph-tuning step,
where the *adjacency edge weights* — not the layer weights — are the
trainable parameters (Eq. 4).

Design: a :class:`Tensor` wraps an ``ndarray``; operations record a closure
that propagates the upstream gradient to each parent. ``backward()`` walks
the graph in reverse topological order. Only float64 is used, which makes
numeric gradient checking in the test suite tight (see
``tests/nn/test_gradcheck.py``).
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Tuple, Union

import numpy as np

ArrayLike = Union[np.ndarray, float, int, list, tuple]


def _unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` down to ``shape`` to undo numpy broadcasting."""
    if grad.shape == shape:
        return grad
    # Sum over leading axes added by broadcasting.
    while grad.ndim > len(shape):
        grad = grad.sum(axis=0)
    # Sum over axes that were broadcast from size 1.
    for axis, size in enumerate(shape):
        if size == 1 and grad.shape[axis] != 1:
            grad = grad.sum(axis=axis, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """An array node in the autograd graph."""

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents", "name")

    def __init__(
        self,
        data: ArrayLike,
        requires_grad: bool = False,
        name: str = "",
    ):
        self.data = np.asarray(data, dtype=np.float64)
        self.grad: Optional[np.ndarray] = None
        self.requires_grad = bool(requires_grad)
        self._backward: Optional[Callable[[np.ndarray], None]] = None
        self._parents: Tuple["Tensor", ...] = ()
        self.name = name

    # ------------------------------------------------------------------
    # graph plumbing
    # ------------------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, ...]:
        """Shape of the wrapped array."""
        return self.data.shape

    @property
    def ndim(self) -> int:
        """Number of dimensions of the wrapped array."""
        return self.data.ndim

    def detach(self) -> "Tensor":
        """A view of the same data severed from the autograd graph."""
        return Tensor(self.data, requires_grad=False)

    def zero_grad(self) -> None:
        """Clear any accumulated gradient."""
        self.grad = None

    def accumulate_grad(self, grad: np.ndarray) -> None:
        """Add ``grad`` into this tensor's gradient buffer."""
        if self.grad is None:
            grad = np.asarray(grad)
            if grad.shape == self.data.shape:
                # First contribution: copy (callers may hand us views).
                self.grad = np.array(grad, dtype=np.float64)
                return
            self.grad = np.zeros_like(self.data)
        self.grad += grad

    def backward(self, grad: Optional[np.ndarray] = None) -> None:
        """Backpropagate from this tensor through the recorded graph."""
        if grad is None:
            if self.data.size != 1:
                raise ValueError("backward() without grad requires a scalar")
            grad = np.ones_like(self.data)
        topo: List[Tensor] = []
        visited = set()
        stack: List[Tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in visited:
                    stack.append((parent, False))
        self.accumulate_grad(np.asarray(grad, dtype=np.float64))
        for node in reversed(topo):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)

    # ------------------------------------------------------------------
    # operator sugar (all defined in terms of the functional ops below)
    # ------------------------------------------------------------------
    def __add__(self, other):
        return add(self, _as_tensor(other))

    __radd__ = __add__

    def __sub__(self, other):
        return add(self, neg(_as_tensor(other)))

    def __rsub__(self, other):
        return add(_as_tensor(other), neg(self))

    def __mul__(self, other):
        return mul(self, _as_tensor(other))

    __rmul__ = __mul__

    def __truediv__(self, other):
        other = _as_tensor(other)
        return mul(self, power(other, -1.0))

    def __neg__(self):
        return neg(self)

    def __matmul__(self, other):
        return matmul(self, _as_tensor(other))

    def __repr__(self) -> str:
        tag = f" name={self.name!r}" if self.name else ""
        return f"Tensor(shape={self.data.shape}, grad={self.requires_grad}{tag})"

    def sum(self, axis=None, keepdims=False):
        """Sum reduction (differentiable)."""
        return tsum(self, axis=axis, keepdims=keepdims)

    def mean(self, axis=None, keepdims=False):
        """Mean reduction (differentiable)."""
        return tmean(self, axis=axis, keepdims=keepdims)


def _as_tensor(value) -> Tensor:
    return value if isinstance(value, Tensor) else Tensor(value)


def _make(
    data: np.ndarray,
    parents: Sequence[Tensor],
    backward: Optional[Callable[[np.ndarray], None]],
) -> Tensor:
    """Create a result tensor, recording the graph edge if any parent needs it."""
    out = Tensor(data)
    if any(p.requires_grad for p in parents):
        out.requires_grad = True
        out._parents = tuple(parents)
        out._backward = backward
    return out


# ----------------------------------------------------------------------
# elementwise & linear algebra primitives
# ----------------------------------------------------------------------
def add(a: Tensor, b: Tensor) -> Tensor:
    """Broadcasting elementwise addition."""
    data = a.data + b.data

    def backward(grad):
        if a.requires_grad:
            a.accumulate_grad(_unbroadcast(grad, a.data.shape))
        if b.requires_grad:
            b.accumulate_grad(_unbroadcast(grad, b.data.shape))

    return _make(data, (a, b), backward)


def neg(a: Tensor) -> Tensor:
    """Elementwise negation."""
    def backward(grad):
        if a.requires_grad:
            a.accumulate_grad(-grad)

    return _make(-a.data, (a,), backward)


def mul(a: Tensor, b: Tensor) -> Tensor:
    """Broadcasting elementwise multiplication."""
    data = a.data * b.data

    def backward(grad):
        if a.requires_grad:
            a.accumulate_grad(_unbroadcast(grad * b.data, a.data.shape))
        if b.requires_grad:
            b.accumulate_grad(_unbroadcast(grad * a.data, b.data.shape))

    return _make(data, (a, b), backward)


def power(a: Tensor, exponent: float) -> Tensor:
    """Elementwise power with a constant exponent."""
    data = a.data**exponent

    def backward(grad):
        if a.requires_grad:
            a.accumulate_grad(grad * exponent * a.data ** (exponent - 1.0))

    return _make(data, (a,), backward)


def matmul(a: Tensor, b: Tensor) -> Tensor:
    """Dense matrix multiplication (2-D operands)."""
    data = a.data @ b.data

    def backward(grad):
        if a.requires_grad:
            a.accumulate_grad(grad @ b.data.T)
        if b.requires_grad:
            b.accumulate_grad(a.data.T @ grad)

    return _make(data, (a, b), backward)


def exp(a: Tensor) -> Tensor:
    """Elementwise exponential."""
    data = np.exp(a.data)

    def backward(grad):
        if a.requires_grad:
            a.accumulate_grad(grad * data)

    return _make(data, (a,), backward)


def log(a: Tensor, eps: float = 0.0) -> Tensor:
    """Elementwise natural log (optionally stabilized by ``eps``)."""
    data = np.log(a.data + eps)

    def backward(grad):
        if a.requires_grad:
            a.accumulate_grad(grad / (a.data + eps))

    return _make(data, (a,), backward)


def tsum(a: Tensor, axis=None, keepdims: bool = False) -> Tensor:
    """Sum reduction."""
    data = a.data.sum(axis=axis, keepdims=keepdims)

    def backward(grad):
        if not a.requires_grad:
            return
        g = np.asarray(grad)
        if axis is not None and not keepdims:
            g = np.expand_dims(g, axis=axis)
        a.accumulate_grad(np.broadcast_to(g, a.data.shape).copy())

    return _make(data, (a,), backward)


def tmean(a: Tensor, axis=None, keepdims: bool = False) -> Tensor:
    """Mean reduction."""
    if axis is None:
        count = a.data.size
    else:
        count = a.data.shape[axis]
    out = tsum(a, axis=axis, keepdims=keepdims)
    return mul(out, Tensor(1.0 / count))


def reshape(a: Tensor, shape: Tuple[int, ...]) -> Tensor:
    """Reshape preserving element order."""
    data = a.data.reshape(shape)

    def backward(grad):
        if a.requires_grad:
            a.accumulate_grad(grad.reshape(a.data.shape))

    return _make(data, (a,), backward)


def concat(tensors: Sequence[Tensor], axis: int = 1) -> Tensor:
    """Concatenate tensors along ``axis``."""
    data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.data.shape[axis] for t in tensors]
    offsets = np.concatenate([[0], np.cumsum(sizes)])

    def backward(grad):
        for t, lo, hi in zip(tensors, offsets[:-1], offsets[1:]):
            if t.requires_grad:
                index = [slice(None)] * grad.ndim
                index[axis] = slice(int(lo), int(hi))
                t.accumulate_grad(grad[tuple(index)])

    return _make(data, tuple(tensors), backward)
