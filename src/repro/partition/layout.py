"""Block layout: the (group, class, subgraph) ordering and its geometry.

``partition_graph`` runs GCoD Step 1 end-to-end and returns the reordered
graph together with a :class:`BlockLayout`. The layout is the contract
between the algorithm and the accelerator: it knows which adjacency entries
belong to dense diagonal subgraph blocks (denser-branch workload) and which
are off-diagonal remainder (sparser-branch workload), and it carries the
per-class boundaries the chunk allocator needs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np
import scipy.sparse as sp

from repro.errors import PartitionError
from repro.graphs.graph import Graph
from repro.graphs.reorder import permute_graph
from repro.partition.degree_classes import degree_classes
from repro.partition.grouping import distribute_round_robin
from repro.partition.metis import metis_partition
from repro.utils.rng import SeedLike, ensure_rng


@dataclass(frozen=True)
class SubgraphSpan:
    """One subgraph's contiguous node range in the reordered graph."""

    subgraph_id: int
    class_id: int
    group_id: int
    start: int
    stop: int

    @property
    def size(self) -> int:
        """Number of nodes in the subgraph."""
        return self.stop - self.start


@dataclass
class BlockLayout:
    """Geometry of a partitioned, reordered adjacency matrix.

    All node indices refer to the *new* (reordered) node order. ``perm``
    maps new position -> original node id.
    """

    perm: np.ndarray
    node_class: np.ndarray
    node_group: np.ndarray
    node_subgraph: np.ndarray
    spans: List[SubgraphSpan]
    num_classes: int
    num_groups: int

    @property
    def num_nodes(self) -> int:
        """Number of nodes covered by the layout."""
        return int(self.perm.shape[0])

    @property
    def num_subgraphs(self) -> int:
        """Total number of subgraphs across all classes."""
        return len(self.spans)

    def class_bounds(self) -> List[int]:
        """Node positions where the class id changes (Fig. 4's green lines)."""
        change = np.nonzero(np.diff(self.node_class) != 0)[0] + 1
        return [int(b) for b in change]

    def group_bounds(self) -> List[int]:
        """Node positions where the group id changes (Fig. 4's red lines)."""
        change = np.nonzero(np.diff(self.node_group) != 0)[0] + 1
        return [int(b) for b in change]

    # ------------------------------------------------------------------
    # dense / sparse split — the accelerator's two workloads
    # ------------------------------------------------------------------
    def diagonal_mask(self, adj: sp.spmatrix) -> np.ndarray:
        """Boolean per stored nnz: True if (row, col) lie in one subgraph.

        These entries form the dense diagonal blocks the denser branch
        processes; the complement goes to the sparser branch.
        """
        coo = sp.coo_matrix(adj)
        return self.node_subgraph[coo.row] == self.node_subgraph[coo.col]

    def split(self, adj: sp.spmatrix) -> Tuple[sp.csr_matrix, sp.csr_matrix]:
        """Split ``adj`` into (dense diagonal blocks, sparse remainder)."""
        coo = sp.coo_matrix(adj)
        mask = self.diagonal_mask(coo)
        n = coo.shape[0]
        dense = sp.csr_matrix(
            (coo.data[mask], (coo.row[mask], coo.col[mask])), shape=(n, n)
        )
        sparse = sp.csr_matrix(
            (coo.data[~mask], (coo.row[~mask], coo.col[~mask])), shape=(n, n)
        )
        return dense, sparse

    def dense_fraction(self, adj: sp.spmatrix) -> float:
        """Fraction of nnz captured by the diagonal subgraph blocks.

        The paper's polarization drives this up (e.g. only ~30% of non-zeros
        remain in the sparser workload for Cora, Sec. I).
        """
        nnz = sp.coo_matrix(adj).nnz
        if nnz == 0:
            return 0.0
        return float(self.diagonal_mask(adj).sum()) / nnz

    def class_block_workloads(self, adj: sp.spmatrix) -> np.ndarray:
        """Per-class nnz inside diagonal blocks (chunk workload sizes)."""
        coo = sp.coo_matrix(adj)
        mask = self.diagonal_mask(coo)
        out = np.zeros(self.num_classes, dtype=np.int64)
        np.add.at(out, self.node_class[coo.row[mask]], 1)
        return out

    def subgraph_workloads(self, adj: sp.spmatrix) -> np.ndarray:
        """Per-subgraph nnz inside its diagonal block."""
        coo = sp.coo_matrix(adj)
        mask = self.diagonal_mask(coo)
        out = np.zeros(self.num_subgraphs, dtype=np.int64)
        np.add.at(out, self.node_subgraph[coo.row[mask]], 1)
        return out

    def balance_within_classes(self, adj: sp.spmatrix) -> float:
        """Mean over classes of (mean subgraph nnz / max subgraph nnz).

        1.0 means perfectly balanced subgraphs inside every class — the
        property that lets each chunk run without runtime autotuning.
        """
        per_subgraph = self.subgraph_workloads(adj)
        ratios = []
        for c in range(self.num_classes):
            ids = [s.subgraph_id for s in self.spans if s.class_id == c]
            if not ids:
                continue
            loads = per_subgraph[ids]
            if loads.max() > 0:
                ratios.append(loads.mean() / loads.max())
        return float(np.mean(ratios)) if ratios else 1.0

    def describe(self) -> str:
        """Human-readable summary of the layout."""
        lines = [
            f"BlockLayout: {self.num_nodes} nodes, {self.num_classes} classes, "
            f"{self.num_groups} groups, {self.num_subgraphs} subgraphs"
        ]
        for c in range(self.num_classes):
            spans = [s for s in self.spans if s.class_id == c]
            sizes = [s.size for s in spans]
            if sizes:
                lines.append(
                    f"  class {c}: {len(spans)} subgraphs, "
                    f"sizes {min(sizes)}..{max(sizes)}"
                )
        return "\n".join(lines)


def _subgraphs_per_class(
    class_workloads: np.ndarray, total_subgraphs: int, num_groups: int,
    class_sizes: np.ndarray,
) -> np.ndarray:
    """Apportion ``total_subgraphs`` across classes proportional to workload.

    Each non-empty class receives at least one subgraph; counts are capped by
    class size (cannot split n nodes into more than n parts).
    """
    weights = class_workloads.astype(np.float64)
    weights = weights / max(weights.sum(), 1e-12)
    raw = np.maximum(np.round(weights * total_subgraphs), 1).astype(np.int64)
    raw[class_sizes == 0] = 0
    return np.minimum(raw, np.maximum(class_sizes, 1))


def partition_graph(
    graph: Graph,
    num_classes: int = 2,
    num_groups: int = 2,
    num_subgraphs: int = 8,
    thresholds=None,
    rng: SeedLike = None,
) -> Tuple[Graph, BlockLayout]:
    """GCoD Step 1: degree classes -> METIS subgraphs -> groups -> reorder.

    Returns the reordered graph and its :class:`BlockLayout`. Hyper-
    parameters match Sec. VI-C's ablation: ``num_classes`` C ∈ {1..4},
    ``num_subgraphs`` S ∈ {8..20}.
    """
    if num_classes < 1 or num_groups < 1 or num_subgraphs < num_classes:
        raise PartitionError(
            "need num_classes >= 1, num_groups >= 1, num_subgraphs >= num_classes"
        )
    gen = ensure_rng(rng)
    degrees = graph.degrees()
    node_class = degree_classes(degrees, num_classes, thresholds=thresholds)

    class_sizes = np.bincount(node_class, minlength=num_classes)
    class_work = np.zeros(num_classes, dtype=np.int64)
    np.add.at(class_work, node_class, degrees + 1)
    counts = _subgraphs_per_class(
        class_work, num_subgraphs, num_groups, class_sizes
    )

    # Partition every class with METIS on its induced subgraph.
    node_subgraph = np.full(graph.num_nodes, -1, dtype=np.int64)
    subgraph_meta: List[Tuple[int, float]] = []  # (class_id, workload)
    next_id = 0
    for c in range(num_classes):
        members = np.nonzero(node_class == c)[0]
        if members.size == 0:
            continue
        k = int(min(counts[c], members.size))
        induced = graph.adj[members][:, members]
        local_parts = metis_partition(
            induced, k, node_weight=degrees[members] + 1.0, rng=gen
        )
        for p in range(int(local_parts.max()) + 1):
            sel = members[local_parts == p]
            node_subgraph[sel] = next_id
            subgraph_meta.append((c, float((degrees[sel] + 1).sum())))
            next_id += 1
    if np.any(node_subgraph < 0):
        raise PartitionError("some nodes were not assigned a subgraph")

    # Distribute each class's subgraphs over groups (LPT round-robin).
    subgraph_group = np.zeros(next_id, dtype=np.int64)
    for c in range(num_classes):
        ids = [i for i, (cls, _) in enumerate(subgraph_meta) if cls == c]
        if not ids:
            continue
        loads = [subgraph_meta[i][1] for i in ids]
        assignment = distribute_round_robin(loads, num_groups)
        for i, g in zip(ids, assignment):
            subgraph_group[i] = g

    # Final node order: group, then class, then subgraph, then original id.
    subgraph_class = np.array([c for c, _ in subgraph_meta], dtype=np.int64)
    node_group = subgraph_group[node_subgraph]
    order = np.lexsort(
        (np.arange(graph.num_nodes), node_subgraph, node_class[np.arange(graph.num_nodes)], node_group)
    )
    perm = order.astype(np.int64)

    new_graph = permute_graph(graph, perm)
    new_class = node_class[perm]
    new_group = node_group[perm]
    new_subgraph_old_ids = node_subgraph[perm]

    # Renumber subgraphs by order of appearance and record spans.
    spans: List[SubgraphSpan] = []
    new_subgraph = np.zeros_like(new_subgraph_old_ids)
    seen = {}
    boundaries = np.nonzero(np.diff(new_subgraph_old_ids) != 0)[0] + 1
    starts = np.concatenate([[0], boundaries])
    stops = np.concatenate([boundaries, [graph.num_nodes]])
    for new_id, (start, stop) in enumerate(zip(starts, stops)):
        old_id = int(new_subgraph_old_ids[start])
        if old_id in seen:
            raise PartitionError("subgraph nodes are not contiguous after sort")
        seen[old_id] = new_id
        new_subgraph[start:stop] = new_id
        spans.append(
            SubgraphSpan(
                subgraph_id=new_id,
                class_id=int(subgraph_class[old_id]),
                group_id=int(subgraph_group[old_id]),
                start=int(start),
                stop=int(stop),
            )
        )

    layout = BlockLayout(
        perm=perm,
        node_class=new_class,
        node_group=new_group,
        node_subgraph=new_subgraph,
        spans=spans,
        num_classes=num_classes,
        num_groups=num_groups,
    )
    new_graph.meta["layout"] = layout
    return new_graph, layout
