"""Group partitioning (GCoD Step 1): distribute subgraphs across groups.

Subgraphs within the same class are spread uniformly over ``G`` groups
("group partitioning reduces the boundary connections to enforce the sparser
patterns", Sec. IV-B1). Round-robin by descending workload gives each group
one of the heaviest and one of the lightest subgraph of every class —
an LPT-style assignment that keeps group workloads even.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import PartitionError


def distribute_round_robin(
    subgraph_workloads: Sequence[float], num_groups: int
) -> np.ndarray:
    """Assign each subgraph (of one class) to a group.

    Subgraphs are sorted by descending workload and dealt to the currently
    least-loaded group (longest-processing-time heuristic). Returns a group
    id per subgraph.
    """
    if num_groups < 1:
        raise PartitionError("need at least one group")
    workloads = np.asarray(subgraph_workloads, dtype=np.float64)
    groups = np.zeros(workloads.size, dtype=np.int64)
    loads = np.zeros(num_groups)
    for idx in np.argsort(-workloads):
        g = int(np.argmin(loads))
        groups[idx] = g
        loads[g] += workloads[idx]
    return groups
