"""A multilevel k-way graph partitioner (METIS [17] stand-in).

GCoD Step 1 uses METIS to split each degree class into subgraphs with "a
similar number of edges". The real METIS is a C library; this module
implements the same multilevel recipe in numpy:

1. **Coarsening** — repeated heavy-edge matching collapses matched node
   pairs until the graph is small;
2. **Initial partitioning** — greedy region growing on the coarsest graph,
   balanced by accumulated node weight (weight = degree + 1, i.e. workload);
3. **Uncoarsening + refinement** — projected partitions are improved by
   boundary Kernighan–Lin/FM passes that move nodes to reduce edge cut while
   respecting a balance tolerance.

The partitioner optimizes *workload* balance (sum of node degrees per part),
which is the property the chunk-based accelerator needs, and reduces edge
cut, which is what shrinks the sparser branch's off-diagonal workload.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np
import scipy.sparse as sp

from repro.errors import PartitionError
from repro.utils.rng import SeedLike, ensure_rng


@dataclass(eq=False)
class _Level:
    """One level of the multilevel hierarchy."""

    adj: sp.csr_matrix
    node_weight: np.ndarray
    fine_to_coarse: Optional[np.ndarray]  # None at the finest level


def _heavy_edge_matching(
    adj: sp.csr_matrix, node_weight: np.ndarray, rng: np.random.Generator
) -> np.ndarray:
    """Match each node with its heaviest unmatched neighbour.

    Returns ``coarse_id`` per node; matched pairs share an id. Visit order is
    randomized (standard METIS trick to avoid pathological matchings).
    """
    n = adj.shape[0]
    coarse_id = np.full(n, -1, dtype=np.int64)
    order = rng.permutation(n)
    next_id = 0
    indptr, indices, data = adj.indptr, adj.indices, adj.data
    for u in order:
        if coarse_id[u] != -1:
            continue
        best, best_w = -1, -np.inf
        for off in range(indptr[u], indptr[u + 1]):
            v = indices[off]
            if v != u and coarse_id[v] == -1 and data[off] > best_w:
                best, best_w = v, data[off]
        coarse_id[u] = next_id
        if best != -1:
            coarse_id[best] = next_id
        next_id += 1
    return coarse_id


def _contract(
    adj: sp.csr_matrix, node_weight: np.ndarray, coarse_id: np.ndarray
) -> Tuple[sp.csr_matrix, np.ndarray]:
    """Collapse matched nodes; parallel edge weights accumulate."""
    n_coarse = int(coarse_id.max()) + 1
    coo = adj.tocoo()
    rows = coarse_id[coo.row]
    cols = coarse_id[coo.col]
    keep = rows != cols
    coarse_adj = sp.csr_matrix(
        (coo.data[keep], (rows[keep], cols[keep])), shape=(n_coarse, n_coarse)
    )
    coarse_adj.sum_duplicates()
    coarse_weight = np.zeros(n_coarse)
    np.add.at(coarse_weight, coarse_id, node_weight)
    return coarse_adj, coarse_weight


def _initial_partition(
    adj: sp.csr_matrix,
    node_weight: np.ndarray,
    k: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """Greedy region growing: seed k regions, grow by boundary accretion."""
    n = adj.shape[0]
    target = node_weight.sum() / k
    parts = np.full(n, -1, dtype=np.int64)
    loads = np.zeros(k)
    order = np.argsort(-node_weight)  # place heavy nodes first
    indptr, indices = adj.indptr, adj.indices
    for u in order:
        if parts[u] != -1:
            continue
        # Prefer the least-loaded part among neighbours' parts; fall back to
        # the globally least-loaded part.
        neigh_parts = parts[indices[indptr[u] : indptr[u + 1]]]
        neigh_parts = neigh_parts[neigh_parts >= 0]
        candidates = np.unique(neigh_parts) if neigh_parts.size else np.arange(k)
        best = candidates[np.argmin(loads[candidates])]
        if loads[best] + node_weight[u] > 1.3 * target:
            best = int(np.argmin(loads))
        parts[u] = best
        loads[best] += node_weight[u]
    return parts


def _refine(
    adj: sp.csr_matrix,
    node_weight: np.ndarray,
    parts: np.ndarray,
    k: int,
    balance_tol: float,
    passes: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """Boundary FM refinement: greedily move nodes that reduce the cut."""
    n = adj.shape[0]
    target = node_weight.sum() / k
    max_load = target * (1.0 + balance_tol)
    loads = np.zeros(k)
    np.add.at(loads, parts, node_weight)
    indptr, indices, data = adj.indptr, adj.indices, adj.data

    for _ in range(passes):
        moved = 0
        for u in rng.permutation(n):
            pu = parts[u]
            # Gain of moving u to part q: (edges to q) - (edges to pu).
            neigh = indices[indptr[u] : indptr[u + 1]]
            w = data[indptr[u] : indptr[u + 1]]
            if neigh.size == 0:
                continue
            gains = np.zeros(k)
            np.add.at(gains, parts[neigh], w)
            internal = gains[pu]
            gains[pu] = -np.inf
            q = int(np.argmax(gains))
            if gains[q] <= internal:
                continue
            if loads[q] + node_weight[u] > max_load:
                continue
            parts[u] = q
            loads[pu] -= node_weight[u]
            loads[q] += node_weight[u]
            moved += 1
        if moved == 0:
            break
    return parts


def edge_cut(adj: sp.spmatrix, parts: np.ndarray) -> int:
    """Total weight of edges crossing partition boundaries (each counted once)."""
    coo = sp.coo_matrix(adj)
    crossing = parts[coo.row] != parts[coo.col]
    return int(coo.data[crossing].sum() // 2)


def metis_partition(
    adj: sp.spmatrix,
    k: int,
    node_weight: Optional[np.ndarray] = None,
    balance_tol: float = 0.15,
    coarsen_until: int = 120,
    refine_passes: int = 4,
    rng: SeedLike = None,
) -> np.ndarray:
    """K-way partition of ``adj`` balancing ``node_weight`` per part.

    Returns an integer part id per node. ``node_weight`` defaults to
    ``degree + 1`` so that balance means *edge workload* balance, matching
    the paper's "subgraphs with a similar number of edges".
    """
    gen = ensure_rng(rng)
    adj = sp.csr_matrix(adj)
    n = adj.shape[0]
    if k < 1:
        raise PartitionError("k must be positive")
    if k == 1 or n == 0:
        return np.zeros(n, dtype=np.int64)
    if k > n:
        raise PartitionError(f"cannot split {n} nodes into {k} parts")
    if node_weight is None:
        node_weight = np.asarray(adj.sum(axis=1)).ravel() + 1.0
    node_weight = np.asarray(node_weight, dtype=np.float64)

    # --- coarsening phase -------------------------------------------------
    levels: List[_Level] = [_Level(adj, node_weight, None)]
    while levels[-1].adj.shape[0] > max(coarsen_until, 4 * k):
        cur = levels[-1]
        matching = _heavy_edge_matching(cur.adj, cur.node_weight, gen)
        if int(matching.max()) + 1 >= cur.adj.shape[0]:
            break  # matching stalled (e.g. star graphs); stop coarsening
        coarse_adj, coarse_w = _contract(cur.adj, cur.node_weight, matching)
        levels.append(_Level(coarse_adj, coarse_w, matching))

    # --- initial partition on the coarsest graph --------------------------
    coarsest = levels[-1]
    parts = _initial_partition(coarsest.adj, coarsest.node_weight, k, gen)
    parts = _refine(
        coarsest.adj, coarsest.node_weight, parts, k, balance_tol, refine_passes, gen
    )

    # --- uncoarsen + refine ------------------------------------------------
    for li in range(len(levels) - 2, -1, -1):
        parts = parts[levels[li + 1].fine_to_coarse]
        parts = _refine(
            levels[li].adj,
            levels[li].node_weight,
            parts,
            k,
            balance_tol,
            refine_passes,
            gen,
        )
    return parts.astype(np.int64)
