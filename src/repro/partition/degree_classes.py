"""Degree-class binning (GCoD Step 1, "Subgraph Classification").

Nodes with similar degrees are clustered into the same class:
``G[c] = {i | d̂_{c-1} <= d_i < d̂_c}`` against a predefined degree partition
list ``0 = d̂_0 < ... < d̂_C = ∞``. Classes are what the accelerator
dedicates one chunk (sub-accelerator) to.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.errors import PartitionError


def quantile_thresholds(degrees: np.ndarray, num_classes: int) -> np.ndarray:
    """Degree thresholds that split ``degrees`` into ~equal-*workload* bins.

    The paper predefines the degree partition list; we derive it from the
    degree distribution so every class carries a comparable share of edges
    (workload ∝ Σ degrees, not node count — hubs dominate a power law).
    Returned array has ``num_classes - 1`` interior thresholds.
    """
    if num_classes < 1:
        raise PartitionError("need at least one class")
    degrees = np.asarray(degrees, dtype=np.int64)
    if num_classes == 1 or degrees.size == 0:
        return np.zeros(0, dtype=np.int64)
    order = np.argsort(degrees)
    cum_work = np.cumsum(degrees[order] + 1.0)
    total = cum_work[-1]
    thresholds = []
    for c in range(1, num_classes):
        target = total * c / num_classes
        idx = int(np.searchsorted(cum_work, target))
        idx = min(idx, degrees.size - 1)
        thresholds.append(degrees[order][idx])
    # Strictly increasing thresholds; duplicates collapse classes, which we
    # repair by bumping (fewer distinct degrees than classes is legal: the
    # binning below tolerates empty classes).
    out = np.asarray(thresholds, dtype=np.int64)
    for i in range(1, out.size):
        if out[i] <= out[i - 1]:
            out[i] = out[i - 1] + 1
    return out


def degree_classes(
    degrees: np.ndarray,
    num_classes: int,
    thresholds: Optional[Sequence[int]] = None,
) -> np.ndarray:
    """Assign every node a class id in ``[0, num_classes)`` by degree.

    Class 0 holds the lowest-degree nodes. ``thresholds`` may be supplied
    explicitly (the paper's predefined partition list); otherwise
    :func:`quantile_thresholds` derives workload-balanced ones.
    """
    degrees = np.asarray(degrees, dtype=np.int64)
    if degrees.size == 0:
        return np.zeros(0, dtype=np.int64)
    if thresholds is None:
        thresholds = quantile_thresholds(degrees, num_classes)
    thresholds = np.asarray(thresholds, dtype=np.int64)
    if thresholds.size != num_classes - 1:
        raise PartitionError(
            f"expected {num_classes - 1} thresholds, got {thresholds.size}"
        )
    if thresholds.size and np.any(np.diff(thresholds) <= 0):
        raise PartitionError("thresholds must be strictly increasing")
    return np.searchsorted(thresholds, degrees, side="right").astype(np.int64)
