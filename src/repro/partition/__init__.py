"""GCoD Step-1 partitioning: degree classes, METIS-like splits, groups.

``partition_graph`` is the package's entry point: it bins nodes into degree
classes, splits every class into workload-balanced subgraphs with a
multilevel partitioner, distributes subgraphs round-robin over groups, and
returns a :class:`BlockLayout` describing the resulting block structure —
the object both the GCoD training pipeline and the accelerator's workload
extractor consume.
"""

from repro.partition.degree_classes import (
    degree_classes,
    quantile_thresholds,
)
from repro.partition.metis import metis_partition
from repro.partition.grouping import distribute_round_robin
from repro.partition.layout import BlockLayout, partition_graph

__all__ = [
    "degree_classes",
    "quantile_thresholds",
    "metis_partition",
    "distribute_round_robin",
    "BlockLayout",
    "partition_graph",
]
