"""A blocking, pipelining client for the ``repro serve`` protocol.

:class:`ServeClient` keeps one TCP connection. Because the service
answers in completion order (warm responses overtake cold ones), the
client keeps a small reorder buffer: :meth:`call` reads lines until the
response for *its* request id shows up, parking any other responses for
the requests that are still waiting. :meth:`query_many` exploits this to
pipeline a whole batch of queries on one connection — which is exactly
how requests end up sharing a server-side micro-batch.
"""

from __future__ import annotations

import itertools
import socket
import time
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.errors import ServeProtocolError
from repro.serve.schema import (
    OP_PING,
    OP_QUERY,
    OP_STATS,
    ServeRequest,
    ServeResponse,
    parse_response,
)


class ServeClient:
    """A synchronous client for one ``repro serve`` endpoint."""

    def __init__(self, host: str = "127.0.0.1", port: int = 8731,
                 timeout: float = 300.0):
        self.host = host
        self.port = port
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._reader = self._sock.makefile("r", encoding="utf-8",
                                           newline="\n")
        self._ids = itertools.count(1)
        #: responses read while waiting for a different id
        self._parked: Dict[str, ServeResponse] = {}

    # ------------------------------------------------------------------
    # wire primitives
    # ------------------------------------------------------------------
    def _next_id(self) -> str:
        return f"q{next(self._ids)}"

    def _send(self, request: ServeRequest) -> None:
        self._sock.sendall((request.to_json() + "\n").encode("utf-8"))

    def _recv_for(self, request_id: str) -> ServeResponse:
        """The response for ``request_id``, parking out-of-order ones."""
        if request_id in self._parked:
            return self._parked.pop(request_id)
        while True:
            line = self._reader.readline()
            if not line:
                raise ServeProtocolError(
                    "server closed the connection mid-request"
                )
            response = parse_response(line.strip())
            if response.id == request_id:
                return response
            self._parked[response.id] = response

    # ------------------------------------------------------------------
    # operations
    # ------------------------------------------------------------------
    def call(self, request: ServeRequest) -> ServeResponse:
        """Send one request and block for its response."""
        self._send(request)
        return self._recv_for(request.id)

    def query(self, dataset: str, arch: str = "gcn",
              kernel_backend: Optional[str] = None) -> ServeResponse:
        """One graph query (raises on an error response)."""
        response = self.call(ServeRequest(
            id=self._next_id(), op=OP_QUERY, dataset=dataset, arch=arch,
            kernel_backend=kernel_backend,
        ))
        if response.status != "ok":
            raise ServeProtocolError(
                f"query {dataset}/{arch} failed: {response.error}"
            )
        return response

    def query_many(
        self, specs: Sequence[Tuple[str, str]],
        kernel_backend: Optional[str] = None,
    ) -> List[ServeResponse]:
        """Pipeline several ``(dataset, arch)`` queries on this connection.

        All requests go out before any response is read, so identical
        cold queries land in the same server-side micro-batch window.
        Responses come back in request order regardless of the order the
        server finished them in.
        """
        requests = [
            ServeRequest(id=self._next_id(), op=OP_QUERY, dataset=ds,
                         arch=arch, kernel_backend=kernel_backend)
            for ds, arch in specs
        ]
        for request in requests:
            self._send(request)
        return [self._recv_for(request.id) for request in requests]

    def stats(self) -> Dict[str, Any]:
        """The service's counters (requests, warm hits, gcod runs, ...)."""
        response = self.call(ServeRequest(id=self._next_id(), op=OP_STATS))
        if response.status != "ok" or response.result is None:
            raise ServeProtocolError(f"stats failed: {response.error}")
        return response.result

    def ping(self) -> bool:
        """True if the server answers."""
        response = self.call(ServeRequest(id=self._next_id(), op=OP_PING))
        return response.status == "ok"

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        try:
            self._reader.close()
            self._sock.close()
        except OSError:
            pass  # repro: lint-ok[except-swallow] — already closed

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def wait_for_server(host: str, port: int, timeout: float = 30.0,
                    interval: float = 0.05) -> None:
    """Block until a ``repro serve`` endpoint accepts connections.

    Raises :class:`TimeoutError` if the port never opens — used by the
    bench harness after spawning the server subprocess.
    """
    deadline = time.monotonic() + timeout
    last_error: Optional[Exception] = None
    while time.monotonic() < deadline:
        try:
            with socket.create_connection((host, port), timeout=interval):
                return
        except OSError as exc:
            last_error = exc
            time.sleep(interval)
    raise TimeoutError(
        f"no server on {host}:{port} after {timeout:g}s "
        f"(last error: {last_error})"
    )
