"""The ``repro serve`` wire format: request/response dataclasses + codec.

One JSON document per line in each direction. Requests and responses are
plain dataclasses round-tripped through :func:`json.dumps` with sorted
keys, so a given message always serializes to the same bytes; both
shapes are part of the schema-drift lint golden
(``analysis/schema_golden.json``) — changing a field here without
bumping ``CODE_SCHEMA_VERSION`` is a lint error, exactly like the
store's pickled dataclasses.

Correlation is by ``id``: the service answers requests in completion
order (warm answers overtake cold ones), and a pipelining client
reassembles by matching ``response.id`` to ``request.id``.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from typing import Any, Dict, Optional

from repro.errors import ServeProtocolError

#: Request operations the service understands.
OP_QUERY = "query"
OP_STATS = "stats"
OP_PING = "ping"
ALL_OPS = (OP_QUERY, OP_STATS, OP_PING)

#: Response status values.
STATUS_OK = "ok"
STATUS_ERROR = "error"

#: Response sources for ``op=query``.
SOURCE_WARM = "warm"
SOURCE_COLD = "cold"


@dataclass
class ServeRequest:
    """One client query: which trained pipeline to answer from.

    ``kernel_backend`` is any requestable backend name
    (:func:`repro.sparse.kernels.backend_choices`); ``None`` means the
    server process's default. An unavailable lazily-probed tier (e.g.
    ``compiled`` without numba) resolves to its fallback on the server,
    and the response reports the *resolved* name.
    """

    id: str
    op: str = OP_QUERY
    dataset: str = ""
    arch: str = "gcn"
    kernel_backend: Optional[str] = None

    def to_json(self) -> str:
        """The request as one compact JSON line (no trailing newline)."""
        return json.dumps(asdict(self), sort_keys=True,
                          separators=(",", ":"))


@dataclass
class ServeResponse:
    """One service answer, correlated to its request by ``id``.

    For ``op=query`` successes, ``result`` is the trained pipeline's
    summary dict (the same scalars ``repro cache ls`` surfaces),
    ``source`` says whether the store answered (``warm``) or a training
    dispatch ran (``cold``), and ``batch_id`` / ``batch_size`` identify
    the micro-batch a cold request rode in (warm answers use batch id -1
    and size 0: no dispatch happened).
    """

    id: str
    status: str
    op: str = OP_QUERY
    source: str = ""
    dataset: str = ""
    arch: str = ""
    kernel_backend: str = ""
    batch_id: int = -1
    batch_size: int = 0
    result: Optional[Dict[str, Any]] = None
    error: Optional[str] = None

    def to_json(self) -> str:
        """The response as one compact JSON line (no trailing newline)."""
        return json.dumps(asdict(self), sort_keys=True,
                          separators=(",", ":"))


def _decode_line(line: str, what: str) -> Dict[str, Any]:
    try:
        data = json.loads(line)
    except ValueError as exc:
        raise ServeProtocolError(f"malformed {what} JSON: {exc}") from exc
    if not isinstance(data, dict):
        raise ServeProtocolError(
            f"{what} must be a JSON object, got {type(data).__name__}"
        )
    return data


def parse_request(line: str) -> ServeRequest:
    """Decode and validate one request line."""
    data = _decode_line(line, "request")
    req_id = data.get("id")
    if not isinstance(req_id, str) or not req_id:
        raise ServeProtocolError("request needs a non-empty string 'id'")
    op = data.get("op", OP_QUERY)
    if op not in ALL_OPS:
        raise ServeProtocolError(
            f"unknown op {op!r}; expected one of {', '.join(ALL_OPS)}"
        )
    dataset = data.get("dataset", "")
    if op == OP_QUERY and (not isinstance(dataset, str) or not dataset):
        raise ServeProtocolError("query requests need a 'dataset'")
    arch = data.get("arch", "gcn")
    backend = data.get("kernel_backend", None)
    if backend is not None and not isinstance(backend, str):
        raise ServeProtocolError("'kernel_backend' must be a string or null")
    if not isinstance(arch, str) or not arch:
        raise ServeProtocolError("'arch' must be a non-empty string")
    return ServeRequest(id=req_id, op=op, dataset=dataset, arch=arch,
                        kernel_backend=backend)


def parse_response(line: str) -> ServeResponse:
    """Decode one response line (client side)."""
    data = _decode_line(line, "response")
    known = {f for f in ServeResponse.__dataclass_fields__}
    unknown = set(data) - known
    if unknown:
        raise ServeProtocolError(
            f"response carries unknown fields: {', '.join(sorted(unknown))}"
        )
    if not isinstance(data.get("id"), str):
        raise ServeProtocolError("response needs a string 'id'")
    if data.get("status") not in (STATUS_OK, STATUS_ERROR):
        raise ServeProtocolError("response needs status 'ok' or 'error'")
    return ServeResponse(**data)
