"""The batched asyncio inference service behind ``repro serve``.

Request flow (one asyncio task per incoming line, so a connection can
pipeline freely):

1. **join an in-flight dispatch** — if a training dispatch for this
   (dataset, arch, resolved backend) key is already executing, the
   request attaches to it: it will be answered by the same dispatch and
   counted into its batch size. No new work is created.
2. **warm** — if the context can answer without training
   (:meth:`EvalContext.has_gcod`: process memo or artifact store), the
   summary is served immediately from the cache.
3. **cold** — otherwise the request enters the micro-batch window for
   its key. The window flushes when it holds ``max_batch`` requests or
   ``max_wait_ms`` after its first request, whichever comes first; the
   flush runs **one** training dispatch on the executor and resolves
   every waiter. Identical queries that race each other therefore cost
   one pipeline run, not N.

Training runs on a small thread pool (default width 1) so the event
loop keeps answering warm queries while a dispatch trains; results land
in the artifact store through the normal :meth:`EvalContext.gcod` path,
so the *next* server process starts warm too.

Nothing here touches wall clocks for payload content — responses carry
no timestamps — so repeated identical queries produce byte-identical
``result`` payloads, which is what the bench's warm-hit gate asserts.
"""

from __future__ import annotations

import asyncio
import itertools
import sys
import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

from repro.evaluation.context import EvalContext
from repro.runtime import counters
from repro.serve.schema import (
    OP_PING,
    OP_QUERY,
    OP_STATS,
    SOURCE_COLD,
    SOURCE_WARM,
    STATUS_ERROR,
    STATUS_OK,
    ServeRequest,
    ServeResponse,
    parse_request,
)
from repro.errors import ServeProtocolError
from repro.sparse.kernels import get_backend

#: A batch key: the unit one training dispatch serves.
BatchKey = Tuple[str, str, str]  # (dataset, arch, resolved backend)


@dataclass
class ServeSettings:
    """Service knobs (CLI flags map 1:1 onto these)."""

    host: str = "127.0.0.1"
    port: int = 8731
    #: flush a cold micro-batch at this many requests ...
    max_batch: int = 16
    #: ... or this many milliseconds after its first request.
    max_wait_ms: float = 5.0
    #: training executor width. 1 serializes dispatches (one kernel
    #: dispatch at a time, zero duplicate-training risk); >1 overlaps
    #: distinct keys at the cost of racing identical ones that arrive
    #: after their batch flushed (the store keeps results identical).
    workers: int = 1
    verbose: bool = False


class _Batch:
    """One open micro-batch window: waiters + a mutable size box.

    The size box is shared with requests that join the dispatch after
    the flush (while training is still in flight), so every response —
    early member or late joiner — reports the same final batch size.
    """

    __slots__ = ("key", "batch_id", "waiters", "size_box", "timer")

    def __init__(self, key: BatchKey, batch_id: int):
        self.key = key
        self.batch_id = batch_id
        self.waiters: List[asyncio.Future] = []
        self.size_box = [0]
        self.timer: Optional[asyncio.TimerHandle] = None


@dataclass
class _Inflight:
    """A dispatched (still running) batch other requests can join."""

    batch_id: int
    size_box: List[int]
    done: asyncio.Future = field(repr=False)


class InferenceService:
    """Answer graph queries from the store; micro-batch the cold ones."""

    def __init__(self, ctx: EvalContext, settings: ServeSettings):
        self.ctx = ctx
        self.settings = settings
        self.stats: Dict[str, int] = {
            "requests": 0,
            "warm_hits": 0,
            "cold_misses": 0,
            "batches": 0,
            "batched_requests": 0,
            "coalesced_requests": 0,
            "errors": 0,
        }
        self._batches: Dict[BatchKey, _Batch] = {}
        self._inflight: Dict[BatchKey, _Inflight] = {}
        # The counter is process-global; report runs relative to this
        # service's start so embedded servers (tests, examples) see only
        # their own training.
        self._gcod_runs_at_start = counters.gcod_run_count()
        self._batch_ids = itertools.count()
        self._executor = ThreadPoolExecutor(
            max_workers=max(1, settings.workers),
            thread_name_prefix="repro-serve",
        )
        self._loop: Optional[asyncio.AbstractEventLoop] = None

    # ------------------------------------------------------------------
    # context / key plumbing
    # ------------------------------------------------------------------
    def _resolve(self, req: ServeRequest) -> Tuple[BatchKey, EvalContext]:
        backend = get_backend(
            req.kernel_backend
            if req.kernel_backend is not None
            else self.ctx.kernel_backend
        ).name
        # replace() shares the memo dicts deliberately: memo keys include
        # the backend name, and a fallback spelling ("compiled" without
        # numba) resolves to the same entries as its target backend.
        ctx = (
            self.ctx
            if backend == self.ctx._backend_name()
            else replace(self.ctx, kernel_backend=backend)
        )
        return (req.dataset, req.arch, backend), ctx

    # ------------------------------------------------------------------
    # request handling
    # ------------------------------------------------------------------
    async def handle(self, req: ServeRequest) -> ServeResponse:
        """Answer one parsed request (any op)."""
        self.stats["requests"] += 1
        if req.op == OP_PING:
            return ServeResponse(id=req.id, status=STATUS_OK, op=OP_PING,
                                 result={"pong": True})
        if req.op == OP_STATS:
            payload = dict(self.stats)
            payload["gcod_runs"] = (counters.gcod_run_count()
                                    - self._gcod_runs_at_start)
            payload["open_batches"] = len(self._batches)
            payload["inflight_batches"] = len(self._inflight)
            return ServeResponse(id=req.id, status=STATUS_OK, op=OP_STATS,
                                 result=payload)
        try:
            return await self._handle_query(req)
        except Exception as exc:
            self.stats["errors"] += 1
            print(f"repro serve: query {req.id!r} failed: {exc}",
                  file=sys.stderr)
            return ServeResponse(
                id=req.id, status=STATUS_ERROR, dataset=req.dataset,
                arch=req.arch, error=f"{type(exc).__name__}: {exc}",
            )

    async def _handle_query(self, req: ServeRequest) -> ServeResponse:
        key, ctx = self._resolve(req)
        dataset, arch, backend = key

        # Miss/hit counters (and the shared batch-size box) must reflect
        # only *committed* responses: every await below can raise, and a
        # failed query is reported through `errors`, not as a served miss.
        inflight = self._inflight.get(key)
        if inflight is not None:
            # A dispatch for this key is already training: ride it. The
            # size box is bumped before the await so every member of the
            # dispatch reports the same final batch size, and rolled
            # back if this request never becomes a response.
            inflight.size_box[0] += 1
            try:
                summary = await asyncio.shield(inflight.done)
            except BaseException:
                inflight.size_box[0] -= 1
                raise
            self.stats["cold_misses"] += 1
            self.stats["coalesced_requests"] += 1
            return self._ok(req, key, SOURCE_COLD, summary,
                            inflight.batch_id, inflight.size_box)

        if ctx.has_gcod(dataset, arch):
            loop = asyncio.get_running_loop()
            summary = await loop.run_in_executor(
                self._executor, self._warm_summary, ctx, dataset, arch
            )
            self.stats["warm_hits"] += 1
            return self._ok(req, key, SOURCE_WARM, summary, -1, None)

        # Cold: enter (or open) the micro-batch window for this key.
        loop = asyncio.get_running_loop()
        batch = self._batches.get(key)
        if batch is None:
            batch = _Batch(key, next(self._batch_ids))
            self._batches[key] = batch
            self.stats["batches"] += 1
            batch.timer = loop.call_later(
                self.settings.max_wait_ms / 1000.0,
                self._flush, key, batch,
            )
        waiter: asyncio.Future = loop.create_future()
        batch.waiters.append(waiter)
        batch.size_box[0] += 1
        if len(batch.waiters) >= self.settings.max_batch:
            self._flush(key, batch)
        try:
            summary = await asyncio.shield(waiter)
        except BaseException:
            batch.size_box[0] -= 1
            raise
        self.stats["cold_misses"] += 1
        self.stats["batched_requests"] += 1
        return self._ok(req, key, SOURCE_COLD, summary,
                        batch.batch_id, batch.size_box)

    def _ok(self, req, key, source, summary, batch_id, size_box):
        dataset, arch, backend = key
        return ServeResponse(
            id=req.id, status=STATUS_OK, source=source, dataset=dataset,
            arch=arch, kernel_backend=backend, batch_id=batch_id,
            batch_size=size_box[0] if size_box is not None else 0,
            result=summary,
        )

    # ------------------------------------------------------------------
    # batching
    # ------------------------------------------------------------------
    def _flush(self, key: BatchKey, batch: _Batch) -> None:
        """Close the window and dispatch one training run for it."""
        if self._batches.get(key) is not batch:
            return  # already flushed by the size trigger
        del self._batches[key]
        if batch.timer is not None:
            batch.timer.cancel()
        loop = asyncio.get_running_loop()
        done: asyncio.Future = loop.create_future()
        self._inflight[key] = _Inflight(batch.batch_id, batch.size_box,
                                        done)
        if self.settings.verbose:
            print(f"repro serve: dispatch batch #{batch.batch_id} "
                  f"{key[0]}/{key[1]}/{key[2]} "
                  f"({len(batch.waiters)} request(s))", file=sys.stderr)
        task = loop.run_in_executor(
            self._executor, self._train_summary, key
        )
        task.add_done_callback(
            lambda fut: self._settle(key, batch, done, fut)
        )

    def _settle(self, key, batch, done, fut) -> None:
        self._inflight.pop(key, None)
        exc = fut.exception()
        if exc is not None:
            done.set_exception(exc)
            for waiter in batch.waiters:
                if not waiter.done():
                    waiter.set_exception(exc)
            # `done` may have no joiners; mark it retrieved so the loop
            # does not log "exception was never retrieved".
            done.exception()
            return
        done.set_result(fut.result())
        for waiter in batch.waiters:
            if not waiter.done():
                waiter.set_result(fut.result())

    # ------------------------------------------------------------------
    # executor-side (synchronous) work
    # ------------------------------------------------------------------
    def _warm_summary(self, ctx: EvalContext, dataset, arch):
        return ctx.gcod(dataset, arch).to_summary_dict()

    def _train_summary(self, key: BatchKey):
        dataset, arch, backend = key
        ctx = (
            self.ctx
            if backend == self.ctx._backend_name()
            else replace(self.ctx, kernel_backend=backend)
        )
        return ctx.gcod(dataset, arch).to_summary_dict()

    # ------------------------------------------------------------------
    # wire handling
    # ------------------------------------------------------------------
    async def _on_connection(self, reader: asyncio.StreamReader,
                             writer: asyncio.StreamWriter) -> None:
        write_lock = asyncio.Lock()
        tasks: List[asyncio.Task] = []

        async def serve_line(line: str) -> None:
            try:
                req = parse_request(line)
            except ServeProtocolError as exc:
                self.stats["errors"] += 1
                resp = ServeResponse(id="", status=STATUS_ERROR,
                                     error=str(exc))
            else:
                resp = await self.handle(req)
            payload = (resp.to_json() + "\n").encode("utf-8")
            try:
                async with write_lock:
                    writer.write(payload)
                    await writer.drain()
            except (ConnectionError, RuntimeError):
                pass  # repro: lint-ok[except-swallow] — client hung up
                # mid-response; its in-flight work is still cached for
                # the next query, nothing to report.

        try:
            while True:
                raw = await reader.readline()
                if not raw:
                    break
                line = raw.decode("utf-8", errors="replace").strip()
                if not line:
                    continue
                tasks.append(asyncio.ensure_future(serve_line(line)))
        finally:
            try:
                if tasks:
                    await asyncio.gather(*tasks, return_exceptions=True)
                writer.close()
                await writer.wait_closed()
            except (asyncio.CancelledError, ConnectionError, OSError):
                pass  # repro: lint-ok[except-swallow] — torn down mid-
                # drain (loop shutdown or client gone); nothing to save.

    async def start(self) -> asyncio.AbstractServer:
        """Bind and start accepting; returns the asyncio server."""
        self._loop = asyncio.get_running_loop()
        server = await asyncio.start_server(
            self._on_connection, self.settings.host, self.settings.port
        )
        self.settings.port = server.sockets[0].getsockname()[1]
        return server

    def shutdown(self) -> None:
        self._executor.shutdown(wait=False)


async def _serve_forever(ctx: EvalContext, settings: ServeSettings) -> None:
    service = InferenceService(ctx, settings)
    server = await service.start()
    # The readiness line benches and CI scripts wait for (stdout, since
    # it is the command's one piece of machine-readable output).
    print(f"repro serve: listening on {settings.host}:{settings.port} "
          f"(max_batch={settings.max_batch}, "
          f"max_wait_ms={settings.max_wait_ms:g}, "
          f"workers={settings.workers})", flush=True)
    try:
        async with server:
            await server.serve_forever()
    finally:
        service.shutdown()


def run_serve(ctx: EvalContext, settings: ServeSettings) -> int:
    """Blocking entry point for the CLI; returns an exit code."""
    try:
        asyncio.run(_serve_forever(ctx, settings))
    except KeyboardInterrupt:
        print("repro serve: interrupted, shutting down", file=sys.stderr)
    return 0


class InProcessServer:
    """A service running on a background thread (tests, examples).

    Exposes the bound ``port`` once :meth:`start` returns; ``stop()``
    tears the loop down and joins the thread.
    """

    def __init__(self, ctx: EvalContext, settings: ServeSettings):
        self.service = InferenceService(ctx, settings)
        self.settings = settings
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._ready = threading.Event()

    @property
    def port(self) -> int:
        return self.settings.port

    @property
    def host(self) -> str:
        return self.settings.host

    def start(self) -> "InProcessServer":
        def runner() -> None:
            loop = asyncio.new_event_loop()
            self._loop = loop
            asyncio.set_event_loop(loop)
            self._server = loop.run_until_complete(self.service.start())
            self._ready.set()
            try:
                loop.run_forever()
            finally:
                self._server.close()
                loop.run_until_complete(self._server.wait_closed())
                pending = [t for t in asyncio.all_tasks(loop)
                           if not t.done()]
                for task in pending:
                    task.cancel()
                if pending:
                    loop.run_until_complete(asyncio.gather(
                        *pending, return_exceptions=True))
                loop.close()

        self._thread = threading.Thread(target=runner, daemon=True,
                                        name="repro-serve-loop")
        self._thread.start()
        if not self._ready.wait(timeout=30):
            raise RuntimeError("serve loop failed to start within 30s")
        return self

    def stop(self) -> None:
        if self._loop is not None:
            self._loop.call_soon_threadsafe(self._loop.stop)
        if self._thread is not None:
            self._thread.join(timeout=10)
        self.service.shutdown()

    def __enter__(self) -> "InProcessServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()


def start_in_thread(ctx: EvalContext,
                    settings: Optional[ServeSettings] = None
                    ) -> InProcessServer:
    """Start an :class:`InProcessServer` (port 0 = pick a free port)."""
    if settings is None:
        settings = ServeSettings(port=0)
    return InProcessServer(ctx, settings).start()
