"""Batched inference serving for the GCoD reproduction.

``repro serve`` turns the cached, content-addressed experiment runtime
into a request-driven service: clients send JSON graph queries
(dataset / arch / kernel backend) over a line-delimited TCP protocol,
and the service answers

* **warm** — the (dataset, arch, backend) pipeline is already in the
  attached :class:`~repro.runtime.store.ArtifactStore` (or this
  process's memo): the response is served straight from the cache, no
  training, sub-millisecond service time;
* **cold** — the pipeline must be trained: requests are micro-batched
  per (dataset, arch, resolved backend) inside a max-batch / max-wait
  window, one training dispatch serves every request in the window (and
  any request that arrives while the dispatch is still in flight), and
  each response carries its batch id and final batch size.

Responses stream back as they complete, correlated to requests by id —
a client may pipeline many queries on one connection and read the
answers in whatever order the warm/cold split produces them.

Layers:

* :mod:`repro.serve.schema` — the wire dataclasses
  (:class:`ServeRequest` / :class:`ServeResponse`) and their JSON codec;
  these shapes are covered by the schema-drift lint golden.
* :mod:`repro.serve.service` — the stdlib-asyncio server
  (:class:`InferenceService`), the batching window, and
  :func:`start_in_thread` for in-process embedding (tests, examples).
* :mod:`repro.serve.client` — :class:`ServeClient`, a blocking
  socket client with pipelining, used by ``benchmarks/bench_serve.py``
  to drive closed-loop sustained-throughput load.
"""

from repro.serve.schema import (
    ServeRequest,
    ServeResponse,
    parse_request,
    parse_response,
)
from repro.serve.service import (
    InferenceService,
    ServeSettings,
    run_serve,
    start_in_thread,
)
from repro.serve.client import ServeClient, wait_for_server

__all__ = [
    "InferenceService",
    "ServeClient",
    "ServeRequest",
    "ServeResponse",
    "ServeSettings",
    "parse_request",
    "parse_response",
    "run_serve",
    "start_in_thread",
    "wait_for_server",
]
