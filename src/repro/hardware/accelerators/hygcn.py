"""HyGCN [42] model: hybrid architecture with *gathered* aggregation.

HyGCN (Tab. V: 32 SIMD cores + 8 systolic arrays at 1 GHz, ~24 MB of
buffers, 256 GB/s HBM) executes **aggregation first, then combination**
(Fig. 7b) in a gathered fashion (Fig. 5a): nodes sequentially, each node's
neighbour features fetched in parallel. The model captures the consequences
(Sec. V-A):

* aggregation runs at the *input* feature width (e.g. 1433 for Cora, 3703
  for CiteSeer), the structural reason HyGCN trails AWB-GCN on
  feature-heavy graphs;
* every edge gathers a dense feature row; the sliding-window cache serves
  most of them, and the misses re-read the feature matrix off-chip — these
  gather misses are the latency-visible traffic;
* combination runs efficiently on the systolic arrays and the two engines
  pipeline, so per-layer latency is the max of the phases.

Latency policy (shared by all accelerator models): compulsory first-touch
streams (X, W, A once; outputs once) are assumed prefetch-overlapped with
compute and appear only in the off-chip *byte counts*; re-accesses — gather
misses, spills, re-walks — appear in both bytes and latency.
"""

from __future__ import annotations

from repro.hardware import units
from repro.hardware.accelerators.base import Accelerator, AcceleratorReport, PhaseStats
from repro.hardware.energy import EnergyModel
from repro.hardware.memory import Buffer, OffChipMemory
from repro.hardware.pe import PEArray
from repro.hardware.workload import GCNWorkload


class HyGCN(Accelerator):
    """Analytic HyGCN model (gathered aggregation, Tab. V configuration)."""

    name = "hygcn"

    def __init__(self):
        # Aggregation: 32 SIMD cores x 16 lanes x dual issue at 1 GHz.
        self.agg_pes = PEArray(32 * 16 * 2, 1e9)
        # Combination: 8 systolic arrays, 4x128 MACs each.
        self.comb_pes = PEArray(8 * 512, 1e9)
        self.memory = OffChipMemory("hbm", 256.0)
        self.agg_buffer = Buffer("aggregation", 16 * 2**20)
        self._energy = EnergyModel(bits=32, memory_kind="hbm")

    def run(self, workload: GCNWorkload) -> AcceleratorReport:
        """Cost one inference on HyGCN."""
        comb = PhaseStats()
        agg = PhaseStats()
        latency = 0.0
        adj = workload.adjacency
        for layer in workload.layers:
            agg_s = 0.0
            if layer.aggregate:
                # ---- aggregation FIRST, at the input feature width --------
                dim = layer.f_in
                a_macs = adj.nnz * dim
                feat_row_bytes = dim * 4
                gathers = adj.nnz * feat_row_bytes
                miss_bytes = gathers * (1.0 - units.HYGCN_GATHER_HIT_RATE)
                compulsory = (
                    workload.feature_bytes(layer)
                    + adj.coo_bytes
                    + workload.num_nodes * dim * 4  # aggregated output
                )
                compute_s = self.agg_pes.compute_seconds(
                    a_macs, units.HYGCN_AGG_UTILIZATION
                )
                agg_s = max(compute_s, self.memory.transfer_seconds(miss_bytes))
                agg += PhaseStats(
                    seconds=agg_s,
                    macs=a_macs,
                    onchip_bytes=gathers + adj.coo_bytes,
                    offchip_bytes=compulsory + miss_bytes,
                    energy=self._energy.energy(
                        a_macs, gathers + adj.coo_bytes, compulsory + miss_bytes
                    ),
                    streamed_bytes=miss_bytes,
                )

            # ---- combination on the (dense) aggregated features -----------
            macs = (
                workload.num_nodes * layer.f_in * layer.f_out
                * layer.comb_multiplier
            )
            traffic = workload.weight_bytes(layer) + workload.output_bytes(layer)
            comb_s = self.comb_pes.compute_seconds(
                macs, units.HYGCN_COMB_UTILIZATION
            )
            comb += PhaseStats(
                seconds=comb_s,
                macs=macs,
                onchip_bytes=traffic + macs * 4,
                offchip_bytes=traffic,
                energy=self._energy.energy(macs, traffic + macs * 4, traffic),
            )
            # HyGCN pipelines its aggregation and combination engines.
            latency += max(comb_s, agg_s)
        return AcceleratorReport(
            platform=self.name,
            workload=workload.name,
            combination=comb,
            aggregation=agg,
            latency_s=latency,
        )
