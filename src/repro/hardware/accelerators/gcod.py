"""The GCoD two-pronged accelerator model (Sec. V, Fig. 6).

Configuration per Tab. V: a VCU128-class device — 4096 PEs at 330 MHz,
42 MB of on-chip memory (9 MB BRAM + 33 MB URAM), 460 GB/s HBM. The 8-bit
variant affords 10240 PEs because quantization cuts the bandwidth per MAC.

What the model does, mirroring the architecture:

* **resource allocation** — PEs and bandwidth are split between the denser
  branch's chunks (one per degree class) and the single sparser-branch
  sub-accelerator *proportional to their MAC counts*, exactly the paper's
  complexity-proportional allocation;
* **denser branch** — processes the diagonal subgraph blocks; utilization is
  the *measured* subgraph balance times a static-scheduling efficiency (no
  runtime autotuning needed); block-local COO inputs stream once and
  block-local outputs stay on-chip;
* **sparser branch** — holds the off-diagonal CSC on-chip when it fits
  (re-streaming it per feature tile otherwise, the resource-aware spill);
  ~63% of its weight reads are served by query-based forwarding from the
  denser chunks' weight buffers; fully-empty columns (structural sparsity)
  are skipped;
* the two branches run concurrently — aggregation latency is their max plus
  an output-synchronization overhead — and combination pipelines into
  aggregation per layer (Fig. 7).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.hardware import units
from repro.hardware.accelerators.base import Accelerator, AcceleratorReport, PhaseStats
from repro.hardware.budget import (
    DEFAULT_TECH_NODE_NM,
    AreaPowerModel,
    BudgetEstimate,
)
from repro.hardware.dataflow import select_pipeline
from repro.hardware.energy import EnergyModel
from repro.hardware.memory import Buffer, OffChipMemory
from repro.hardware.pe import PEArray
from repro.hardware.workload import GCNWorkload, LayerSpec


#: Tab. V PE counts per precision: quantization cuts the bandwidth per
#: MAC, affording 2.5x the PEs. The single source of truth — the sweep
#: engine's ``hw_scale`` axis multiplies these same numbers.
DEFAULT_PES = {32: 4096, 8: 10240}


class GCoDAccelerator(Accelerator):
    """Analytic model of the GCoD accelerator (32-bit or 8-bit variant)."""

    def __init__(
        self,
        bits: int = 32,
        num_pes: Optional[int] = None,
        weight_forward_rate: Optional[float] = None,
        two_pronged: bool = True,
        measured_trace=None,
        tech_node: int = DEFAULT_TECH_NODE_NM,
    ):
        """``weight_forward_rate`` overrides the ~63% query-forwarding rate
        (0.0 disables forwarding — the ablation knob); ``two_pronged=False``
        runs everything through a single undifferentiated branch (treats all
        nnz as sparser workload), isolating the architecture contribution.

        ``measured_trace`` (an :class:`~repro.hardware.functional.ExecutionTrace`
        from the functional emulator) replaces the assumed forwarding-rate
        and chunk-balance constants with quantities measured on the actual
        schedule; an explicit ``weight_forward_rate`` still wins.
        """
        if bits not in (8, 32):
            raise ValueError("GCoD supports 32-bit and 8-bit variants")
        if weight_forward_rate is not None and not 0.0 <= weight_forward_rate <= 1.0:
            raise ValueError("weight_forward_rate must be in [0, 1]")
        self.measured_trace = measured_trace
        if weight_forward_rate is not None:
            self.weight_forward_rate = weight_forward_rate
        elif measured_trace is not None:
            self.weight_forward_rate = measured_trace.forward_rate
        else:
            self.weight_forward_rate = units.GCOD_WEIGHT_FORWARD_RATE
        self.two_pronged = two_pronged
        self.bits = bits
        self.bytes_per_value = 1 if bits == 8 else 4
        self.pes = PEArray(num_pes or DEFAULT_PES[bits], 330e6)
        self.memory = OffChipMemory("hbm", 460.0)
        onchip_total = 42 * 2**20
        # Fixed split of the 42 MB: output accumulators, feature/weight
        # buffers, and the sparser branch's resident CSC adjacency.
        self.output_buffer = Buffer("obuf", int(onchip_total * 0.40))
        self.feature_buffer = Buffer("fbuf", int(onchip_total * 0.30))
        self.adjacency_buffer = Buffer("abuf", int(onchip_total * 0.30))
        self.name = "gcod-8bit" if bits == 8 else "gcod"
        # The technology node scales silicon cost (area, TDP, on-die
        # energy) but not the clock: latency is node-invariant, so budget
        # frontiers trade cost against the same performance numbers.
        self.tech_node = tech_node
        self._energy = EnergyModel(
            bits=bits, memory_kind="hbm", tech_node=tech_node
        )

    @property
    def onchip_capacity_bytes(self) -> int:
        """Total on-chip buffer capacity (the 42 MB split's sum)."""
        return (
            self.output_buffer.capacity_bytes
            + self.feature_buffer.capacity_bytes
            + self.adjacency_buffer.capacity_bytes
        )

    def budget(self) -> BudgetEstimate:
        """Area/TDP estimate of this exact configuration at its node."""
        return AreaPowerModel(self.tech_node).estimate(
            bits=self.bits,
            num_pes=self.pes.num_pes,
            onchip_bytes=self.onchip_capacity_bytes,
            clock_hz=self.pes.clock_hz,
        )

    # ------------------------------------------------------------------
    def run(self, workload: GCNWorkload) -> AcceleratorReport:
        """Cost one inference on the two-pronged accelerator."""
        adj = workload.adjacency
        bpv = self.bytes_per_value
        comb = PhaseStats()
        agg = PhaseStats()
        latency = 0.0
        notes: Dict[str, float] = {}

        # ----- complexity-proportional PE allocation (Sec. V-B) -----------
        if self.two_pronged:
            dense_nnz = max(adj.dense_nnz, 0)
            sparse_nnz = max(adj.sparse_nnz, 0)
        else:
            # Ablation: single-branch design sees one undivided workload.
            dense_nnz, sparse_nnz = 0, max(adj.nnz, 0)
        total_nnz = max(dense_nnz + sparse_nnz, 1)
        sparse_frac = sparse_nnz / total_nnz
        # Clamp only branches that carry workload (the single-branch
        # ablation must not grant the dense branch a courtesy 5%), then let
        # the allocator normalize so the splits sum to <= the PE array.
        dense_share = max(1.0 - sparse_frac, 0.05) if dense_nnz else 0.0
        sparse_share = max(sparse_frac, 0.05) if sparse_nnz else 0.0
        dense_pes, sparse_pes = self.pes.allocate([dense_share, sparse_share])
        notes["dense_pe_fraction"] = dense_pes.num_pes / self.pes.num_pes
        notes["num_chunks"] = float(max(adj.num_classes, 1))

        # The sparser branch's CSC stays resident across layers if it fits.
        csc_resident = self.adjacency_buffer.fits(adj.csc_bytes)
        csc_loaded = False
        notes["csc_resident"] = float(csc_resident)

        for layer in workload.layers:
            comb_s, comb_stats = self._combination(workload, layer)
            comb += comb_stats
            agg_s = 0.0
            if layer.aggregate:
                agg_s, agg_stats, pipeline = self._aggregation(
                    workload, layer, dense_pes, sparse_pes,
                    csc_resident, csc_loaded,
                    dense_nnz, sparse_nnz,
                )
                csc_loaded = True
                agg += agg_stats
                notes[f"pipeline_{layer.f_in}x{layer.f_out}"] = float(
                    pipeline == "efficiency-aware"
                )
            # Efficiency/resource-aware pipelines overlap the two phases.
            latency += max(comb_s, agg_s)

        return AcceleratorReport(
            platform=self.name,
            workload=workload.name,
            combination=comb,
            aggregation=agg,
            latency_s=latency,
            notes=notes,
        )

    # ------------------------------------------------------------------
    def _combination(self, workload: GCNWorkload, layer: LayerSpec):
        """Combination phase: sparse-aware SpMM across all sub-accelerators."""
        bpv = self.bytes_per_value
        macs = workload.comb_macs(layer, sparse_aware=True)
        # Sparse input features carry index overhead (COO); hidden layers
        # are dense but quantized widths shrink every stream.
        x_bytes = int(
            workload.num_nodes * layer.f_in
            * min(1.0, layer.x_density * 2) * bpv
        )
        w_bytes = int(layer.f_in * layer.f_out * layer.comb_multiplier * bpv)
        # Outputs feed aggregation on-chip; only the final layer's logits
        # leave the chip, which we fold into the aggregation write below.
        traffic = x_bytes + w_bytes
        # Features that fit the feature buffer stay warm across inferences;
        # oversized feature matrices stream every time (NELL/Reddit scale).
        streamed = 0.0 if self.feature_buffer.fits(x_bytes) else float(x_bytes)
        seconds = max(
            self.pes.compute_seconds(macs, units.GCOD_STATIC_SCHEDULE_EFF),
            self.memory.transfer_seconds(streamed),
        )
        stats = PhaseStats(
            seconds=seconds,
            macs=macs,
            onchip_bytes=traffic + macs * bpv,
            offchip_bytes=traffic,
            energy=self._energy.energy(macs, traffic + macs * bpv, traffic),
            streamed_bytes=streamed,
        )
        return seconds, stats

    # ------------------------------------------------------------------
    def _aggregation(
        self,
        workload: GCNWorkload,
        layer: LayerSpec,
        dense_pes: PEArray,
        sparse_pes: PEArray,
        csc_resident: bool,
        csc_loaded: bool,
        dense_nnz: int,
        sparse_nnz: int,
    ):
        """Aggregation phase: denser and sparser branches in parallel."""
        adj = workload.adjacency
        bpv = self.bytes_per_value
        dim = layer.aggregation_dim
        dense_fraction = dense_nnz / max(dense_nnz + sparse_nnz, 1)
        out_bytes = workload.num_nodes * dim * bpv

        pipeline = select_pipeline(
            workload.num_nodes, dim, bpv, self.output_buffer.capacity_bytes
        )

        # --------------- denser branch: one chunk per class ---------------
        dense_macs = dense_nnz * dim
        # Chunk balance: measured from an executed schedule when a trace was
        # supplied, otherwise the layout's static estimate.
        balance = (
            self.measured_trace.chunk_balance()
            if self.measured_trace is not None
            else adj.class_balance
        )
        dense_util = max(0.05, balance * units.GCOD_STATIC_SCHEDULE_EFF)
        dense_compute_s = (
            dense_pes.compute_seconds(dense_macs, dense_util)
            if dense_macs
            else 0.0
        )
        # Block-local COO streams once; features arrive from the pipelined
        # combination (on-chip); block outputs accumulate on-chip and are
        # written out once.
        dense_coo_bytes = adj.coo_bytes * (bpv + 8) // 12  # value width scales
        dense_out_write = out_bytes * dense_fraction
        dense_offchip = dense_coo_bytes + dense_out_write
        # Both components are compulsory single streams -> prefetch-
        # overlapped; the denser branch is compute-bound by construction.
        dense_s = dense_compute_s

        # --------------- sparser branch: CSC + weight forwarding ----------
        sparse_macs = sparse_nnz * dim
        # Structural sparsity empties whole columns, which are skipped.
        skip_boost = 1.0 + 0.5 * adj.skipped_col_fraction
        if self.two_pronged:
            sparse_util = min(0.95, 0.85 * skip_boost)
            forward_rate = self.weight_forward_rate
        else:
            # Single-branch ablation: no chunk balance to exploit and no
            # denser-branch weight buffers to forward from.
            sparse_util = units.GCOD_SINGLE_BRANCH_UTILIZATION
            forward_rate = 0.0
        sparse_compute_s = (
            sparse_pes.compute_seconds(sparse_macs, sparse_util)
            if sparse_macs
            else 0.0
        )
        # Adjacency: resident CSC is fetched once ever; otherwise it is
        # re-streamed once per feature tile (resource-aware re-walks).
        csc_bytes_scaled = adj.csc_bytes * (bpv + 4) // 8
        if csc_resident:
            a_offchip = 0 if csc_loaded else csc_bytes_scaled
            a_rewalk_bytes = 0.0  # re-walks hit the on-chip copy
        else:
            a_offchip = csc_bytes_scaled * pipeline.adjacency_rewalks
            a_rewalk_bytes = csc_bytes_scaled * max(
                pipeline.adjacency_rewalks - 1, 0
            )
        # Weights (rows of XW): ~63% forwarded from denser chunks' WBufs;
        # the remainder are re-reads from off-chip and cost latency.
        nonempty_cols = adj.num_nodes * (1.0 - adj.skipped_col_fraction)
        weight_bytes = nonempty_cols * dim * bpv
        forwarded = weight_bytes * forward_rate
        weight_offchip = weight_bytes - forwarded
        sparse_out_write = out_bytes * (1.0 - dense_fraction)
        sparse_offchip = a_offchip + weight_offchip + sparse_out_write
        latency_bytes = a_rewalk_bytes + weight_offchip
        sparse_s = max(
            sparse_compute_s, self.memory.transfer_seconds(latency_bytes)
        )

        # Branches run concurrently; outputs synchronize at the end.
        seconds = max(dense_s, sparse_s) * (1.0 + units.GCOD_SYNC_OVERHEAD)
        macs = dense_macs + sparse_macs
        onchip = (
            dense_macs * bpv  # chunk-local accumulations
            + sparse_macs * bpv
            + forwarded  # forwarded weights move buffer-to-buffer
            + csc_bytes_scaled * (pipeline.adjacency_rewalks if csc_resident else 0)
        )
        offchip = dense_offchip + sparse_offchip
        stats = PhaseStats(
            seconds=seconds,
            macs=macs,
            onchip_bytes=onchip,
            offchip_bytes=offchip,
            energy=self._energy.energy(macs, onchip, offchip),
            streamed_bytes=latency_bytes,
        )
        return seconds, stats, pipeline.name


def branch_characteristics() -> List[dict]:
    """Tab. I, as data: denser vs sparser branch properties."""
    return [
        {
            "branch": "w/o GCoD",
            "multi_chunks": "no",
            "onchip_storage": "high",
            "offchip_access": "high",
            "arch_reuse": "no",
            "data_reuse": "no",
            "workloads": "heavy & imbalanced",
        },
        {
            "branch": "GCoD denser",
            "multi_chunks": "yes",
            "onchip_storage": "low",
            "offchip_access": "low",
            "arch_reuse": "yes",
            "data_reuse": "yes",
            "workloads": "balanced",
        },
        {
            "branch": "GCoD sparser",
            "multi_chunks": "no",
            "onchip_storage": "high",
            "offchip_access": "low",
            "arch_reuse": "yes",
            "data_reuse": "yes",
            "workloads": "light",
        },
    ]
