"""Deepburning-GL [24] models on three FPGA platforms (Tab. V).

Deepburning-GL auto-generates GNN accelerators from templates; the generated
designs use a generic dataflow with no GCN-specific workload balancing, so
we model them as straightforward MAC arrays at each platform's DSP count and
memory system, with a flat utilization factor
(``units.DEEPBURNING_UTILIZATION``) and no feature-sparsity support beyond
nnz-based aggregation.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware import units
from repro.hardware.accelerators.base import Accelerator, AcceleratorReport, PhaseStats
from repro.hardware.energy import EnergyModel
from repro.hardware.memory import Buffer, OffChipMemory
from repro.hardware.pe import PEArray
from repro.hardware.workload import GCNWorkload


@dataclass(frozen=True)
class FPGAPlatformSpec:
    """One Tab. V FPGA platform."""

    name: str
    dsps: int
    clock_hz: float
    onchip_bytes: int
    bandwidth_gbps: float
    memory_kind: str


ZC706 = FPGAPlatformSpec("zc706", 900, 220e6, int(19.2e6), 12.8, "ddr")
KCU1500 = FPGAPlatformSpec("kcu1500", 5520, 250e6, int(75.9e6), 76.8, "ddr")
ALVEO_U50 = FPGAPlatformSpec("alveo-u50", 5952, 300e6, int(227.3e6), 316.0, "hbm")


class DeepburningGL(Accelerator):
    """Analytic Deepburning-GL model on one FPGA platform."""

    def __init__(self, spec: FPGAPlatformSpec):
        self.spec = spec
        self.name = f"deepburning-{spec.name}"
        self.pes = PEArray(spec.dsps, spec.clock_hz)
        self.memory = OffChipMemory(spec.memory_kind, spec.bandwidth_gbps)
        self.buffer = Buffer("unified", spec.onchip_bytes)
        self._energy = EnergyModel(bits=32, memory_kind=spec.memory_kind)

    def run(self, workload: GCNWorkload) -> AcceleratorReport:
        """Cost one inference on the generated design."""
        comb = PhaseStats()
        agg = PhaseStats()
        latency = 0.0
        adj = workload.adjacency
        util = units.DEEPBURNING_UTILIZATION
        for layer in workload.layers:
            macs = workload.comb_macs(layer, sparse_aware=True)
            traffic = (
                workload.feature_bytes(layer)
                + workload.weight_bytes(layer)
                + workload.output_bytes(layer)
            )
            # Generated designs double-buffer inputs, but the narrow DDR
            # channels cannot always hide the feature stream, so the slower
            # of compute and (half-hidden) streaming wins.
            comb_s = max(
                self.pes.compute_seconds(macs, util),
                self.memory.transfer_seconds(traffic) * 0.5,
            )
            comb += PhaseStats(
                seconds=comb_s,
                macs=macs,
                onchip_bytes=traffic,
                offchip_bytes=traffic,
                energy=self._energy.energy(macs, traffic, traffic),
                streamed_bytes=traffic * 0.5,
            )
            agg_s = 0.0
            if layer.aggregate:
                a_macs = workload.agg_macs(layer)
                out_bytes = workload.num_nodes * layer.aggregation_dim * 4
                # Generic gather-style aggregation: feature rows are fetched
                # per edge; the unified buffer caches what it can.
                gather = adj.nnz * layer.aggregation_dim * 4
                resident = min(
                    1.0, self.buffer.capacity_bytes / max(out_bytes * 2, 1)
                )
                offchip = gather * (1.0 - 0.5 * resident) + adj.coo_bytes + out_bytes
                agg_s = max(
                    self.pes.compute_seconds(a_macs, util),
                    self.memory.transfer_seconds(offchip),
                )
                agg += PhaseStats(
                    seconds=agg_s,
                    macs=a_macs,
                    onchip_bytes=gather,
                    offchip_bytes=offchip,
                    energy=self._energy.energy(a_macs, gather, offchip),
                    streamed_bytes=offchip,
                )
            # Generated designs execute the phases back-to-back.
            latency += comb_s + agg_s
        return AcceleratorReport(
            platform=self.name,
            workload=workload.name,
            combination=comb,
            aggregation=agg,
            latency_s=latency,
        )
