"""AWB-GCN [13] model: *distributed* aggregation with runtime autotuning.

AWB-GCN (Tab. V: 4096 PEs at 330 MHz on an Intel D5005 FPGA, ~30 MB of
scratchpad, 76.8 GB/s DDR4) executes **combination first, then aggregation**
(Fig. 7b), both as column-wise-product SpMM. It exploits feature sparsity in
the combination phase (its headline trick) and rebalances the power-law
workload at runtime. What the model charges it for:

* utilization below GCoD's: autotuning recovers most imbalance but costs a
  rebalancing overhead every layer and never reaches a statically balanced
  schedule;
* partial aggregation results for *all* nodes must stay resident; when they
  exceed the scratchpad they spill off-chip and return — latency-visible
  traffic (this is what bites on Reddit-scale graphs);
* compulsory first-touch streams are prefetch-overlapped, as for every
  accelerator model in this package.
"""

from __future__ import annotations

from repro.hardware import units
from repro.hardware.accelerators.base import Accelerator, AcceleratorReport, PhaseStats
from repro.hardware.energy import EnergyModel
from repro.hardware.memory import Buffer, OffChipMemory
from repro.hardware.pe import PEArray
from repro.hardware.workload import GCNWorkload


class AWBGCN(Accelerator):
    """Analytic AWB-GCN model (distributed aggregation + autotuning)."""

    name = "awb-gcn"

    def __init__(self):
        self.pes = PEArray(4096, 330e6)
        self.memory = OffChipMemory("ddr", 76.8)
        self.scratchpad = Buffer("scratchpad", 30 * 2**20)
        self._energy = EnergyModel(bits=32, memory_kind="ddr")

    def run(self, workload: GCNWorkload) -> AcceleratorReport:
        """Cost one inference on AWB-GCN."""
        comb = PhaseStats()
        agg = PhaseStats()
        latency = 0.0
        adj = workload.adjacency
        overhead = 1.0 + units.AWB_REBALANCE_OVERHEAD
        for layer in workload.layers:
            # ---------------- combination (sparse-aware SpMM) --------------
            macs = workload.comb_macs(layer, sparse_aware=True)
            x_bytes = int(
                workload.feature_bytes(layer) * min(1.0, layer.x_density * 2)
            )
            compulsory = (
                x_bytes + workload.weight_bytes(layer) + workload.output_bytes(layer)
            )
            # Features that fit the scratchpad stay warm across inferences;
            # oversized feature matrices must stream every time.
            streamed = 0.0 if self.scratchpad.fits(x_bytes) else float(x_bytes)
            comb_s = max(
                self.pes.compute_seconds(macs, units.AWB_COMB_UTILIZATION)
                * overhead,
                self.memory.transfer_seconds(streamed),
            )
            comb += PhaseStats(
                seconds=comb_s,
                macs=macs,
                onchip_bytes=compulsory + macs * 4,
                offchip_bytes=compulsory,
                energy=self._energy.energy(macs, compulsory + macs * 4, compulsory),
                streamed_bytes=streamed,
            )

            agg_s = 0.0
            if layer.aggregate:
                # ------------- aggregation: column-wise product ------------
                a_macs = workload.agg_macs(layer)
                out_bytes = workload.num_nodes * layer.aggregation_dim * 4
                # Partial results exceeding the scratchpad force feature-
                # dimension tiling: the adjacency is re-streamed once per
                # extra tile pass (cheaper than spilling accumulators, and
                # what a column-product design actually does).
                reload = self.scratchpad.reload_factor(out_bytes)
                spill_bytes = adj.csc_bytes * (reload - 1)
                compulsory = adj.csc_bytes + out_bytes
                a_streamed = (
                    0.0 if self.scratchpad.fits(adj.csc_bytes)
                    else float(adj.csc_bytes)
                )
                streamed = spill_bytes + a_streamed
                compute_s = (
                    self.pes.compute_seconds(a_macs, units.AWB_AGG_UTILIZATION)
                    * overhead
                )
                agg_s = max(compute_s, self.memory.transfer_seconds(streamed))
                agg += PhaseStats(
                    seconds=agg_s,
                    macs=a_macs,
                    onchip_bytes=a_macs * 8 + adj.csc_bytes,
                    offchip_bytes=compulsory + spill_bytes,
                    energy=self._energy.energy(
                        a_macs, a_macs * 8 + adj.csc_bytes, compulsory + spill_bytes
                    ),
                    streamed_bytes=streamed,
                )
            # AWB-GCN pipelines combination into aggregation per layer.
            latency += max(comb_s, agg_s)
        return AcceleratorReport(
            platform=self.name,
            workload=workload.name,
            combination=comb,
            aggregation=agg,
            latency_s=latency,
        )
