"""Common report structure and base class for all platform models."""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.hardware.energy import EnergyBreakdown
from repro.hardware.workload import GCNWorkload


@dataclass
class PhaseStats:
    """Cost of one execution phase (combination or aggregation)."""

    seconds: float = 0.0
    macs: float = 0.0
    onchip_bytes: float = 0.0
    offchip_bytes: float = 0.0
    energy: EnergyBreakdown = field(default_factory=EnergyBreakdown)
    #: off-chip bytes that must move *during* the phase (working sets that
    #: do not stay resident on-chip, spills, gather misses, re-walks); this
    #: is what the Fig. 11a "bandwidth requirement" metric divides by time.
    streamed_bytes: float = 0.0

    def __add__(self, other: "PhaseStats") -> "PhaseStats":
        return PhaseStats(
            self.seconds + other.seconds,
            self.macs + other.macs,
            self.onchip_bytes + other.onchip_bytes,
            self.offchip_bytes + other.offchip_bytes,
            self.energy + other.energy,
            self.streamed_bytes + other.streamed_bytes,
        )


@dataclass
class AcceleratorReport:
    """One platform's cost of one full inference of one workload."""

    platform: str
    workload: str
    combination: PhaseStats
    aggregation: PhaseStats
    latency_s: float  # may be < sum of phases when phases pipeline
    notes: Dict[str, float] = field(default_factory=dict)

    @property
    def offchip_bytes(self) -> float:
        """Total off-chip traffic."""
        return self.combination.offchip_bytes + self.aggregation.offchip_bytes

    @property
    def total_macs(self) -> float:
        """Total MACs executed."""
        return self.combination.macs + self.aggregation.macs

    @property
    def energy(self) -> EnergyBreakdown:
        """Total energy."""
        return self.combination.energy + self.aggregation.energy

    @property
    def streamed_bytes(self) -> float:
        """Latency-visible off-chip traffic (steady-state streams)."""
        return self.combination.streamed_bytes + self.aggregation.streamed_bytes

    @property
    def required_bandwidth_gbps(self) -> float:
        """Off-chip bandwidth needed to sustain this latency (Fig. 11a)."""
        return self.streamed_bytes / max(self.latency_s, 1e-30) / 1e9

    @property
    def avg_bandwidth_gbps(self) -> float:
        """Average off-chip bandwidth over the inference (all traffic)."""
        return self.offchip_bytes / max(self.latency_s, 1e-30) / 1e9

    def speedup_over(self, other: "AcceleratorReport") -> float:
        """Latency ratio other/self (how much faster this platform is)."""
        return other.latency_s / max(self.latency_s, 1e-30)


class Accelerator(ABC):
    """A platform model: costs a :class:`GCNWorkload` analytically."""

    name: str = "accelerator"

    @abstractmethod
    def run(self, workload: GCNWorkload) -> AcceleratorReport:
        """Estimate latency / traffic / energy of one inference."""

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name}>"
