"""Roofline-style cost models for the PyG/DGL CPU and GPU baselines.

Tab. V configurations: a 24-core Xeon E5-2680-class CPU with DDR4 and an
RTX-8000-class GPU with GDDR6. Frameworks run the combination phase as a
*dense* GEMM (no feature-sparsity exploitation) and the aggregation phase as
a generic SpMM whose efficiency is a tiny fraction of peak — which is the
empirical fact (Sec. I: 2.94e5 ms for a 2-layer GCN on Reddit on this CPU)
that motivates dedicated accelerators. Efficiency factors live in
``repro.hardware.units.SW_EFFICIENCY`` and were calibrated once against the
paper's cross-platform ratios.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware import units
from repro.hardware.accelerators.base import Accelerator, AcceleratorReport, PhaseStats
from repro.hardware.energy import EnergyModel
from repro.hardware.workload import GCNWorkload


@dataclass(frozen=True)
class SoftwarePlatformSpec:
    """Hardware + framework description of a software baseline."""

    name: str
    peak_gmacs: float  # peak throughput, GMAC/s
    mem_bandwidth_gbps: float
    memory_kind: str
    gemm_efficiency: float
    spmm_efficiency: float
    per_layer_overhead_s: float
    power_w: float


def _platform(name: str, peak_gmacs: float, bw: float, kind: str, power: float):
    eff = units.SW_EFFICIENCY[name]
    return SoftwarePlatformSpec(
        name=name,
        peak_gmacs=peak_gmacs,
        mem_bandwidth_gbps=bw,
        memory_kind=kind,
        gemm_efficiency=eff["gemm"],
        spmm_efficiency=eff["spmm"],
        per_layer_overhead_s=eff["overhead_s"],
        power_w=power,
    )


# Xeon E5-2680 v3-class: 24 cores x 2.5 GHz x 16 FMA lanes ~ 960 GMAC/s peak.
# RTX 8000-class: 4352 cores x 1.35 GHz x 2 ~ 11.7 TMAC/s peak, 616 GB/s.
CPU_PEAK_GMACS = 960.0
GPU_PEAK_GMACS = 11750.0


class SoftwarePlatform(Accelerator):
    """Latency = Σ_layers Σ_phases max(compute, memory) + framework overhead."""

    def __init__(self, spec: SoftwarePlatformSpec):
        self.spec = spec
        self.name = spec.name
        self._energy = EnergyModel(bits=32, memory_kind=spec.memory_kind)

    def run(self, workload: GCNWorkload) -> AcceleratorReport:
        """Cost one inference on this software platform."""
        spec = self.spec
        comb = PhaseStats()
        agg = PhaseStats()
        for layer in workload.layers:
            # Combination: dense GEMM (frameworks densify node features).
            macs = workload.comb_macs(layer, sparse_aware=False)
            x_bytes = workload.feature_bytes(layer)
            w_bytes = workload.weight_bytes(layer)
            out_bytes = workload.output_bytes(layer)
            traffic = x_bytes + w_bytes + out_bytes
            compute_s = macs / (spec.peak_gmacs * 1e9 * spec.gemm_efficiency)
            memory_s = traffic / (spec.mem_bandwidth_gbps * 1e9)
            comb += PhaseStats(
                seconds=max(compute_s, memory_s) + spec.per_layer_overhead_s,
                macs=macs,
                onchip_bytes=traffic,  # caches touch every byte at least once
                offchip_bytes=traffic,
                energy=self._energy.energy(macs, traffic, traffic),
                streamed_bytes=traffic,
            )
            # Aggregation: generic SpMM with poor locality; gather traffic
            # touches one feature row per nnz.
            if layer.aggregate:
                a_macs = workload.agg_macs(layer)
                gather_bytes = (
                    workload.adjacency.nnz * layer.aggregation_dim * 4
                    + workload.adjacency.coo_bytes
                    + out_bytes
                )
                compute_s = a_macs / (
                    spec.peak_gmacs * 1e9 * spec.spmm_efficiency
                )
                memory_s = gather_bytes / (spec.mem_bandwidth_gbps * 1e9)
                agg += PhaseStats(
                    seconds=max(compute_s, memory_s) + spec.per_layer_overhead_s,
                    macs=a_macs,
                    onchip_bytes=gather_bytes,
                    offchip_bytes=gather_bytes,
                    energy=self._energy.energy(a_macs, gather_bytes, gather_bytes),
                    streamed_bytes=gather_bytes,
                )
        latency = comb.seconds + agg.seconds  # no inter-phase pipelining
        return AcceleratorReport(
            platform=self.name,
            workload=workload.name,
            combination=comb,
            aggregation=agg,
            latency_s=latency,
        )


def pyg_cpu() -> SoftwarePlatform:
    """PyTorch-Geometric on the Tab. V CPU (the normalization baseline)."""
    return SoftwarePlatform(
        _platform("pyg-cpu", CPU_PEAK_GMACS, 65.5, "ddr", 150.0)
    )


def dgl_cpu() -> SoftwarePlatform:
    """Deep Graph Library on the Tab. V CPU."""
    return SoftwarePlatform(
        _platform("dgl-cpu", CPU_PEAK_GMACS, 65.5, "ddr", 150.0)
    )


def pyg_gpu() -> SoftwarePlatform:
    """PyTorch-Geometric on the Tab. V GPU."""
    return SoftwarePlatform(
        _platform("pyg-gpu", GPU_PEAK_GMACS, 616.0, "gddr", 250.0)
    )


def dgl_gpu() -> SoftwarePlatform:
    """Deep Graph Library on the Tab. V GPU."""
    return SoftwarePlatform(
        _platform("dgl-gpu", GPU_PEAK_GMACS, 616.0, "gddr", 250.0)
    )
