"""Platform models: GCoD, prior accelerators, and software baselines."""

from typing import Dict, List

from repro.hardware.accelerators.base import (
    Accelerator,
    AcceleratorReport,
    PhaseStats,
)
from repro.hardware.accelerators.gcod import GCoDAccelerator, branch_characteristics
from repro.hardware.accelerators.hygcn import HyGCN
from repro.hardware.accelerators.awbgcn import AWBGCN
from repro.hardware.accelerators.fpga import (
    ALVEO_U50,
    DeepburningGL,
    FPGAPlatformSpec,
    KCU1500,
    ZC706,
)
from repro.hardware.accelerators.cpu_gpu import (
    SoftwarePlatform,
    dgl_cpu,
    dgl_gpu,
    pyg_cpu,
    pyg_gpu,
)


def all_platforms() -> Dict[str, Accelerator]:
    """The nine baselines + two GCoD variants, keyed by name (Tab. V)."""
    platforms = {
        "pyg-cpu": pyg_cpu(),
        "dgl-cpu": dgl_cpu(),
        "pyg-gpu": pyg_gpu(),
        "dgl-gpu": dgl_gpu(),
        "hygcn": HyGCN(),
        "awb-gcn": AWBGCN(),
        "deepburning-zc706": DeepburningGL(ZC706),
        "deepburning-kcu1500": DeepburningGL(KCU1500),
        "deepburning-alveo-u50": DeepburningGL(ALVEO_U50),
        "gcod": GCoDAccelerator(bits=32),
        "gcod-8bit": GCoDAccelerator(bits=8),
    }
    return platforms


def system_configurations() -> List[dict]:
    """Tab. V, as data: compute/memory configuration of every platform."""
    return [
        {"platform": "pyg/dgl-cpu", "compute": "2.5GHz @ 24 cores",
         "onchip": "30MB L3", "offchip": "65.5 GB/s DDR4", "power_w": 150},
        {"platform": "pyg/dgl-gpu", "compute": "1.35GHz @ 4352 cores",
         "onchip": "5.5MB L2", "offchip": "616 GB/s GDDR6", "power_w": 250},
        {"platform": "hygcn", "compute": "1GHz @ 32 SIMD + 8 systolic",
         "onchip": "24.1MB buffers", "offchip": "256 GB/s HBM", "power_w": 6.7},
        {"platform": "awb-gcn", "compute": "330MHz @ 4096 PEs",
         "onchip": "30.5MB scratchpad", "offchip": "76.8 GB/s DDR4", "power_w": 215},
        {"platform": "deepburning-zc706", "compute": "220MHz @ 900 DSPs",
         "onchip": "19.2MB", "offchip": "12.8 GB/s DDR3", "power_w": 25},
        {"platform": "deepburning-kcu1500", "compute": "250MHz @ 5520 DSPs",
         "onchip": "75.9MB", "offchip": "76.8 GB/s DDR4", "power_w": 40},
        {"platform": "deepburning-alveo-u50", "compute": "300MHz @ 5952 DSPs",
         "onchip": "227.3MB", "offchip": "316 GB/s HBM", "power_w": 50},
        {"platform": "gcod", "compute": "330MHz @ 4096 PEs",
         "onchip": "42MB (9 BRAM + 33 URAM)", "offchip": "460 GB/s HBM",
         "power_w": 180},
        {"platform": "gcod-8bit", "compute": "330MHz @ 10240 PEs",
         "onchip": "42MB (9 BRAM + 33 URAM)", "offchip": "460 GB/s HBM",
         "power_w": 180},
    ]


__all__ = [
    "Accelerator",
    "AcceleratorReport",
    "PhaseStats",
    "GCoDAccelerator",
    "branch_characteristics",
    "HyGCN",
    "AWBGCN",
    "DeepburningGL",
    "FPGAPlatformSpec",
    "ZC706",
    "KCU1500",
    "ALVEO_U50",
    "SoftwarePlatform",
    "pyg_cpu",
    "dgl_cpu",
    "pyg_gpu",
    "dgl_gpu",
    "all_platforms",
    "system_configurations",
]
