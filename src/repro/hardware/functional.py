"""Functional (behavioral) execution of the two-pronged accelerator.

The analytic models in :mod:`repro.hardware.accelerators` *cost* an
inference; this module *performs* one, scheduling the computation exactly
the way the GCoD accelerator does (Sec. V-B):

* **combination** runs on every sub-accelerator as a (row-wise-product)
  SpMM of the node features against the layer weights;
* the **denser branch** processes each subgraph's diagonal block as a
  block-local COO SpMM inside its class's chunk;
* the **sparser branch** walks the off-diagonal remainder in CSC order
  (distributed aggregation), skipping empty columns, and *queries the
  denser chunks' weight buffers* for the combined-feature rows it needs —
  forwarding hits and misses are counted, which turns the paper's "about
  63% of the data will be accessed through the query-based weight
  forwarding" from an assumed constant into a measured quantity;
* the two branches' partial outputs are accumulated by the output
  synchronization unit.

The result is bit-identical (up to float associativity) to the reference
``Â (X W)``, which the test suite asserts — the schedule changes *where*
work happens, never *what* is computed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.graphs.graph import Graph
from repro.graphs.normalize import symmetric_normalize
from repro.partition.layout import BlockLayout
from repro.sparse.kernels import BackendLike, get_backend


@dataclass
class ExecutionTrace:
    """Counters collected while executing one layer on the two branches."""

    dense_macs_per_chunk: Dict[int, int] = field(default_factory=dict)
    sparse_macs: int = 0
    comb_macs: int = 0
    columns_processed: int = 0
    columns_skipped: int = 0
    forward_hits: int = 0
    forward_misses: int = 0
    output_sync_adds: int = 0

    @property
    def forward_rate(self) -> float:
        """Measured fraction of sparser-branch weight reads served by
        query-based forwarding (paper: ~0.63)."""
        total = self.forward_hits + self.forward_misses
        return self.forward_hits / total if total else 0.0

    @property
    def dense_macs(self) -> int:
        """Total denser-branch MACs across chunks."""
        return int(sum(self.dense_macs_per_chunk.values()))

    def chunk_balance(self) -> float:
        """mean/max MACs across chunks (1.0 = perfectly balanced chunks)."""
        loads = np.array(list(self.dense_macs_per_chunk.values()), dtype=float)
        if loads.size == 0 or loads.max() == 0:
            return 1.0
        return float(loads.mean() / loads.max())


class WeightBufferDirectory:
    """The denser chunks' weight buffers, as seen by the sparser branch.

    Each chunk's buffer holds the combined-feature rows (``XW`` rows) of the
    node range it is currently processing. The sparser branch queries by row
    index: a hit returns the row from the owning chunk's buffer; a miss
    means the row was already evicted (the chunk has moved past it) and
    must be fetched from off-chip memory.

    Eviction is modelled per chunk as a sliding window over that chunk's
    node ranges, sized by ``buffer_rows``. ``num_columns`` is the length of
    the sparser branch's sweep — the graph's column count, which equals
    ``layout.num_nodes`` except for layouts covering only part of a graph —
    so the scalar :meth:`query` and the batched :meth:`query_many` advance
    chunks at the identical pace.
    """

    def __init__(
        self,
        layout: BlockLayout,
        buffer_rows: int,
        num_columns: Optional[int] = None,
    ):
        self.layout = layout
        self.buffer_rows = buffer_rows
        self.num_columns = (
            layout.num_nodes if num_columns is None else num_columns
        )
        # Row -> owning span geometry, built span-wise (O(spans) slice
        # assignments, not O(N * spans) scalar writes).
        n = layout.num_nodes
        self._span_start = np.zeros(n, dtype=np.float64)
        self._span_size = np.zeros(n, dtype=np.float64)
        self._covered = np.zeros(n, dtype=bool)
        for span in layout.spans:
            self._span_start[span.start:span.stop] = span.start
            self._span_size[span.start:span.stop] = span.size
            self._covered[span.start:span.stop] = True
        self._progress = 0.0

    def advance(self, column: int) -> None:
        """The sparser branch moved on to ``column``.

        Chunks advance through their *own* node ranges at the matched pace
        (Sec. V-B: resource allocation makes all sub-accelerators finish
        together), i.e. each chunk is ``column/N`` of the way through every
        one of its subgraph spans.
        """
        self._progress = column / max(self.num_columns, 1)

    def query(self, row: int) -> bool:
        """True (hit) if row ``row`` of XW is currently held by its chunk.

        The owning chunk's sweep position inside ``row``'s span is
        ``start + progress * size``; the row is resident while the sweep is
        within ``buffer_rows`` of it. Because the branches are only
        synchronized at the end of aggregation, a row can be queried before
        its chunk produced it or after the buffer evicted it — those are
        the misses the paper sends to off-chip memory. A row outside every
        span has no owning chunk: always a miss.
        """
        if row >= self._covered.size or not self._covered[row]:
            return False
        sweep = self._span_start[row] + self._progress * self._span_size[row]
        return abs(row - sweep) <= self.buffer_rows

    def query_many(self, columns: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`advance` + :meth:`query` for a column sweep.

        ``hits[i]`` is exactly what ``advance(columns[i]); query(columns[i])``
        would return — the geometry closed form evaluated as one array
        expression.
        """
        columns = np.asarray(columns, dtype=np.int64)
        hits = np.zeros(columns.shape, dtype=bool)
        inside = columns < self._covered.size
        idx = columns[inside]
        progress = idx / max(self.num_columns, 1)
        sweep = self._span_start[idx] + progress * self._span_size[idx]
        hits[inside] = (
            (np.abs(idx - sweep) <= self.buffer_rows) & self._covered[idx]
        )
        return hits


@dataclass
class LayerExecution:
    """Output + trace of one functionally-executed layer."""

    output: np.ndarray
    trace: ExecutionTrace


def execute_layer(
    graph: Graph,
    layout: BlockLayout,
    features: np.ndarray,
    weight: np.ndarray,
    buffer_rows: Optional[int] = None,
    apply_relu: bool = False,
    kernel_backend: BackendLike = None,
) -> LayerExecution:
    """Execute one GCN layer (combination + aggregation) as the accelerator does.

    ``buffer_rows`` sizes each chunk's weight buffer in XW rows; the default
    (a sixteenth of the graph) reproduces the paper's ~63% forwarding rate
    on polarized graphs. ``kernel_backend`` selects the SpMM kernels; every
    backend walks the *same* schedule, and all traffic counters are computed
    from the schedule's geometry, so the ``ExecutionTrace`` is identical
    whichever backend does the arithmetic.
    """
    n = graph.num_nodes
    if buffer_rows is None:
        buffer_rows = max(n // 16, 1)
    kernel = get_backend(kernel_backend)
    trace = ExecutionTrace()

    # ------------------------------------------------------------------
    # combination: XW on all sub-accelerators (row-wise product)
    # ------------------------------------------------------------------
    xw = features @ weight
    trace.comb_macs = int(np.count_nonzero(features)) * weight.shape[1]

    a_hat = symmetric_normalize(graph.adj)
    dense, sparse = layout.split(a_hat)

    output = np.zeros((n, weight.shape[1]))
    _dense_branch(layout, dense, xw, output, weight.shape[1], trace, kernel)
    sparse_out = _sparse_branch(
        sparse, layout, buffer_rows, xw, weight.shape[1], n, trace, kernel
    )

    # output synchronization: accumulate the two branches' partials.
    output += sparse_out
    trace.output_sync_adds += 1
    if apply_relu:
        output = np.maximum(output, 0.0)
    return LayerExecution(output=output, trace=trace)


def _dense_branch(layout, dense, xw, output, width, trace, kernel) -> None:
    """Denser branch: every chunk's block-local products, one schedule.

    Diagonal-block entries have both endpoints in one subgraph, so the
    per-chunk workloads partition the dense nnz by the row's subgraph: the
    MAC counters are read off a bincount of that partition while the
    selected backend performs the arithmetic as one scatter-aggregation.
    Self-loops of Â live on the diagonal = inside every subgraph block;
    ``layout.split`` assigns them to the dense branch already (row == col).
    """
    dense_coo = dense.tocoo()
    output += kernel.coo_spmm(
        dense_coo.data, dense_coo.row, dense_coo.col, xw, output.shape[0]
    )
    per_span = np.bincount(
        layout.node_subgraph[dense_coo.row], minlength=layout.num_subgraphs
    )
    for span in layout.spans:
        nnz = int(per_span[span.subgraph_id])
        chunk = span.class_id
        trace.dense_macs_per_chunk[chunk] = trace.dense_macs_per_chunk.get(
            chunk, 0
        ) + nnz * width
        trace.output_sync_adds += int(nnz > 0)


def _sparse_branch(
    sparse, layout, buffer_rows, xw, width, n, trace, kernel
) -> np.ndarray:
    """Sparser branch: CSC column sweep with query-based weight forwarding.

    The directory query for column ``j`` depends only on geometry — the
    owning span of row ``j`` and the matched sweep progress ``j / n`` — so
    the hit/miss decisions of all non-empty columns are evaluated as one
    :meth:`WeightBufferDirectory.query_many` call, and the arithmetic is a
    single column-product SpMM through the selected backend.
    """
    csc = sparse.tocsc()
    col_nnz = np.diff(csc.indptr)
    nonempty = np.nonzero(col_nnz > 0)[0]
    trace.columns_processed += int(nonempty.size)
    trace.columns_skipped += int(n - nonempty.size)
    trace.sparse_macs += int(col_nnz.sum()) * width

    directory = WeightBufferDirectory(layout, buffer_rows, num_columns=n)
    hits = directory.query_many(nonempty)
    trace.forward_hits += int(hits.sum())
    trace.forward_misses += int(nonempty.size - hits.sum())

    return kernel.spmm_column_product(csc, xw)


def execute_gcn(
    graph: Graph,
    layout: BlockLayout,
    weights: List[np.ndarray],
    buffer_rows: Optional[int] = None,
    kernel_backend: BackendLike = None,
) -> Tuple[np.ndarray, List[ExecutionTrace]]:
    """Execute a full multi-layer GCN the accelerator way.

    ``weights`` is the list of layer weight matrices (biases omitted: the
    accelerator folds them into the activation unit). ReLU is applied
    between layers, matching Eq. (1). Returns (logits, per-layer traces).
    """
    h = graph.features
    traces: List[ExecutionTrace] = []
    for i, w in enumerate(weights):
        result = execute_layer(
            graph,
            layout,
            h,
            w,
            buffer_rows=buffer_rows,
            apply_relu=(i < len(weights) - 1),
            kernel_backend=kernel_backend,
        )
        h = result.output
        traces.append(result.trace)
    return h, traces


def reference_gcn(graph: Graph, weights: List[np.ndarray]) -> np.ndarray:
    """The mathematical reference: ``Â(...Â(Â X W0)W1...)`` with ReLU."""
    a_hat = symmetric_normalize(graph.adj)
    h = graph.features
    for i, w in enumerate(weights):
        h = a_hat @ (h @ w)
        if i < len(weights) - 1:
            h = np.maximum(h, 0.0)
    return np.asarray(h)
