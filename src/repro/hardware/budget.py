"""Area / power / technology-node budget models for constrained DSE.

The sweep engine grids over *what the accelerator does* (PE count,
precision, buffer split); a budget-constrained search — the Lumos-style
question the ROADMAP names — additionally needs *what it costs to build*:
silicon area (mm^2) and a thermal design power (W), both as functions of
the technology node the design is synthesized at.

:class:`AreaPowerModel` turns the structural configuration (PE-array
size, on-chip capacity, precision) into those estimates through the
documented 16 nm-reference constants in :mod:`repro.hardware.units`,
scaled by :class:`TechNode` factors for 7/16/28 nm. The same
``energy_scale`` threads into :class:`~repro.hardware.energy.EnergyModel`
so per-inference joules and TDP move together when the ``tech_node``
sweep axis varies.

Scaling policy (deliberately conservative):

* logic and SRAM **area** scale with the node's transistor density;
* logic and SRAM **dynamic energy** scale with the node's switching
  energy;
* the **clock stays at 330 MHz** across nodes — latency and speedup are
  node-invariant, so frontiers trade energy/area/power against the same
  performance numbers the paper reports;
* **DRAM interface** energy and PHY power are board-level and do not
  scale with the logic node.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.errors import ConfigError
from repro.hardware import units


@dataclass(frozen=True)
class TechNode:
    """One logic technology node: scale factors relative to 16 nm."""

    nm: int
    #: transistor-density factor: mm^2 at this node / mm^2 at 16 nm.
    area_scale: float
    #: switching-energy factor: pJ at this node / pJ at 16 nm.
    energy_scale: float


#: The supported nodes. 16 nm is the reference (VCU128-class FinFET), so
#: every default stays byte-identical to the pre-budget model; 7 nm and
#: 28 nm follow published density/energy scaling trends.
TECH_NODES: Dict[int, TechNode] = {
    7: TechNode(7, area_scale=0.36, energy_scale=0.55),
    16: TechNode(16, area_scale=1.0, energy_scale=1.0),
    28: TechNode(28, area_scale=2.60, energy_scale=1.85),
}

#: The node every model uses unless a sweep says otherwise.
DEFAULT_TECH_NODE_NM = 16


def get_tech_node(nm: int) -> TechNode:
    """The :class:`TechNode` for ``nm``, or a usage error naming the set."""
    try:
        return TECH_NODES[int(nm)]
    except (KeyError, TypeError, ValueError):
        known = ", ".join(str(n) for n in sorted(TECH_NODES))
        raise ConfigError(
            f"unknown tech node {nm!r}; choose from {known} (nm)"
        ) from None


@dataclass(frozen=True)
class BudgetEstimate:
    """Area/power breakdown of one accelerator configuration."""

    area_mm2: float
    tdp_w: float
    pe_area_mm2: float
    sram_area_mm2: float
    pe_power_w: float
    sram_power_w: float
    dram_power_w: float

    def to_summary_dict(self) -> Dict[str, float]:
        return {
            "area_mm2": round(self.area_mm2, 4),
            "tdp_w": round(self.tdp_w, 4),
        }


class AreaPowerModel:
    """Converts an accelerator's structure into area and TDP estimates."""

    def __init__(self, tech_node: int = DEFAULT_TECH_NODE_NM):
        self.tech = get_tech_node(tech_node)

    def estimate(
        self,
        bits: int,
        num_pes: int,
        onchip_bytes: float,
        clock_hz: float = 330e6,
    ) -> BudgetEstimate:
        """Area (mm^2) and TDP (W) of a ``num_pes``-PE design at ``bits``.

        Area is raw PE + SRAM silicon times the floorplan overhead;
        TDP is PE dynamic power at the thermal-design activity factor,
        plus SRAM and the (node-invariant) HBM PHY, times the static
        overhead.
        """
        if bits not in units.PE_AREA_MM2:
            known = ", ".join(str(b) for b in sorted(units.PE_AREA_MM2))
            raise ConfigError(
                f"unknown precision {bits!r} for the area/power model; "
                f"choose from {known} (bits)"
            )
        if num_pes < 1:
            raise ConfigError(f"num_pes must be >= 1, got {num_pes!r}")
        mb = onchip_bytes / 2**20
        pe_area = num_pes * units.PE_AREA_MM2[bits] * self.tech.area_scale
        sram_area = mb * units.SRAM_MM2_PER_MB * self.tech.area_scale
        area = (pe_area + sram_area) * units.AREA_OVERHEAD

        mac_pj = units.MAC8_PJ if bits <= 8 else units.MAC32_PJ
        pe_power = (
            num_pes * clock_hz * units.PE_ACTIVITY
            * mac_pj * self.tech.energy_scale * 1e-12
        )
        sram_power = mb * units.SRAM_W_PER_MB * self.tech.energy_scale
        dram_power = units.HBM_PHY_W
        tdp = (pe_power + sram_power + dram_power) * \
            units.STATIC_POWER_OVERHEAD
        return BudgetEstimate(
            area_mm2=area,
            tdp_w=tdp,
            pe_area_mm2=pe_area,
            sram_area_mm2=sram_area,
            pe_power_w=pe_power,
            sram_power_w=sram_power,
            dram_power_w=dram_power,
        )


__all__ = (
    "AreaPowerModel",
    "BudgetEstimate",
    "DEFAULT_TECH_NODE_NM",
    "TECH_NODES",
    "TechNode",
    "get_tech_node",
)
