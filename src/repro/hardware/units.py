"""Physical constants and calibration factors for the hardware models.

Every number that turns *structural* facts (MAC counts, byte counts,
measured workload balance) into *physical* estimates (seconds, joules)
lives here, so the calibration surface is one documented file.

Energy constants follow the usual Horowitz-style scaling, calibrated at
the 16 nm reference node (the paper's VCU128 is 16 nm FinFET): an
off-chip access costs ~2 orders of magnitude more than a MAC, on-chip
SRAM sits in between. :mod:`repro.hardware.budget` scales the *logic and
SRAM* constants to other technology nodes; DRAM interface energy is
board-level and does not scale with the logic node. Software-efficiency factors for the
PyG/DGL baselines are calibrated once against the ratios the paper reports
(e.g. AWB-GCN ~1000x PyG-CPU on Cora, DGL-CPU ~15x PyG-CPU) and then left
alone; every GCoD result is produced by the model, not fitted.
"""

# ---------------------------------------------------------------------------
# energy per operation (picojoules)
# ---------------------------------------------------------------------------
MAC32_PJ = 3.1  # 32-bit fixed-point multiply-accumulate
MAC8_PJ = 0.4  # 8-bit MAC (GCoD 8-bit variant)
SRAM_PJ_PER_BYTE = 1.5  # on-chip buffer access
HBM_PJ_PER_BYTE = 56.0  # ~7 pJ/bit, HBM2-class
DDR_PJ_PER_BYTE = 160.0  # ~20 pJ/bit, DDR4-class
GDDR_PJ_PER_BYTE = 96.0  # GDDR6-class

#: bytes per value at the two precisions the paper evaluates
BYTES_FP32 = 4
BYTES_INT8 = 1

# ---------------------------------------------------------------------------
# area / power calibration (16 nm reference; see repro.hardware.budget)
# ---------------------------------------------------------------------------
#: silicon area of one MAC PE (mm^2) per precision — an 8-bit PE is
#: roughly a quarter of a 32-bit one (multiplier area goes ~bits^2).
PE_AREA_MM2 = {32: 0.0024, 8: 0.0006}
#: on-chip SRAM density (mm^2 per MB), 16nm-class macro cells
SRAM_MM2_PER_MB = 0.45
#: floorplan overhead for NoC, controllers, and the HBM PHY on top of the
#: raw PE + SRAM area
AREA_OVERHEAD = 1.25
#: average PE switching activity at TDP (fraction of cycles a PE fires a
#: MAC); derates peak dynamic power the way a thermal design point does
PE_ACTIVITY = 0.55
#: SRAM power per MB (leakage + refresh-equivalent dynamic), watts
SRAM_W_PER_MB = 0.012
#: HBM PHY + controller power (board-level, not logic-node scaled), watts
HBM_PHY_W = 1.5
#: static/clock-tree overhead on top of the summed component powers
STATIC_POWER_OVERHEAD = 1.1

# ---------------------------------------------------------------------------
# software-platform calibration (fractions of peak throughput achieved)
# ---------------------------------------------------------------------------
# Dense GEMM efficiency: how much of peak FLOPs a framework reaches on the
# combination phase. SpMM efficiency: same for the (irregular) aggregation
# phase; these are tiny on CPUs/GPUs, which is the entire motivation for
# dedicated GCN accelerators (Sec. I quotes 2.94e5 ms for Reddit on a Xeon).
SW_EFFICIENCY = {
    "pyg-cpu": {"gemm": 0.050, "spmm": 0.00025, "overhead_s": 0.5e-3},
    "dgl-cpu": {"gemm": 0.350, "spmm": 0.00400, "overhead_s": 0.2e-3},
    "pyg-gpu": {"gemm": 0.200, "spmm": 0.00180, "overhead_s": 20e-6},
    "dgl-gpu": {"gemm": 0.150, "spmm": 0.00100, "overhead_s": 30e-6},
}

# ---------------------------------------------------------------------------
# accelerator utilization calibration
# ---------------------------------------------------------------------------
# HyGCN: gathered aggregation with window sliding; SIMD lanes idle on short
# neighbour lists, so aggregation utilization is low; systolic combination
# is efficient. Locality of gathered feature fetches (fraction served by the
# on-chip window cache).
HYGCN_AGG_UTILIZATION = 0.75
HYGCN_COMB_UTILIZATION = 0.80
HYGCN_GATHER_HIT_RATE = 0.92

# AWB-GCN: distributed aggregation with runtime autotuned rebalancing.
# Utilization after autotuning is good but rebalancing itself stalls the
# array a little and the first iterations run imbalanced; the power-law
# row-length skew also hurts its combination-phase SpMM.
AWB_AGG_UTILIZATION = 0.68
AWB_COMB_UTILIZATION = 0.70
AWB_REBALANCE_OVERHEAD = 0.12  # fraction of cycles spent autotuning

# Deepburning-GL: automatically generated, generic dataflow; no workload
# balancing at all.
DEEPBURNING_UTILIZATION = 0.45

# GCoD: denser-branch utilization is *measured* (subgraph balance) times a
# small static-scheduling efficiency; the sparser branch overlaps with it.
GCOD_STATIC_SCHEDULE_EFF = 0.95
# Ablation: a single undifferentiated branch (two_pronged=False) faces the
# full power-law imbalance with no chunking and no autotuning — utilization
# sits between HyGCN's SIMD lanes and AWB-GCN's autotuned array.
GCOD_SINGLE_BRANCH_UTILIZATION = 0.50
GCOD_WEIGHT_FORWARD_RATE = 0.63  # Sec. V-B: ~63% of sparser-branch weights
GCOD_SYNC_OVERHEAD = 0.03  # output synchronization between branches
