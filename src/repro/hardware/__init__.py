"""Accelerator substrate: memory, PEs, energy, workloads, platform models.

This package is the paper's "hardware level" built as an analytic simulator:
structural facts measured from the (GCoD-trained) graph — nnz splits,
subgraph balance, format footprints, empty columns — are turned into
latency, off-chip traffic, bandwidth, and energy through the documented
constants in :mod:`repro.hardware.units`.
"""

from repro.hardware.memory import Buffer, OffChipMemory
from repro.hardware.pe import PEArray
from repro.hardware.budget import (
    AreaPowerModel,
    BudgetEstimate,
    DEFAULT_TECH_NODE_NM,
    TECH_NODES,
    TechNode,
    get_tech_node,
)
from repro.hardware.energy import EnergyBreakdown, EnergyModel
from repro.hardware.dataflow import (
    PipelineChoice,
    pipeline_characteristics,
    select_pipeline,
)
from repro.hardware.workload import (
    AdjacencyProfile,
    GCNWorkload,
    LayerSpec,
    adjacency_profile,
    extract_workload,
    layer_specs,
)
from repro.hardware.functional import (
    ExecutionTrace,
    execute_gcn,
    execute_layer,
    reference_gcn,
)
from repro.hardware.event_sim import (
    EventDrivenAggregator,
    EventSimReport,
    WorkTile,
    simulate_aggregation,
    tiles_from_profile,
    tiles_from_workload,
)
from repro.hardware.sampling import LFSR, SamplingUnit
from repro.hardware.accelerators import (
    Accelerator,
    AcceleratorReport,
    AWBGCN,
    DeepburningGL,
    GCoDAccelerator,
    HyGCN,
    SoftwarePlatform,
    all_platforms,
    system_configurations,
)
from repro.hardware.pipeline import (
    PipelineSettings,
    Stage,
    WorkloadGraph,
    WorkloadGraphReport,
    WorkloadNode,
    evaluate_workload,
    get_stage,
    parse_workload,
    register_stage,
    slice_workload,
    stage_names,
    workload_from_json,
)

__all__ = [
    "Buffer",
    "OffChipMemory",
    "PEArray",
    "AreaPowerModel",
    "BudgetEstimate",
    "DEFAULT_TECH_NODE_NM",
    "TECH_NODES",
    "TechNode",
    "get_tech_node",
    "EnergyBreakdown",
    "EnergyModel",
    "PipelineChoice",
    "pipeline_characteristics",
    "select_pipeline",
    "AdjacencyProfile",
    "GCNWorkload",
    "LayerSpec",
    "adjacency_profile",
    "extract_workload",
    "layer_specs",
    "ExecutionTrace",
    "execute_gcn",
    "execute_layer",
    "reference_gcn",
    "EventDrivenAggregator",
    "EventSimReport",
    "WorkTile",
    "simulate_aggregation",
    "tiles_from_profile",
    "tiles_from_workload",
    "LFSR",
    "SamplingUnit",
    "Accelerator",
    "AcceleratorReport",
    "AWBGCN",
    "DeepburningGL",
    "GCoDAccelerator",
    "HyGCN",
    "SoftwarePlatform",
    "all_platforms",
    "system_configurations",
    "PipelineSettings",
    "Stage",
    "WorkloadGraph",
    "WorkloadGraphReport",
    "WorkloadNode",
    "evaluate_workload",
    "get_stage",
    "parse_workload",
    "register_stage",
    "slice_workload",
    "stage_names",
    "workload_from_json",
]
