"""Energy accounting for compute, on-chip, and off-chip accesses (Fig. 12)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

from repro.hardware import units


@dataclass
class EnergyBreakdown:
    """Energy (joules) split the way Fig. 12 plots it."""

    compute_j: float = 0.0
    onchip_j: float = 0.0
    offchip_j: float = 0.0

    @property
    def total_j(self) -> float:
        """Total energy in joules."""
        return self.compute_j + self.onchip_j + self.offchip_j

    def __add__(self, other: "EnergyBreakdown") -> "EnergyBreakdown":
        return EnergyBreakdown(
            self.compute_j + other.compute_j,
            self.onchip_j + other.onchip_j,
            self.offchip_j + other.offchip_j,
        )

    def fractions(self) -> Dict[str, float]:
        """Normalized shares of each component."""
        total = max(self.total_j, 1e-30)
        return {
            "compute": self.compute_j / total,
            "onchip": self.onchip_j / total,
            "offchip": self.offchip_j / total,
        }

    def components(self) -> Tuple[float, float, float]:
        """The (compute, onchip, offchip) joules as a plain tuple.

        The stable column order of Fig. 12's phase breakdown — its row
        builder iterates this instead of re-spelling the attribute order.
        """
        return (self.compute_j, self.onchip_j, self.offchip_j)


class EnergyModel:
    """Converts operation counts into joules for a given precision/memory."""

    def __init__(self, bits: int = 32, memory_kind: str = "hbm"):
        self.bits = bits
        self.mac_pj = units.MAC8_PJ if bits <= 8 else units.MAC32_PJ
        self.mem_pj = {
            "hbm": units.HBM_PJ_PER_BYTE,
            "ddr": units.DDR_PJ_PER_BYTE,
            "gddr": units.GDDR_PJ_PER_BYTE,
        }[memory_kind]

    def energy(
        self, macs: float, onchip_bytes: float, offchip_bytes: float
    ) -> EnergyBreakdown:
        """Energy of a phase given its op/byte counts."""
        return EnergyBreakdown(
            compute_j=macs * self.mac_pj * 1e-12,
            onchip_j=onchip_bytes * units.SRAM_PJ_PER_BYTE * 1e-12,
            offchip_j=offchip_bytes * self.mem_pj * 1e-12,
        )
