"""Energy accounting for compute, on-chip, and off-chip accesses (Fig. 12)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

from repro.errors import ConfigError, did_you_mean
from repro.hardware import units
from repro.hardware.budget import DEFAULT_TECH_NODE_NM, get_tech_node

#: Off-chip access energy per memory technology (pJ/byte). Module-level so
#: the known-kinds list in the unknown-kind error and the model itself can
#: never disagree.
MEMORY_PJ_PER_BYTE = {
    "hbm": units.HBM_PJ_PER_BYTE,
    "ddr": units.DDR_PJ_PER_BYTE,
    "gddr": units.GDDR_PJ_PER_BYTE,
}


@dataclass
class EnergyBreakdown:
    """Energy (joules) split the way Fig. 12 plots it."""

    compute_j: float = 0.0
    onchip_j: float = 0.0
    offchip_j: float = 0.0

    @property
    def total_j(self) -> float:
        """Total energy in joules."""
        return self.compute_j + self.onchip_j + self.offchip_j

    def __add__(self, other: "EnergyBreakdown") -> "EnergyBreakdown":
        return EnergyBreakdown(
            self.compute_j + other.compute_j,
            self.onchip_j + other.onchip_j,
            self.offchip_j + other.offchip_j,
        )

    def fractions(self) -> Dict[str, float]:
        """Normalized shares of each component.

        An empty breakdown (no energy recorded at all) has no meaningful
        shares: every component is reported as exactly 0.0 rather than
        the near-zero garbage a clamped denominator would produce.
        """
        total = self.total_j
        if total == 0.0:
            return {"compute": 0.0, "onchip": 0.0, "offchip": 0.0}
        return {
            "compute": self.compute_j / total,
            "onchip": self.onchip_j / total,
            "offchip": self.offchip_j / total,
        }

    def components(self) -> Tuple[float, float, float]:
        """The (compute, onchip, offchip) joules as a plain tuple.

        The stable column order of Fig. 12's phase breakdown — its row
        builder iterates this instead of re-spelling the attribute order.
        """
        return (self.compute_j, self.onchip_j, self.offchip_j)


class EnergyModel:
    """Converts operation counts into joules for a given precision/memory.

    ``tech_node`` scales the on-die energies (MAC and SRAM) by the node's
    switching-energy factor; off-chip energy is board-level and stays
    fixed. The default (16 nm) is the calibration reference, so models
    built without a node are bit-identical to the pre-budget ones.
    """

    def __init__(
        self,
        bits: int = 32,
        memory_kind: str = "hbm",
        tech_node: int = DEFAULT_TECH_NODE_NM,
    ):
        if memory_kind not in MEMORY_PJ_PER_BYTE:
            close = did_you_mean(memory_kind, MEMORY_PJ_PER_BYTE,
                                 prefix=True)
            suggestion = f" (did you mean {close!r}?)" if close else ""
            raise ConfigError(
                f"unknown memory kind {memory_kind!r}{suggestion}; "
                f"choose from {', '.join(MEMORY_PJ_PER_BYTE)}"
            )
        scale = get_tech_node(tech_node).energy_scale
        self.bits = bits
        self.tech_node = int(tech_node)
        self.mac_pj = (units.MAC8_PJ if bits <= 8 else units.MAC32_PJ) * scale
        self.sram_pj = units.SRAM_PJ_PER_BYTE * scale
        self.mem_pj = MEMORY_PJ_PER_BYTE[memory_kind]

    def energy(
        self, macs: float, onchip_bytes: float, offchip_bytes: float
    ) -> EnergyBreakdown:
        """Energy of a phase given its op/byte counts."""
        return EnergyBreakdown(
            compute_j=macs * self.mac_pj * 1e-12,
            onchip_j=onchip_bytes * self.sram_pj * 1e-12,
            offchip_j=offchip_bytes * self.mem_pj * 1e-12,
        )
