"""Staged workload-DAG evaluation: multi-model, shared-accelerator costing.

The single-model path (``extract_workload`` -> ``GCoDAccelerator.run``)
hard-codes one model on one accelerator. This module generalizes it, in
the style of ZigZag's composable mapping stages, to a declarative
**workload DAG**:

* a :class:`WorkloadGraph` of named :class:`WorkloadNode`\\ s — each a
  (dataset, arch, layer-range) with optional per-node kernel-backend and
  PE-allocation (``share``) choices, plus ``after`` dependencies;
* a staged evaluator — ``extract`` -> ``map`` -> ``cost``, each a
  pluggable :class:`Stage` registry entry — that iterates nodes through
  the existing analytic models;
* a merge step with shared-accelerator contention accounting: nodes of a
  concurrent level time-slice one PE array
  (:meth:`~repro.hardware.pe.PEArray.allocate`), a level's latency is the
  max over its nodes, sequential levels sum, and DRAM/energy add up
  through ``PhaseStats.__add__`` / ``EnergyBreakdown.__add__``.

A single-node DAG reduces exactly to the legacy path: ``allocate([1.0])``
returns the full PE array, so the node's ``GCoDAccelerator`` is
numerically identical to the default construction and its
:class:`~repro.hardware.accelerators.base.AcceleratorReport` is
byte-identical (tests pin this parity).

Shorthand grammar (the ``--workload`` / sweep-axis syntax)::

    workload := phase (">" phase)*          sequential phases
    phase    := node ("+" node)*            concurrent, share the array
    node     := dataset "/" arch [
                "/" start ["-" stop]]       inclusive layer range
                ["@" share]                 PE-allocation fraction

e.g. ``"cora/gcn+citeseer/gat"`` (two models sharing the accelerator) or
``"cora/gcn/0@0.75 > cora/gcn/1"`` (a pipelined layer split). The JSON
form (see :func:`workload_from_json`) expresses arbitrary DAGs.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.errors import ConfigError, did_you_mean
from repro.hardware.accelerators.base import AcceleratorReport, PhaseStats
from repro.hardware.budget import DEFAULT_TECH_NODE_NM
from repro.hardware.pe import PEArray
from repro.hardware.workload import GCNWorkload

#: The GCoD clock (Tab. V); the shared array is sliced at this rate.
GCOD_CLOCK_HZ = 330e6


# ----------------------------------------------------------------------
# the DAG description
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class WorkloadNode:
    """One model (or layer-range of a model) in a workload DAG."""

    name: str
    dataset: str
    arch: str = "gcn"
    #: inclusive layer range ``(start, stop)`` of the model, or ``None``
    #: for the whole model.
    layers: Optional[Tuple[int, int]] = None
    #: fraction of the shared PE array this node wants within its level
    #: (``None`` = an equal split with its concurrent peers).
    share: Optional[float] = None
    #: per-node SpMM kernel backend override for training/extraction.
    kernel_backend: Optional[str] = None
    #: names of nodes that must complete before this one starts.
    after: Tuple[str, ...] = ()

    def token(self) -> str:
        """This node as a shorthand token (``dataset/arch[/a-b][@s]``)."""
        out = f"{self.dataset}/{self.arch}"
        if self.layers is not None:
            start, stop = self.layers
            out += f"/{start}" if start == stop else f"/{start}-{stop}"
        if self.share is not None:
            out += f"@{self.share:g}"
        return out


@dataclass(frozen=True)
class WorkloadGraph:
    """A named DAG of workload nodes sharing one accelerator."""

    name: str
    nodes: Tuple[WorkloadNode, ...]

    def __post_init__(self):
        object.__setattr__(self, "nodes", tuple(self.nodes))
        if not self.nodes:
            raise ConfigError(f"workload {self.name!r} has no nodes")
        names = [n.name for n in self.nodes]
        dupes = {n for n in names if names.count(n) > 1}
        if dupes:
            raise ConfigError(
                f"workload {self.name!r} has duplicate node names: "
                f"{sorted(dupes)}"
            )
        known = set(names)
        for node in self.nodes:
            for dep in node.after:
                if dep == node.name:
                    raise ConfigError(
                        f"workload node {node.name!r} depends on itself"
                    )
                if dep not in known:
                    close = did_you_mean(dep, known)
                    suggestion = f" (did you mean {close!r}?)" if close \
                        else ""
                    raise ConfigError(
                        f"workload node {node.name!r} depends on unknown "
                        f"node {dep!r}{suggestion}"
                    )

    def levels(self) -> List[List[WorkloadNode]]:
        """Topological levels: each level's nodes run concurrently.

        Declaration order is preserved within a level, so expansion is
        deterministic. A dependency cycle raises :class:`ConfigError`.
        """
        remaining = list(self.nodes)
        done: set = set()
        out: List[List[WorkloadNode]] = []
        while remaining:
            ready = [n for n in remaining
                     if all(d in done for d in n.after)]
            if not ready:
                stuck = ", ".join(n.name for n in remaining)
                raise ConfigError(
                    f"workload {self.name!r} has a dependency cycle "
                    f"among: {stuck}"
                )
            out.append(ready)
            done.update(n.name for n in ready)
            remaining = [n for n in remaining if n.name not in done]
        return out

    def to_shorthand(self) -> str:
        """The canonical shorthand string for a level-sequential DAG.

        Only DAGs whose dependencies are exactly "every node of the
        previous level" are expressible; anything sparser needs the JSON
        form and raises here.
        """
        levels = self.levels()
        previous: Tuple[str, ...] = ()
        for level in levels:
            for node in level:
                if set(node.after) != set(previous):
                    raise ConfigError(
                        f"workload {self.name!r} is not level-sequential "
                        f"(node {node.name!r} has sparse dependencies); "
                        "use the JSON form"
                    )
            previous = tuple(n.name for n in level)
        return " > ".join(
            "+".join(n.token() for n in level) for level in levels
        )

    def to_jsonable(self) -> Dict[str, Any]:
        """The JSON form :func:`workload_from_json` round-trips."""
        return {
            "name": self.name,
            "nodes": [
                {
                    "name": n.name,
                    "dataset": n.dataset,
                    "arch": n.arch,
                    **({"layers": list(n.layers)} if n.layers else {}),
                    **({"share": n.share} if n.share is not None else {}),
                    **({"kernel_backend": n.kernel_backend}
                       if n.kernel_backend else {}),
                    **({"after": list(n.after)} if n.after else {}),
                }
                for n in self.nodes
            ],
        }


# ----------------------------------------------------------------------
# parsing: shorthand and JSON
# ----------------------------------------------------------------------
def _validate_node_names(nodes) -> None:
    """Eager dataset/arch validation, matching the sweep expansion's."""
    from repro.errors import UnknownDatasetError
    from repro.graphs.datasets import DATASET_SPECS
    from repro.nn.models import MODEL_ARCHS

    for node in nodes:
        if node.dataset not in DATASET_SPECS:
            raise UnknownDatasetError(
                f"unknown dataset {node.dataset!r}; choose from "
                f"{sorted(DATASET_SPECS)}"
            )
        if node.arch not in MODEL_ARCHS:
            raise ConfigError(
                f"unknown architecture {node.arch!r}; choose from "
                f"{sorted(MODEL_ARCHS)}"
            )


def _parse_layer_range(text: str, token: str) -> Tuple[int, int]:
    start_text, sep, stop_text = text.partition("-")
    try:
        start = int(start_text)
        stop = int(stop_text) if sep else start
    except ValueError:
        raise ConfigError(
            f"workload node {token!r}: layer range {text!r} is not "
            f"'start' or 'start-stop'"
        ) from None
    if start < 0 or stop < start:
        raise ConfigError(
            f"workload node {token!r}: layer range {text!r} wants "
            f"0 <= start <= stop"
        )
    return (start, stop)


def _parse_node_token(
    token: str, after: Tuple[str, ...], taken: set
) -> WorkloadNode:
    body, at, share_text = token.partition("@")
    share: Optional[float] = None
    if at:
        try:
            share = float(share_text)
        except ValueError:
            raise ConfigError(
                f"workload node {token!r}: share {share_text!r} is not "
                f"a number"
            ) from None
        if share <= 0:
            raise ConfigError(
                f"workload node {token!r}: share must be positive"
            )
    fields = [f.strip() for f in body.strip().split("/")]
    if not 2 <= len(fields) <= 3 or not all(fields):
        raise ConfigError(
            f"workload node {token!r} is not of the form "
            f"dataset/arch[/start-stop][@share]"
        )
    dataset, arch = fields[0].lower(), fields[1].lower()
    layers = _parse_layer_range(fields[2], token) if len(fields) == 3 \
        else None
    base = f"{dataset}/{arch}"
    name, k = base, 2
    while name in taken:
        name, k = f"{base}#{k}", k + 1
    taken.add(name)
    return WorkloadNode(
        name=name, dataset=dataset, arch=arch, layers=layers,
        share=share, after=after,
    )


def parse_workload(text: str, name: Optional[str] = None) -> WorkloadGraph:
    """Parse the shorthand grammar into a validated :class:`WorkloadGraph`.

    ``+`` joins concurrent nodes (one level, sharing the PE array), ``>``
    joins sequential phases (each phase depends on all of the previous).
    """
    if not isinstance(text, str) or not text.strip():
        raise ConfigError(
            "empty workload: expected shorthand like "
            "'cora/gcn+citeseer/gat'"
        )
    nodes: List[WorkloadNode] = []
    taken: set = set()
    previous: Tuple[str, ...] = ()
    for phase in text.split(">"):
        tokens = [t.strip() for t in phase.split("+") if t.strip()]
        if not tokens:
            raise ConfigError(
                f"workload {text!r} has an empty phase (stray '>' or '+')"
            )
        level = [_parse_node_token(t, previous, taken) for t in tokens]
        nodes.extend(level)
        previous = tuple(n.name for n in level)
    _validate_node_names(nodes)
    graph = WorkloadGraph(name=name or "workload", nodes=tuple(nodes))
    return graph


#: The keys a JSON node object may carry.
_JSON_NODE_KEYS = ("name", "dataset", "arch", "layers", "share",
                   "kernel_backend", "after")


def workload_from_json(data: Any) -> WorkloadGraph:
    """Build a :class:`WorkloadGraph` from its JSON form.

    Schema: ``{"name": str?, "nodes": [{"dataset": str, "arch": str,
    "name": str?, "layers": [start, stop]?, "share": float?,
    "kernel_backend": str?, "after": [str, ...]?}, ...]}``.
    """
    if not isinstance(data, dict) or not isinstance(data.get("nodes"),
                                                    list):
        raise ConfigError(
            "workload JSON wants an object with a 'nodes' list"
        )
    nodes: List[WorkloadNode] = []
    taken: set = set()
    for i, item in enumerate(data["nodes"]):
        if not isinstance(item, dict):
            raise ConfigError(f"workload node #{i} is not an object")
        unknown = sorted(set(item) - set(_JSON_NODE_KEYS))
        if unknown:
            raise ConfigError(
                f"workload node #{i} has unknown key(s) {unknown}; "
                f"allowed: {list(_JSON_NODE_KEYS)}"
            )
        if "dataset" not in item:
            raise ConfigError(f"workload node #{i} is missing 'dataset'")
        dataset = str(item["dataset"]).lower()
        arch = str(item.get("arch", "gcn")).lower()
        layers = item.get("layers")
        if layers is not None:
            if (not isinstance(layers, (list, tuple))
                    or len(layers) != 2
                    or not all(isinstance(v, int) for v in layers)
                    or layers[0] < 0 or layers[1] < layers[0]):
                raise ConfigError(
                    f"workload node #{i}: 'layers' wants [start, stop] "
                    f"with 0 <= start <= stop, got {layers!r}"
                )
            layers = (layers[0], layers[1])
        share = item.get("share")
        if share is not None:
            share = float(share)
            if share <= 0:
                raise ConfigError(
                    f"workload node #{i}: share must be positive"
                )
        base = str(item.get("name") or f"{dataset}/{arch}")
        name, k = base, 2
        while name in taken:
            name, k = f"{base}#{k}", k + 1
        taken.add(name)
        nodes.append(WorkloadNode(
            name=name,
            dataset=dataset,
            arch=arch,
            layers=layers,
            share=share,
            kernel_backend=item.get("kernel_backend"),
            after=tuple(item.get("after", ())),
        ))
    _validate_node_names(nodes)
    return WorkloadGraph(
        name=str(data.get("name") or "workload"), nodes=tuple(nodes)
    )


def slice_workload(workload: GCNWorkload,
                   node: WorkloadNode) -> GCNWorkload:
    """The node's layer-range view of a full-model workload."""
    if node.layers is None:
        return workload
    start, stop = node.layers
    if stop >= len(workload.layers):
        raise ConfigError(
            f"workload node {node.name!r}: layer range ({start}, {stop}) "
            f"is out of range for {workload.name!r} "
            f"({len(workload.layers)} layers)"
        )
    import dataclasses

    return dataclasses.replace(
        workload,
        name=f"{workload.name}[{start}-{stop}]",
        layers=workload.layers[start:stop + 1],
    )


# ----------------------------------------------------------------------
# the staged evaluator
# ----------------------------------------------------------------------
@dataclass
class PipelineSettings:
    """Knobs the staged evaluator runs under (platform variant, stages)."""

    bits: int = 32
    hw_scale: float = 1.0
    tech_node: int = DEFAULT_TECH_NODE_NM
    stages: Tuple[str, ...] = ("extract", "map", "cost")
    #: GCoD pipeline stage the default extraction reads
    #: (``partitioned``/``tuned``/``final``).
    gcod_stage: str = "final"
    #: override the extraction source: ``(node, context) -> GCNWorkload``
    #: returning the *full-model* workload (the extract stage applies the
    #: node's layer range). The sweep engine injects its own store-backed
    #: extraction here.
    extract_fn: Optional[Callable[[WorkloadNode, Any], GCNWorkload]] = None


@dataclass
class NodeEvaluation:
    """Mutable per-node state threaded through the stage chain."""

    node: WorkloadNode
    #: the slice of the shared PE array allocated to this node.
    pes: PEArray
    workload: Optional[GCNWorkload] = None
    platform: Optional[Any] = None
    report: Optional[AcceleratorReport] = None


class Stage(ABC):
    """One pluggable step of the per-node evaluation chain."""

    name: str = "stage"

    @abstractmethod
    def run(self, state: NodeEvaluation, settings: PipelineSettings,
            context) -> None:
        """Advance ``state`` (fill in workload/platform/report fields)."""

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name}>"


class ExtractStage(Stage):
    """Extract the node's (GCoD-trained, paper-scale) workload."""

    name = "extract"

    def run(self, state, settings, context) -> None:
        node = state.node
        if settings.extract_fn is not None:
            full = settings.extract_fn(node, context)
        else:
            ctx = context
            if node.kernel_backend is not None:
                # Shares the memo dicts deliberately (keys include the
                # backend), exactly like the serve path's resolution.
                ctx = replace(context, kernel_backend=node.kernel_backend)
            full = ctx.gcod_workload(
                node.dataset, node.arch, stage=settings.gcod_stage
            )
        state.workload = slice_workload(full, node)


class MapStage(Stage):
    """Map the node onto its PE slice: build the platform model."""

    name = "map"

    def run(self, state, settings, context) -> None:
        from repro.hardware.accelerators.gcod import GCoDAccelerator

        state.platform = GCoDAccelerator(
            bits=settings.bits,
            num_pes=state.pes.num_pes,
            tech_node=settings.tech_node,
        )


class CostStage(Stage):
    """Cost the mapped workload: run the analytic model."""

    name = "cost"

    def run(self, state, settings, context) -> None:
        if state.workload is None or state.platform is None:
            raise ConfigError(
                f"stage 'cost' needs 'extract' and 'map' to have run "
                f"first (stage chain: {settings.stages!r})"
            )
        state.report = state.platform.run(state.workload)


#: The stage registry: name -> instance (mirrors the kernel-backend
#: registry; `repro lint`'s registry-sync rule checks every concrete
#: stage class here is registered).
_STAGES: Dict[str, Stage] = {}


def register_stage(stage: Stage) -> Stage:
    """Register a stage instance under its ``name``; returns it."""
    if stage.name in _STAGES:
        raise ValueError(
            f"stage {stage.name!r} is already registered "
            f"(by {type(_STAGES[stage.name]).__name__})"
        )
    _STAGES[stage.name] = stage
    return stage


def get_stage(name: str) -> Stage:
    """Look up a registered stage; unknown names raise with a suggestion."""
    if name in _STAGES:
        return _STAGES[name]
    close = did_you_mean(name, _STAGES)
    suggestion = f" (did you mean {close!r}?)" if close else ""
    raise ConfigError(
        f"unknown pipeline stage {name!r}{suggestion}; choose from "
        f"{', '.join(_STAGES)}"
    )


def stage_names() -> Tuple[str, ...]:
    """All registered stage names, in registration order."""
    return tuple(_STAGES)


register_stage(ExtractStage())
register_stage(MapStage())
register_stage(CostStage())

#: The canonical chain (and PipelineSettings' default).
DEFAULT_STAGES: Tuple[str, ...] = ("extract", "map", "cost")


# ----------------------------------------------------------------------
# evaluation + merge
# ----------------------------------------------------------------------
@dataclass
class WorkloadGraphReport:
    """A multi-model report: per-node costs + contention-merged totals."""

    workload: str
    platform: str
    combination: PhaseStats
    aggregation: PhaseStats
    #: sum over levels of the max node latency within each level (the
    #: time-sliced shared accelerator).
    latency_s: float
    node_reports: Tuple[Tuple[str, AcceleratorReport], ...]
    #: PEs of the shared array each node was allocated.
    node_pes: Tuple[Tuple[str, int], ...]
    notes: Dict[str, float] = field(default_factory=dict)

    @property
    def energy(self):
        """Total energy over all nodes."""
        return self.combination.energy + self.aggregation.energy

    @property
    def offchip_bytes(self) -> float:
        """Total off-chip (DRAM) traffic over all nodes."""
        return (self.combination.offchip_bytes
                + self.aggregation.offchip_bytes)

    def merged(self) -> AcceleratorReport:
        """The whole DAG as one :class:`AcceleratorReport`."""
        return AcceleratorReport(
            platform=self.platform,
            workload=self.workload,
            combination=self.combination,
            aggregation=self.aggregation,
            latency_s=self.latency_s,
            notes=dict(self.notes),
        )

    def to_jsonable(self) -> Dict[str, Any]:
        """A plain-Python dict round-trippable through JSON."""
        import dataclasses

        from repro.runtime.keys import jsonable

        return {
            "workload": self.workload,
            "platform": self.platform,
            "latency_s": self.latency_s,
            "energy_j": self.energy.total_j,
            "offchip_bytes": self.offchip_bytes,
            "combination": jsonable(dataclasses.asdict(self.combination)),
            "aggregation": jsonable(dataclasses.asdict(self.aggregation)),
            "nodes": {
                name: jsonable(dataclasses.asdict(report))
                for name, report in self.node_reports
            },
            "node_pes": dict(self.node_pes),
            "notes": dict(self.notes),
        }


def full_pe_array(settings: PipelineSettings) -> PEArray:
    """The shared array the DAG's levels slice (Tab. V x ``hw_scale``)."""
    from repro.hardware.accelerators.gcod import DEFAULT_PES

    if settings.bits not in DEFAULT_PES:
        raise ConfigError(
            f"workload evaluation supports bits in "
            f"{sorted(DEFAULT_PES)}, got {settings.bits!r}"
        )
    num = DEFAULT_PES[settings.bits]
    if settings.hw_scale != 1.0:
        num = max(1, int(round(num * settings.hw_scale)))
    return PEArray(num, GCOD_CLOCK_HZ)


def evaluate_workload(
    graph: WorkloadGraph,
    context,
    settings: Optional[PipelineSettings] = None,
) -> WorkloadGraphReport:
    """Run every node through the stage chain and merge the reports.

    Nodes of one topological level run concurrently on slices of the
    shared PE array (``share`` fractions, normalized by
    :meth:`PEArray.allocate`); the level's latency is the slowest node's.
    Sequential levels sum. Traffic and energy add across all nodes.
    """
    settings = settings or PipelineSettings()
    stages = [get_stage(name) for name in settings.stages]
    full = full_pe_array(settings)
    levels = graph.levels()

    comb = PhaseStats()
    agg = PhaseStats()
    latency = 0.0
    node_reports: List[Tuple[str, AcceleratorReport]] = []
    node_pes: List[Tuple[str, int]] = []
    notes: Dict[str, float] = {"levels": float(len(levels))}

    for level in levels:
        shares = [n.share if n.share is not None else 1.0 for n in level]
        slices = full.allocate(shares)
        level_latency = 0.0
        for node, pes in zip(level, slices):
            state = NodeEvaluation(node=node, pes=pes)
            for stage in stages:
                stage.run(state, settings, context)
            if state.report is None:
                raise ConfigError(
                    f"stage chain {settings.stages!r} produced no report "
                    f"for node {node.name!r} ('cost' must run last)"
                )
            node_reports.append((node.name, state.report))
            node_pes.append((node.name, pes.num_pes))
            notes[f"pes[{node.name}]"] = float(pes.num_pes)
            comb = comb + state.report.combination
            agg = agg + state.report.aggregation
            level_latency = max(level_latency, state.report.latency_s)
        latency += level_latency

    return WorkloadGraphReport(
        workload=graph.name,
        platform="gcod-8bit" if settings.bits == 8 else "gcod",
        combination=comb,
        aggregation=agg,
        latency_s=latency,
        node_reports=tuple(node_reports),
        node_pes=tuple(node_pes),
        notes=notes,
    )


__all__ = [
    "GCOD_CLOCK_HZ",
    "DEFAULT_STAGES",
    "CostStage",
    "ExtractStage",
    "MapStage",
    "NodeEvaluation",
    "PipelineSettings",
    "Stage",
    "WorkloadGraph",
    "WorkloadGraphReport",
    "WorkloadNode",
    "evaluate_workload",
    "full_pe_array",
    "get_stage",
    "parse_workload",
    "register_stage",
    "slice_workload",
    "stage_names",
    "workload_from_json",
]
