"""The sampling unit: an LFSR-based random picker (Sec. V-B).

"Sampling Units to schedule the node sampling. Specifically, we implement a
linear shift register to randomly pick from non-zero elements from the
adjacency matrices' columns." — this module implements that hardware block
in software: a Fibonacci LFSR produces the pseudo-random stream, and
``SamplingUnit`` uses it to subsample adjacency columns for GraphSAGE-style
neighbourhood sampling.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np
import scipy.sparse as sp

# Maximal-length tap positions (XNOR/XOR Fibonacci form) per register width.
_TAPS = {
    8: (8, 6, 5, 4),
    16: (16, 15, 13, 4),
    24: (24, 23, 22, 17),
    32: (32, 30, 26, 25),
}


class LFSR:
    """A Fibonacci linear-feedback shift register.

    A maximal-length ``width``-bit LFSR cycles through ``2**width - 1``
    distinct non-zero states — cheap, deterministic pseudo-randomness, which
    is exactly what a hardware sampling unit wants.
    """

    def __init__(self, width: int = 16, seed: int = 0xACE1):
        if width not in _TAPS:
            raise ValueError(f"unsupported LFSR width {width}; use {sorted(_TAPS)}")
        self.width = width
        self.mask = (1 << width) - 1
        self.state = seed & self.mask
        if self.state == 0:
            self.state = 1  # the all-zeros state is a fixed point; avoid it
        self.taps = _TAPS[width]

    def step(self) -> int:
        """Advance one cycle; return the new state."""
        feedback = 0
        for tap in self.taps:
            feedback ^= (self.state >> (tap - 1)) & 1
        self.state = ((self.state << 1) | feedback) & self.mask
        if self.state == 0:  # pragma: no cover - unreachable for max-length taps
            self.state = 1
        return self.state

    def next_below(self, bound: int) -> int:
        """A pseudo-random integer in ``[0, bound)`` via rejection sampling."""
        if bound <= 0:
            raise ValueError("bound must be positive")
        # Use the top bits; reject values >= bound to stay unbiased.
        while True:
            value = self.step() % (1 << max(bound - 1, 1).bit_length())
            if value < bound:
                return value


class SamplingUnit:
    """Hardware-style neighbour sampler over adjacency columns.

    For each column, picks ``max_samples`` non-zeros without replacement
    using an in-place partial Fisher-Yates shuffle driven by the LFSR — the
    streaming-friendly formulation of uniform sampling.
    """

    def __init__(self, width: int = 16, seed: int = 0xACE1):
        self.lfsr = LFSR(width=width, seed=seed)

    def sample_column(self, indices: np.ndarray, max_samples: int) -> np.ndarray:
        """Pick up to ``max_samples`` entries of ``indices`` uniformly."""
        n = indices.shape[0]
        if n <= max_samples:
            return indices.copy()
        pool = indices.copy()
        for i in range(max_samples):
            j = i + self.lfsr.next_below(n - i)
            pool[i], pool[j] = pool[j], pool[i]
        return pool[:max_samples]

    def sample_adjacency(
        self, adj: sp.spmatrix, max_samples: int
    ) -> sp.csr_matrix:
        """Subsample every column of ``adj`` to ``max_samples`` non-zeros."""
        csc = sp.csc_matrix(adj)
        rows: List[np.ndarray] = []
        cols: List[np.ndarray] = []
        for j in range(csc.shape[1]):
            lo, hi = csc.indptr[j], csc.indptr[j + 1]
            picked = self.sample_column(csc.indices[lo:hi], max_samples)
            rows.append(picked)
            cols.append(np.full(picked.shape[0], j, dtype=np.int64))
        row = np.concatenate(rows) if rows else np.zeros(0, dtype=np.int64)
        col = np.concatenate(cols) if cols else np.zeros(0, dtype=np.int64)
        return sp.csr_matrix(
            (np.ones(row.shape[0]), (row, col)), shape=csc.shape
        )
