"""A discrete-event, cycle-approximate simulator for the GCoD aggregation phase.

The analytic model (:mod:`repro.hardware.accelerators.gcod`) costs an
inference in closed form; this simulator *schedules* it: every chunk is an
agent consuming work tiles, the HBM is a shared channel serving DMA
requests, and a simple event queue advances time. It exists to validate the
analytic model's two central assumptions on real workloads:

1. the chunk array finishes nearly together when fed GCoD-balanced
   subgraphs (static balance replaces AWB-GCN's runtime autotuning);
2. aggregation latency is the max of the two branches, plus a small
   synchronization tail.

Tests assert the event-driven cycle count stays within a factor of the
analytic estimate and that balanced layouts finish closer together than
degree-sorted ones.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

import numpy as np

from repro.hardware.workload import GCNWorkload

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sparse.kernels import TileProfile


@dataclass(order=True)
class _Event:
    time: float
    seq: int
    kind: str = field(compare=False)
    payload: dict = field(compare=False, default_factory=dict)


@dataclass
class WorkTile:
    """One unit of aggregation work: a subgraph block or a CSC column run."""

    owner: str  # chunk name
    macs: int
    dma_bytes: int


@dataclass
class EventSimReport:
    """Outcome of one simulated aggregation phase."""

    cycles: float
    chunk_finish_cycles: Dict[str, float]
    dma_busy_cycles: float
    events_processed: int

    @property
    def dma_utilization(self) -> float:
        """Fraction of the simulated span the shared DMA channel was busy.

        The per-tile bandwidth-accounting summary the sweep engine records
        per design point: near 1.0 means the HBM channel, not the PE
        array, bounds the aggregation.
        """
        if self.cycles <= 0:
            return 0.0
        return min(self.dma_busy_cycles / self.cycles, 1.0)

    @property
    def finish_skew(self) -> float:
        """max/mean finish time across denser chunks (1.0 = perfect)."""
        denser = [
            t for name, t in self.chunk_finish_cycles.items()
            if name.startswith("chunk")
        ]
        if not denser or max(denser) == 0:
            return 1.0
        return max(denser) / (sum(denser) / len(denser))


class EventDrivenAggregator:
    """Simulates the aggregation phase tile-by-tile over an event queue.

    Each chunk alternates DMA (fetch the tile's adjacency bytes over the
    shared channel, FCFS) and compute (tile MACs at the chunk's PE rate).
    DMA overlaps compute via double buffering: a chunk prefetches its next
    tile while computing the current one.
    """

    def __init__(
        self,
        pe_rate_per_chunk: Dict[str, float],  # MACs per cycle
        dma_bytes_per_cycle: float,
        sync_cycles: float = 64.0,
    ):
        self.pe_rate = pe_rate_per_chunk
        self.dma_rate = dma_bytes_per_cycle
        self.sync_cycles = sync_cycles

    def run(self, tiles: List[WorkTile]) -> EventSimReport:
        """Simulate the given tiles to completion."""
        queues: Dict[str, List[WorkTile]] = {name: [] for name in self.pe_rate}
        for tile in tiles:
            if tile.owner not in queues:
                raise KeyError(f"tile owner {tile.owner!r} has no PE rate")
            queues[tile.owner].append(tile)

        events: List[_Event] = []
        seq = 0

        def push(time: float, kind: str, **payload):
            nonlocal seq
            heapq.heappush(events, _Event(time, seq, kind, payload))
            seq += 1

        dma_free_at = 0.0
        compute_free_at = {name: 0.0 for name in self.pe_rate}
        finished_at = {name: 0.0 for name in self.pe_rate}
        dma_busy = 0.0
        processed = 0

        # Seed: every chunk requests its first tile at t=0.
        for name, queue in queues.items():
            if queue:
                push(0.0, "dma-request", chunk=name, index=0)

        while events:
            event = heapq.heappop(events)
            processed += 1
            chunk = event.payload["chunk"]
            index = event.payload["index"]
            queue = queues[chunk]
            if event.kind == "dma-request":
                tile = queue[index]
                start = max(event.time, dma_free_at)
                duration = tile.dma_bytes / max(self.dma_rate, 1e-12)
                dma_free_at = start + duration
                dma_busy += duration
                push(dma_free_at, "tile-ready", chunk=chunk, index=index)
                # Double buffering: request the next tile immediately.
                if index + 1 < len(queue):
                    push(dma_free_at, "dma-request", chunk=chunk, index=index + 1)
            elif event.kind == "tile-ready":
                tile = queue[index]
                start = max(event.time, compute_free_at[chunk])
                duration = tile.macs / max(self.pe_rate[chunk], 1e-12)
                compute_free_at[chunk] = start + duration
                push(compute_free_at[chunk], "tile-done", chunk=chunk, index=index)
            elif event.kind == "tile-done":
                finished_at[chunk] = event.time
            else:  # pragma: no cover - defensive
                raise ValueError(f"unknown event kind {event.kind!r}")

        total = max(finished_at.values(), default=0.0) + self.sync_cycles
        return EventSimReport(
            cycles=total,
            chunk_finish_cycles=finished_at,
            dma_busy_cycles=dma_busy,
            events_processed=processed,
        )


def _even_shares(total: int, parts: int) -> List[int]:
    """Split ``total`` into ``parts`` near-equal integers summing exactly.

    Plain ``total // parts`` per part silently drops up to ``parts - 1``
    units; distributing the remainder keeps tile totals equal to the
    workload's nnz, so MAC and DMA accounting never undercounts.
    """
    base, remainder = divmod(int(total), parts)
    return [base + 1 if i < remainder else base for i in range(parts)]


def tiles_from_profile(
    profile: "TileProfile",
    agg_dim: int,
) -> List[WorkTile]:
    """Work tiles from a measured :class:`~repro.sparse.kernels.TileProfile`.

    The tiled kernel backend records exactly which diagonal block / column
    run carried how many non-zeros and how many DMA bytes it streamed; the
    byte costs are taken verbatim from the profile while MACs are
    recomputed at ``agg_dim`` (the profile may have been taken at a
    different feature width). Zero-work tiles are dropped — they exist in
    the profile for accounting, not scheduling.
    """
    return [
        WorkTile(
            owner=tile.owner,
            macs=tile.nnz * agg_dim,
            dma_bytes=tile.dma_bytes,
        )
        for tile in profile.tiles
        if tile.nnz
    ]


def tiles_from_workload(
    workload: GCNWorkload,
    agg_dim: int,
    subgraph_workloads: Optional[np.ndarray] = None,
    subgraph_classes: Optional[List[int]] = None,
    bytes_per_nnz: int = 8,
) -> List[WorkTile]:
    """Build aggregation work tiles from a workload's adjacency profile.

    One tile per subgraph block (owner = its class's chunk) plus one tile
    per ~1024 sparser-branch columns (owner = the sparser sub-accelerator).
    When per-subgraph workloads are not supplied, class totals are split
    near-evenly (the balanced case GCoD's Step 1 engineers), with division
    remainders distributed so the tile totals exactly cover every nnz.
    """
    adj = workload.adjacency
    tiles: List[WorkTile] = []
    if subgraph_workloads is not None and subgraph_classes is not None:
        for nnz, cls in zip(subgraph_workloads, subgraph_classes):
            tiles.append(
                WorkTile(
                    owner=f"chunk{cls}",
                    macs=int(nnz) * agg_dim,
                    dma_bytes=int(nnz) * bytes_per_nnz,
                )
            )
    else:
        per_class = max(adj.num_subgraphs // max(adj.num_classes, 1), 1)
        for cls, class_nnz in enumerate(adj.dense_nnz_per_class):
            for share in _even_shares(class_nnz, per_class):
                tiles.append(
                    WorkTile(
                        owner=f"chunk{cls}",
                        macs=share * agg_dim,
                        dma_bytes=share * bytes_per_nnz,
                    )
                )
    # Sparser branch: column runs of ~1024 columns each.
    n_tiles = max(adj.num_nodes // 1024, 1)
    for share in _even_shares(adj.sparse_nnz, n_tiles):
        tiles.append(
            WorkTile(
                owner="sparse",
                macs=share * agg_dim,
                dma_bytes=share * (bytes_per_nnz - 2),  # CSC
            )
        )
    return tiles


def simulate_aggregation(
    workload: GCNWorkload,
    agg_dim: int,
    total_pes: int = 4096,
    clock_hz: float = 330e6,
    bandwidth_gbps: float = 460.0,
    layout_tiles: Optional[Tuple[np.ndarray, List[int]]] = None,
    tile_profile: Optional["TileProfile"] = None,
) -> EventSimReport:
    """End-to-end: allocate PEs per chunk, tile the workload, simulate.

    PE shares follow the analytic model's complexity-proportional rule so
    the two models are directly comparable. ``tile_profile`` (a measured
    :class:`~repro.sparse.kernels.TileProfile` from the tiled kernel
    backend) takes precedence over ``layout_tiles`` and over the near-even
    split: the simulator then schedules the exact blocks/column runs the
    kernel executed.
    """
    adj = workload.adjacency
    total_nnz = max(adj.nnz, 1)
    pe_rate: Dict[str, float] = {}
    for cls, class_nnz in enumerate(adj.dense_nnz_per_class):
        pe_rate[f"chunk{cls}"] = max(
            total_pes * (class_nnz / total_nnz), 1.0
        )
    pe_rate["sparse"] = max(total_pes * (adj.sparse_nnz / total_nnz), 1.0)
    dma_bytes_per_cycle = bandwidth_gbps * 1e9 / clock_hz

    if tile_profile is not None:
        tiles = tiles_from_profile(tile_profile, agg_dim)
    elif layout_tiles is not None:
        tiles = tiles_from_workload(
            workload, agg_dim,
            subgraph_workloads=layout_tiles[0],
            subgraph_classes=layout_tiles[1],
        )
    else:
        tiles = tiles_from_workload(workload, agg_dim)
    sim = EventDrivenAggregator(pe_rate, dma_bytes_per_cycle)
    return sim.run(tiles)
