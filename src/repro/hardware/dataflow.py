"""Inter-phase pipelines: efficiency-aware vs resource-aware (Fig. 7, Tab. II).

Both pipelines feed combination results straight into distributed
aggregation; they differ in the order partial results are produced and
therefore in what must stay on-chip:

* **efficiency-aware** — combination emits completed *rows* of ``XW``
  (row-wise product); aggregation consumes them immediately but must keep a
  full ``N x F`` accumulation buffer live. Best data reuse; needs a big
  output buffer. For small/medium graphs.
* **resource-aware** — combination emits *columns* of ``XW``; aggregation
  accumulates one output column at a time, so only ``N x 1`` accumulators
  are live. The price is that the (on-chip) adjacency is re-walked once per
  feature column, and for graphs whose adjacency cannot stay resident the
  re-walks spill off-chip. For billion-edge graphs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List


@dataclass(frozen=True)
class PipelineChoice:
    """The pipeline selected for one layer's aggregation."""

    name: str  # "efficiency-aware" | "resource-aware"
    output_buffer_bytes: int  # accumulator footprint while aggregating
    adjacency_rewalks: int  # how many times the adjacency is traversed


def select_pipeline(
    num_nodes: int,
    agg_dim: int,
    bytes_per_value: int,
    output_buffer_capacity: int,
) -> PipelineChoice:
    """Pick the pipeline for one layer (Sec. V-B).

    Efficiency-aware is chosen whenever the full aggregation output fits in
    the output buffer; otherwise resource-aware processes the features in
    column tiles sized to the buffer.
    """
    out_bytes = num_nodes * agg_dim * bytes_per_value
    if out_bytes <= output_buffer_capacity:
        return PipelineChoice("efficiency-aware", out_bytes, 1)
    cols_per_pass = max(1, output_buffer_capacity // max(num_nodes * bytes_per_value, 1))
    rewalks = -(-agg_dim // cols_per_pass)
    # When even a single output column exceeds the buffer, the column itself
    # is row-tiled; the live accumulator never exceeds the capacity.
    live_bytes = min(
        num_nodes * cols_per_pass * bytes_per_value, output_buffer_capacity
    )
    return PipelineChoice("resource-aware", live_bytes, rewalks)


def pipeline_characteristics() -> List[dict]:
    """Tab. II, as data: the qualitative comparison of the two pipelines."""
    return [
        {
            "pipeline": "efficiency-aware",
            "comb_spmm": "row-wise product",
            "agg_spmm": "column-wise product",
            "onchip_storage": "high",
            "offchip_access": "low",
            "data_reuse": "X, XW, A",
            "fit_for_graphs": "medium",
        },
        {
            "pipeline": "resource-aware",
            "comb_spmm": "column-wise product",
            "agg_spmm": "column-wise product",
            "onchip_storage": "low",
            "offchip_access": "low",
            "data_reuse": "X, XW, X'",
            "fit_for_graphs": "large",
        },
    ]
