"""Processing-element array model."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError


@dataclass(frozen=True)
class PEArray:
    """A MAC array: ``num_pes`` units at ``clock_hz``, one MAC/PE/cycle."""

    num_pes: int
    clock_hz: float

    def __post_init__(self):
        if self.num_pes <= 0 or self.clock_hz <= 0:
            raise ConfigError("PE count and clock must be positive")

    @property
    def peak_macs_per_second(self) -> float:
        """Peak throughput at utilization 1.0."""
        return self.num_pes * self.clock_hz

    def compute_seconds(self, macs: float, utilization: float = 1.0) -> float:
        """Time to execute ``macs`` multiply-accumulates at ``utilization``."""
        if not 0.0 < utilization <= 1.0:
            raise ConfigError("utilization must be in (0, 1]")
        return macs / (self.peak_macs_per_second * utilization)

    def split(self, fraction: float) -> "PEArray":
        """A sub-array holding ``fraction`` of the PEs (chunk allocation)."""
        count = max(1, int(round(self.num_pes * fraction)))
        return PEArray(min(count, self.num_pes), self.clock_hz)
