"""Processing-element array model."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.errors import ConfigError


@dataclass(frozen=True)
class PEArray:
    """A MAC array: ``num_pes`` units at ``clock_hz``, one MAC/PE/cycle."""

    num_pes: int
    clock_hz: float

    def __post_init__(self):
        if self.num_pes <= 0 or self.clock_hz <= 0:
            raise ConfigError("PE count and clock must be positive")

    @property
    def peak_macs_per_second(self) -> float:
        """Peak throughput at utilization 1.0."""
        return self.num_pes * self.clock_hz

    def compute_seconds(self, macs: float, utilization: float = 1.0) -> float:
        """Time to execute ``macs`` multiply-accumulates at ``utilization``."""
        if not 0.0 < utilization <= 1.0:
            raise ConfigError("utilization must be in (0, 1]")
        return macs / (self.peak_macs_per_second * utilization)

    def split(self, fraction: float) -> "PEArray":
        """A sub-array holding ``fraction`` of the PEs (chunk allocation)."""
        count = max(1, int(round(self.num_pes * fraction)))
        return PEArray(min(count, self.num_pes), self.clock_hz)

    def allocate(self, fractions: Sequence[float]) -> List["PEArray"]:
        """Sub-arrays proportional to ``fractions``, never over-allocating.

        Unlike independent :meth:`split` calls (whose clamped counts can sum
        past the physical array), this normalizes fractions that sum above
        1, floors the proportional shares, hands leftover PEs to the largest
        remainders, and guarantees ``sum(counts) <= num_pes``. Every
        sub-array gets at least one PE (a zero-fraction branch idles on it),
        so more sub-arrays than PEs is unsatisfiable and raises.
        """
        shares = np.maximum(np.asarray(fractions, dtype=np.float64), 0.0)
        if shares.size > self.num_pes:
            raise ConfigError(
                f"cannot allocate {shares.size} sub-arrays from "
                f"{self.num_pes} PEs (minimum one PE each)"
            )
        total = shares.sum()
        if total > 1.0:
            shares = shares / total
        raw = shares * self.num_pes
        counts = np.maximum(np.floor(raw).astype(np.int64), 1)
        leftover = self.num_pes - counts.sum()
        if leftover > 0 and total >= 1.0:
            order = np.argsort(-(raw - np.floor(raw)))
            for i in range(int(leftover)):
                counts[order[i % len(counts)]] += 1
        while counts.sum() > self.num_pes and counts.max() > 1:
            counts[int(np.argmax(counts))] -= 1
        return [PEArray(int(c), self.clock_hz) for c in counts]
