"""Memory-system components: on-chip buffers and off-chip channels."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigError
from repro.hardware import units


@dataclass
class Buffer:
    """An on-chip SRAM buffer with explicit byte accounting.

    The accelerator's dedicated buffers (FBuf/WBuf/IdxBuf/OBuf in Fig. 6)
    are instances of this class; read/write counters feed the energy model.
    """

    name: str
    capacity_bytes: int
    bytes_read: int = 0
    bytes_written: int = 0

    def __post_init__(self):
        if self.capacity_bytes < 0:
            raise ConfigError("buffer capacity must be non-negative")

    def fits(self, nbytes: int) -> bool:
        """True if a working set of ``nbytes`` fits entirely."""
        return nbytes <= self.capacity_bytes

    def reload_factor(self, working_set_bytes: int) -> int:
        """How many passes are needed to stream a working set through.

        1 means the data fits (single load, full reuse); k means the
        consumer re-streams it k times because only 1/k fits at once.
        """
        if working_set_bytes <= 0:
            return 1
        if self.capacity_bytes <= 0:
            return working_set_bytes  # degenerate: every byte is a miss
        return max(1, -(-working_set_bytes // self.capacity_bytes))

    def read(self, nbytes: int) -> None:
        """Record ``nbytes`` read from this buffer."""
        self.bytes_read += int(nbytes)

    def write(self, nbytes: int) -> None:
        """Record ``nbytes`` written into this buffer."""
        self.bytes_written += int(nbytes)

    @property
    def total_traffic(self) -> int:
        """Total bytes moved through this buffer."""
        return self.bytes_read + self.bytes_written


@dataclass
class OffChipMemory:
    """An off-chip channel (HBM/DDR/GDDR) with bandwidth and energy cost."""

    kind: str  # "hbm", "ddr", or "gddr"
    bandwidth_gbps: float  # GB/s
    bytes_read: int = 0
    bytes_written: int = 0

    _PJ = {
        "hbm": units.HBM_PJ_PER_BYTE,
        "ddr": units.DDR_PJ_PER_BYTE,
        "gddr": units.GDDR_PJ_PER_BYTE,
    }

    def __post_init__(self):
        if self.kind not in self._PJ:
            raise ConfigError(f"unknown memory kind {self.kind!r}")
        if self.bandwidth_gbps <= 0:
            raise ConfigError("bandwidth must be positive")

    def read(self, nbytes: int) -> None:
        """Record ``nbytes`` read from off-chip memory."""
        self.bytes_read += int(nbytes)

    def write(self, nbytes: int) -> None:
        """Record ``nbytes`` written to off-chip memory."""
        self.bytes_written += int(nbytes)

    @property
    def total_bytes(self) -> int:
        """Total off-chip traffic so far."""
        return self.bytes_read + self.bytes_written

    def transfer_seconds(self, nbytes: int) -> float:
        """Time to move ``nbytes`` at full bandwidth."""
        return nbytes / (self.bandwidth_gbps * 1e9)

    def energy_pj(self, nbytes: int) -> float:
        """Energy to move ``nbytes``."""
        return nbytes * self._PJ[self.kind]
