"""Workload extraction: from (graph, layout, model) to hardware quantities.

The accelerator models never see a ``Graph`` directly; they consume a
:class:`GCNWorkload`, which captures exactly the structural facts the paper's
evaluation depends on:

* per-layer dimensions and input-feature density (accelerators exploit
  sparse features; CPU/GPU frameworks run dense GEMMs);
* the adjacency's non-zero counts, *split* into dense diagonal-block
  workload per class and the off-diagonal sparser remainder (GCoD's two
  branches), with the measured subgraph balance;
* storage footprints in COO/CSC (on-chip feasibility of the sparser branch)
  and the fraction of fully-empty columns (structural-sparsity skips).

``paper_scale=True`` rescales node/edge/feature counts to the full Tab. III
sizes while keeping the *measured structure* (balance, dense fraction,
density ratios), so headline tables can be produced at paper scale from
laptop-size training runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import List, Optional

import numpy as np
import scipy.sparse as sp

from repro.errors import invalid_value_error
from repro.graphs.graph import Graph
from repro.partition.layout import BlockLayout
from repro.sparse import from_scipy


@dataclass(frozen=True)
class LayerSpec:
    """One combination(+aggregation) stage of a model."""

    f_in: int
    f_out: int
    x_density: float = 1.0  # density of this layer's input features
    aggregate: bool = True  # is an aggregation phase attached?
    agg_dim: int = 0  # feature width during aggregation (0 = f_out)
    comb_multiplier: float = 1.0  # e.g. GraphSAGE's two transforms
    edge_macs_per_nnz: float = 0.0  # GAT attention score compute

    @property
    def aggregation_dim(self) -> int:
        """Feature width the aggregation runs at."""
        return self.agg_dim or self.f_out


@dataclass(frozen=True)
class AdjacencyProfile:
    """Structural facts about the (possibly GCoD-trained) adjacency."""

    num_nodes: int
    nnz: int
    dense_nnz_per_class: tuple
    sparse_nnz: int
    class_balance: float  # mean/max subgraph workload within classes
    num_subgraphs: int
    max_subgraph_nodes: int
    skipped_col_fraction: float
    coo_bytes: int
    csc_bytes: int  # CSC footprint of the *sparser* part only
    num_classes: int

    @property
    def dense_nnz(self) -> int:
        """Total nnz inside diagonal subgraph blocks."""
        return int(sum(self.dense_nnz_per_class))

    @property
    def dense_fraction(self) -> float:
        """Share of nnz handled by the denser branch."""
        return self.dense_nnz / max(self.nnz, 1)


@dataclass(frozen=True)
class GCNWorkload:
    """Everything an accelerator model needs to cost one inference."""

    name: str
    dataset: str
    arch: str
    layers: tuple
    adjacency: AdjacencyProfile
    num_nodes: int

    def comb_macs(self, layer: LayerSpec, sparse_aware: bool) -> float:
        """Combination MACs: ``nnz(X) * f_out`` if the platform exploits
        feature sparsity, else the dense ``N * f_in * f_out``."""
        density = layer.x_density if sparse_aware else 1.0
        return (
            self.num_nodes * layer.f_in * density * layer.f_out
            * layer.comb_multiplier
        )

    def agg_macs(self, layer: LayerSpec) -> float:
        """Aggregation MACs: one MAC per nnz per feature."""
        if not layer.aggregate:
            return 0.0
        edge_extra = self.adjacency.nnz * layer.edge_macs_per_nnz
        return self.adjacency.nnz * layer.aggregation_dim + edge_extra

    def total_macs(self, sparse_aware: bool = True) -> float:
        """All MACs of one inference."""
        return sum(
            self.comb_macs(l, sparse_aware) + self.agg_macs(l) for l in self.layers
        )

    def feature_bytes(self, layer: LayerSpec, bytes_per_value: int = 4) -> int:
        """Bytes of this layer's input feature matrix (dense storage)."""
        return int(self.num_nodes * layer.f_in * bytes_per_value)

    def weight_bytes(self, layer: LayerSpec, bytes_per_value: int = 4) -> int:
        """Bytes of this layer's weights."""
        return int(layer.f_in * layer.f_out * layer.comb_multiplier * bytes_per_value)

    def output_bytes(self, layer: LayerSpec, bytes_per_value: int = 4) -> int:
        """Bytes of this layer's output feature matrix."""
        return int(self.num_nodes * layer.f_out * bytes_per_value)


def layer_specs(
    arch: str,
    f_in: int,
    hidden: int,
    num_classes: int,
    x_density: float,
    resgcn_layers: int = 28,
) -> List[LayerSpec]:
    """Per-layer specs for the Tab. IV model configurations."""
    arch = arch.lower()
    if arch == "gcn":
        return [
            LayerSpec(f_in, hidden, x_density=x_density),
            LayerSpec(hidden, num_classes),
        ]
    if arch == "gin":
        # Three GIN layers; each aggregates at its input width then applies
        # a 2-layer MLP (modelled as comb_multiplier=2 at the hidden width).
        return [
            LayerSpec(f_in, hidden, x_density=x_density, agg_dim=f_in,
                      comb_multiplier=2.0),
            LayerSpec(hidden, hidden, agg_dim=hidden, comb_multiplier=2.0),
            LayerSpec(hidden, num_classes, agg_dim=hidden, comb_multiplier=2.0),
        ]
    if arch == "gat":
        heads = 8
        return [
            LayerSpec(
                f_in,
                hidden * heads,
                x_density=x_density,
                edge_macs_per_nnz=heads * (2 * hidden + 5),
            ),
            LayerSpec(
                hidden * heads,
                num_classes,
                edge_macs_per_nnz=2 * num_classes + 5,
            ),
        ]
    if arch in ("sage", "graphsage"):
        # Mean aggregation commutes with the linear neighbour transform
        # (mean(X) W == mean(X W)), so the accelerator aggregates at the
        # narrow output width — unlike GIN, whose MLP blocks the reorder.
        return [
            LayerSpec(f_in, hidden, x_density=x_density, comb_multiplier=2.0),
            LayerSpec(hidden, num_classes, comb_multiplier=2.0),
        ]
    if arch == "resgcn":
        specs = [LayerSpec(f_in, 128, x_density=x_density, aggregate=False)]
        specs += [LayerSpec(128, 128) for _ in range(resgcn_layers)]
        specs.append(LayerSpec(128, num_classes, aggregate=False))
        return specs
    raise ValueError(f"unknown architecture {arch!r}")


def adjacency_profile(
    adj: sp.spmatrix, layout: Optional[BlockLayout] = None
) -> AdjacencyProfile:
    """Measure the structural facts of ``adj`` under ``layout``.

    Without a layout the whole matrix is one sparser workload (the view a
    baseline accelerator has of an untreated graph).
    """
    adj = sp.csr_matrix(adj)
    n = adj.shape[0]
    nnz = int(adj.nnz)

    if layout is None:
        # The full-matrix CSC (and its empty-column count) is only needed
        # on this branch: the layout branch recomputes both over the
        # sparser split, so building them unconditionally wasted O(nnz)
        # on the hot extraction path.
        csc = adj.tocsc()
        empty_cols = int((np.diff(csc.indptr) == 0).sum())
        coo_bytes = from_scipy(adj, "coo").storage_bytes()
        csc_bytes = from_scipy(adj, "csc").storage_bytes()
        return AdjacencyProfile(
            num_nodes=n,
            nnz=nnz,
            dense_nnz_per_class=(),
            sparse_nnz=nnz,
            class_balance=1.0,
            num_subgraphs=1,
            max_subgraph_nodes=n,
            skipped_col_fraction=empty_cols / max(n, 1),
            coo_bytes=coo_bytes,
            csc_bytes=csc_bytes,
            num_classes=1,
        )

    dense, sparse = layout.split(adj)
    per_class = tuple(int(v) for v in layout.class_block_workloads(adj))
    max_sub = max((s.size for s in layout.spans), default=n)
    sparse_csc = sp.csc_matrix(sparse)
    sparse_empty = int((np.diff(sparse_csc.indptr) == 0).sum())
    return AdjacencyProfile(
        num_nodes=n,
        nnz=nnz,
        dense_nnz_per_class=per_class,
        sparse_nnz=int(sparse.nnz),
        class_balance=layout.balance_within_classes(adj),
        num_subgraphs=layout.num_subgraphs,
        max_subgraph_nodes=int(max_sub),
        skipped_col_fraction=sparse_empty / max(n, 1),
        coo_bytes=from_scipy(dense, "coo").storage_bytes(),
        csc_bytes=from_scipy(sparse, "csc").storage_bytes(),
        num_classes=layout.num_classes,
    )


def extract_workload(
    graph: Graph,
    layout: Optional[BlockLayout] = None,
    arch: str = "gcn",
    hidden: Optional[int] = None,
    paper_scale: bool = False,
    resgcn_layers: int = 28,
) -> GCNWorkload:
    """Build the :class:`GCNWorkload` for ``graph`` under model ``arch``.

    ``layout`` defaults to ``graph.meta["layout"]`` when present (set by
    :func:`repro.partition.partition_graph`).
    """
    if layout is None:
        layout = graph.meta.get("layout")
    from repro.nn.models import hidden_dim_for

    if hidden is None:
        hidden = hidden_dim_for(graph.name)
    elif hidden <= 0:
        # `hidden or default` would silently swap 0 for the dataset
        # default; an explicit non-positive width is a config mistake.
        raise invalid_value_error(
            "hidden", hidden,
            "a positive hidden width, or None for the dataset default",
        )
    x_density = float(
        np.count_nonzero(graph.features) / max(graph.features.size, 1)
    )
    profile = adjacency_profile(graph.adj, layout)
    f_in = graph.num_features
    num_classes = max(graph.num_classes, 2)
    num_nodes = graph.num_nodes

    if paper_scale and "paper_stats" in graph.meta:
        stats = graph.meta["paper_stats"]
        node_scale = stats["nodes"] / max(num_nodes, 1)
        # Scale against the *originally generated* (unpruned) nnz so that
        # GCoD's edge pruning survives rescaling: a graph with 10% fewer
        # edges than its baseline keeps 10% fewer at paper scale too.
        base_nnz = graph.meta.get("generated_nnz", profile.nnz)
        nnz_scale = (2 * stats["edges"]) / max(base_nnz, 1)
        profile = _rescale_profile(profile, node_scale, nnz_scale)
        f_in = stats["features"]
        num_classes = stats["classes"]
        num_nodes = stats["nodes"]

    specs = layer_specs(
        arch, f_in, hidden, num_classes, x_density, resgcn_layers=resgcn_layers
    )
    return GCNWorkload(
        name=f"{graph.name}/{arch}",
        dataset=graph.name,
        arch=arch,
        layers=tuple(specs),
        adjacency=profile,
        num_nodes=num_nodes,
    )


def _rescale_profile(
    profile: AdjacencyProfile, node_scale: float, nnz_scale: float
) -> AdjacencyProfile:
    """Scale a measured profile up to paper-size node/edge counts.

    Structure-derived ratios (dense fraction, balance, skip fraction) are
    preserved; counts and byte footprints scale linearly.

    Per-class dense counts round independently, so their sum can exceed
    the (separately rounded) total ``nnz`` by up to half a count per
    class — which used to surface as ``dense_fraction > 1.0`` while
    ``sparse_nnz`` silently clamped to 0. The excess is shaved off the
    largest classes (deterministically, ties broken by index) so
    ``dense_nnz <= nnz`` and every fraction stays in [0, 1].
    """
    dense_per_class = [
        int(round(v * nnz_scale)) for v in profile.dense_nnz_per_class
    ]
    nnz = int(round(profile.nnz * nnz_scale))
    excess = sum(dense_per_class) - nnz
    while excess > 0 and dense_per_class:
        # Bounded by ~len(classes)/2 rounding error, so the loop is short.
        largest = max(range(len(dense_per_class)),
                      key=lambda i: (dense_per_class[i], -i))
        take = min(excess, dense_per_class[largest])
        dense_per_class[largest] -= take
        excess -= take
        if take == 0:  # every class is already at zero: nnz itself is 0
            break
    dense_per_class = tuple(dense_per_class)
    sparse_nnz = max(0, nnz - sum(dense_per_class))
    return replace(
        profile,
        num_nodes=int(round(profile.num_nodes * node_scale)),
        nnz=nnz,
        dense_nnz_per_class=dense_per_class,
        sparse_nnz=sparse_nnz,
        max_subgraph_nodes=int(round(profile.max_subgraph_nodes * node_scale)),
        coo_bytes=int(round(profile.coo_bytes * nnz_scale)),
        csc_bytes=int(round(profile.csc_bytes * nnz_scale)),
    )
