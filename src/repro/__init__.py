"""GCoD: GCN acceleration via dedicated algorithm and accelerator co-design.

A complete Python reproduction of You et al., HPCA 2022
(arXiv:2112.11594). The package splits the way the paper does:

* :mod:`repro.graphs` / :mod:`repro.nn` — the GCN training substrate
  (synthetic Tab. III datasets, a small autograd engine, the five Tab. IV
  models);
* :mod:`repro.partition` / :mod:`repro.algorithm` — the split-and-conquer
  training algorithm (Sec. IV): degree classes, METIS-like subgraphs,
  groups; ADMM sparsify + polarize; structural patch pruning; early-bird
  tickets;
* :mod:`repro.hardware` / :mod:`repro.compiler` — the two-pronged
  accelerator and baseline platform models (Sec. V) plus the Fig. 8
  software-hardware interface;
* :mod:`repro.compression` — the Tab. VII baselines;
* :mod:`repro.evaluation` — one module per paper table/figure.

Quickstart::

    from repro import load_dataset, run_gcod, extract_workload
    from repro.hardware import GCoDAccelerator, AWBGCN

    graph = load_dataset("cora")
    result = run_gcod(graph, "gcn")
    workload = extract_workload(result.final_graph, result.layout, "gcn")
    print(GCoDAccelerator().run(workload).latency_s)
"""

from repro.graphs import Graph, load_dataset
from repro.nn import build_model, train_model
from repro.partition import partition_graph
from repro.algorithm import GCoDConfig, GCoDResult, run_gcod
from repro.hardware import extract_workload
from repro.compiler import compile_accelerator

__version__ = "1.0.0"

__all__ = [
    "Graph",
    "load_dataset",
    "build_model",
    "train_model",
    "partition_graph",
    "GCoDConfig",
    "GCoDResult",
    "run_gcod",
    "extract_workload",
    "compile_accelerator",
    "__version__",
]
