"""Serialization: save/load graphs, layouts, and GCoD pipeline artifacts.

Everything is stored in a single ``.npz`` per object (numpy's portable
container) so trained graphs and layouts can be produced once and reused
across experiment runs, mirroring how the authors' released artifacts would
be consumed.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

import numpy as np
import scipy.sparse as sp

from repro.graphs.graph import Graph
from repro.partition.layout import BlockLayout, SubgraphSpan

PathLike = Union[str, Path]


def save_graph(graph: Graph, path: PathLike) -> None:
    """Serialize a :class:`Graph` (adjacency, features, labels, masks, meta)."""
    coo = graph.adj.tocoo()
    serializable_meta = {
        k: v for k, v in graph.meta.items()
        if isinstance(v, (int, float, str, bool))
    }
    np.savez_compressed(
        path,
        adj_row=coo.row,
        adj_col=coo.col,
        adj_data=coo.data,
        num_nodes=np.int64(graph.num_nodes),
        features=graph.features,
        labels=graph.labels,
        train_mask=graph.train_mask,
        val_mask=graph.val_mask,
        test_mask=graph.test_mask,
        name=np.bytes_(graph.name.encode()),
        meta_json=np.bytes_(json.dumps(serializable_meta).encode()),
    )


def load_graph(path: PathLike) -> Graph:
    """Load a graph saved by :func:`save_graph`."""
    with np.load(path, allow_pickle=False) as data:
        n = int(data["num_nodes"])
        adj = sp.csr_matrix(
            (data["adj_data"], (data["adj_row"], data["adj_col"])),
            shape=(n, n),
        )
        meta = json.loads(bytes(data["meta_json"]).decode())
        return Graph(
            adj=adj,
            features=data["features"],
            labels=data["labels"],
            train_mask=data["train_mask"],
            val_mask=data["val_mask"],
            test_mask=data["test_mask"],
            name=bytes(data["name"]).decode(),
            meta=meta,
        )


def save_layout(layout: BlockLayout, path: PathLike) -> None:
    """Serialize a :class:`BlockLayout`."""
    spans = np.array(
        [
            (s.subgraph_id, s.class_id, s.group_id, s.start, s.stop)
            for s in layout.spans
        ],
        dtype=np.int64,
    )
    np.savez_compressed(
        path,
        perm=layout.perm,
        node_class=layout.node_class,
        node_group=layout.node_group,
        node_subgraph=layout.node_subgraph,
        spans=spans,
        num_classes=np.int64(layout.num_classes),
        num_groups=np.int64(layout.num_groups),
    )


def load_layout(path: PathLike) -> BlockLayout:
    """Load a layout saved by :func:`save_layout`."""
    with np.load(path, allow_pickle=False) as data:
        spans = [
            SubgraphSpan(
                subgraph_id=int(row[0]),
                class_id=int(row[1]),
                group_id=int(row[2]),
                start=int(row[3]),
                stop=int(row[4]),
            )
            for row in data["spans"]
        ]
        return BlockLayout(
            perm=data["perm"],
            node_class=data["node_class"],
            node_group=data["node_group"],
            node_subgraph=data["node_subgraph"],
            spans=spans,
            num_classes=int(data["num_classes"]),
            num_groups=int(data["num_groups"]),
        )


def save_model_weights(named_weights: dict, path: PathLike) -> None:
    """Serialize a model ``state_dict`` (dotted names -> arrays)."""
    np.savez_compressed(path, **named_weights)


def load_model_weights(path: PathLike) -> dict:
    """Load weights saved by :func:`save_model_weights`."""
    with np.load(path, allow_pickle=False) as data:
        return {k: data[k].copy() for k in data.files}
