"""Area/power/tech-node budget models (:mod:`repro.hardware.budget`).

The budget layer feeds ``--constrain`` frontiers, so its guarantees are
about *comparability*: 16 nm is the calibration reference (models built
without a node are byte-identical to the pre-budget ones), smaller nodes
strictly shrink area and energy, and structural growth (more PEs, more
SRAM, wider precision) strictly grows area and power. Unknown nodes,
precisions, and memory kinds are usage errors, not KeyErrors.
"""

import pytest

from repro.errors import ConfigError
from repro.hardware.accelerators import GCoDAccelerator
from repro.hardware.budget import (
    DEFAULT_TECH_NODE_NM,
    TECH_NODES,
    AreaPowerModel,
    get_tech_node,
)
from repro.hardware.energy import EnergyBreakdown, EnergyModel


# ----------------------------------------------------------------------
# tech nodes
# ----------------------------------------------------------------------
def test_reference_node_is_identity():
    ref = get_tech_node(DEFAULT_TECH_NODE_NM)
    assert ref.nm == 16
    assert ref.area_scale == 1.0
    assert ref.energy_scale == 1.0


def test_nodes_order_by_density_and_energy():
    # scaling down the node shrinks both silicon and switching energy
    nodes = [TECH_NODES[nm] for nm in sorted(TECH_NODES)]
    for small, big in zip(nodes, nodes[1:]):
        assert small.area_scale < big.area_scale
        assert small.energy_scale < big.energy_scale


def test_unknown_tech_node_is_a_usage_error():
    with pytest.raises(ConfigError, match="unknown tech node 10"):
        get_tech_node(10)
    with pytest.raises(ConfigError, match=r"choose from 7, 16, 28"):
        get_tech_node(12)
    with pytest.raises(ConfigError):
        get_tech_node("seven")


# ----------------------------------------------------------------------
# the area/power model
# ----------------------------------------------------------------------
def test_estimate_breakdown_sums_consistently():
    est = AreaPowerModel().estimate(bits=32, num_pes=4096,
                                    onchip_bytes=8 * 2**20)
    assert est.area_mm2 > est.pe_area_mm2 + est.sram_area_mm2  # overhead
    assert est.tdp_w > est.pe_power_w + est.sram_power_w + est.dram_power_w
    assert est.pe_area_mm2 > 0 and est.sram_area_mm2 > 0
    assert est.pe_power_w > 0 and est.sram_power_w > 0
    assert est.dram_power_w > 0
    summary = est.to_summary_dict()
    assert set(summary) == {"area_mm2", "tdp_w"}


def test_more_pes_cost_more_area_and_power():
    model = AreaPowerModel()
    small = model.estimate(bits=32, num_pes=1024, onchip_bytes=2**20)
    big = model.estimate(bits=32, num_pes=8192, onchip_bytes=2**20)
    assert big.area_mm2 > small.area_mm2
    assert big.tdp_w > small.tdp_w


def test_quantization_shrinks_the_budget():
    model = AreaPowerModel()
    fp32 = model.estimate(bits=32, num_pes=4096, onchip_bytes=2**20)
    int8 = model.estimate(bits=8, num_pes=4096, onchip_bytes=2**20)
    assert int8.area_mm2 < fp32.area_mm2
    assert int8.tdp_w < fp32.tdp_w


def test_node_scaling_moves_logic_but_not_dram():
    args = dict(bits=32, num_pes=4096, onchip_bytes=4 * 2**20)
    n7 = AreaPowerModel(7).estimate(**args)
    n16 = AreaPowerModel(16).estimate(**args)
    n28 = AreaPowerModel(28).estimate(**args)
    assert n7.area_mm2 < n16.area_mm2 < n28.area_mm2
    assert n7.tdp_w < n16.tdp_w < n28.tdp_w
    # the HBM PHY is board-level: identical at every node
    assert n7.dram_power_w == n16.dram_power_w == n28.dram_power_w


def test_unknown_precision_and_bad_pe_count_are_usage_errors():
    model = AreaPowerModel()
    with pytest.raises(ConfigError, match="unknown precision 16"):
        model.estimate(bits=16, num_pes=1024, onchip_bytes=2**20)
    with pytest.raises(ConfigError, match="num_pes"):
        model.estimate(bits=32, num_pes=0, onchip_bytes=2**20)


def test_accelerator_budget_reflects_its_structure():
    base = GCoDAccelerator().budget()
    int8 = GCoDAccelerator(bits=8).budget()
    scaled = GCoDAccelerator(num_pes=8192).budget()
    n7 = GCoDAccelerator(tech_node=7).budget()
    assert int8.area_mm2 < base.area_mm2
    assert scaled.tdp_w > base.tdp_w
    assert n7.area_mm2 < base.area_mm2 and n7.tdp_w < base.tdp_w


# ----------------------------------------------------------------------
# EnergyModel: tech scaling + validation bugfixes
# ----------------------------------------------------------------------
def test_energy_model_default_node_is_byte_identical():
    ref = EnergyModel(bits=32)
    at16 = EnergyModel(bits=32, tech_node=16)
    macs, onchip, offchip = 1e9, 1e8, 1e7
    assert ref.energy(macs, onchip, offchip) == \
        at16.energy(macs, onchip, offchip)


def test_energy_model_scales_logic_not_dram():
    n7 = EnergyModel(bits=32, tech_node=7)
    n16 = EnergyModel(bits=32, tech_node=16)
    assert n7.mac_pj < n16.mac_pj
    assert n7.sram_pj < n16.sram_pj
    assert n7.mem_pj == n16.mem_pj  # off-chip is board-level
    e7 = n7.energy(1e9, 1e8, 1e7)
    e16 = n16.energy(1e9, 1e8, 1e7)
    assert e7.compute_j < e16.compute_j
    assert e7.onchip_j < e16.onchip_j
    assert e7.offchip_j == e16.offchip_j


def test_unknown_memory_kind_is_a_config_error():
    """Bugfix: a raw ``KeyError: 'hmb'`` leaked out of ``__init__``;
    it must be a usage error naming the known kinds (CLI exit 2)."""
    with pytest.raises(ConfigError, match="unknown memory kind 'sram'"):
        EnergyModel(memory_kind="sram")
    with pytest.raises(ConfigError, match="choose from hbm, ddr, gddr"):
        EnergyModel(memory_kind="flash")


def test_unknown_memory_kind_suggests_near_misses():
    with pytest.raises(ConfigError, match="did you mean 'hbm'"):
        EnergyModel(memory_kind="hmb")
    with pytest.raises(ConfigError, match="did you mean 'gddr'"):
        EnergyModel(memory_kind="gddr6")
    with pytest.raises(ConfigError) as exc:
        EnergyModel(memory_kind="optane")
    assert "did you mean" not in str(exc.value)


def test_zero_total_fractions_are_exact_zeros():
    """Bugfix: an empty breakdown used to report near-zero garbage
    (a clamped 1e-30 denominator); shares of nothing are exactly 0."""
    empty = EnergyBreakdown()
    assert empty.total_j == 0.0
    assert empty.fractions() == {"compute": 0.0, "onchip": 0.0,
                                 "offchip": 0.0}
    # a real breakdown still normalizes to 1
    real = EnergyBreakdown(compute_j=1.0, onchip_j=2.0, offchip_j=5.0)
    assert sum(real.fractions().values()) == pytest.approx(1.0)
