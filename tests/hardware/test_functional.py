"""Functional two-pronged execution: numerical equivalence + measured rates."""

import numpy as np
import pytest

from repro.hardware.functional import (
    ExecutionTrace,
    WeightBufferDirectory,
    execute_gcn,
    execute_layer,
    reference_gcn,
)

BACKENDS = ("reference", "vectorized", "tiled")


@pytest.fixture(scope="module")
def weights(request):
    graph = request.getfixturevalue("partitioned")[0]
    rng = np.random.default_rng(0)
    return [
        rng.normal(size=(graph.num_features, 16)) * 0.3,
        rng.normal(size=(16, graph.num_classes)) * 0.3,
    ]


@pytest.mark.parametrize("backend", BACKENDS)
def test_execution_matches_reference(partitioned, weights, backend):
    graph, layout = partitioned
    out, _ = execute_gcn(graph, layout, weights, kernel_backend=backend)
    ref = reference_gcn(graph, weights)
    np.testing.assert_allclose(out, ref, atol=1e-10)


def test_traces_identical_across_backends(partitioned, weights):
    # The schedule is the single source of truth: whichever backend does
    # the arithmetic, every counter of every layer's trace is identical.
    graph, layout = partitioned
    runs = {
        backend: execute_gcn(graph, layout, weights, kernel_backend=backend)
        for backend in BACKENDS
    }
    _, ref_traces = runs["reference"]
    for backend in ("vectorized", "tiled"):
        _, traces = runs[backend]
        assert traces == ref_traces, backend


def test_single_layer_with_relu(partitioned, weights):
    graph, layout = partitioned
    result = execute_layer(graph, layout, graph.features, weights[0],
                           apply_relu=True)
    assert result.output.min() >= 0.0


def test_trace_macs_partition(partitioned, weights):
    graph, layout = partitioned
    _, traces = execute_gcn(graph, layout, weights)
    from repro.graphs.normalize import symmetric_normalize

    a_hat = symmetric_normalize(graph.adj)
    dense, sparse = layout.split(a_hat)
    t = traces[0]
    assert t.dense_macs == dense.nnz * 16
    assert t.sparse_macs == sparse.nnz * 16


def test_trace_columns_accounting(partitioned, weights):
    graph, layout = partitioned
    _, traces = execute_gcn(graph, layout, weights)
    t = traces[0]
    assert t.columns_processed + t.columns_skipped == graph.num_nodes
    assert t.columns_processed == t.forward_hits + t.forward_misses


def test_forward_rate_in_paper_band(gcod_result):
    # On a polarized (GCoD-trained) graph, the measured query-forwarding
    # rate should land near the paper's ~63%.
    graph = gcod_result.final_graph
    layout = gcod_result.layout
    rng = np.random.default_rng(1)
    weights = [
        rng.normal(size=(graph.num_features, 16)),
        rng.normal(size=(16, graph.num_classes)),
    ]
    _, traces = execute_gcn(graph, layout, weights)
    rate = traces[0].forward_rate
    assert 0.35 < rate < 0.95


def test_bigger_buffers_forward_more(partitioned, weights):
    graph, layout = partitioned
    _, small = execute_gcn(graph, layout, weights,
                           buffer_rows=max(graph.num_nodes // 64, 1))
    _, big = execute_gcn(graph, layout, weights,
                         buffer_rows=graph.num_nodes)
    assert big[0].forward_rate >= small[0].forward_rate
    assert big[0].forward_rate == pytest.approx(1.0)


def test_chunk_balance_close_to_layout_metric(partitioned, weights):
    graph, layout = partitioned
    _, traces = execute_gcn(graph, layout, weights)
    # The executed chunk balance is a per-class aggregate of the layout's
    # per-subgraph balance; both must be healthy on a METIS-balanced layout.
    assert traces[0].chunk_balance() > 0.3


def test_empty_trace_defaults():
    t = ExecutionTrace()
    assert t.forward_rate == 0.0
    assert t.chunk_balance() == 1.0
    assert t.dense_macs == 0


def _partial_layout(n=40):
    """A layout whose spans cover only part of [0, n) (rows 10-20 uncovered)."""
    from repro.partition.layout import BlockLayout, SubgraphSpan

    spans = [
        SubgraphSpan(subgraph_id=0, class_id=0, group_id=0, start=0, stop=10),
        SubgraphSpan(subgraph_id=1, class_id=1, group_id=0, start=20, stop=40),
    ]
    node_subgraph = np.full(n, -1, dtype=np.int64)
    node_subgraph[0:10] = 0
    node_subgraph[20:40] = 1
    return BlockLayout(
        perm=np.arange(n, dtype=np.int64),
        node_class=np.zeros(n, dtype=np.int64),
        node_group=np.zeros(n, dtype=np.int64),
        node_subgraph=node_subgraph,
        spans=spans,
        num_classes=2,
        num_groups=1,
    )


def test_directory_scalar_and_batched_queries_agree_on_partial_layout():
    # The scalar walk and the batched closed form must advance chunks at
    # the same pace and agree column-for-column, including the uncovered
    # node range (always a miss) and columns beyond the layout.
    layout = _partial_layout(40)
    num_columns = 50  # graph larger than the layout
    directory = WeightBufferDirectory(
        layout, buffer_rows=3, num_columns=num_columns
    )
    columns = np.arange(num_columns)
    batched = directory.query_many(columns)
    for j in columns:
        directory.advance(int(j))
        assert directory.query(int(j)) == batched[j], j
    # Uncovered rows and out-of-layout rows never hit.
    assert not batched[10:20].any()
    assert not batched[40:].any()
    assert batched.any()  # covered spans do forward


def test_directory_defaults_to_layout_sweep_length(partitioned):
    _, layout = partitioned
    directory = WeightBufferDirectory(layout, buffer_rows=5)
    assert directory.num_columns == layout.num_nodes
