"""Functional two-pronged execution: numerical equivalence + measured rates."""

import numpy as np
import pytest

from repro.hardware.functional import (
    ExecutionTrace,
    execute_gcn,
    execute_layer,
    reference_gcn,
)


@pytest.fixture(scope="module")
def weights(request):
    graph = request.getfixturevalue("partitioned")[0]
    rng = np.random.default_rng(0)
    return [
        rng.normal(size=(graph.num_features, 16)) * 0.3,
        rng.normal(size=(16, graph.num_classes)) * 0.3,
    ]


def test_execution_matches_reference(partitioned, weights):
    graph, layout = partitioned
    out, _ = execute_gcn(graph, layout, weights)
    ref = reference_gcn(graph, weights)
    np.testing.assert_allclose(out, ref, atol=1e-10)


def test_single_layer_with_relu(partitioned, weights):
    graph, layout = partitioned
    result = execute_layer(graph, layout, graph.features, weights[0],
                           apply_relu=True)
    assert result.output.min() >= 0.0


def test_trace_macs_partition(partitioned, weights):
    graph, layout = partitioned
    _, traces = execute_gcn(graph, layout, weights)
    from repro.graphs.normalize import symmetric_normalize

    a_hat = symmetric_normalize(graph.adj)
    dense, sparse = layout.split(a_hat)
    t = traces[0]
    assert t.dense_macs == dense.nnz * 16
    assert t.sparse_macs == sparse.nnz * 16


def test_trace_columns_accounting(partitioned, weights):
    graph, layout = partitioned
    _, traces = execute_gcn(graph, layout, weights)
    t = traces[0]
    assert t.columns_processed + t.columns_skipped == graph.num_nodes
    assert t.columns_processed == t.forward_hits + t.forward_misses


def test_forward_rate_in_paper_band(gcod_result):
    # On a polarized (GCoD-trained) graph, the measured query-forwarding
    # rate should land near the paper's ~63%.
    graph = gcod_result.final_graph
    layout = gcod_result.layout
    rng = np.random.default_rng(1)
    weights = [
        rng.normal(size=(graph.num_features, 16)),
        rng.normal(size=(16, graph.num_classes)),
    ]
    _, traces = execute_gcn(graph, layout, weights)
    rate = traces[0].forward_rate
    assert 0.35 < rate < 0.95


def test_bigger_buffers_forward_more(partitioned, weights):
    graph, layout = partitioned
    _, small = execute_gcn(graph, layout, weights,
                           buffer_rows=max(graph.num_nodes // 64, 1))
    _, big = execute_gcn(graph, layout, weights,
                         buffer_rows=graph.num_nodes)
    assert big[0].forward_rate >= small[0].forward_rate
    assert big[0].forward_rate == pytest.approx(1.0)


def test_chunk_balance_close_to_layout_metric(partitioned, weights):
    graph, layout = partitioned
    _, traces = execute_gcn(graph, layout, weights)
    # The executed chunk balance is a per-class aggregate of the layout's
    # per-subgraph balance; both must be healthy on a METIS-balanced layout.
    assert traces[0].chunk_balance() > 0.3


def test_empty_trace_defaults():
    t = ExecutionTrace()
    assert t.forward_rate == 0.0
    assert t.chunk_balance() == 1.0
    assert t.dense_macs == 0
