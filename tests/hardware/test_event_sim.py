"""Event-driven aggregation simulator tests."""

import numpy as np
import pytest

from repro.hardware.event_sim import (
    EventDrivenAggregator,
    WorkTile,
    simulate_aggregation,
    tiles_from_workload,
)


def _simple_sim(**kw):
    defaults = dict(
        pe_rate_per_chunk={"chunk0": 10.0, "sparse": 5.0},
        dma_bytes_per_cycle=100.0,
        sync_cycles=0.0,
    )
    defaults.update(kw)
    return EventDrivenAggregator(**defaults)


def test_single_tile_compute_bound():
    sim = _simple_sim()
    report = sim.run([WorkTile("chunk0", macs=1000, dma_bytes=10)])
    # DMA 0.1 cycles then 100 cycles of compute.
    assert report.cycles == pytest.approx(100.1)


def test_single_tile_dma_bound():
    sim = _simple_sim()
    report = sim.run([WorkTile("chunk0", macs=10, dma_bytes=10000)])
    assert report.cycles == pytest.approx(100.0 + 1.0)


def test_double_buffering_overlaps():
    sim = _simple_sim()
    tiles = [WorkTile("chunk0", macs=1000, dma_bytes=1000) for _ in range(4)]
    report = sim.run(tiles)
    # Compute 100 cycles/tile dominates the 10-cycle DMA: total ~ 4x100
    # + first fetch, far below the serialized 4x110.
    assert report.cycles < 4 * 110
    assert report.cycles >= 4 * 100


def test_parallel_chunks_run_concurrently():
    sim = _simple_sim(
        pe_rate_per_chunk={"chunk0": 10.0, "chunk1": 10.0, "sparse": 5.0}
    )
    tiles = [
        WorkTile("chunk0", macs=1000, dma_bytes=1),
        WorkTile("chunk1", macs=1000, dma_bytes=1),
    ]
    report = sim.run(tiles)
    assert report.cycles < 150  # not 200: the chunks overlap


def test_shared_dma_serializes():
    sim = _simple_sim(
        pe_rate_per_chunk={"chunk0": 1e9, "chunk1": 1e9, "sparse": 1.0},
        dma_bytes_per_cycle=10.0,
    )
    tiles = [
        WorkTile("chunk0", macs=1, dma_bytes=1000),
        WorkTile("chunk1", macs=1, dma_bytes=1000),
    ]
    report = sim.run(tiles)
    # Compute is free; the shared channel serializes 2 x 100 cycles.
    assert report.cycles >= 200.0
    assert report.dma_busy_cycles == pytest.approx(200.0)


def test_unknown_owner_rejected():
    sim = _simple_sim()
    with pytest.raises(KeyError):
        sim.run([WorkTile("chunk9", macs=1, dma_bytes=1)])


def test_sync_overhead_added():
    sim = _simple_sim(sync_cycles=50.0)
    report = sim.run([WorkTile("chunk0", macs=10, dma_bytes=1)])
    assert report.cycles >= 50.0


def test_tiles_from_workload_cover_all_nnz(gcod_result):
    from repro.hardware import extract_workload

    wl = extract_workload(gcod_result.final_graph, gcod_result.layout, "gcn")
    tiles = tiles_from_workload(wl, agg_dim=16)
    owners = {t.owner for t in tiles}
    assert "sparse" in owners
    assert any(o.startswith("chunk") for o in owners)
    # Near-even splitting distributes remainders: totals are exact.
    adj = wl.adjacency
    assert sum(t.macs for t in tiles) == (adj.dense_nnz + adj.sparse_nnz) * 16


def _workload(dense_per_class, sparse_nnz, num_nodes, num_subgraphs):
    """A synthetic GCNWorkload exposing only what the tiler reads."""
    from repro.hardware.workload import AdjacencyProfile, GCNWorkload

    profile = AdjacencyProfile(
        num_nodes=num_nodes,
        nnz=sum(dense_per_class) + sparse_nnz,
        dense_nnz_per_class=tuple(dense_per_class),
        sparse_nnz=sparse_nnz,
        class_balance=1.0,
        num_subgraphs=num_subgraphs,
        max_subgraph_nodes=num_nodes,
        skipped_col_fraction=0.0,
        coo_bytes=0,
        csc_bytes=0,
        num_classes=len(dense_per_class),
    )
    return GCNWorkload(
        name="synthetic", dataset="synthetic", arch="gcn",
        layers=(), adjacency=profile, num_nodes=num_nodes,
    )


@pytest.mark.parametrize(
    "dense_per_class,sparse_nnz,num_nodes,num_subgraphs",
    [
        ((7, 11, 5), 13, 3000, 7),   # nothing divides evenly
        ((1, 1), 1, 5000, 9),        # shares smaller than tile counts
        ((0, 17), 0, 2048, 5),       # empty class, empty sparser branch
        ((1023,), 4095, 4096, 4),    # remainders one short of the divisor
    ],
)
def test_tile_totals_exact_for_uneven_splits(
    dense_per_class, sparse_nnz, num_nodes, num_subgraphs
):
    agg_dim = 16
    wl = _workload(dense_per_class, sparse_nnz, num_nodes, num_subgraphs)
    tiles = tiles_from_workload(wl, agg_dim=agg_dim)
    dense_nnz = sum(dense_per_class)
    assert sum(t.macs for t in tiles) == (dense_nnz + sparse_nnz) * agg_dim
    dense_bytes = sum(t.dma_bytes for t in tiles if t.owner != "sparse")
    sparse_bytes = sum(t.dma_bytes for t in tiles if t.owner == "sparse")
    assert dense_bytes == dense_nnz * 8
    assert sparse_bytes == sparse_nnz * 6
    # Near-even: tile shares within one class differ by at most one nnz.
    for cls in range(len(dense_per_class)):
        macs = [t.macs for t in tiles if t.owner == f"chunk{cls}"]
        assert max(macs) - min(macs) <= agg_dim


def test_tiles_from_profile_schedules_measured_blocks(partitioned):
    from repro.graphs.normalize import symmetric_normalize
    from repro.hardware import extract_workload
    from repro.hardware.event_sim import tiles_from_profile
    from repro.sparse.kernels import layout_tile_profile

    graph, layout = partitioned
    a_hat = symmetric_normalize(graph.adj)
    profile = layout_tile_profile(a_hat, layout, width=16)
    tiles = tiles_from_profile(profile, agg_dim=16)
    assert sum(t.macs for t in tiles) == a_hat.nnz * 16
    assert all(t.macs > 0 for t in tiles)  # zero-work tiles dropped

    wl = extract_workload(graph, layout, "gcn")
    report = simulate_aggregation(wl, agg_dim=16, tile_profile=profile)
    assert report.cycles > 0
    assert report.finish_skew >= 1.0


def test_simulated_chunks_finish_together(gcod_result):
    # The headline property: GCoD-balanced chunks finish nearly together.
    from repro.hardware import extract_workload

    wl = extract_workload(gcod_result.final_graph, gcod_result.layout, "gcn")
    sub_workloads = gcod_result.layout.subgraph_workloads(
        gcod_result.final_graph.adj
    )
    sub_classes = [s.class_id for s in gcod_result.layout.spans]
    report = simulate_aggregation(
        wl, agg_dim=16, layout_tiles=(sub_workloads, sub_classes)
    )
    assert report.finish_skew < 1.6


def test_simulation_vs_analytic_same_order(gcod_result):
    from repro.hardware import extract_workload
    from repro.hardware.accelerators import GCoDAccelerator

    wl = extract_workload(gcod_result.final_graph, gcod_result.layout, "gcn")
    sim = simulate_aggregation(wl, agg_dim=16)
    analytic = GCoDAccelerator().run(wl)
    analytic_cycles = analytic.aggregation.seconds * 330e6
    # Same order of magnitude: the models agree within 10x.
    assert analytic_cycles / 10 < sim.cycles < analytic_cycles * 10 + 1000
