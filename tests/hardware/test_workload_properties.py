"""Property tier for paper-scale rescaling (needs ``hypothesis``).

The invariant `_rescale_profile` must hold for *every* profile and scale
pair: per-class dense counts round independently, so without the excess
shave their sum can beat the rounded total — which used to surface as
``dense_fraction > 1.0`` while ``sparse_nnz`` silently clamped to 0.
"""

import pytest

hypothesis = pytest.importorskip("hypothesis")

from hypothesis import given, settings, strategies as st  # noqa: E402

from repro.hardware.workload import (  # noqa: E402
    AdjacencyProfile,
    _rescale_profile,
)


@st.composite
def profiles(draw):
    """Consistent measured profiles: dense per-class counts + remainder."""
    per_class = tuple(draw(st.lists(st.integers(0, 5000),
                                    min_size=0, max_size=8)))
    sparse = draw(st.integers(0, 5000))
    nnz = sum(per_class) + sparse
    n = draw(st.integers(1, 100_000))
    return AdjacencyProfile(
        num_nodes=n,
        nnz=nnz,
        dense_nnz_per_class=per_class,
        sparse_nnz=sparse,
        class_balance=draw(st.floats(0.0, 1.0)),
        num_subgraphs=max(1, len(per_class)),
        max_subgraph_nodes=n,
        skipped_col_fraction=draw(st.floats(0.0, 1.0)),
        coo_bytes=nnz * 12,
        csc_bytes=sparse * 8,
        num_classes=max(1, len(per_class)),
    )


scales = st.floats(min_value=1e-3, max_value=1e3,
                   allow_nan=False, allow_infinity=False)


@settings(deadline=None)
@given(profiles(), scales, scales)
def test_rescale_keeps_every_fraction_in_unit_interval(
        profile, node_scale, nnz_scale):
    scaled = _rescale_profile(profile, node_scale, nnz_scale)
    assert scaled.nnz >= 0
    assert scaled.sparse_nnz >= 0
    assert all(v >= 0 for v in scaled.dense_nnz_per_class)
    # the split stays a partition of the rescaled total
    assert scaled.dense_nnz + scaled.sparse_nnz == scaled.nnz
    assert 0.0 <= scaled.dense_fraction <= 1.0


@settings(deadline=None)
@given(profiles())
def test_rescale_identity_at_unit_scale(profile):
    scaled = _rescale_profile(profile, 1.0, 1.0)
    assert scaled.nnz == profile.nnz
    assert scaled.dense_nnz == profile.dense_nnz
    assert scaled.sparse_nnz == profile.sparse_nnz
    assert scaled.num_nodes == profile.num_nodes
