"""Memory, PE, energy, and dataflow component tests."""

import pytest

from repro.errors import ConfigError
from repro.hardware import (
    Buffer,
    EnergyBreakdown,
    EnergyModel,
    OffChipMemory,
    PEArray,
    pipeline_characteristics,
    select_pipeline,
)


def test_buffer_fits_and_reload():
    buf = Buffer("test", 1000)
    assert buf.fits(1000)
    assert not buf.fits(1001)
    assert buf.reload_factor(500) == 1
    assert buf.reload_factor(1001) == 2
    assert buf.reload_factor(0) == 1


def test_buffer_traffic_accounting():
    buf = Buffer("test", 100)
    buf.read(30)
    buf.write(20)
    assert buf.total_traffic == 50


def test_buffer_rejects_negative_capacity():
    with pytest.raises(ConfigError):
        Buffer("bad", -1)


def test_offchip_transfer_time():
    mem = OffChipMemory("hbm", 460.0)
    assert mem.transfer_seconds(460e9) == pytest.approx(1.0)


def test_offchip_energy_order():
    hbm = OffChipMemory("hbm", 100.0)
    ddr = OffChipMemory("ddr", 100.0)
    assert ddr.energy_pj(1000) > hbm.energy_pj(1000)  # DDR costs more/byte


def test_offchip_rejects_unknown_kind():
    with pytest.raises(ConfigError):
        OffChipMemory("optane", 10.0)
    with pytest.raises(ConfigError):
        OffChipMemory("hbm", 0.0)


def test_pe_array_compute_time():
    pes = PEArray(1000, 1e9)
    assert pes.compute_seconds(1e12) == pytest.approx(1.0)
    assert pes.compute_seconds(1e12, utilization=0.5) == pytest.approx(2.0)


def test_pe_array_split():
    pes = PEArray(4096, 330e6)
    half = pes.split(0.5)
    assert half.num_pes == 2048
    tiny = pes.split(1e-9)
    assert tiny.num_pes == 1  # minimum one PE


def test_pe_array_allocate_normalizes_overcommit():
    pes = PEArray(4096, 330e6)
    # 0.05-clamped fractions summing to 1.04 must not over-allocate.
    dense, sparse = pes.allocate([0.05, 0.99])
    assert dense.num_pes + sparse.num_pes <= 4096
    assert dense.num_pes >= 1 and sparse.num_pes >= 1


def test_pe_array_allocate_fully_assigns_exact_fractions():
    pes = PEArray(4096, 330e6)
    parts = pes.allocate([0.3, 0.3, 0.4])
    assert sum(p.num_pes for p in parts) == 4096


def test_pe_array_allocate_zero_fraction_gets_placeholder():
    pes = PEArray(4096, 330e6)
    idle, busy = pes.allocate([0.0, 1.0])
    assert idle.num_pes == 1
    assert idle.num_pes + busy.num_pes <= 4096


def test_pe_array_allocate_undercommit_leaves_slack():
    pes = PEArray(1000, 1e9)
    a, b = pes.allocate([0.25, 0.25])
    assert a.num_pes == 250 and b.num_pes == 250


def test_pe_array_allocate_rejects_more_arrays_than_pes():
    with pytest.raises(ConfigError):
        PEArray(2, 1e9).allocate([0.3, 0.3, 0.4])


def test_pe_array_invalid():
    with pytest.raises(ConfigError):
        PEArray(0, 1e9)
    with pytest.raises(ConfigError):
        PEArray(8, 1e9).compute_seconds(10, utilization=0.0)


def test_energy_breakdown_addition_and_fractions():
    a = EnergyBreakdown(1.0, 2.0, 3.0)
    b = EnergyBreakdown(1.0, 0.0, 1.0)
    total = a + b
    assert total.total_j == pytest.approx(8.0)
    fr = total.fractions()
    assert fr["compute"] + fr["onchip"] + fr["offchip"] == pytest.approx(1.0)


def test_energy_model_8bit_cheaper(rng):
    e32 = EnergyModel(bits=32).energy(1e9, 1e6, 1e6)
    e8 = EnergyModel(bits=8).energy(1e9, 1e6, 1e6)
    assert e8.compute_j < e32.compute_j


def test_energy_offchip_dominates_compute_per_byte():
    e = EnergyModel(bits=32).energy(macs=1e6, onchip_bytes=0, offchip_bytes=1e6)
    assert e.offchip_j > e.compute_j  # an off-chip byte >> a MAC


def test_pipeline_selection_small_graph_efficiency():
    choice = select_pipeline(1000, 16, 4, output_buffer_capacity=10**6)
    assert choice.name == "efficiency-aware"
    assert choice.adjacency_rewalks == 1


def test_pipeline_selection_large_graph_resource():
    choice = select_pipeline(10**6, 64, 4, output_buffer_capacity=10**6)
    assert choice.name == "resource-aware"
    assert choice.adjacency_rewalks > 1
    assert choice.output_buffer_bytes <= 10**6


def test_pipeline_characteristics_table():
    rows = pipeline_characteristics()
    assert {r["pipeline"] for r in rows} == {
        "efficiency-aware", "resource-aware"
    }
