"""Property-style sanity checks on the accelerator cost models.

These pin down the monotonicities a cost model must have — more compute
can't be slower, pruning can't add latency, quantization can't add traffic —
so that calibration changes can't silently break the model's physics.
"""

import numpy as np
import pytest

from repro.hardware import extract_workload
from repro.hardware.accelerators import AWBGCN, GCoDAccelerator, HyGCN
from repro.hardware.workload import AdjacencyProfile, GCNWorkload, LayerSpec


def _toy_workload(nnz=10000, n=1000, f=100, dense_frac=0.6, classes=2):
    dense = int(nnz * dense_frac)
    per_class = (dense // classes,) * classes
    profile = AdjacencyProfile(
        num_nodes=n,
        nnz=nnz,
        dense_nnz_per_class=per_class,
        sparse_nnz=nnz - sum(per_class),
        class_balance=0.9,
        num_subgraphs=8,
        max_subgraph_nodes=n // 8,
        skipped_col_fraction=0.1,
        coo_bytes=nnz * 12,
        csc_bytes=nnz * 8,
        num_classes=classes,
    )
    layers = (
        LayerSpec(f, 16, x_density=0.05),
        LayerSpec(16, 4),
    )
    return GCNWorkload("toy", "toy", "gcn", layers, profile, n)


def test_more_pes_never_slower():
    wl = _toy_workload()
    small = GCoDAccelerator(num_pes=1024).run(wl)
    big = GCoDAccelerator(num_pes=8192).run(wl)
    assert big.latency_s <= small.latency_s


def test_more_edges_never_faster():
    light = _toy_workload(nnz=5000)
    heavy = _toy_workload(nnz=50000)
    for accel in (GCoDAccelerator(), AWBGCN(), HyGCN()):
        assert accel.run(heavy).latency_s >= accel.run(light).latency_s


def test_quantization_reduces_traffic_and_latency():
    wl = _toy_workload()
    fp32 = GCoDAccelerator(bits=32).run(wl)
    int8 = GCoDAccelerator(bits=8).run(wl)
    assert int8.offchip_bytes < fp32.offchip_bytes
    assert int8.latency_s < fp32.latency_s
    assert int8.energy.total_j < fp32.energy.total_j


def test_better_balance_never_slower():
    wl_bad = _toy_workload()
    object.__setattr__(wl_bad.adjacency, "__dict__", None) if False else None
    # Rebuild with worse balance (frozen dataclass: construct a new one).
    from dataclasses import replace

    wl_worse = GCNWorkload(
        "toy", "toy", "gcn", wl_bad.layers,
        replace(wl_bad.adjacency, class_balance=0.3), wl_bad.num_nodes,
    )
    accel = GCoDAccelerator()
    assert accel.run(wl_worse).latency_s >= accel.run(wl_bad).latency_s


def test_higher_skip_fraction_never_more_traffic():
    from dataclasses import replace

    wl = _toy_workload()
    wl_skippy = GCNWorkload(
        "toy", "toy", "gcn", wl.layers,
        replace(wl.adjacency, skipped_col_fraction=0.8), wl.num_nodes,
    )
    accel = GCoDAccelerator()
    assert (
        accel.run(wl_skippy).offchip_bytes <= accel.run(wl).offchip_bytes
    )


def test_wider_features_cost_more():
    narrow = _toy_workload(f=50)
    wide = _toy_workload(f=500)
    for accel in (GCoDAccelerator(), AWBGCN(), HyGCN()):
        assert accel.run(wide).latency_s >= accel.run(narrow).latency_s


def test_zero_sparse_workload_handled():
    wl = _toy_workload(dense_frac=1.0)
    report = GCoDAccelerator().run(wl)
    assert report.latency_s > 0
    assert np.isfinite(report.latency_s)


def test_all_dense_vs_all_sparse_both_run():
    all_sparse = _toy_workload(dense_frac=0.0)
    report = GCoDAccelerator().run(all_sparse)
    assert report.latency_s > 0


def test_forward_rate_bounds_checked():
    with pytest.raises(ValueError):
        GCoDAccelerator(weight_forward_rate=1.5)
    with pytest.raises(ValueError):
        GCoDAccelerator(weight_forward_rate=-0.1)


def test_disabling_forwarding_only_adds_offchip():
    wl = _toy_workload()
    with_fwd = GCoDAccelerator().run(wl)
    without = GCoDAccelerator(weight_forward_rate=0.0).run(wl)
    assert without.offchip_bytes >= with_fwd.offchip_bytes
    assert without.latency_s >= with_fwd.latency_s
