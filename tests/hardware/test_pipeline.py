"""Workload DAGs: parsing, staging, and the shared-accelerator merge.

The acceptance contract for the staged pipeline: a single-node DAG is
byte-identical to the legacy single-model path (``allocate([1.0])``
returns the full array), concurrent nodes time-slice the PE array, and
sequential phases sum their latencies.
"""

import dataclasses

import pytest

from repro.errors import ConfigError, UnknownDatasetError
from repro.hardware import extract_workload
from repro.hardware.accelerators.gcod import DEFAULT_PES, GCoDAccelerator
from repro.hardware.pipeline import (
    GCOD_CLOCK_HZ,
    PipelineSettings,
    Stage,
    WorkloadGraph,
    WorkloadNode,
    evaluate_workload,
    full_pe_array,
    get_stage,
    parse_workload,
    register_stage,
    slice_workload,
    stage_names,
    workload_from_json,
)
from repro.runtime.keys import jsonable


# ----------------------------------------------------------------------
# shorthand parsing
# ----------------------------------------------------------------------
def test_parse_concurrent_pair():
    graph = parse_workload("cora/gcn+citeseer/gat")
    assert [n.name for n in graph.nodes] == ["cora/gcn", "citeseer/gat"]
    assert all(n.after == () for n in graph.nodes)
    assert len(graph.levels()) == 1
    assert graph.to_shorthand() == "cora/gcn+citeseer/gat"


def test_parse_pipelined_split_with_share():
    graph = parse_workload("cora/gcn/0@0.75 > cora/gcn/1")
    first, second = graph.nodes
    assert first.layers == (0, 0) and first.share == 0.75
    assert second.name == "cora/gcn#2"  # auto-suffixed duplicate
    assert second.layers == (1, 1)
    assert second.after == ("cora/gcn",)
    assert len(graph.levels()) == 2
    assert graph.to_shorthand() == "cora/gcn/0@0.75 > cora/gcn/1"


def test_parse_normalizes_case_and_whitespace():
    graph = parse_workload(" Cora/GCN + citeseer/GAT ")
    assert graph.to_shorthand() == "cora/gcn+citeseer/gat"


def test_parse_layer_range_token_roundtrip():
    node = parse_workload("cora/gcn/0-1").nodes[0]
    assert node.layers == (0, 1)
    assert node.token() == "cora/gcn/0-1"


@pytest.mark.parametrize("bad, match", [
    ("", "empty workload"),
    ("   ", "empty workload"),
    ("cora", "not of the form"),
    ("cora/gcn/1/2", "not of the form"),
    ("cora/gcn@zero", "not a number"),
    ("cora/gcn@0", "share must be positive"),
    ("cora/gcn/2-1", "0 <= start <= stop"),
    ("cora/gcn/x", "layer range"),
    ("cora/gcn >> cora/gcn", "empty phase"),
])
def test_parse_rejects_malformed(bad, match):
    with pytest.raises(ConfigError, match=match):
        parse_workload(bad)


def test_parse_validates_dataset_and_arch_eagerly():
    with pytest.raises(UnknownDatasetError, match="atlantis"):
        parse_workload("atlantis/gcn")
    with pytest.raises(ConfigError, match="unknown architecture"):
        parse_workload("cora/mlp-mixer")


# ----------------------------------------------------------------------
# graph validation, levels, shorthand limits
# ----------------------------------------------------------------------
def test_graph_rejects_empty_duplicates_and_self_deps():
    with pytest.raises(ConfigError, match="no nodes"):
        WorkloadGraph(name="w", nodes=())
    node = WorkloadNode(name="a", dataset="cora")
    with pytest.raises(ConfigError, match="duplicate node names"):
        WorkloadGraph(name="w", nodes=(node, node))
    with pytest.raises(ConfigError, match="depends on itself"):
        WorkloadGraph(name="w", nodes=(
            WorkloadNode(name="a", dataset="cora", after=("a",)),
        ))


def test_unknown_dependency_gets_a_suggestion():
    with pytest.raises(ConfigError, match=r"did you mean 'cora/gcn'\?"):
        WorkloadGraph(name="w", nodes=(
            WorkloadNode(name="cora/gcn", dataset="cora"),
            WorkloadNode(name="b", dataset="cora", after=("cora/gnc",)),
        ))


def test_dependency_cycle_raises():
    graph = WorkloadGraph(name="w", nodes=(
        WorkloadNode(name="a", dataset="cora", after=("b",)),
        WorkloadNode(name="b", dataset="cora", after=("a",)),
    ))
    with pytest.raises(ConfigError, match="dependency cycle"):
        graph.levels()


def test_sparse_dag_needs_json_form():
    # c depends on a only, but a's level also holds b: not expressible
    # as "phase > phase" shorthand.
    graph = WorkloadGraph(name="w", nodes=(
        WorkloadNode(name="a", dataset="cora"),
        WorkloadNode(name="b", dataset="citeseer"),
        WorkloadNode(name="c", dataset="cora", after=("a",)),
    ))
    assert [len(level) for level in graph.levels()] == [2, 1]
    with pytest.raises(ConfigError, match="use the JSON form"):
        graph.to_shorthand()


# ----------------------------------------------------------------------
# JSON form
# ----------------------------------------------------------------------
def test_json_roundtrip_preserves_the_graph():
    graph = parse_workload("cora/gcn/0@0.75 > cora/gcn/1+citeseer/gat")
    assert workload_from_json(graph.to_jsonable()) == graph


@pytest.mark.parametrize("data, match", [
    ({"nodes": "cora"}, "'nodes' list"),
    ({"nodes": [{"dataset": "cora", "archh": "gcn"}]}, "unknown key"),
    ({"nodes": [{"arch": "gcn"}]}, "missing 'dataset'"),
    ({"nodes": [{"dataset": "cora", "layers": [1, 0]}]},
     r"0 <= start <= stop"),
    ({"nodes": [{"dataset": "cora", "layers": 1}]}, "'layers' wants"),
    ({"nodes": [{"dataset": "cora", "share": 0}]}, "must be positive"),
])
def test_json_rejects_malformed(data, match):
    with pytest.raises(ConfigError, match=match):
        workload_from_json(data)


# ----------------------------------------------------------------------
# layer slicing
# ----------------------------------------------------------------------
def test_slice_workload_takes_an_inclusive_range(partitioned):
    graph, layout = partitioned
    wl = extract_workload(graph, layout, "gcn")
    node = WorkloadNode(name="n", dataset="cora", layers=(0, 0))
    sliced = slice_workload(wl, node)
    assert sliced.layers == wl.layers[:1]
    assert sliced.name == f"{wl.name}[0-0]"
    # no range: the same object passes through untouched
    assert slice_workload(wl, WorkloadNode(name="n", dataset="cora")) is wl


def test_slice_workload_rejects_out_of_range(partitioned):
    graph, layout = partitioned
    wl = extract_workload(graph, layout, "gcn")
    node = WorkloadNode(name="n", dataset="cora", layers=(0, 5))
    with pytest.raises(ConfigError, match="out of range"):
        slice_workload(wl, node)


# ----------------------------------------------------------------------
# the stage registry
# ----------------------------------------------------------------------
def test_default_stages_are_registered():
    assert set(stage_names()) >= {"extract", "map", "cost"}
    assert get_stage("cost").name == "cost"


def test_unknown_stage_suggests_near_miss():
    with pytest.raises(ConfigError, match=r"did you mean 'extract'\?"):
        get_stage("extrct")


def test_duplicate_stage_registration_rejected():
    class DupStage(Stage):
        name = "extract"

        def run(self, state, settings, context):
            pass

    with pytest.raises(ValueError, match="already registered"):
        register_stage(DupStage())


# ----------------------------------------------------------------------
# the shared PE array
# ----------------------------------------------------------------------
def test_full_pe_array_matches_platform_defaults():
    assert full_pe_array(PipelineSettings()).num_pes == DEFAULT_PES[32]
    assert full_pe_array(PipelineSettings(bits=8)).num_pes == \
        DEFAULT_PES[8]
    assert full_pe_array(PipelineSettings(hw_scale=0.5)).num_pes == \
        DEFAULT_PES[32] // 2
    assert full_pe_array(PipelineSettings()).clock_hz == GCOD_CLOCK_HZ
    with pytest.raises(ConfigError, match="supports bits in"):
        full_pe_array(PipelineSettings(bits=16))


# ----------------------------------------------------------------------
# evaluation + merge (extraction overridden: no training needed)
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def settings_for(partitioned):
    """PipelineSettings factory with store-free extraction (the same
    hook the sweep engine injects its store-backed path through)."""
    graph, layout = partitioned

    def make(**kwargs):
        def extract_fn(node, _context):
            return extract_workload(graph, layout, node.arch)

        return PipelineSettings(extract_fn=extract_fn, **kwargs)

    return make


def test_single_node_dag_is_byte_identical_to_legacy(partitioned,
                                                     settings_for):
    graph, layout = partitioned
    wl = extract_workload(graph, layout, "gcn")
    legacy = GCoDAccelerator().run(wl)

    report = evaluate_workload(parse_workload("cora/gcn"), None,
                               settings_for())
    assert dict(report.node_pes) == {"cora/gcn": DEFAULT_PES[32]}
    (_, node_report), = report.node_reports
    assert jsonable(dataclasses.asdict(node_report)) == \
        jsonable(dataclasses.asdict(legacy))
    merged = report.merged()
    assert merged.latency_s == legacy.latency_s
    assert merged.combination == legacy.combination
    assert merged.aggregation == legacy.aggregation
    assert report.energy.total_j == legacy.energy.total_j
    assert report.offchip_bytes == legacy.offchip_bytes


def test_concurrent_nodes_split_the_array_and_take_the_max(settings_for):
    report = evaluate_workload(parse_workload("cora/gcn+cora/gat"), None,
                               settings_for())
    pes = dict(report.node_pes)
    assert pes == {"cora/gcn": DEFAULT_PES[32] // 2,
                   "cora/gat": DEFAULT_PES[32] // 2}
    latencies = [r.latency_s for _, r in report.node_reports]
    assert report.latency_s == max(latencies)
    assert report.notes["levels"] == 1.0
    # traffic and energy sum across nodes
    total = sum(r.energy.total_j for _, r in report.node_reports)
    assert report.energy.total_j == pytest.approx(total)


def test_sequential_phases_sum_their_latencies(settings_for):
    report = evaluate_workload(parse_workload("cora/gcn > cora/gat"),
                               None, settings_for())
    pes = dict(report.node_pes)
    # each phase has the whole array to itself
    assert set(pes.values()) == {DEFAULT_PES[32]}
    latencies = [r.latency_s for _, r in report.node_reports]
    assert report.latency_s == pytest.approx(sum(latencies))
    assert report.notes["levels"] == 2.0


def test_share_skews_the_allocation(settings_for):
    report = evaluate_workload(
        parse_workload("cora/gcn@0.75+cora/gat@0.25"), None,
        settings_for())
    pes = dict(report.node_pes)
    assert pes["cora/gcn"] == 3 * pes["cora/gat"]
    assert pes["cora/gcn"] + pes["cora/gat"] <= DEFAULT_PES[32]


def test_platform_name_tracks_bits(settings_for):
    assert evaluate_workload(parse_workload("cora/gcn"), None,
                             settings_for()).platform == "gcod"
    assert evaluate_workload(parse_workload("cora/gcn"), None,
                             settings_for(bits=8)).platform == "gcod-8bit"


def test_to_jsonable_is_json_clean(settings_for):
    import json

    report = evaluate_workload(parse_workload("cora/gcn+cora/gat"), None,
                               settings_for())
    payload = json.loads(json.dumps(report.to_jsonable()))
    assert set(payload["node_pes"]) == {"cora/gcn", "cora/gat"}
    assert payload["latency_s"] == report.latency_s


def test_cost_without_extract_and_map_raises(settings_for):
    with pytest.raises(ConfigError, match="'extract' and 'map'"):
        evaluate_workload(parse_workload("cora/gcn"), None,
                          settings_for(stages=("cost",)))


def test_chain_without_cost_raises(settings_for):
    with pytest.raises(ConfigError, match="produced no report"):
        evaluate_workload(parse_workload("cora/gcn"), None,
                          settings_for(stages=("extract", "map")))
