"""Platform models: sanity, orderings, and paper-shape assertions."""

import pytest

from repro.hardware import extract_workload
from repro.hardware.accelerators import (
    AWBGCN,
    ALVEO_U50,
    DeepburningGL,
    GCoDAccelerator,
    HyGCN,
    KCU1500,
    ZC706,
    all_platforms,
    pyg_cpu,
    pyg_gpu,
    system_configurations,
)
from repro.hardware.accelerators.gcod import branch_characteristics
from repro.hardware.functional import ExecutionTrace


@pytest.fixture(scope="module")
def workloads(request):
    gcod_result = request.getfixturevalue("gcod_result")
    small_graph = request.getfixturevalue("small_graph")
    base = extract_workload(small_graph, None, "gcn")
    treated = extract_workload(
        gcod_result.final_graph, gcod_result.layout, "gcn"
    )
    return base, treated


def _positive_report(report):
    assert report.latency_s > 0
    assert report.total_macs > 0
    assert report.offchip_bytes >= 0
    assert report.energy.total_j > 0


def test_all_platforms_run(workloads):
    base, treated = workloads
    for name, platform in all_platforms().items():
        wl = treated if name.startswith("gcod") else base
        _positive_report(platform.run(wl))


def test_platform_registry_complete():
    names = set(all_platforms())
    assert {"pyg-cpu", "dgl-cpu", "pyg-gpu", "dgl-gpu", "hygcn", "awb-gcn",
            "gcod", "gcod-8bit"} <= names
    assert len([n for n in names if n.startswith("deepburning")]) == 3


def test_cpu_slowest_platform(workloads):
    base, treated = workloads
    plats = all_platforms()
    cpu = plats["pyg-cpu"].run(base).latency_s
    for name, p in plats.items():
        wl = treated if name.startswith("gcod") else base
        assert p.run(wl).latency_s <= cpu


def test_paper_ordering_holds(workloads):
    # The headline ordering: GCoD-8bit < GCoD < AWB-GCN < HyGCN < GPU.
    base, treated = workloads
    plats = all_platforms()
    gcod8 = plats["gcod-8bit"].run(treated).latency_s
    gcod = plats["gcod"].run(treated).latency_s
    awb = plats["awb-gcn"].run(base).latency_s
    hygcn = plats["hygcn"].run(base).latency_s
    gpu = plats["pyg-gpu"].run(base).latency_s
    assert gcod8 < gcod < awb < hygcn < gpu


def test_gcod_beats_awb_within_paper_band(workloads):
    base, treated = workloads
    ratio = AWBGCN().run(base).latency_s / GCoDAccelerator().run(treated).latency_s
    assert 1.2 < ratio < 6.0  # paper: 1.6-4.3 per dataset, 2.5 average


def test_8bit_speedup_band(workloads):
    _, treated = workloads
    ratio = (
        GCoDAccelerator(bits=32).run(treated).latency_s
        / GCoDAccelerator(bits=8).run(treated).latency_s
    )
    assert 1.5 < ratio < 3.5  # paper: ~2x


def test_gcod_needs_less_bandwidth_than_hygcn(workloads):
    base, treated = workloads
    hygcn = HyGCN().run(base)
    gcod = GCoDAccelerator().run(treated)
    assert gcod.required_bandwidth_gbps < hygcn.required_bandwidth_gbps


def test_gcod_fewer_offchip_accesses(workloads):
    base, treated = workloads
    hygcn = HyGCN().run(base)
    gcod = GCoDAccelerator().run(treated)
    assert gcod.offchip_bytes < hygcn.offchip_bytes


def test_fpga_platform_ordering(workloads):
    base, _ = workloads
    zc706 = DeepburningGL(ZC706).run(base).latency_s
    kcu = DeepburningGL(KCU1500).run(base).latency_s
    u50 = DeepburningGL(ALVEO_U50).run(base).latency_s
    assert u50 < kcu < zc706  # bigger FPGA -> faster


def test_gcod_treated_beats_untreated(workloads):
    # The algorithm matters: same accelerator on the raw graph is slower
    # or equal (no balanced classes, no pruning, nothing to forward).
    base, treated = workloads
    accel = GCoDAccelerator()
    assert accel.run(treated).latency_s <= accel.run(base).latency_s * 1.05


def test_gcod_rejects_bad_bits():
    with pytest.raises(ValueError):
        GCoDAccelerator(bits=16)


def test_gpu_faster_than_cpu(workloads):
    base, _ = workloads
    assert pyg_gpu().run(base).latency_s < pyg_cpu().run(base).latency_s


def test_speedup_over_is_latency_ratio(workloads):
    base, _ = workloads
    a = pyg_cpu().run(base)
    b = pyg_gpu().run(base)
    assert b.speedup_over(a) == pytest.approx(a.latency_s / b.latency_s)


def test_report_notes_record_pipeline(workloads):
    _, treated = workloads
    report = GCoDAccelerator().run(treated)
    assert any(k.startswith("pipeline_") for k in report.notes)
    assert "num_chunks" in report.notes


def test_energy_breakdown_sums(workloads):
    _, treated = workloads
    report = GCoDAccelerator().run(treated)
    total = report.energy.total_j
    parts = (
        report.combination.energy.total_j + report.aggregation.energy.total_j
    )
    assert total == pytest.approx(parts)


def test_static_tables():
    assert len(system_configurations()) == 9
    assert len(branch_characteristics()) == 3


def test_pe_allocation_never_exceeds_array(workloads):
    # Independently clamped max(frac, 0.05) splits used to hand out 105%
    # of the PE array; the normalized allocation stays within it.
    _, treated = workloads
    accel = GCoDAccelerator()
    adj = treated.adjacency
    shares = [
        max(adj.dense_nnz / max(adj.nnz, 1), 0.05),
        max(adj.sparse_nnz / max(adj.nnz, 1), 0.05),
    ]
    dense_pes, sparse_pes = accel.pes.allocate(shares)
    assert dense_pes.num_pes + sparse_pes.num_pes <= accel.pes.num_pes
    report = accel.run(treated)
    assert 0.0 < report.notes["dense_pe_fraction"] < 1.0


def test_single_branch_ablation_grants_dense_nothing(workloads):
    _, treated = workloads
    report = GCoDAccelerator(two_pronged=False).run(treated)
    # The undifferentiated branch owns the array; the idle dense branch
    # keeps one placeholder PE, not a courtesy 5%.
    assert report.notes["dense_pe_fraction"] <= 1 / 4096 + 1e-12


def test_measured_trace_calibrates_constants(workloads):
    _, treated = workloads
    trace = ExecutionTrace(
        dense_macs_per_chunk={0: 1000, 1: 500},
        forward_hits=80,
        forward_misses=20,
    )
    accel = GCoDAccelerator(measured_trace=trace)
    assert accel.weight_forward_rate == pytest.approx(0.8)
    _positive_report(accel.run(treated))
    # An explicit forward rate still wins over the measured one.
    override = GCoDAccelerator(measured_trace=trace, weight_forward_rate=0.1)
    assert override.weight_forward_rate == pytest.approx(0.1)


def test_measured_trace_changes_dense_utilization(workloads):
    _, treated = workloads
    balanced = ExecutionTrace(dense_macs_per_chunk={0: 100, 1: 100},
                              forward_hits=63, forward_misses=37)
    skewed = ExecutionTrace(dense_macs_per_chunk={0: 1000, 1: 10},
                            forward_hits=63, forward_misses=37)
    fast = GCoDAccelerator(measured_trace=balanced).run(treated)
    slow = GCoDAccelerator(measured_trace=skewed).run(treated)
    # Worse measured chunk balance -> lower utilization -> higher latency.
    assert slow.latency_s >= fast.latency_s
