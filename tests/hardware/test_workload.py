"""Workload extraction: layer specs, adjacency profiles, paper scaling."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.errors import ConfigError
from repro.hardware import adjacency_profile, extract_workload, layer_specs
from repro.hardware.workload import LayerSpec


def test_gcn_layer_specs():
    specs = layer_specs("gcn", 1433, 16, 7, x_density=0.01)
    assert len(specs) == 2
    assert specs[0].f_in == 1433 and specs[0].f_out == 16
    assert specs[1].f_out == 7
    assert specs[0].x_density == pytest.approx(0.01)
    assert specs[1].x_density == 1.0  # hidden features are dense


def test_gin_has_three_layers_with_mlp():
    specs = layer_specs("gin", 100, 16, 5, 0.1)
    assert len(specs) == 3
    assert all(s.comb_multiplier == 2.0 for s in specs)
    assert specs[0].aggregation_dim == 100  # aggregates at input width


def test_gat_edge_compute():
    specs = layer_specs("gat", 100, 8, 5, 0.1)
    assert specs[0].edge_macs_per_nnz > 0
    assert specs[0].f_out == 64  # 8 heads x 8 hidden


def test_resgcn_depth():
    specs = layer_specs("resgcn", 128, 128, 40, 1.0, resgcn_layers=28)
    assert len(specs) == 30  # proj + 28 blocks + head
    assert not specs[0].aggregate and not specs[-1].aggregate


def test_unknown_arch_raises():
    with pytest.raises(ValueError):
        layer_specs("mlp-mixer", 10, 10, 2, 1.0)


def test_profile_without_layout(tiny_graph):
    profile = adjacency_profile(tiny_graph.adj, None)
    assert profile.nnz == tiny_graph.adj.nnz
    assert profile.sparse_nnz == profile.nnz
    assert profile.dense_nnz == 0
    assert profile.num_classes == 1


def test_profile_with_layout(partitioned):
    graph, layout = partitioned
    profile = adjacency_profile(graph.adj, layout)
    assert profile.dense_nnz + profile.sparse_nnz == profile.nnz
    assert 0 < profile.dense_fraction < 1
    assert profile.num_classes == layout.num_classes
    assert profile.num_subgraphs == layout.num_subgraphs


def test_workload_macs_sparse_vs_dense(partitioned):
    graph, layout = partitioned
    wl = extract_workload(graph, layout, "gcn")
    sparse = wl.total_macs(sparse_aware=True)
    dense = wl.total_macs(sparse_aware=False)
    assert sparse < dense  # features are sparse, accelerators exploit it


def test_agg_macs_proportional_to_nnz(partitioned):
    graph, layout = partitioned
    wl = extract_workload(graph, layout, "gcn")
    layer = wl.layers[0]
    assert wl.agg_macs(layer) == pytest.approx(
        wl.adjacency.nnz * layer.aggregation_dim
    )


def test_paper_scale_uses_meta(small_graph, partitioned):
    graph, layout = partitioned
    graph.meta["paper_stats"] = {
        "nodes": 10 * graph.num_nodes,
        "edges": 10 * graph.num_edges,
        "features": 500,
        "classes": 7,
    }
    wl = extract_workload(graph, layout, "gcn", paper_scale=True)
    assert wl.num_nodes == 10 * graph.num_nodes
    assert wl.layers[0].f_in == 500
    # structure ratios preserved
    raw = adjacency_profile(graph.adj, layout)
    assert wl.adjacency.dense_fraction == pytest.approx(
        raw.dense_fraction, rel=0.05
    )
    assert wl.adjacency.class_balance == raw.class_balance


def test_layout_comes_from_meta(gcod_result):
    wl = extract_workload(gcod_result.final_graph, None, "gcn")
    assert wl.adjacency.num_classes == gcod_result.layout.num_classes


def test_explicit_zero_hidden_rejected(partitioned):
    # `hidden or default` used to swap 0 for the dataset default; an
    # explicit non-positive width must fail in the AxisDef.coerce format.
    graph, layout = partitioned
    with pytest.raises(ConfigError,
                       match=r"hidden: invalid value 0 of type int"):
        extract_workload(graph, layout, "gcn", hidden=0)
    with pytest.raises(ConfigError,
                       match=r"hidden: invalid value -4 of type int"):
        extract_workload(graph, layout, "gcn", hidden=-4)
    # None still means "the dataset default"
    assert extract_workload(graph, layout, "gcn",
                            hidden=None).layers[0].f_out > 0


def test_build_model_rejects_zero_hidden_dim(tiny_graph):
    from repro.nn.models import build_model

    with pytest.raises(ConfigError,
                       match=r"hidden_dim: invalid value 0 of type int"):
        build_model("gcn", tiny_graph, hidden_dim=0)


def test_layout_branch_skip_fraction_measures_the_sparser_split(
        partitioned):
    # The structural-sparsity skip only applies to the sparser branch, so
    # the empty-column count must come from the split's remainder — not
    # the full matrix (whose CSC the layout branch no longer builds).
    graph, layout = partitioned
    profile = adjacency_profile(graph.adj, layout)
    _, sparse = layout.split(sp.csr_matrix(graph.adj))
    empty = int((np.diff(sp.csc_matrix(sparse).indptr) == 0).sum())
    assert profile.skipped_col_fraction == empty / graph.num_nodes


def test_feature_bytes(partitioned):
    graph, layout = partitioned
    wl = extract_workload(graph, layout, "gcn")
    layer = wl.layers[0]
    assert wl.feature_bytes(layer) == graph.num_nodes * layer.f_in * 4
    assert wl.output_bytes(layer) == graph.num_nodes * layer.f_out * 4
