"""Sanity checks on the calibration constants (repro.hardware.units).

These tests encode the physical orderings the constants must respect; a
recalibration that violates them would silently invalidate the energy and
latency models.
"""

from repro.hardware import units


def test_energy_hierarchy():
    # off-chip byte >> on-chip byte >> (comparable to) a MAC
    assert units.DDR_PJ_PER_BYTE > units.HBM_PJ_PER_BYTE
    assert units.HBM_PJ_PER_BYTE > 10 * units.SRAM_PJ_PER_BYTE
    assert units.SRAM_PJ_PER_BYTE < units.MAC32_PJ


def test_quantized_mac_cheaper():
    assert units.MAC8_PJ < units.MAC32_PJ / 4


def test_sw_efficiency_orderings():
    eff = units.SW_EFFICIENCY
    # DGL-CPU beats PyG-CPU on both phases (the paper's DGL-CPU > PyG-CPU).
    assert eff["dgl-cpu"]["gemm"] > eff["pyg-cpu"]["gemm"]
    assert eff["dgl-cpu"]["spmm"] > eff["pyg-cpu"]["spmm"]
    # PyG-GPU beats DGL-GPU overall (Fig. 9's ordering).
    assert eff["pyg-gpu"]["gemm"] > eff["dgl-gpu"]["gemm"]
    # Every efficiency is a fraction.
    for platform in eff.values():
        assert 0 < platform["gemm"] <= 1
        assert 0 < platform["spmm"] <= 1
        assert platform["spmm"] < platform["gemm"]  # SpMM always worse


def test_accelerator_utilization_orderings():
    # GCoD's static schedule beats AWB's autotuned array, which beats
    # HyGCN's gathered SIMD lanes on aggregation.
    assert (
        units.GCOD_STATIC_SCHEDULE_EFF
        > units.AWB_AGG_UTILIZATION
        >= units.GCOD_SINGLE_BRANCH_UTILIZATION
        > units.DEEPBURNING_UTILIZATION
    )
    assert 0 < units.HYGCN_GATHER_HIT_RATE < 1
    assert 0 < units.AWB_REBALANCE_OVERHEAD < 0.5


def test_forwarding_rate_matches_paper():
    assert units.GCOD_WEIGHT_FORWARD_RATE == 0.63


def test_overheads_small():
    assert 0 < units.GCOD_SYNC_OVERHEAD < 0.1
