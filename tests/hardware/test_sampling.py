"""LFSR and sampling-unit tests (Sec. V-B's sampling hardware)."""

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hardware.sampling import LFSR, SamplingUnit


def test_lfsr_maximal_period():
    lfsr = LFSR(width=8, seed=1)
    states = {lfsr.step() for _ in range(255)}
    assert len(states) == 255  # maximal length: every non-zero state


def test_lfsr_never_zero():
    lfsr = LFSR(width=8, seed=0)  # zero seed is repaired
    assert lfsr.state != 0
    for _ in range(300):
        assert lfsr.step() != 0


def test_lfsr_deterministic():
    a = LFSR(16, seed=77)
    b = LFSR(16, seed=77)
    assert [a.step() for _ in range(10)] == [b.step() for _ in range(10)]


def test_lfsr_rejects_unknown_width():
    with pytest.raises(ValueError):
        LFSR(width=13)


def test_next_below_in_range():
    lfsr = LFSR(16, seed=3)
    values = [lfsr.next_below(10) for _ in range(200)]
    assert min(values) >= 0 and max(values) < 10
    assert len(set(values)) == 10  # all residues reached


def test_next_below_rejects_nonpositive():
    with pytest.raises(ValueError):
        LFSR(16).next_below(0)


def test_sample_column_caps_and_subsets():
    unit = SamplingUnit(seed=9)
    indices = np.arange(100)
    picked = unit.sample_column(indices, 10)
    assert picked.shape[0] == 10
    assert len(np.unique(picked)) == 10  # without replacement
    assert np.all(np.isin(picked, indices))


def test_sample_column_small_passthrough():
    unit = SamplingUnit(seed=9)
    indices = np.array([3, 5])
    assert np.array_equal(unit.sample_column(indices, 10), indices)


def test_sample_adjacency_caps_columns(small_graph):
    unit = SamplingUnit(seed=1)
    sampled = unit.sample_adjacency(small_graph.adj, 4)
    col_nnz = np.diff(sp.csc_matrix(sampled).indptr)
    assert col_nnz.max() <= 4
    # Sampled support is a subset of the original support.
    extra = sampled - sampled.multiply(sp.csr_matrix(small_graph.adj))
    assert abs(extra).nnz == 0


def test_sampling_roughly_uniform():
    unit = SamplingUnit(seed=5)
    counts = np.zeros(20)
    indices = np.arange(20)
    for _ in range(600):
        for v in unit.sample_column(indices, 5):
            counts[v] += 1
    # each element expected 150 times; allow generous tolerance
    assert counts.min() > 75
    assert counts.max() < 300


@given(st.integers(1, 30), st.integers(1, 40), st.integers(1, 2**16 - 1))
@settings(max_examples=40, deadline=None)
def test_sample_column_properties(n, k, seed):
    unit = SamplingUnit(seed=seed)
    indices = np.arange(n) * 3
    picked = unit.sample_column(indices, k)
    assert picked.shape[0] == min(n, k)
    assert len(np.unique(picked)) == picked.shape[0]
    assert np.all(np.isin(picked, indices))
