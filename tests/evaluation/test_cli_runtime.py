"""CLI surface of the runtime layer: cache verbs, formats, error exits."""

import json
import os

import pytest

from repro.cli import main
from repro.evaluation.context import ExperimentResult


@pytest.fixture
def cache_dir(tmp_path):
    return str(tmp_path / "cache")


def test_report_unknown_experiment_exits_nonzero(capsys, cache_dir):
    code = main(["--cache-dir", cache_dir, "report",
                 "--experiments", "tab04,fig99", "--quiet"])
    assert code == 2
    err = capsys.readouterr().err
    assert "unknown experiment 'fig99'" in err
    assert "fig09" in err  # tells the user the valid names


def test_train_unknown_dataset_exits_nonzero(capsys, cache_dir):
    code = main(["--cache-dir", cache_dir, "train", "smallville"])
    assert code == 2
    err = capsys.readouterr().err
    assert "unknown dataset 'smallville'" in err
    assert "cora" in err


def test_simulate_unknown_dataset_exits_nonzero(capsys, cache_dir):
    assert main(["--cache-dir", cache_dir, "simulate", "nope"]) == 2
    assert "unknown dataset" in capsys.readouterr().err


def test_experiment_unknown_name_exits_nonzero(capsys, cache_dir):
    assert main(["--cache-dir", cache_dir, "experiment", "fig99"]) == 2
    assert "unknown experiment" in capsys.readouterr().err


def test_report_json_requires_out_dir(capsys, cache_dir):
    code = main(["--cache-dir", cache_dir, "report", "--format", "json",
                 "--experiments", "tab04", "--quiet"])
    assert code == 2
    assert "--out" in capsys.readouterr().err


def test_report_json_writes_per_experiment_files(tmp_path, capsys, cache_dir):
    out = str(tmp_path / "out")
    code = main(["--cache-dir", cache_dir, "report",
                 "--experiments", "tab04,tab05", "--format", "json",
                 "--out", out, "--quiet"])
    assert code == 0
    index = json.load(open(os.path.join(out, "report.json")))
    assert index["experiments"] == ["tab04", "tab05"]
    assert index["schema"] >= 1
    assert index["gcod_runs_in_parent"] == 0  # static tables train nothing
    assert index["gcod_tasks_executed"] == 0
    assert set(index["timings_s"]) == {"tab04", "tab05"}
    restored = ExperimentResult.from_json(
        open(os.path.join(out, "tab04.json")).read()
    )
    assert "GCN" in str(restored.rows)
    assert restored.headers[0] == "model"


def test_report_csv_writes_per_experiment_files(tmp_path, capsys, cache_dir):
    out = str(tmp_path / "out")
    assert main(["--cache-dir", cache_dir, "report", "--experiments", "tab04",
                 "--format", "csv", "--out", out, "--quiet"]) == 0
    csv_text = open(os.path.join(out, "tab04.csv")).read()
    assert csv_text.splitlines()[0].startswith("model,layers")
    assert "ResGCN" in csv_text


def test_cache_verbs_roundtrip(capsys, cache_dir, tmp_path):
    # run something cacheable so the store has content
    out = str(tmp_path / "out")
    main(["--cache-dir", cache_dir, "report", "--experiments", "tab04",
          "--format", "json", "--out", out, "--quiet"])
    assert main(["--cache-dir", cache_dir, "cache", "stats"]) == 0
    stats_out = capsys.readouterr().out
    assert "experiment" in stats_out and "total" in stats_out

    assert main(["--cache-dir", cache_dir, "cache", "ls"]) == 0
    ls_out = capsys.readouterr().out
    assert "experiment" in ls_out

    assert main(["--cache-dir", cache_dir, "cache", "clear"]) == 0
    assert "removed" in capsys.readouterr().out
    main(["--cache-dir", cache_dir, "cache", "ls"])
    assert "(empty store" in capsys.readouterr().out


def test_cache_clear_kind_filter(capsys, cache_dir, tmp_path):
    out = str(tmp_path / "out")
    main(["--cache-dir", cache_dir, "report", "--experiments", "tab04",
          "--format", "json", "--out", out, "--quiet"])
    assert main(["--cache-dir", cache_dir, "cache", "clear",
                 "--kind", "gcod"]) == 0
    assert "removed 0 entries" in capsys.readouterr().out  # none of that kind


def test_cache_verbs_refuse_no_cache(capsys, cache_dir):
    # --no-cache must never touch the (default) on-disk store
    assert main(["--no-cache", "cache", "clear"]) == 2
    assert "drop --no-cache" in capsys.readouterr().err


def test_no_cache_flag_disables_store(capsys, cache_dir):
    assert main(["--cache-dir", cache_dir, "--no-cache", "experiment",
                 "tab04"]) == 0
    capsys.readouterr()
    assert not os.path.exists(cache_dir)


def test_experiment_result_serialization_roundtrip():
    res = ExperimentResult(
        "T", ("a", "b"), [(1, "x"), (2.5, "y,z")], extra_text="note"
    )
    clone = ExperimentResult.from_json(res.to_json())
    assert clone.name == res.name
    assert clone.as_dict() == res.as_dict()
    assert clone.extra_text == "note"
    assert clone.to_json() == res.to_json()
    csv_text = res.to_csv()
    assert csv_text.splitlines()[0] == "a,b"
    assert '"y,z"' in csv_text  # commas survive quoting
