"""CLI and report-generator tests."""

import pytest

from repro.cli import EXPERIMENTS, build_parser, main


def test_parser_knows_all_commands():
    parser = build_parser()
    args = parser.parse_args(["experiment", "tab04"])
    assert args.command == "experiment"
    args = parser.parse_args(["train", "cora", "--arch", "gat"])
    assert args.arch == "gat"
    args = parser.parse_args(["report", "-o", "out.md"])
    assert args.output == "out.md"


def test_experiment_registry_matches_modules():
    assert {"fig04", "fig09", "fig10", "fig11", "fig12", "tab03", "tab04",
            "tab05", "tab06", "tab07", "ablation-cs", "ablation-design",
            "training-cost", "reordering",
            "multi-tenant"} == set(EXPERIMENTS)


def test_cli_static_experiment(capsys):
    assert main(["experiment", "tab04"]) == 0
    out = capsys.readouterr().out
    assert "GCN" in out and "ResGCN" in out


def test_cli_unknown_experiment(capsys):
    assert main(["experiment", "fig99"]) == 2
    assert "unknown experiment" in capsys.readouterr().err


def test_cli_requires_command():
    with pytest.raises(SystemExit):
        main([])


def test_report_sections_come_from_registry():
    # shape_checks needs trained graphs for five datasets: too slow here.
    # Instead verify the report discovers its sections from the registry.
    from repro.runtime.registry import all_experiments

    specs = all_experiments()
    assert len(specs) == 15
    titles = [s.title for s in specs]
    assert any("Tab. VI" in t for t in titles)
    assert any("Fig. 11" in t for t in titles)
