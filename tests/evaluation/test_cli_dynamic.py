"""CLI dynamic commands (train / simulate) at micro scale."""

import pytest

from repro.cli import _cmd_simulate, _cmd_train
from repro.evaluation import EvalContext


class _Args:
    def __init__(self, **kw):
        self.__dict__.update(kw)


@pytest.fixture(scope="module")
def micro_ctx():
    ctx = EvalContext(profile="fast")
    ctx.dataset_scales = {"cora": 0.06}
    return ctx


def test_cli_train_command(micro_ctx, capsys):
    assert _cmd_train(_Args(dataset="cora", arch="gcn"), micro_ctx) == 0
    out = capsys.readouterr().out
    assert "GCoD[gcn]" in out
    assert "early-bird epoch" in out
    assert "BlockLayout" in out


def test_cli_simulate_command(micro_ctx, capsys):
    args = _Args(dataset="cora", arch="gcn")
    assert _cmd_simulate(args, micro_ctx) == 0
    out = capsys.readouterr().out
    assert "speedup over PyG-CPU" in out
    assert "gcod" in out and "awb-gcn" in out
