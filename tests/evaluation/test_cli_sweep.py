"""CLI surface of ``repro sweep``: listing, grids, files, usage errors."""

import json

import pytest

from repro.cli import build_parser, main
from repro.runtime import counters

#: A one-training-run grid at throwaway scale: C is fixed, the platform
#: axes fan out analytically.
GRID = "dataset=cora;C=1;S=2;bits=32,8;hw_scale=0.5,1.0"


def run_cli(argv, capsys):
    code = main(argv)
    captured = capsys.readouterr()
    return code, captured.out, captured.err


def test_parser_knows_sweep():
    parser = build_parser()
    args = parser.parse_args(["sweep", "ablation-cs", "--jobs", "2"])
    assert args.command == "sweep" and args.jobs == 2
    args = parser.parse_args(["sweep", "--grid", "C=1,2"])
    assert args.name is None and args.grid == "C=1,2"


def test_bare_sweep_lists_registered(capsys):
    code, out, _ = run_cli(["sweep"], capsys)
    assert code == 0
    assert "ablation-cs" in out and "tab05-scale" in out
    assert "32 points" in out


def test_unknown_sweep_name_exits_2(capsys):
    code, _, err = run_cli(["sweep", "nope"], capsys)
    assert code == 2
    assert "unknown sweep" in err


def test_name_and_grid_mutually_exclusive(capsys):
    code, _, err = run_cli(["sweep", "ablation-cs", "--grid", "C=1"],
                           capsys)
    assert code == 2
    assert "not both" in err


def test_malformed_grid_exits_2(capsys):
    code, _, err = run_cli(["sweep", "--grid", "C=one,two"], capsys)
    assert code == 2
    assert "axis 'C'" in err


def test_typo_axis_exits_2_with_known_axes(capsys):
    """A typo'd axis (lowercase `c`) must exit 2, list the known axes,
    and suggest the near-miss — never run a partial grid."""
    code, _, err = run_cli(["sweep", "--grid", "c=1,2"], capsys)
    assert code == 2
    assert "unknown sweep axis 'c'" in err
    assert "did you mean 'C'?" in err
    assert "dataset, arch, workload, C, S, sparsity, bits, kernel_backend, " \
        in err

    code, _, err = run_cli(["sweep", "--grid", "C=1;hwscale=2"], capsys)
    assert code == 2
    assert "did you mean 'hw_scale'?" in err


def test_unknown_objectives_exit_2(capsys):
    code, _, err = run_cli(
        ["sweep", "--grid", "C=1", "--objectives", "speed,energy"], capsys
    )
    assert code == 2
    assert "unknown objective 'speed'" in err
    assert "did you mean 'speedup'?" in err
    assert "choose from" in err


def test_misspelled_objective_exits_2_with_hint(capsys):
    """`Energy`/`dram_bytes` misspellings exit 2 with the intended name
    instead of a raw error — before any planning or training."""
    for bad, want in (("Energy", "energy"), ("dram_bytes", "dram")):
        code, _, err = run_cli(
            ["sweep", "--grid", "C=1", "--objectives", bad], capsys
        )
        assert code == 2
        assert f"did you mean {want!r}?" in err


def test_resume_without_manifest_exits_2(tmp_path, capsys):
    code, _, err = run_cli(
        ["--cache-dir", str(tmp_path), "sweep", "--grid", "C=1",
         "--resume"],
        capsys,
    )
    assert code == 2
    assert "nothing to resume" in err


def test_resume_without_store_exits_2(capsys):
    code, _, err = run_cli(
        ["--no-cache", "sweep", "--grid", "C=1", "--resume"], capsys
    )
    assert code == 2
    assert "drop --no-cache" in err


def test_unknown_sweep_name_suggests_near_miss(capsys):
    code, _, err = run_cli(["sweep", "ablation-sc"], capsys)
    assert code == 2
    assert "did you mean 'ablation-cs'?" in err


def test_json_format_requires_out(capsys):
    code, _, err = run_cli(["sweep", "--grid", "C=1", "--format", "json"],
                           capsys)
    assert code == 2
    assert "--out DIR" in err


@pytest.mark.slow
def test_grid_sweep_markdown_then_warm_json_csv(tmp_path, capsys):
    """Cold markdown run, then warm json/csv runs — zero extra training."""
    base = ["--cache-dir", str(tmp_path / "cache")]

    code, out, err = run_cli(base + ["sweep", "--grid", GRID], capsys)
    assert code == 0
    assert "Sweep: Custom grid" in out
    assert "Pareto frontier" in out
    assert "4 design points" in out

    # warm rerun: byte-identical stdout, no training, all points cached
    counters.reset_counters()
    code, out2, err2 = run_cli(base + ["sweep", "--grid", GRID], capsys)
    assert code == 0
    assert out2 == out
    assert counters.gcod_run_count() == 0
    assert "4 cached" in err2

    out_dir = tmp_path / "files"
    code, _, _ = run_cli(
        base + ["sweep", "--grid", GRID, "--format", "json",
                "--out", str(out_dir), "--quiet"],
        capsys,
    )
    assert code == 0
    payload = json.loads((out_dir / "custom.json").read_text())
    assert payload["sweep"] == "custom"
    assert payload["axes"]["bits"] == [32, 8]
    assert payload["objectives"] == ["speedup", "accuracy"]
    assert len(payload["table"]["rows"]) == 4
    assert payload["table"]["headers"][:5] == [
        "dataset", "C", "S", "bits", "hw_scale"
    ]
    assert 1 <= len(payload["pareto"]["rows"]) <= 4
    # volatile run accounting must not leak into the artifact files
    assert "wall" not in json.dumps(payload)

    # a multi-objective frontier over the same (warm) grid
    code, out3, err3 = run_cli(
        base + ["sweep", "--grid", GRID,
                "--objectives", "speedup,energy,dram"],
        capsys,
    )
    assert code == 0
    assert "Pareto-optimal on (speedup vs AWB-GCN, energy, DRAM traffic)." \
        in out3
    assert counters.gcod_run_count() == 0  # objectives are a render knob

    # --resume on a completed sweep: all cache hits, identical stdout
    counters.reset_counters()
    code, out4, err4 = run_cli(base + ["sweep", "--grid", GRID, "--resume"],
                               capsys)
    assert code == 0
    assert out4 == out
    assert counters.sweep_point_run_count() == 0
    assert "4/4 points done, 0 to evaluate" in err4

    code, _, _ = run_cli(
        base + ["sweep", "--grid", GRID, "--format", "csv",
                "--out", str(out_dir), "--quiet"],
        capsys,
    )
    assert code == 0
    table_csv = (out_dir / "custom.csv").read_text()
    assert table_csv.splitlines()[0].startswith("dataset,C,S,bits,hw_scale")
    assert len(table_csv.splitlines()) == 5  # header + 4 points
    assert (out_dir / "custom_pareto.csv").exists()
