"""Evaluation harness: context caching and every experiment module runs."""

import pytest

from repro.evaluation import EvalContext, reference
from repro.evaluation.context import ExperimentResult
from repro.evaluation.experiments import (
    fig04_visualization,
    fig09_citation_speedups,
    fig10_large_speedups,
    fig11_memory,
    fig12_energy,
    tab03_datasets,
    tab04_models,
    tab05_systems,
    tab06_breakdown,
    tab07_accuracy,
    training_cost,
)


@pytest.fixture(scope="module")
def ctx():
    # Extra-small profile for test time: shrink the fast scales further.
    context = EvalContext(profile="fast")
    context.dataset_scales = {
        "cora": 0.08, "citeseer": 0.06, "pubmed": 0.015,
        "nell": 0.004, "ogbn-arxiv": 0.002, "reddit": 0.0015,
    }
    return context


def test_context_caches_graphs(ctx):
    assert ctx.graph("cora") is ctx.graph("cora")


def test_context_caches_gcod_runs(ctx):
    assert ctx.gcod("cora", "gcn") is ctx.gcod("cora", "gcn")


def test_workload_stages_differ(ctx):
    part = ctx.gcod_workload("cora", "gcn", stage="partitioned")
    final = ctx.gcod_workload("cora", "gcn", stage="final")
    assert final.adjacency.nnz < part.adjacency.nnz  # pruning happened


def test_speedups_include_gcod_win(ctx):
    speedups = ctx.speedups_over_cpu("cora", "gcn", ("awb-gcn", "gcod"))
    assert speedups["gcod"] > speedups["awb-gcn"] > 1.0


def test_experiment_result_rendering():
    res = ExperimentResult("T", ("a", "b"), [(1, 2)], extra_text="note")
    text = res.render()
    assert "T" in text and "note" in text
    assert res.as_dict() == {"a": [1], "b": [2]}


def test_tab03_runs(ctx):
    res = tab03_datasets.run(ctx, datasets=("cora",))
    assert res.rows[0][0] == "cora"
    assert res.rows[0][1] == 2708  # paper N


def test_tab04_static():
    res = tab04_models.run()
    assert len(res.rows) == 5


def test_tab05_static():
    res = tab05_systems.run()
    assert len(res.rows) == 9
    assert "Tab. I" in res.extra_text and "Tab. II" in res.extra_text


def test_fig04_runs(ctx):
    res = fig04_visualization.run(ctx, datasets=("cora",), plot_size=16)
    assert "before GCoD" in res.extra_text
    assert len(res.rows) == 1


def test_fig09_runs(ctx):
    res = fig09_citation_speedups.run(
        ctx, datasets=("cora",), models=("gcn",),
        platforms=("awb-gcn", "gcod"),
    )
    cols = res.as_dict()
    assert cols["gcod"][0] > cols["awb-gcn"][0]


def test_fig10_runs(ctx):
    res = fig10_large_speedups.run(
        ctx, cases=(("gcn", "nell"),), platforms=("awb-gcn", "gcod")
    )
    assert len(res.rows) == 1


def test_fig11_runs(ctx):
    res = fig11_memory.run(ctx, datasets=("cora",))
    cols = res.as_dict()
    assert cols["gcod BW"][0] < cols["hygcn BW"][0]


def test_fig12_fractions_sum(ctx):
    res = fig12_energy.run(ctx, models=("gcn",), datasets=("cora",))
    row = res.rows[0]
    assert sum(row[2:8]) == pytest.approx(100.0, abs=1.0)


def test_tab06_monotone_improvements(ctx):
    res = tab06_breakdown.run(ctx, datasets=("cora",))
    cols = res.as_dict()
    assert cols["cora"][3] > cols["cora"][1]  # quantized > accel-only
    assert cols["cora"][1] > cols["cora"][0]  # gcod accel > awb


def test_tab07_runs(ctx):
    res = tab07_accuracy.run(
        ctx, models=("gcn",), datasets=("cora",), epochs=10
    )
    row = res.rows[0]
    assert all(0.0 <= v <= 100.0 for v in row[2:])


def test_training_cost_runs(ctx):
    res = training_cost.run(ctx, datasets=("cora",))
    assert len(res.rows) == 1


def test_reference_values_present():
    assert reference.SPEEDUP_OVER["awb-gcn"] == 2.5
    assert reference.TABLE_VI["gcod-accel"]["cora"] == 1824
    assert reference.TRAINING_COST_RANGE == (0.7, 1.1)
