"""Backend selection is threaded through every layer of the stack.

These tests prove the plumbing, not the numerics (that is
``tests/sparse/test_kernels.py``): an explicitly selected backend must
actually be the one doing the arithmetic in ``GraphOps``, ``train_model``,
``run_gcod``, the functional emulator, and the CLI — and unknown names must
fail fast with the registry's clear error.
"""

import numpy as np
import pytest

from repro.algorithm import GCoDConfig, run_gcod
from repro.cli import build_parser, main
from repro.errors import KernelError
from repro.evaluation import EvalContext
from repro.graphs import powerlaw_community_graph
from repro.nn.models import build_model
from repro.nn.models.base import GraphOps
from repro.nn.tensor import Tensor
from repro.nn.training import train_model
from repro.sparse import kernels as K
from repro.sparse.kernels.vectorized import VectorizedBackend


class CountingBackend(VectorizedBackend):
    """Delegates to the vectorized kernels, counting every dispatch."""

    name = "counting"

    def __init__(self):
        self.calls = 0

    def spmm_row_product(self, a, b):
        self.calls += 1
        return super().spmm_row_product(a, b)

    def spmm_column_product(self, a, b):
        self.calls += 1
        return super().spmm_column_product(a, b)

    def segment_sum(self, values, segments, num_segments):
        self.calls += 1
        return super().segment_sum(values, segments, num_segments)

    def segment_max(self, values, segments, num_segments):
        self.calls += 1
        return super().segment_max(values, segments, num_segments)

    def coo_spmm(self, weights, rows, cols, x, num_rows):
        self.calls += 1
        return super().coo_spmm(weights, rows, cols, x, num_rows)


@pytest.fixture()
def counting(monkeypatch):
    backend = CountingBackend()
    monkeypatch.setitem(K._REGISTRY, "counting", backend)
    return backend


@pytest.fixture()
def micro_graph():
    return powerlaw_community_graph(
        num_nodes=60,
        avg_degree=4.0,
        num_features=12,
        num_classes=3,
        name="micro",
        rng=5,
    )


# ----------------------------------------------------------------------
# GraphOps
# ----------------------------------------------------------------------
def test_graphops_stores_selected_backend(tiny_graph):
    ops = GraphOps(tiny_graph.adj, kernel_backend="reference")
    assert ops.kernel.name == "reference"
    assert GraphOps(tiny_graph.adj).kernel.name == "vectorized"


def test_graphops_rejects_unknown_backend(tiny_graph):
    with pytest.raises(KernelError, match="unknown kernel backend"):
        GraphOps(tiny_graph.adj, kernel_backend="cuda")


def test_graphops_routes_aggregation_through_backend(tiny_graph, counting):
    ops = GraphOps(tiny_graph.adj, kernel_backend="counting")
    x = Tensor(tiny_graph.features)
    ops.agg_sym(x)
    assert counting.calls > 0


def test_graphops_backends_agree(tiny_graph, rng):
    x = Tensor(rng.normal(size=(tiny_graph.num_nodes, 8)))
    ref = GraphOps(tiny_graph.adj, kernel_backend="reference")
    vec = GraphOps(tiny_graph.adj, kernel_backend="vectorized")
    for agg in ("agg_sym", "agg_sum", "agg_mean", "agg_max"):
        np.testing.assert_allclose(
            getattr(ref, agg)(x).data,
            getattr(vec, agg)(x).data,
            atol=1e-12,
            err_msg=agg,
        )


# ----------------------------------------------------------------------
# training loop + pipeline
# ----------------------------------------------------------------------
def test_train_model_honors_backend(micro_graph, counting):
    model = build_model("gcn", micro_graph, rng=0)
    train_model(model, micro_graph, epochs=1, kernel_backend="counting")
    assert counting.calls > 0


def test_gcod_config_rejects_unknown_backend():
    with pytest.raises(KernelError, match="unknown kernel backend"):
        GCoDConfig(kernel_backend="tpu")


def test_run_gcod_honors_backend(micro_graph, counting):
    config = GCoDConfig(
        pretrain_epochs=2,
        retrain_epochs=1,
        admm_iterations=1,
        admm_inner_steps=1,
        num_subgraphs=2,
        early_bird=False,
        kernel_backend="counting",
        seed=3,
    )
    result = run_gcod(micro_graph, "gcn", config)
    assert result.config.kernel_backend == "counting"
    assert counting.calls > 0


# ----------------------------------------------------------------------
# CLI + evaluation context
# ----------------------------------------------------------------------
def test_cli_parses_kernel_backend_flag():
    args = build_parser().parse_args(
        ["--kernel-backend", "reference", "train", "cora"]
    )
    assert args.kernel_backend == "reference"
    assert build_parser().parse_args(["train", "cora"]).kernel_backend is None


def test_cli_rejects_unknown_backend(capsys):
    with pytest.raises(SystemExit) as exc:
        build_parser().parse_args(["--kernel-backend", "fpga", "train", "cora"])
    assert exc.value.code == 2
    assert "invalid choice" in capsys.readouterr().err


def test_cli_sets_process_default_backend():
    previous = K.set_default_backend("vectorized")
    try:
        # An unknown experiment exits early (rc 2) after backend selection,
        # so this asserts the flag takes effect without running a pipeline.
        rc = main(["--kernel-backend", "reference", "experiment", "no-such"])
        assert rc == 2
        assert K.default_backend().name == "reference"
    finally:
        K.set_default_backend(previous)


def test_eval_context_threads_backend_into_config():
    ctx = EvalContext(profile="fast", kernel_backend="reference")
    assert ctx.gcod_config().kernel_backend == "reference"
    assert EvalContext(profile="fast").gcod_config().kernel_backend is None


def test_cli_accepts_tiled_backend():
    args = build_parser().parse_args(
        ["--kernel-backend", "tiled", "train", "cora"]
    )
    assert args.kernel_backend == "tiled"


def test_gcod_config_accepts_tiled_backend():
    assert GCoDConfig(kernel_backend="tiled").kernel_backend == "tiled"


def test_eval_context_measured_trace_cached(gcod_result):
    # Inject the session's shared pipeline run so the context method can be
    # exercised without retraining.
    ctx = EvalContext(profile="fast")
    ctx._gcod[ctx._gcod_memo_key("small", "gcn")] = gcod_result
    trace = ctx.measured_trace("small")
    assert trace is ctx.measured_trace("small")
    assert 0.0 <= trace.forward_rate <= 1.0
    assert 0.0 < trace.chunk_balance() <= 1.0

    from repro.hardware.accelerators import GCoDAccelerator

    accel = GCoDAccelerator(measured_trace=trace)
    assert accel.weight_forward_rate == pytest.approx(trace.forward_rate)
