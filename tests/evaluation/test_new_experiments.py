"""Tests for the extension experiments (design ablation, reordering)."""

import pytest

from repro.evaluation import EvalContext
from repro.evaluation.experiments import ablation_design, reordering_compare


@pytest.fixture(scope="module")
def ctx():
    context = EvalContext(profile="fast")
    context.dataset_scales = {"cora": 0.08, "reddit": 0.0015}
    return context


def test_ablation_design_structure(ctx):
    res = ablation_design.run(ctx, dataset="cora", agg_heavy_dataset="reddit")
    cols = res.as_dict()
    assert cols["variant"].count("full gcod") == 2
    # No ablated variant beats the full design.
    assert all(v >= 0.99 for v in cols["latency vs full"])


def test_ablation_design_forwarding_traffic(ctx):
    res = ablation_design.run(ctx, dataset="cora", agg_heavy_dataset="reddit")
    cols = res.as_dict()
    for i, variant in enumerate(cols["variant"]):
        if variant == "w/o weight forwarding":
            assert cols["offchip vs full"][i] >= 1.0


def test_reordering_compare_gcod_wins(ctx):
    res = reordering_compare.run(ctx, dataset="cora")
    cols = res.as_dict()
    by_name = dict(zip(cols["ordering"], cols["polarization loss"]))
    # Full GCoD ends up the most diagonal of all orderings.
    others = [v for k, v in by_name.items() if k != "gcod steps 1-3 (full)"]
    assert by_name["gcod steps 1-3 (full)"] <= min(others)


def test_reordering_compare_baselines_present(ctx):
    res = reordering_compare.run(ctx, dataset="cora")
    names = set(res.as_dict()["ordering"])
    assert {"rcm", "degree-sort", "bfs-community", "original order"} <= names
