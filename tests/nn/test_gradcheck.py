"""Numeric gradient checking for every differentiable op.

Central-difference gradients on float64 agree with autograd to ~1e-6; this
is the correctness backbone for the training substrate (and hence for every
accuracy number in the reproduction).
"""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.nn import functional as F
from repro.nn.tensor import Tensor


def numeric_grad(fn, x: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    """Central-difference gradient of scalar-valued ``fn`` at ``x``."""
    grad = np.zeros_like(x)
    flat = x.ravel()
    gflat = grad.ravel()
    for i in range(flat.size):
        orig = flat[i]
        flat[i] = orig + eps
        hi = fn(x)
        flat[i] = orig - eps
        lo = fn(x)
        flat[i] = orig
        gflat[i] = (hi - lo) / (2 * eps)
    return grad


def check(op, x: np.ndarray, atol: float = 1e-5) -> None:
    """Compare autograd and numeric gradients of ``sum(op(x))``."""
    t = Tensor(x.copy(), requires_grad=True)
    out = op(t)
    out.sum().backward()
    expected = numeric_grad(lambda v: float(op(Tensor(v)).data.sum()), x.copy())
    np.testing.assert_allclose(t.grad, expected, atol=atol)


def test_relu_gradient(rng):
    check(F.relu, rng.normal(size=(4, 3)) + 0.1)


def test_leaky_relu_gradient(rng):
    check(lambda t: F.leaky_relu(t, 0.2), rng.normal(size=(4, 3)) + 0.05)


def test_elu_gradient(rng):
    check(F.elu, rng.normal(size=(4, 3)))


def test_log_softmax_gradient(rng):
    check(F.log_softmax, rng.normal(size=(5, 4)))


def test_nll_loss_gradient(rng):
    labels = rng.integers(0, 3, size=6)
    mask = np.array([True, True, False, True, False, True])

    def op(t):
        return F.nll_loss(F.log_softmax(t), labels, mask)

    check(op, rng.normal(size=(6, 3)))


def test_spmm_gradient(rng):
    adj = sp.random(6, 6, density=0.4, random_state=0, format="csr")
    check(lambda t: F.spmm(adj, t), rng.normal(size=(6, 4)))


def test_gather_rows_gradient(rng):
    idx = np.array([0, 2, 2, 1])
    check(lambda t: F.gather_rows(t, idx), rng.normal(size=(3, 4)))


def test_scatter_add_gradient(rng):
    idx = np.array([0, 1, 1, 3])
    check(
        lambda t: F.scatter_add_rows(t, idx, 4), rng.normal(size=(4, 3))
    )


def test_segment_softmax_gradient(rng):
    seg = np.array([0, 0, 1, 1, 1, 2])
    check(lambda t: F.segment_softmax(t, seg, 3), rng.normal(size=6))


def test_segment_softmax_2d_gradient(rng):
    seg = np.array([0, 0, 1, 1])
    check(lambda t: F.segment_softmax(t, seg, 2), rng.normal(size=(4, 2)))


def test_segment_max_gradient(rng):
    seg = np.array([0, 0, 1, 1, 1])
    # Perturb away from exact ties so the argmax is stable under eps.
    x = rng.normal(size=(5, 3)) * 3.0
    check(lambda t: F.segment_max(t, seg, 2), x)


def test_segment_mean_gradient(rng):
    seg = np.array([0, 1, 1, 2, 2, 2])
    check(lambda t: F.segment_mean(t, seg, 3), rng.normal(size=(6, 2)))


def test_edge_spmm_gradient_wrt_weights(rng):
    rows = np.array([0, 1, 2, 2])
    cols = np.array([1, 2, 0, 1])
    x = rng.normal(size=(3, 4))

    def op(t):
        return F.edge_spmm(t, rows, cols, Tensor(x), 3)

    check(op, rng.normal(size=4))


def test_edge_spmm_gradient_wrt_features(rng):
    rows = np.array([0, 1, 2, 2])
    cols = np.array([1, 2, 0, 1])
    w = rng.normal(size=4)

    def op(t):
        return F.edge_spmm(Tensor(w), rows, cols, t, 3)

    check(op, rng.normal(size=(3, 4)))


def test_edge_spmm_matches_dense_reference(rng):
    rows = np.array([0, 0, 1, 2])
    cols = np.array([1, 2, 0, 1])
    w = rng.normal(size=4)
    x = rng.normal(size=(3, 5))
    a = np.zeros((3, 3))
    a[rows, cols] = w
    out = F.edge_spmm(Tensor(w), rows, cols, Tensor(x), 3)
    np.testing.assert_allclose(out.data, a @ x, atol=1e-12)


def test_quantize_ste_gradient_is_identity(rng):
    from repro.compression.quantize import quantize_ste

    x = Tensor(rng.normal(size=(3, 3)), requires_grad=True)
    quantize_ste(x, bits=8).sum().backward()
    np.testing.assert_allclose(x.grad, np.ones((3, 3)))
