"""Property-based tests for the autograd engine and graph ops."""

import numpy as np
import scipy.sparse as sp
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import functional as F
from repro.nn.models.base import GraphOps
from repro.nn.tensor import Tensor

_floats = st.floats(-5.0, 5.0, allow_nan=False, allow_infinity=False)


@st.composite
def small_matrix(draw, max_dim=6):
    rows = draw(st.integers(1, max_dim))
    cols = draw(st.integers(1, max_dim))
    values = draw(
        st.lists(_floats, min_size=rows * cols, max_size=rows * cols)
    )
    return np.array(values).reshape(rows, cols)


@given(small_matrix(), small_matrix())
@settings(max_examples=60, deadline=None)
def test_matmul_grad_matches_transpose_rule(a, b):
    if a.shape[1] != b.shape[0]:
        b = np.resize(b, (a.shape[1], 3))
    ta = Tensor(a, requires_grad=True)
    tb = Tensor(b, requires_grad=True)
    (ta @ tb).sum().backward()
    ones = np.ones((a.shape[0], b.shape[1]))
    np.testing.assert_allclose(ta.grad, ones @ b.T, atol=1e-10)
    np.testing.assert_allclose(tb.grad, a.T @ ones, atol=1e-10)


@given(small_matrix())
@settings(max_examples=60, deadline=None)
def test_sum_of_relu_grad_is_indicator(a):
    t = Tensor(a, requires_grad=True)
    F.relu(t).sum().backward()
    np.testing.assert_allclose(t.grad, (a > 0).astype(float))


@given(small_matrix())
@settings(max_examples=60, deadline=None)
def test_log_softmax_rows_are_distributions(a):
    out = F.log_softmax(Tensor(a))
    np.testing.assert_allclose(np.exp(out.data).sum(axis=1), 1.0, atol=1e-9)
    assert np.all(out.data <= 1e-12)


@given(st.integers(2, 12), st.integers(0, 2**31 - 1))
@settings(max_examples=30, deadline=None)
def test_graphops_sym_agg_matches_dense_reference(n, seed):
    rng = np.random.default_rng(seed)
    dense = (rng.random((n, n)) < 0.4).astype(float)
    dense = np.triu(dense, 1)
    dense = dense + dense.T
    adj = sp.csr_matrix(dense)
    ops = GraphOps(adj)
    x = rng.normal(size=(n, 3))
    out = ops.agg_sym(Tensor(x)).data
    from repro.graphs.normalize import symmetric_normalize

    expected = symmetric_normalize(adj) @ x
    np.testing.assert_allclose(out, expected, atol=1e-10)


@given(st.integers(2, 12), st.integers(0, 2**31 - 1))
@settings(max_examples=30, deadline=None)
def test_graphops_trainable_equals_constant_at_ones(n, seed):
    rng = np.random.default_rng(seed)
    dense = (rng.random((n, n)) < 0.4).astype(float)
    dense = np.triu(dense, 1)
    dense = dense + dense.T
    adj = sp.csr_matrix(dense)
    if adj.nnz == 0:
        return
    x = Tensor(rng.normal(size=(n, 2)))
    const = GraphOps(adj).agg_sym(x).data
    weights = Tensor(np.ones(adj.nnz), requires_grad=True)
    trainable = GraphOps(adj, edge_weights=weights).agg_sym(x).data
    np.testing.assert_allclose(const, trainable, atol=1e-10)


@given(
    st.lists(st.integers(0, 4), min_size=1, max_size=30),
    st.integers(0, 2**31 - 1),
)
@settings(max_examples=40, deadline=None)
def test_segment_softmax_partition_of_unity(segments, seed):
    rng = np.random.default_rng(seed)
    seg = np.array(segments)
    scores = Tensor(rng.normal(size=seg.shape[0]))
    out = F.segment_softmax(scores, seg, 5)
    sums = np.zeros(5)
    np.add.at(sums, seg, out.data)
    present = np.unique(seg)
    np.testing.assert_allclose(sums[present], 1.0, atol=1e-9)
