"""Autograd core: forward values and backward gradients of the primitives."""

import numpy as np
import pytest

from repro.nn.tensor import Tensor, concat, exp, log, matmul, power, reshape


def test_add_broadcast_forward_backward():
    a = Tensor(np.ones((2, 3)), requires_grad=True)
    b = Tensor(np.arange(3.0), requires_grad=True)
    out = (a + b).sum()
    out.backward()
    assert np.allclose(a.grad, np.ones((2, 3)))
    assert np.allclose(b.grad, [2.0, 2.0, 2.0])  # summed over broadcast axis


def test_mul_gradients():
    a = Tensor([2.0, 3.0], requires_grad=True)
    b = Tensor([5.0, 7.0], requires_grad=True)
    (a * b).sum().backward()
    assert np.allclose(a.grad, [5.0, 7.0])
    assert np.allclose(b.grad, [2.0, 3.0])


def test_matmul_gradients():
    a = Tensor(np.array([[1.0, 2.0]]), requires_grad=True)
    b = Tensor(np.array([[3.0], [4.0]]), requires_grad=True)
    (a @ b).sum().backward()
    assert np.allclose(a.grad, [[3.0, 4.0]])
    assert np.allclose(b.grad, [[1.0], [2.0]])


def test_sub_neg_div():
    a = Tensor([6.0], requires_grad=True)
    b = Tensor([2.0], requires_grad=True)
    out = (a - b) / b
    out.backward(np.array([1.0]))
    assert np.allclose(out.data, [2.0])
    assert np.allclose(a.grad, [0.5])


def test_power_gradient():
    a = Tensor([3.0], requires_grad=True)
    power(a, 2.0).backward(np.array([1.0]))
    assert np.allclose(a.grad, [6.0])


def test_exp_log_inverse():
    a = Tensor([0.5, 1.5], requires_grad=True)
    out = log(exp(a))
    out.sum().backward()
    assert np.allclose(out.data, a.data)
    assert np.allclose(a.grad, [1.0, 1.0])


def test_sum_axis_keepdims():
    a = Tensor(np.arange(6.0).reshape(2, 3), requires_grad=True)
    out = a.sum(axis=1, keepdims=True)
    assert out.shape == (2, 1)
    out.backward(np.ones((2, 1)))
    assert np.allclose(a.grad, np.ones((2, 3)))


def test_mean_scales_gradient():
    a = Tensor(np.arange(4.0), requires_grad=True)
    a.mean().backward()
    assert np.allclose(a.grad, [0.25] * 4)


def test_reshape_roundtrip_gradient():
    a = Tensor(np.arange(6.0).reshape(2, 3), requires_grad=True)
    reshape(a, (3, 2)).sum().backward()
    assert a.grad.shape == (2, 3)
    assert np.allclose(a.grad, 1.0)


def test_concat_splits_gradient():
    a = Tensor(np.ones((2, 2)), requires_grad=True)
    b = Tensor(np.ones((2, 3)), requires_grad=True)
    out = concat([a, b], axis=1)
    assert out.shape == (2, 5)
    grad = np.arange(10.0).reshape(2, 5)
    out.backward(grad)
    assert np.allclose(a.grad, grad[:, :2])
    assert np.allclose(b.grad, grad[:, 2:])


def test_gradient_accumulates_through_reuse():
    a = Tensor([1.0], requires_grad=True)
    out = a * a  # a used twice
    out.backward(np.array([1.0]))
    assert np.allclose(a.grad, [2.0])


def test_diamond_graph_accumulates_once_per_path():
    a = Tensor([2.0], requires_grad=True)
    b = a * 3.0
    c = a * 4.0
    (b + c).backward(np.array([1.0]))
    assert np.allclose(a.grad, [7.0])


def test_backward_requires_scalar_without_grad():
    a = Tensor(np.ones(3), requires_grad=True)
    with pytest.raises(ValueError):
        a.backward()


def test_detach_stops_gradients():
    a = Tensor([1.0], requires_grad=True)
    (a.detach() * 2.0).backward(np.array([1.0]))
    assert a.grad is None


def test_no_graph_recorded_without_requires_grad():
    a = Tensor([1.0])
    out = a * 2.0
    assert out._backward is None
    assert not out.requires_grad


def test_zero_grad_clears():
    a = Tensor([1.0], requires_grad=True)
    (a * 2.0).backward(np.array([1.0]))
    assert a.grad is not None
    a.zero_grad()
    assert a.grad is None
