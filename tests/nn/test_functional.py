"""Forward-value tests for the nn functional ops."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.nn import functional as F
from repro.nn.tensor import Tensor


def test_relu_clamps_negatives():
    out = F.relu(Tensor([-1.0, 0.0, 2.0]))
    assert np.array_equal(out.data, [0.0, 0.0, 2.0])


def test_leaky_relu_slope():
    out = F.leaky_relu(Tensor([-10.0, 10.0]), slope=0.1)
    assert np.allclose(out.data, [-1.0, 10.0])


def test_elu_negative_branch():
    out = F.elu(Tensor([-1e9, 0.0, 3.0]))
    assert out.data[0] == pytest.approx(-1.0)
    assert out.data[2] == 3.0


def test_log_softmax_rows_normalize():
    out = F.log_softmax(Tensor(np.random.default_rng(0).normal(size=(4, 5))))
    sums = np.exp(out.data).sum(axis=1)
    np.testing.assert_allclose(sums, 1.0, atol=1e-12)


def test_log_softmax_handles_large_values():
    out = F.log_softmax(Tensor([[1e4, 1e4 + 1.0]]))
    assert np.all(np.isfinite(out.data))


def test_nll_loss_is_cross_entropy():
    logits = Tensor(np.log(np.array([[0.25, 0.75], [0.5, 0.5]])))
    loss = F.nll_loss(F.log_softmax(logits), np.array([1, 0]),
                      np.array([True, True]))
    expected = -(np.log(0.75) + np.log(0.5)) / 2
    assert float(loss.data) == pytest.approx(expected)


def test_nll_loss_empty_mask_raises():
    with pytest.raises(ValueError):
        F.nll_loss(Tensor(np.zeros((2, 2))), np.zeros(2, dtype=int),
                   np.zeros(2, dtype=bool))


def test_dropout_eval_is_identity(rng):
    x = Tensor(rng.normal(size=(5, 5)))
    out = F.dropout(x, 0.5, training=False, rng=rng)
    assert out is x


def test_dropout_preserves_expectation(rng):
    x = Tensor(np.ones((2000, 10)))
    out = F.dropout(x, 0.3, training=True, rng=rng)
    assert out.data.mean() == pytest.approx(1.0, abs=0.05)


def test_spmm_matches_scipy(rng):
    adj = sp.random(8, 8, density=0.3, random_state=1, format="csr")
    x = rng.normal(size=(8, 3))
    out = F.spmm(adj, Tensor(x))
    np.testing.assert_allclose(out.data, adj @ x, atol=1e-12)


def test_segment_softmax_sums_to_one_per_segment():
    seg = np.array([0, 0, 0, 2, 2])
    out = F.segment_softmax(Tensor(np.array([1.0, 2.0, 3.0, 0.5, 0.5])), seg, 3)
    sums = np.zeros(3)
    np.add.at(sums, seg, out.data)
    assert sums[0] == pytest.approx(1.0)
    assert sums[2] == pytest.approx(1.0)
    assert sums[1] == 0.0  # empty segment


def test_segment_max_takes_elementwise_max():
    seg = np.array([0, 0, 1])
    x = Tensor(np.array([[1.0, 5.0], [3.0, 2.0], [7.0, -1.0]]))
    out = F.segment_max(x, seg, 2)
    np.testing.assert_allclose(out.data, [[3.0, 5.0], [7.0, -1.0]])


def test_segment_max_empty_segment_is_zero():
    out = F.segment_max(Tensor(np.ones((1, 2))), np.array([1]), 3)
    np.testing.assert_allclose(out.data[0], 0.0)
    np.testing.assert_allclose(out.data[2], 0.0)


def test_segment_mean_averages():
    seg = np.array([0, 0, 1])
    x = Tensor(np.array([[2.0], [4.0], [6.0]]))
    out = F.segment_mean(x, seg, 2)
    np.testing.assert_allclose(out.data, [[3.0], [6.0]])


def test_scatter_add_accumulates():
    x = Tensor(np.array([[1.0], [2.0], [3.0]]))
    out = F.scatter_add_rows(x, np.array([1, 1, 0]), 2)
    np.testing.assert_allclose(out.data, [[3.0], [3.0]])
